//! Cross-crate consistency: the analytical chain (dist → queueing →
//! core model) agrees with itself and with the simulator, and the
//! paper's negative results are enforced end to end.

use psd::core::allocation::psd_rates;
use psd::core::model::{ModelError, PsdModel};
use psd::dist::{BoundedPareto, Exponential, ServiceDistribution};
use psd::queueing::{AnalysisError, Mg1Fcfs, TaskServerQueue};

/// Eq. 18 equals Theorem 1 applied to the Eq. 17 rates, across a grid
/// of parameters (the derivation's algebra, machine-checked).
#[test]
fn model_chain_consistency_grid() {
    let bp = BoundedPareto::paper_default();
    let moments = bp.moments();
    let ex = moments.mean;
    for deltas in [vec![1.0, 2.0], vec![1.0, 4.0], vec![1.0, 2.0, 3.0], vec![1.0, 1.5, 2.5, 8.0]] {
        for &total_load in &[0.2, 0.5, 0.8, 0.95] {
            let n = deltas.len();
            let lambdas: Vec<f64> = (0..n).map(|_| total_load / n as f64 / ex).collect();
            let model = PsdModel::new(&deltas, moments).unwrap();
            let predicted = model.expected_slowdowns(&lambdas).unwrap();
            let rates = psd_rates(&lambdas, &deltas, ex).unwrap();
            assert!((rates.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for i in 0..n {
                let via_queue = TaskServerQueue::new(lambdas[i], rates[i], moments)
                    .unwrap()
                    .expected_slowdown()
                    .unwrap();
                let rel = (predicted[i] - via_queue).abs() / via_queue;
                assert!(
                    rel < 1e-9,
                    "deltas {deltas:?} load {total_load} class {i}: {} vs {via_queue}",
                    predicted[i]
                );
            }
            // And the ratios are exactly the delta ratios.
            for i in 1..n {
                let r = predicted[i] / predicted[0];
                assert!((r - deltas[i] / deltas[0]).abs() < 1e-9);
            }
        }
    }
}

/// A single class at full rate reduces to the plain M/G_B/1 queue.
#[test]
fn single_class_degenerates_to_mg1() {
    let bp = BoundedPareto::paper_default();
    let m = bp.moments();
    let lambda = 0.7 / m.mean;
    let model = PsdModel::new(&[1.0], m).unwrap();
    let s_model = model.expected_slowdowns(&[lambda]).unwrap()[0];
    let s_queue = Mg1Fcfs::new(lambda, m).unwrap().expected_slowdown().unwrap();
    assert!((s_model - s_queue).abs() / s_queue < 1e-12);
    let rates = model.rates(&[lambda]).unwrap();
    assert!((rates[0] - 1.0).abs() < 1e-12, "one class gets the whole server");
}

/// The paper's §5 negative result holds through every layer: no
/// slowdown model exists for exponential service.
#[test]
fn exponential_rejected_everywhere() {
    let e = Exponential::new(1.0).unwrap();
    let m = e.moments();
    assert!(m.mean_inverse.is_none(), "dist layer");
    let q = Mg1Fcfs::new(0.5, m).unwrap();
    assert_eq!(
        q.expected_slowdown().unwrap_err(),
        AnalysisError::SlowdownUndefined,
        "queueing layer"
    );
    assert!(
        matches!(
            PsdModel::new(&[1.0, 2.0], m),
            Err(ModelError::Analysis(AnalysisError::SlowdownUndefined))
        ),
        "model layer"
    );
}

/// Sensitivity directions of §4.5 hold in the closed forms: slowdown
/// decreases in α and increases in the upper bound p.
#[test]
fn shape_and_bound_sensitivity() {
    let lambda_load = 0.6;
    let slowdown = |alpha: f64, p: f64| {
        let bp = BoundedPareto::new(alpha, 0.1, p).unwrap();
        let m = bp.moments();
        Mg1Fcfs::new(lambda_load / m.mean, m).unwrap().expected_slowdown().unwrap()
    };
    // α up ⇒ slowdown down.
    assert!(slowdown(1.2, 100.0) > slowdown(1.5, 100.0));
    assert!(slowdown(1.5, 100.0) > slowdown(1.9, 100.0));
    // p up ⇒ slowdown up.
    assert!(slowdown(1.5, 1_000.0) > slowdown(1.5, 100.0));
    assert!(slowdown(1.5, 10_000.0) > slowdown(1.5, 1_000.0));
}
