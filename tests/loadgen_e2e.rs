//! End-to-end load-generation tests: a real `PsdServer` + HTTP
//! front-end on a loopback socket, driven by the `psd-loadgen`
//! generator, with the achieved slowdown ratio checked against the
//! configured δ's — the loop the paper only closes in simulation.

use std::time::Duration;

use psd::loadgen::scenario::ArrivalSpec;
use psd::loadgen::{generator, harness, LoadMode, LogHistogram, Scenario, BAND_WINDOW};
use psd::server::EngineKind;

/// A shortened `steady` run: class-1/class-0 slowdown ratio must land
/// in a band around δ1/δ0 = 2, every request must succeed, and the
/// JSON report schema must hold together.
///
/// The band is wide because a few seconds of measurement over a
/// heavy-tailed workload on a shared CI core carries real estimator
/// variance (the 20-second default run lands within ~20% of target);
/// what the band *must* catch is a dead controller (ratio ≈ 1), an
/// inverted allocation (ratio < 1), or runaway starvation.
#[test]
fn steady_slowdown_ratio_tracks_deltas() {
    let mut scenario = Scenario::by_name("steady").expect("stock scenario");
    scenario.duration = Duration::from_secs(7);
    scenario.warmup = Duration::from_secs(2);
    scenario.connections = 32;

    let out = harness::run_scenario(&scenario).expect("harness run");
    let report = &out.report;

    assert_eq!(report.total_errors, 0, "non-2xx or transport errors:\n{}", report.to_markdown());
    assert_eq!(report.dead_workers, 0);
    assert!(report.total_sent > 4_000, "sent only {} requests", report.total_sent);
    for c in &report.classes {
        assert!(c.measured > 500, "class {} measured only {} responses", c.class, c.measured);
        assert!(c.latency.p50_ms > 0.0 && c.latency.p999_ms >= c.latency.p50_ms);
    }

    let target = scenario.deltas[1] / scenario.deltas[0];
    let ratio = report.classes[1]
        .slowdown_ratio_vs_class0
        .expect("both classes completed requests, so the ratio exists");
    assert!(
        (0.55 * target..=1.8 * target).contains(&ratio),
        "achieved slowdown ratio {ratio:.2} outside the tolerance band of δ1/δ0 = {target}:\n{}",
        report.to_markdown()
    );

    // The JSON schema CI tracks stays exercised end to end.
    let json = report.to_json();
    for key in [
        "\"scenario\"",
        "\"deltas\"",
        "\"total_sent\"",
        "\"throughput_rps\"",
        "\"classes\"",
        "\"mean_slowdown\"",
        "\"slowdown_ratio_vs_class0\"",
        "\"target_ratio_vs_class0\"",
        "\"p99_ms\"",
        "\"p999_ms\"",
    ] {
        assert!(json.contains(key), "JSON report lost the {key} field:\n{json}");
    }
    assert!(report.to_markdown().contains("| 1 | 2 |"), "markdown table row per class");

    // Client-side accounting agrees with the server's own books.
    let server_total: u64 = out.server_stats.classes.iter().map(|c| c.completed).sum();
    assert_eq!(server_total, report.total_sent, "server completed exactly what was sent");
}

/// Golden merge/percentile test for the log-bucketed histogram: two
/// shards merged must report the same percentiles as one histogram fed
/// everything, and known quantiles of a fixed dataset must come out
/// within the bucket resolution.
#[test]
fn histogram_merge_percentile_golden() {
    // 1..=100_000 in two interleaved shards.
    let mut all = LogHistogram::new();
    let mut shard_a = LogHistogram::new();
    let mut shard_b = LogHistogram::new();
    for v in 1..=100_000u64 {
        all.record(v);
        if v % 2 == 0 {
            shard_a.record(v);
        } else {
            shard_b.record(v);
        }
    }
    shard_a.merge(&shard_b);
    assert_eq!(shard_a.count(), all.count());

    // Golden quantiles of the uniform ramp, within the ~3% bucket width.
    for (q, want) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
        let merged = shard_a.value_at_quantile(q).unwrap() as f64;
        let direct = all.value_at_quantile(q).unwrap() as f64;
        assert_eq!(merged, direct, "merge must not move the q={q} percentile");
        let err = (merged - want).abs() / want;
        assert!(err < 0.04, "q={q}: got {merged}, want {want} (err {err:.3})");
    }
    assert_eq!(shard_a.min(), 1);
    assert_eq!(shard_a.max(), 100_000);
    assert!((shard_a.mean() - 50_000.5).abs() < 1e-6);
}

/// The closed-loop mode drives sessions with think times end to end and
/// drains cleanly.
#[test]
fn closed_loop_sessions_run_clean() {
    let mut scenario = Scenario::by_name("closed").expect("stock scenario");
    scenario.duration = Duration::from_millis(1500);
    scenario.warmup = Duration::from_millis(300);
    scenario.mode = LoadMode::Closed { sessions: 8, mean_think: Duration::from_millis(4) };

    let out = harness::run_scenario(&scenario).expect("harness run");
    assert_eq!(out.report.total_errors, 0);
    assert_eq!(out.report.mode, "closed");
    assert!(out.report.total_sent > 100, "sessions produced {} requests", out.report.total_sent);
}

/// The overload satellite: offered ρ ≈ 1.3 against a 0.9 admission
/// cap. The control plane must shed **only** the lowest class (`503` +
/// `X-Shed` + `Connection: close` — a malformed shed is counted as an
/// error by the generator, so `total_errors == 0` covers the response
/// shape), keep class 0 entirely un-shed and healthy, and
/// `report.check()` gates on all of it.
#[test]
fn overload_sheds_low_class_and_protects_class0() {
    let mut scenario = Scenario::by_name("overload").expect("stock scenario");
    scenario.duration = Duration::from_secs(10);
    scenario.warmup = Duration::from_secs(4);
    // The reactor keeps the experiment's own thread count down — this
    // all runs on one shared CI core.
    scenario.server.engine = EngineKind::Reactor;
    scenario.server.shards = 2;
    // Half the request rate at the same offered ρ ≈ 1.3 (doubled work
    // unit): tier-1 runs unoptimized, where the stock rate starves the
    // 1-CPU box and the experiment measures contention, not admission.
    scenario.server.work_unit = Duration::from_micros(2400);
    if let LoadMode::Open { arrival: ArrivalSpec::Steady { rate } } = &mut scenario.mode {
        *rate *= 0.5;
    }

    let out = harness::run_scenario(&scenario).expect("harness run");
    let r = &out.report;
    assert_eq!(r.total_errors, 0, "shed responses must be well-formed:\n{}", r.to_markdown());
    assert_eq!(r.dead_workers, 0);
    assert_eq!(r.controller, "open");
    assert_eq!(r.admission_cap, Some(0.9));

    // Shedding happened, was substantial, and touched only class 1.
    assert_eq!(r.classes[0].shed, 0, "highest class must never shed:\n{}", r.to_markdown());
    assert!(
        r.classes[1].shed as f64 > 0.15 * r.classes[1].sent as f64,
        "ρ ≈ 1.3 against cap 0.9 must shed a real fraction of class 1:\n{}",
        r.to_markdown()
    );
    assert!(r.total_shed == r.classes[1].shed);

    // Class 0's band: its service stays in the healthy regime the cap
    // buys (without admission the same offered load drives class 0's
    // mean slowdown past 45 and p50 latency past 950 ms, growing with
    // the run — see CHANGES.md for the measured baselines).
    assert!(r.classes[0].measured > 500, "class 0 keeps serving:\n{}", r.to_markdown());
    assert!(
        r.classes[0].mean_slowdown < 60.0,
        "class 0 slowdown must stay bounded under overload:\n{}",
        r.to_markdown()
    );
    assert!(
        r.classes[0].latency.p50_ms < 400.0,
        "class 0 latency must stay bounded under overload:\n{}",
        r.to_markdown()
    );

    // The CI gate holds (errors, dead workers, class-0 sheds, empty
    // classes, and a sanity bound on the ratio).
    r.check(1.5).expect("overload run must pass its gate");

    // The JSON schema carries the control-plane fields.
    let json = r.to_json();
    for key in ["\"controller\"", "\"admission_cap\"", "\"shed\"", "\"time_to_band_s\""] {
        assert!(json.contains(key), "JSON report lost {key}:\n{json}");
    }
}

/// The hot-reconfiguration satellite: δ = (1, 2) flips to (1, 1)
/// mid-run through `PUT /config`, and the measured slowdown ratio
/// collapses toward the new (equal) targets — asserted on long-pooled
/// pre-/post-flip windows, which are robust where single windows are
/// heavy-tail noise.
#[test]
fn reconfig_flips_deltas_mid_run_and_ratios_converge() {
    use std::sync::Arc;

    let mut scenario = Scenario::by_name("reconfig").expect("stock scenario");
    scenario.duration = Duration::from_secs(24);
    scenario.warmup = Duration::from_secs(3);
    // Half the request rate at the same dimensionless load (doubled
    // work unit): tier-1 runs this binary unoptimized, where the
    // generator+server burn several times more CPU per request — at
    // the stock rate the experiment starves the 1-CPU box and measures
    // scheduler contention instead of the control plane.
    scenario.server.work_unit = Duration::from_micros(1200);
    if let LoadMode::Open { arrival: ArrivalSpec::Steady { rate } } = &mut scenario.mode {
        *rate *= 0.58;
    }
    // A slightly hotter gain converges the integral within the
    // pre-flip phase (the stock 0.3 is tuned for long runs).
    scenario.server.gain = 0.5;

    let server = Arc::new(psd::server::PsdServer::start(scenario.server_config()));
    let frontend = psd::server::HttpFrontend::start_with(
        "127.0.0.1:0",
        Arc::clone(&server),
        psd::server::FrontendConfig {
            max_connections: 2 * scenario.connections,
            ..Default::default()
        },
    )
    .expect("bind");
    let stats = generator::run(frontend.addr(), &scenario).expect("generator run");

    // The admin update really landed and the monitor applied it.
    assert_eq!(server.control().epoch(), 1, "PUT /config must bump the epoch");
    assert_eq!(server.control().applied_epoch(), 1, "monitor must apply the new table");
    assert_eq!(server.control().table().deltas, vec![1.0, 1.0]);

    // Pooled ratio before the flip (warmup end → flip) vs the post-flip
    // tail (last 6 s): δ (1,2) → (1,1) must visibly collapse it.
    let win_s = BAND_WINDOW.as_secs_f64();
    let flip_w = (12.0 / win_s) as usize;
    let end_w = (24.0 / win_s) as usize - 1;
    let warm_w = (5.0 / win_s) as usize;
    let pooled = |lo: usize, hi: usize| -> f64 {
        let s0 = stats.classes[0].windows.mean_range(lo, hi).expect("class 0 data");
        let s1 = stats.classes[1].windows.mean_range(lo, hi).expect("class 1 data");
        s1 / s0
    };
    let pre = pooled(warm_w, flip_w - 1);
    let post = pooled(flip_w + 8, end_w);
    assert!(pre > 1.35, "pre-flip ratio must track δ1/δ0 = 2, got {pre:.2}");
    assert!(post < 1.5, "post-flip ratio must approach 1, got {post:.2}");
    assert!(
        post < 0.8 * pre,
        "the flip must visibly collapse the differentiation: pre {pre:.2} → post {post:.2}"
    );
    assert_eq!(stats.total_errors(), 0);

    assert_eq!(frontend.shutdown(Duration::from_secs(30)).expect("drain"), 0);
    Arc::try_unwrap(server).ok().expect("drained").shutdown();
}

/// A flash-crowd schedule built from the piecewise arrival spec runs
/// end to end (shortened), exercising the surge path.
#[test]
fn flashcrowd_surge_runs_clean() {
    let mut scenario = Scenario::by_name("flashcrowd").expect("stock scenario");
    scenario.duration = Duration::from_millis(2400);
    scenario.warmup = Duration::from_millis(400);
    scenario.connections = 16;
    if let LoadMode::Open { arrival } = &mut scenario.mode {
        *arrival = ArrivalSpec::FlashCrowd {
            base_rate: 150.0,
            peak_rate: 450.0,
            from_frac: 1.0 / 3.0,
            to_frac: 2.0 / 3.0,
        };
    }
    let out = harness::run_scenario(&scenario).expect("harness run");
    assert_eq!(out.report.total_errors, 0);
    assert!(out.report.total_sent > 300, "surge produced {} requests", out.report.total_sent);
}
