//! End-to-end load-generation tests: a real `PsdServer` + HTTP
//! front-end on a loopback socket, driven by the `psd-loadgen`
//! generator, with the achieved slowdown ratio checked against the
//! configured δ's — the loop the paper only closes in simulation.

use std::time::Duration;

use psd::loadgen::scenario::ArrivalSpec;
use psd::loadgen::{harness, LoadMode, LogHistogram, Scenario};

/// A shortened `steady` run: class-1/class-0 slowdown ratio must land
/// in a band around δ1/δ0 = 2, every request must succeed, and the
/// JSON report schema must hold together.
///
/// The band is wide because a few seconds of measurement over a
/// heavy-tailed workload on a shared CI core carries real estimator
/// variance (the 20-second default run lands within ~20% of target);
/// what the band *must* catch is a dead controller (ratio ≈ 1), an
/// inverted allocation (ratio < 1), or runaway starvation.
#[test]
fn steady_slowdown_ratio_tracks_deltas() {
    let mut scenario = Scenario::by_name("steady").expect("stock scenario");
    scenario.duration = Duration::from_secs(7);
    scenario.warmup = Duration::from_secs(2);
    scenario.connections = 32;

    let out = harness::run_scenario(&scenario).expect("harness run");
    let report = &out.report;

    assert_eq!(report.total_errors, 0, "non-2xx or transport errors:\n{}", report.to_markdown());
    assert_eq!(report.dead_workers, 0);
    assert!(report.total_sent > 4_000, "sent only {} requests", report.total_sent);
    for c in &report.classes {
        assert!(c.measured > 500, "class {} measured only {} responses", c.class, c.measured);
        assert!(c.latency.p50_ms > 0.0 && c.latency.p999_ms >= c.latency.p50_ms);
    }

    let target = scenario.deltas[1] / scenario.deltas[0];
    let ratio = report.classes[1]
        .slowdown_ratio_vs_class0
        .expect("both classes completed requests, so the ratio exists");
    assert!(
        (0.55 * target..=1.8 * target).contains(&ratio),
        "achieved slowdown ratio {ratio:.2} outside the tolerance band of δ1/δ0 = {target}:\n{}",
        report.to_markdown()
    );

    // The JSON schema CI tracks stays exercised end to end.
    let json = report.to_json();
    for key in [
        "\"scenario\"",
        "\"deltas\"",
        "\"total_sent\"",
        "\"throughput_rps\"",
        "\"classes\"",
        "\"mean_slowdown\"",
        "\"slowdown_ratio_vs_class0\"",
        "\"target_ratio_vs_class0\"",
        "\"p99_ms\"",
        "\"p999_ms\"",
    ] {
        assert!(json.contains(key), "JSON report lost the {key} field:\n{json}");
    }
    assert!(report.to_markdown().contains("| 1 | 2 |"), "markdown table row per class");

    // Client-side accounting agrees with the server's own books.
    let server_total: u64 = out.server_stats.classes.iter().map(|c| c.completed).sum();
    assert_eq!(server_total, report.total_sent, "server completed exactly what was sent");
}

/// Golden merge/percentile test for the log-bucketed histogram: two
/// shards merged must report the same percentiles as one histogram fed
/// everything, and known quantiles of a fixed dataset must come out
/// within the bucket resolution.
#[test]
fn histogram_merge_percentile_golden() {
    // 1..=100_000 in two interleaved shards.
    let mut all = LogHistogram::new();
    let mut shard_a = LogHistogram::new();
    let mut shard_b = LogHistogram::new();
    for v in 1..=100_000u64 {
        all.record(v);
        if v % 2 == 0 {
            shard_a.record(v);
        } else {
            shard_b.record(v);
        }
    }
    shard_a.merge(&shard_b);
    assert_eq!(shard_a.count(), all.count());

    // Golden quantiles of the uniform ramp, within the ~3% bucket width.
    for (q, want) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
        let merged = shard_a.value_at_quantile(q).unwrap() as f64;
        let direct = all.value_at_quantile(q).unwrap() as f64;
        assert_eq!(merged, direct, "merge must not move the q={q} percentile");
        let err = (merged - want).abs() / want;
        assert!(err < 0.04, "q={q}: got {merged}, want {want} (err {err:.3})");
    }
    assert_eq!(shard_a.min(), 1);
    assert_eq!(shard_a.max(), 100_000);
    assert!((shard_a.mean() - 50_000.5).abs() < 1e-6);
}

/// The closed-loop mode drives sessions with think times end to end and
/// drains cleanly.
#[test]
fn closed_loop_sessions_run_clean() {
    let mut scenario = Scenario::by_name("closed").expect("stock scenario");
    scenario.duration = Duration::from_millis(1500);
    scenario.warmup = Duration::from_millis(300);
    scenario.mode = LoadMode::Closed { sessions: 8, mean_think: Duration::from_millis(4) };

    let out = harness::run_scenario(&scenario).expect("harness run");
    assert_eq!(out.report.total_errors, 0);
    assert_eq!(out.report.mode, "closed");
    assert!(out.report.total_sent > 100, "sessions produced {} requests", out.report.total_sent);
}

/// A flash-crowd schedule built from the piecewise arrival spec runs
/// end to end (shortened), exercising the surge path.
#[test]
fn flashcrowd_surge_runs_clean() {
    let mut scenario = Scenario::by_name("flashcrowd").expect("stock scenario");
    scenario.duration = Duration::from_millis(2400);
    scenario.warmup = Duration::from_millis(400);
    scenario.connections = 16;
    if let LoadMode::Open { arrival } = &mut scenario.mode {
        *arrival = ArrivalSpec::FlashCrowd {
            base_rate: 150.0,
            peak_rate: 450.0,
            from_frac: 1.0 / 3.0,
            to_frac: 2.0 / 3.0,
        };
    }
    let out = harness::run_scenario(&scenario).expect("harness run");
    assert_eq!(out.report.total_errors, 0);
    assert!(out.report.total_sent > 300, "surge produced {} requests", out.report.total_sent);
}
