//! PSD beyond the Bounded Pareto: the model and allocator apply to any
//! service distribution with finite `E[1/X]` — log-normal fits of Web
//! traces and empirical trace replay included. (And they must keep
//! *refusing* distributions where the slowdown has no closed form.)

use psd::core::config::{ClassConfig, PsdConfig};
use psd::core::experiment::Experiment;
use psd::dist::{fit, BoundedPareto, Empirical, LogNormal, ServiceDist, ServiceDistribution};

fn two_class_cfg(service: ServiceDist, load: f64) -> PsdConfig {
    let per = load / 2.0;
    PsdConfig::new(
        vec![ClassConfig { delta: 1.0, load: per }, ClassConfig { delta: 2.0, load: per }],
        service,
    )
    .with_horizon(30_000.0, 4_000.0)
}

/// Log-normal service: Eq. 18 exists and the simulation tracks it.
#[test]
fn lognormal_psd_end_to_end() {
    let ln = LogNormal::with_mean_scv(0.3, 4.0).unwrap();
    let cfg = two_class_cfg(ServiceDist::LogNormal(ln), 0.6);
    let exp = cfg.expected_slowdowns().expect("log-normal has finite E[1/X]");
    assert!((exp[1] / exp[0] - 2.0).abs() < 1e-9);
    let rep = Experiment::new(cfg).runs(12).base_seed(900).run();
    let sim = rep.mean_slowdowns();
    for i in 0..2 {
        let rel = (sim[i] - exp[i]).abs() / exp[i];
        assert!(rel < 0.35, "class {i}: sim {} vs exp {} (rel {rel:.2})", sim[i], exp[i]);
    }
    assert!(sim[1] > sim[0]);
}

/// Trace replay: fit nothing — resample an observed BP trace through
/// [`Empirical`] and the PSD pipeline still differentiates, with the
/// model fed by the trace's own sample moments.
#[test]
fn empirical_trace_replay() {
    use psd::dist::rng::Xoshiro256pp;
    let bp = BoundedPareto::paper_default();
    let mut rng = Xoshiro256pp::seed_from(123);
    let trace: Vec<f64> = (0..100_000).map(|_| bp.sample(&mut rng)).collect();
    let emp = Empirical::from_trace(&trace).unwrap();

    let cfg = two_class_cfg(ServiceDist::Empirical(emp), 0.6);
    let exp = cfg.expected_slowdowns().expect("sample moments are finite");
    assert!((exp[1] / exp[0] - 2.0).abs() < 1e-9);

    let rep = Experiment::new(cfg).runs(10).base_seed(901).run();
    let sim = rep.mean_slowdowns();
    assert!(sim[1] > 1.2 * sim[0], "replayed trace must still differentiate: {sim:?}");
}

/// The characterization pipeline: sample a workload, fit α by MLE, and
/// verify the *fitted* model's slowdown predictions agree with the true
/// model within the fit error.
#[test]
fn fit_then_predict() {
    use psd::dist::rng::Xoshiro256pp;
    use psd::queueing::Mg1Fcfs;
    let truth = BoundedPareto::paper_default();
    let mut rng = Xoshiro256pp::seed_from(55);
    let trace: Vec<f64> = (0..60_000).map(|_| truth.sample(&mut rng)).collect();
    let fitted = fit::fit_bounded_pareto_alpha(&trace, 0.1, 100.0).unwrap();

    let load = 0.6;
    let s_true =
        Mg1Fcfs::new(load / truth.mean(), truth.moments()).unwrap().expected_slowdown().unwrap();
    let s_fit =
        Mg1Fcfs::new(load / fitted.mean(), fitted.moments()).unwrap().expected_slowdown().unwrap();
    let rel = (s_true - s_fit).abs() / s_true;
    assert!(rel < 0.15, "fitted-model slowdown {s_fit} vs true {s_true} (rel {rel:.3})");
}

/// Exponential and H2 service are rejected through the whole facade.
#[test]
fn divergent_workloads_rejected_at_config_level() {
    use psd::dist::{Exponential, HyperExponential};
    for service in [
        ServiceDist::Exponential(Exponential::new(1.0).unwrap()),
        ServiceDist::HyperExponential(HyperExponential::h2_balanced(1.0, 4.0).unwrap()),
    ] {
        let cfg = two_class_cfg(service, 0.5);
        assert!(cfg.expected_slowdowns().is_err(), "no closed form must be reported");
    }
}
