//! Golden-value validation of the statistical foundation (`psd-dist`):
//! closed-form moments are checked against independently written
//! formulas *and* against Monte-Carlo sample moments, and the seeding
//! discipline (`SplitMix64::derive` + `Xoshiro256pp`) is shown to make
//! whole multi-threaded experiments bit-reproducible.

use psd::core::config::PsdConfig;
use psd::core::experiment::Experiment;
use psd::dist::rng::{SplitMix64, Xoshiro256pp};
use psd::dist::{BoundedPareto, HigherMoments, LogNormal, ServiceDistribution};

/// Bounded Pareto closed forms, written out once more by hand:
/// `E[X^j] = α k^α (p^{j−α} − k^{j−α}) / ((j−α)(1 − (k/p)^α))`.
fn bp_raw_moment(alpha: f64, k: f64, p: f64, j: f64) -> f64 {
    let c = alpha * k.powf(alpha) / (1.0 - (k / p).powf(alpha));
    c * (p.powf(j - alpha) - k.powf(j - alpha)) / (j - alpha)
}

/// The acceptance bar: `BoundedPareto::paper_default()` moments match
/// the analytic Bounded-Pareto formulas to ≤ 1e-9 relative error.
#[test]
fn bounded_pareto_paper_default_closed_forms_exact() {
    let bp = BoundedPareto::paper_default();
    let m = bp.moments();
    let (a, k, p) = (1.5, 0.1, 100.0);
    for (got, want, label) in [
        (m.mean, bp_raw_moment(a, k, p, 1.0), "E[X]"),
        (m.second_moment, bp_raw_moment(a, k, p, 2.0), "E[X^2]"),
        (m.mean_inverse.unwrap(), bp_raw_moment(a, k, p, -1.0), "E[1/X]"),
        (bp.third_moment().unwrap(), bp_raw_moment(a, k, p, 3.0), "E[X^3]"),
        (bp.mean_inverse_square().unwrap(), bp_raw_moment(a, k, p, -2.0), "E[1/X^2]"),
    ] {
        let rel = (got - want).abs() / want.abs();
        assert!(rel <= 1e-9, "{label}: got {got}, want {want} (rel {rel:e})");
    }
}

/// Monte-Carlo cross-check of the Bounded Pareto analytics. `E[X]` and
/// especially `E[1/X]` (bounded by `1/k`) concentrate quickly; `E[X²]`
/// of a heavy tail converges slowly, so it gets a looser band.
#[test]
fn bounded_pareto_monte_carlo_matches_analytics() {
    let bp = BoundedPareto::paper_default();
    let m = bp.moments();
    let mut rng = Xoshiro256pp::seed_from(0xB0A7);
    let n = 1_000_000u64;
    let (mut s1, mut s2, mut sinv) = (0.0, 0.0, 0.0);
    for _ in 0..n {
        let x = bp.sample(&mut rng);
        s1 += x;
        s2 += x * x;
        sinv += 1.0 / x;
    }
    let nf = n as f64;
    assert!((s1 / nf - m.mean).abs() / m.mean < 0.01, "E[X]: {} vs {}", s1 / nf, m.mean);
    assert!(
        (sinv / nf - m.mean_inverse.unwrap()).abs() / m.mean_inverse.unwrap() < 0.005,
        "E[1/X]: {} vs {}",
        sinv / nf,
        m.mean_inverse.unwrap()
    );
    assert!(
        (s2 / nf - m.second_moment).abs() / m.second_moment < 0.15,
        "E[X^2]: {} vs {}",
        s2 / nf,
        m.second_moment
    );
}

/// Log-normal analytic moments against Monte-Carlo sample moments.
#[test]
fn lognormal_monte_carlo_matches_analytics() {
    let ln = LogNormal::with_mean_scv(0.3, 4.0).unwrap();
    let m = ln.moments();
    // Analytic sanity first: E[1/X] = (1 + SCV)/E[X] for this
    // parameterization.
    assert!((m.mean_inverse.unwrap() - 5.0 / 0.3).abs() / (5.0 / 0.3) < 1e-9);
    assert!((m.second_moment - 0.3 * 0.3 * 5.0).abs() / (0.45) < 1e-9);

    let mut rng = Xoshiro256pp::seed_from(0x109A);
    let n = 1_000_000u64;
    let (mut s1, mut s2, mut sinv) = (0.0, 0.0, 0.0);
    for _ in 0..n {
        let x = ln.sample(&mut rng);
        s1 += x;
        s2 += x * x;
        sinv += 1.0 / x;
    }
    let nf = n as f64;
    assert!((s1 / nf - m.mean).abs() / m.mean < 0.01);
    assert!((s2 / nf - m.second_moment).abs() / m.second_moment < 0.05);
    assert!((sinv / nf - m.mean_inverse.unwrap()).abs() / m.mean_inverse.unwrap() < 0.01);
}

/// The determinism contract end to end: the same experiment run twice
/// across *different thread counts* produces bit-identical reports,
/// because every run's stream is `SplitMix64::derive(base_seed, run)`
/// and sampling consumes only that stream.
#[test]
fn experiment_reports_bit_identical_across_threaded_runs() {
    let mk = |threads: usize| {
        let cfg = PsdConfig::equal_load(&[1.0, 2.0], 0.6).with_horizon(8_000.0, 1_000.0);
        Experiment::new(cfg).runs(6).base_seed(2024).threads(threads).run()
    };
    let sequential = mk(1);
    for threads in [2, 4, 6] {
        let parallel = mk(threads);
        for (a, b) in sequential.runs.iter().zip(&parallel.runs) {
            assert_eq!(a, b, "run reports must be bit-identical at {threads} threads");
        }
        assert_eq!(sequential.mean_slowdowns(), parallel.mean_slowdowns());
    }
    // And repeating the whole thing reproduces it again.
    let again = mk(4);
    assert_eq!(sequential.runs, again.runs);
}

/// `SplitMix64::derive` child seeds feed unrelated `Xoshiro256pp`
/// streams: same inputs reproduce, different stream indices decorrelate.
#[test]
fn derive_seed_streams_reproduce_and_separate() {
    let base = 0xFEED_FACE;
    let draw = |stream: u64| -> Vec<f64> {
        let mut r = Xoshiro256pp::seed_from(SplitMix64::derive(base, stream));
        (0..64).map(|_| r.next_f64()).collect()
    };
    assert_eq!(draw(1), draw(1), "same (seed, stream) reproduces bit-for-bit");
    let (a, b) = (draw(1), draw(2));
    assert_ne!(a, b, "different streams must differ");
    let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
    assert_eq!(agree, 0, "streams should share no outputs");
}
