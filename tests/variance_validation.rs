//! Validation of the second-moment analysis (`psd_queueing::variance`)
//! against simulation: the Takács-based slowdown variance must match
//! the empirical per-request slowdown variance of a simulated M/D/1
//! queue (deterministic service keeps the estimator well-behaved), and
//! the Cantelli bound must actually bound the tail.

use psd::desim::{ArrivalSpec, ClassSpec, SimConfig, Simulation, StaticRates};
use psd::dist::{Deterministic, HigherMoments, ServiceDist, ServiceDistribution};
use psd::queueing::variance::{cantelli_upper_bound, slowdown_variance_of};
use psd::queueing::Mg1Fcfs;

/// Collect per-request slowdowns of a single-class M/D/1 run.
fn simulate_slowdowns(lambda: f64, d: f64, seed: u64, end: f64) -> Vec<f64> {
    let cfg = SimConfig {
        classes: vec![ClassSpec {
            arrival: ArrivalSpec::Poisson { rate: lambda },
            service: ServiceDist::Deterministic(Deterministic::new(d).unwrap()),
        }],
        end_time: end,
        warmup: end * 0.1,
        control_period: 1000.0,
        seed,
        trace_range: Some((end * 0.1, end)),
        ..SimConfig::default()
    };
    let out = Simulation::new(cfg, Box::new(StaticRates::new(vec![1.0]))).run();
    out.trace.iter().map(|t| t.slowdown).collect()
}

#[test]
fn md1_slowdown_variance_matches_takacs() {
    let det = Deterministic::new(1.0).unwrap();
    let lambda = 0.6;
    let predicted_var = slowdown_variance_of(lambda, &det).unwrap();
    let predicted_mean = Mg1Fcfs::new(lambda, det.moments()).unwrap().expected_slowdown().unwrap();

    // Pool several runs for a stable empirical variance.
    let mut all: Vec<f64> = Vec::new();
    for seed in 0..6 {
        all.extend(simulate_slowdowns(lambda, 1.0, 4000 + seed, 60_000.0));
    }
    let n = all.len() as f64;
    let mean = all.iter().sum::<f64>() / n;
    let var = all.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;

    let mean_rel = (mean - predicted_mean).abs() / predicted_mean;
    assert!(mean_rel < 0.05, "mean slowdown: sim {mean} vs theory {predicted_mean}");
    let var_rel = (var - predicted_var).abs() / predicted_var;
    assert!(var_rel < 0.10, "slowdown variance: sim {var} vs Takács {predicted_var}");
}

#[test]
fn cantelli_bound_holds_empirically() {
    let det = Deterministic::new(1.0).unwrap();
    let lambda = 0.5;
    let mean = Mg1Fcfs::new(lambda, det.moments()).unwrap().expected_slowdown().unwrap();
    let var = slowdown_variance_of(lambda, &det).unwrap();
    let bound_5pct = cantelli_upper_bound(mean, var, 0.05);

    let mut all: Vec<f64> = Vec::new();
    for seed in 0..4 {
        all.extend(simulate_slowdowns(lambda, 1.0, 7000 + seed, 40_000.0));
    }
    let above = all.iter().filter(|&&s| s >= bound_5pct).count() as f64 / all.len() as f64;
    assert!(
        above <= 0.05 + 0.01,
        "Cantelli promises P(S >= {bound_5pct:.2}) <= 5%, measured {:.1}%",
        above * 100.0
    );
}

#[test]
fn bp_variance_orders_of_magnitude() {
    // The Bounded Pareto's slowdown variance dwarfs the deterministic
    // one at equal load — the quantitative root of the Fig 5/6 spread.
    let bp = psd::dist::BoundedPareto::paper_default();
    let det = Deterministic::new(bp.mean()).unwrap();
    let load = 0.6;
    let v_bp = slowdown_variance_of(load / bp.mean(), &bp).unwrap();
    let v_det = slowdown_variance_of(load / det.value(), &det).unwrap();
    assert!(v_bp > 50.0 * v_det, "heavy tail must dominate: BP {v_bp:.1} vs D {v_det:.3}");
    // Sanity on the trait plumbing used above.
    assert!(bp.third_moment().is_some());
}
