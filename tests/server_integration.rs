//! Integration tests of the threaded server substrate: differentiation
//! on real threads and the HTTP-lite front-end over a loopback socket.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use psd::dist::{Deterministic, ServiceDist};
use psd::server::driver::{drive, ClassTraffic};
use psd::server::{httplite, PsdServer, SchedulerKind, ServerConfig, Workload};

fn server_cfg(deltas: Vec<f64>) -> ServerConfig {
    ServerConfig { deltas, work_unit: Duration::from_micros(150), ..ServerConfig::default() }
}

/// Under high symmetric traffic, the lower class must experience
/// clearly higher slowdown than the premium class.
///
/// Uses the spin workload: `thread::sleep` overshoots short durations
/// by ~1 ms on Linux, which would silently overload the server and
/// erase the differentiation (both classes then saturate equally).
#[test]
fn threaded_server_differentiates() {
    let mut cfg = server_cfg(vec![1.0, 4.0]);
    cfg.work_unit = Duration::from_micros(200);
    cfg.workload = Workload::Spin;
    let server = Arc::new(PsdServer::start(cfg));
    let det = ServiceDist::Deterministic(Deterministic::new(1.0).unwrap());
    // One worker at 200µs per unit ⇒ capacity 5 000 units/s; drive
    // ≈ 75% load split evenly.
    let rate = 5_000.0 * 0.75 / 2.0;
    drive(
        &server,
        &[
            ClassTraffic { rate_per_s: rate, cost: det.clone() },
            ClassTraffic { rate_per_s: rate, cost: det },
        ],
        Duration::from_secs(2),
        99,
    );
    let stats = Arc::try_unwrap(server).ok().expect("drivers joined").shutdown();
    let s0 = stats.classes[0].mean_slowdown;
    let s1 = stats.classes[1].mean_slowdown;
    assert!(stats.classes[0].completed > 500);
    assert!(stats.classes[1].completed > 500);
    assert!(s1 > 1.3 * s0, "δ = (1,4) must separate the classes: premium {s0:.2}, basic {s1:.2}");
}

/// The HTTP front-end classifies, executes and reports timings.
#[test]
fn httplite_roundtrip() {
    let server = Arc::new(PsdServer::start(server_cfg(vec![1.0, 2.0])));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || httplite::serve(listener, server, 1.0, stop))
    };

    let fetch = |path: &str, header: Option<&str>| -> (String, Vec<String>) {
        let mut s = TcpStream::connect(addr).expect("connect");
        let h = header.map(|h| format!("X-Class: {h}\r\n")).unwrap_or_default();
        write!(s, "GET {path} HTTP/1.0\r\n{h}\r\n").unwrap();
        let mut reader = BufReader::new(s);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim().is_empty() {
                break;
            }
            headers.push(line.trim().to_string());
        }
        (status.trim().to_string(), headers)
    };

    let (status, headers) = fetch("/class0/index.html?cost=2", None);
    assert!(status.contains("200"), "status: {status}");
    assert!(headers.iter().any(|h| h == "X-Class: 0"), "headers: {headers:?}");

    let (status, headers) = fetch("/whatever", Some("1"));
    assert!(status.contains("200"));
    assert!(headers.iter().any(|h| h == "X-Class: 1"), "X-Class header wins: {headers:?}");

    let (status, headers) = fetch("/unknown/path", None);
    assert!(status.contains("200"));
    // Default class is the last one (1 here).
    assert!(headers.iter().any(|h| h == "X-Class: 1"), "{headers:?}");

    stop.store(true, Ordering::SeqCst);
    accept_thread.join().unwrap().expect("accept loop clean exit");
    Arc::try_unwrap(server).ok().expect("handlers done").shutdown();
}

/// All four scheduler kernels keep the server functional end to end.
#[test]
fn all_kernels_complete_work() {
    for kind in [
        SchedulerKind::Wfq,
        SchedulerKind::Stride,
        SchedulerKind::Drr(2.0),
        SchedulerKind::Lottery(3),
        SchedulerKind::RatePartition,
    ] {
        let mut cfg = server_cfg(vec![1.0, 2.0]);
        cfg.scheduler = kind;
        let server = PsdServer::start(cfg);
        for i in 0..60 {
            assert!(server.submit(i % 2, 0.5));
        }
        let stats = server.shutdown();
        let done: u64 = stats.classes.iter().map(|c| c.completed).sum();
        assert_eq!(done, 60, "{kind:?} lost work");
    }
}
