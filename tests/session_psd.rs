//! Closed-loop sessions × heterogeneous PSD: the integration path used
//! by `examples/session_store.rs`, pinned down as a test.

use psd::core::controller::{ControllerParams, HeterogeneousPsdController};
use psd::desim::session::{run_sessions, SessionConfig, SessionState};
use psd::desim::StaticRates;
use psd::dist::{Deterministic, ServiceDist, ServiceDistribution};

/// Two-state store: state 0 = browse (class 1, δ=2), state 1 = checkout
/// (class 0, δ=1), with different deterministic service times.
fn store(n_users: usize, seed: u64) -> SessionConfig {
    SessionConfig {
        states: vec![
            SessionState {
                class: 1,
                service: ServiceDist::Deterministic(Deterministic::new(0.5).unwrap()),
                mean_think: 20.0,
                next: vec![0.7, 0.3],
            },
            SessionState {
                class: 0,
                service: ServiceDist::Deterministic(Deterministic::new(1.5).unwrap()),
                mean_think: 10.0,
                next: vec![1.0, 0.0],
            },
        ],
        initial_state: 0,
        n_classes: 2,
        n_users,
        end_time: 40_000.0,
        warmup: 4_000.0,
        control_period: 500.0,
        seed,
    }
}

fn controller() -> HeterogeneousPsdController {
    HeterogeneousPsdController::new(
        vec![1.0, 2.0],
        vec![
            Deterministic::new(1.5).unwrap().moments(), // checkout class
            Deterministic::new(0.5).unwrap().moments(), // browse class
        ],
        ControllerParams::default(),
    )
}

/// The heterogeneous controller holds the δ ordering on closed-loop
/// traffic with per-class service distributions, where the even split
/// fails badly.
#[test]
fn heterogeneous_psd_orders_session_classes() {
    let (mut psd0, mut psd1, mut even0, mut even1) = (0.0, 0.0, 0.0, 0.0);
    let runs = 6;
    for seed in 0..runs {
        let out = run_sessions(store(55, seed), Box::new(controller()));
        psd0 += out.mean_slowdown(0).expect("checkout departures");
        psd1 += out.mean_slowdown(1).expect("browse departures");
        let out = run_sessions(store(55, seed), Box::new(StaticRates::even(2)));
        even0 += out.mean_slowdown(0).unwrap_or(0.0);
        even1 += out.mean_slowdown(1).unwrap_or(0.0);
    }
    let psd_ratio = psd1 / psd0;
    // Premium (checkout, δ=1) must be the faster class under PSD...
    assert!(psd_ratio > 1.0, "PSD must order the classes, ratio {psd_ratio}");
    // ...within a sane band of the target 2 given the closed loop.
    assert!((0.8..6.0).contains(&psd_ratio), "PSD ratio {psd_ratio} wildly off target 2");
    // The even split inverts or distorts the ordering at this mix:
    // checkout's jobs are 3x larger, so with equal rates its slowdown
    // is *not* held below browse's in the proportional sense.
    let even_ratio = even1 / even0.max(1e-12);
    assert!(
        (psd_ratio - 2.0).abs() < (even_ratio - 2.0).abs() + 0.5,
        "PSD ({psd_ratio:.2}) must sit closer to target 2 than even split ({even_ratio:.2})"
    );
}

/// Determinism of the whole closed-loop path.
#[test]
fn session_psd_deterministic() {
    let a = run_sessions(store(30, 9), Box::new(controller()));
    let b = run_sessions(store(30, 9), Box::new(controller()));
    assert_eq!(a.per_class[0].completed, b.per_class[0].completed);
    assert_eq!(a.mean_slowdown(0), b.mean_slowdown(0));
    assert_eq!(a.rate_history, b.rate_history);
}

/// The controller's rate history responds to the session mix: checkout
/// (bigger jobs) must end up with more than the even share despite its
/// lower arrival count.
#[test]
fn rates_reflect_work_not_just_arrivals() {
    let out = run_sessions(store(55, 3), Box::new(controller()));
    // Average class-0 rate over the second half of the run.
    let later: Vec<&(f64, Vec<f64>)> =
        out.rate_history.iter().filter(|(t, _)| *t > 20_000.0).collect();
    assert!(!later.is_empty());
    let mean_r0 = later.iter().map(|(_, r)| r[0]).sum::<f64>() / later.len() as f64;
    assert!(mean_r0 > 0.35, "checkout's 3x-larger jobs need a large share, got {mean_r0:.3}");
}
