//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`)
//! with a simple wall-clock timer: each benchmark body runs a small,
//! bounded number of iterations and the mean time is printed. There is
//! no statistics engine; the point is that `cargo bench` exercises
//! every bench path deterministically and cheaply, offline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Target number of timed iterations per benchmark (kept small: the
/// harness favours coverage over statistical precision).
const DEFAULT_SAMPLES: usize = 10;

/// The benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { samples: DEFAULT_SAMPLES }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: self.samples, _parent: self }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.samples, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut |b| f(b, input));
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier made of a function name and a parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self { text: format!("{name}/{parameter}") }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { text: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Handed to each benchmark body; `iter` times the closure.
pub struct Bencher {
    samples: usize,
    last_mean_ns: f64,
}

impl Bencher {
    /// Time `f` over this bencher's sample budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, last_mean_ns: 0.0 };
    f(&mut b);
    let mean = b.last_mean_ns;
    let (value, unit) = if mean >= 1e9 {
        (mean / 1e9, "s")
    } else if mean >= 1e6 {
        (mean / 1e6, "ms")
    } else if mean >= 1e3 {
        (mean / 1e3, "us")
    } else {
        (mean, "ns")
    };
    println!("bench {label:<60} {value:>10.2} {unit}/iter ({samples} samples)");
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
