//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro, `prop_assert*` / `prop_assume!`,
//! range and tuple strategies, `prop_map` / `prop_flat_map`,
//! `prop_oneof!` (optionally weighted), `Just`, `any::<T>()` and
//! `proptest::collection::vec`. Cases are generated from a
//! deterministic per-test seed (derived from the test's module path and
//! name), so failures are reproducible; there is **no shrinking** — a
//! failing case panics with the generated inputs' assertion message.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Runner configuration, RNG and error types.

    use std::fmt;

    /// Per-test configuration (subset of proptest's `Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 48 }
        }
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// The case was rejected by `prop_assume!`; it is retried.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A rejected (filtered-out) case.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Result of one test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic splitmix64 generator seeding each test run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test's fully-qualified name.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            // Multiply-shift bounded sampling; bias is negligible for
            // test-data purposes.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128).max(1) as u64;
                    (self.start as i128 + rng.next_below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    );

    /// Weighted choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` arms.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! needs positive total weight");
            Self { arms, total_weight }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.next_below(self.total_weight);
            for (w, s) in &self.arms {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            self.arms.last().expect("non-empty").1.generate(rng)
        }
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification accepted by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.next_below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert inside a proptest body; on failure the current case returns a
/// [`test_runner::TestCaseError::Fail`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    // `if cond {} else { .. }` rather than `if !cond` so conditions like
    // `a > b` on floats don't trip clippy::neg_cmp_op_on_partial_ord at
    // every expansion site.
    ($cond:expr, $($fmt:tt)*) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Reject the current case (it is regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Choose among strategies producing the same type, optionally weighted
/// (`prop_oneof![3 => a, 2 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Define property tests: each `fn` runs its body against many
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(200);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: too many rejected cases ({} passed of {} wanted)",
                    passed,
                    config.cases
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", passed + 1, msg)
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 1.5f64..2.5, n in 3usize..7) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn maps_and_tuples((a, b) in (0.0f64..1.0, 1.0f64..2.0).prop_map(|(x, y)| (x, x + y))) {
            prop_assert!(b > a);
        }

        #[test]
        fn vectors_sized(v in collection::vec(0u64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![2 => Just(1u32), 1 => Just(2u32)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn assume_filters(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn flat_map_links(len in 1usize..4, v in (1usize..4).prop_flat_map(|n| collection::vec(0u64..5, n))) {
            let _ = len;
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x::y");
        let mut b = crate::test_runner::TestRng::from_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
