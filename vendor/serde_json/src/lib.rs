//! Minimal offline stand-in for `serde_json`: `to_string` and
//! `to_string_pretty` over the vendored `serde` shim's JSON-direct
//! `Serialize` trait.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

/// Serialization error. The shim's serializer is total, so this is
/// never produced; it exists to keep call-site signatures identical to
/// the real crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialize `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Re-indent compact JSON produced by the shim serializer.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(close);
                    chars.next();
                } else {
                    indent += 1;
                    push_newline(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                push_newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                push_newline(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

fn push_newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_passthrough() {
        assert_eq!(to_string(&vec![1u64, 2]).unwrap(), "[1,2]");
    }

    #[test]
    fn pretty_indents() {
        let p = to_string_pretty(&vec![1u64, 2]).unwrap();
        assert_eq!(p, "[\n  1,\n  2\n]");
    }

    #[test]
    fn pretty_keeps_empty_and_strings() {
        let p = prettify("{\"a\":[],\"b\":\"x{,}y\"}");
        assert!(p.contains("\"a\": []"));
        assert!(p.contains("\"x{,}y\""));
    }
}
