//! Minimal offline stand-in for the `crossbeam` crate: just the
//! bounded MPSC channel surface this workspace uses, implemented over
//! `std::sync::mpsc`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self { inner: self.inner.clone() }
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// The channel is disconnected; the unsent message is returned.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// A timed receive gave up: the channel stayed empty for the whole
    /// timeout, or it is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender is gone and the buffer is empty.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(match self {
                RecvTimeoutError::Timeout => "timed out waiting on an empty channel",
                RecvTimeoutError::Disconnected => "channel is empty and disconnected",
            })
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Create a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued (or the channel closes).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives (or every sender is dropped).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Receive without blocking, if a message is ready.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.inner.try_recv().map_err(|_| RecvError)
        }

        /// Block until a message arrives, every sender is dropped, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = bounded(1);
            tx.send(41).unwrap();
            assert_eq!(rx.recv(), Ok(41));
        }

        #[test]
        fn disconnected_recv_errors() {
            let (tx, rx) = bounded::<u8>(1);
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn disconnected_send_errors() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
