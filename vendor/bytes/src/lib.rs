//! Minimal offline stand-in for the `bytes` crate: an owned,
//! cheaply-clonable byte buffer with the small part of the real API
//! this workspace uses.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::new(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::from(s.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Self::from(s.as_bytes().to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let b = Bytes::from(String::from("hello"));
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
        assert!(!b.is_empty());
        let c = b.clone();
        assert_eq!(b, c);
    }
}
