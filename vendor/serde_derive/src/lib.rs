//! Minimal offline stand-in for `serde_derive`.
//!
//! Supports `#[derive(Serialize)]` on non-generic structs with named
//! fields — the only shape this workspace serializes. The generated
//! impl targets the vendored `serde` shim's JSON-direct `Serialize`
//! trait.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the vendored `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut name: Option<String> = None;
    let mut fields_group = None;

    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                let TokenTree::Ident(n) = &tokens[i + 1] else {
                    panic!("serde shim: expected struct name");
                };
                name = Some(n.to_string());
                // The next brace group is the field list (no generics or
                // where-clauses are used by this workspace's types).
                for t in &tokens[i + 2..] {
                    match t {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            fields_group = Some(g.stream());
                            break;
                        }
                        TokenTree::Punct(p) if p.as_char() == '<' => {
                            panic!("serde shim: generic structs are not supported")
                        }
                        _ => {}
                    }
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                panic!("serde shim: only structs with named fields are supported")
            }
            _ => {}
        }
        i += 1;
    }

    let name = name.expect("serde shim: no struct found in derive input");
    let fields_group = fields_group.expect("serde shim: struct has no named-field body");
    let fields = parse_field_names(fields_group);

    let mut body = String::new();
    body.push_str("out.push('{');\n");
    for (idx, field) in fields.iter().enumerate() {
        if idx > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!(
            "::serde::write_json_key(out, \"{field}\");\n\
             ::serde::Serialize::serialize_json(&self.{field}, out);\n"
        ));
    }
    body.push_str("out.push('}');");

    let impl_src = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n\
         }}"
    );
    impl_src.parse().expect("serde shim: generated impl parses")
}

/// Extract field identifiers from the brace-group token stream of a
/// named-field struct, skipping attributes and visibility modifiers and
/// tracking angle-bracket depth so commas inside generic types don't
/// split fields.
fn parse_field_names(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut expecting_name = true;
    let mut angle_depth: i32 = 0;
    let mut tokens = stream.into_iter().peekable();
    while let Some(t) = tokens.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '#' && expecting_name => {
                // Attribute: swallow the following bracket group.
                let _ = tokens.next();
            }
            TokenTree::Ident(id) if expecting_name => {
                let s = id.to_string();
                if s == "pub" {
                    // Optional visibility scope like `pub(crate)`.
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = tokens.next();
                        }
                    }
                } else {
                    fields.push(s);
                    expecting_name = false;
                }
            }
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => expecting_name = true,
                _ => {}
            },
            _ => {}
        }
    }
    fields
}
