//! Raw `io_uring(7)` binding: `io_uring_setup`/`io_uring_enter`/
//! `io_uring_register` plus the mmap'd SQ/CQ rings, bound directly
//! against the kernel ABI (no liburing — the workspace is offline).
//!
//! The public surface is a *safe* engine API, because the server crate
//! is `#![forbid(unsafe_code)]`: [`UringEngine`] owns every byte the
//! kernel may touch. I/O buffers live in a slot arena inside the
//! engine — the fixed portion is registered once with
//! `IORING_REGISTER_BUFFERS` so reads/writes use `READ_FIXED`/
//! `WRITE_FIXED` with no per-op page mapping, and slots past the fixed
//! window fall back to plain `READ`/`WRITE` from engine-owned heap
//! boxes. Callers refer to buffers by slot index, submit ops tagged
//! with an opaque `u64` token, and get `(token, result, more)`
//! completions back from [`UringEngine::pop`]; the engine tracks which
//! slot half each in-flight op uses so a slot can never be reused or
//! freed while the kernel holds it.
//!
//! Capability probing: [`probe`] runs one full setup → NOP →
//! enter(GETEVENTS) round trip and caches the classified result, so a
//! seccomp'd container (`ENOSYS`/`EPERM`) downgrades to the epoll
//! reactor exactly once per process with a useful message.

use std::io;
use std::mem::size_of;
use std::net::TcpStream;
use std::os::raw::{c_int, c_long, c_uint, c_void};
use std::os::unix::io::{FromRawFd, RawFd};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use crate::count;

// ---------------------------------------------------------------------------
// Kernel ABI (uapi/linux/io_uring.h)
// ---------------------------------------------------------------------------

const SYS_IO_URING_SETUP: c_long = 425;
const SYS_IO_URING_ENTER: c_long = 426;
const SYS_IO_URING_REGISTER: c_long = 427;

const IORING_OFF_SQ_RING: i64 = 0;
const IORING_OFF_CQ_RING: i64 = 0x800_0000;
const IORING_OFF_SQES: i64 = 0x1000_0000;

const IORING_SETUP_CLAMP: u32 = 1 << 4;

const IORING_ENTER_GETEVENTS: c_uint = 1 << 0;
const IORING_ENTER_EXT_ARG: c_uint = 1 << 3;

const IORING_REGISTER_BUFFERS: c_uint = 0;

const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;
const IORING_FEAT_EXT_ARG: u32 = 1 << 8;

const IORING_OP_NOP: u8 = 0;
const IORING_OP_READ_FIXED: u8 = 4;
const IORING_OP_WRITE_FIXED: u8 = 5;
const IORING_OP_ACCEPT: u8 = 13;
const IORING_OP_ASYNC_CANCEL: u8 = 14;
const IORING_OP_READ: u8 = 22;
const IORING_OP_WRITE: u8 = 23;

/// `sqe.ioprio` bit requesting multishot accept (one SQE, a CQE per
/// connection until the kernel clears `IORING_CQE_F_MORE`).
const IORING_ACCEPT_MULTISHOT: u16 = 1 << 0;

const IORING_ASYNC_CANCEL_ALL: u32 = 1 << 0;
const IORING_ASYNC_CANCEL_FD: u32 = 1 << 1;
const IORING_ASYNC_CANCEL_ANY: u32 = 1 << 2;

/// CQE flag: more completions are coming from the same (multishot) SQE.
pub const CQE_F_MORE: u32 = 1 << 1;

const PROT_READ: c_int = 1;
const PROT_WRITE: c_int = 2;
const MAP_SHARED: c_int = 1;

/// `struct io_sqring_offsets`.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct SqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    flags: u32,
    dropped: u32,
    array: u32,
    resv1: u32,
    user_addr: u64,
}

/// `struct io_cqring_offsets`.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct CqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    overflow: u32,
    cqes: u32,
    flags: u32,
    resv1: u32,
    user_addr: u64,
}

/// `struct io_uring_params` (120 bytes).
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct IoUringParams {
    sq_entries: u32,
    cq_entries: u32,
    flags: u32,
    sq_thread_cpu: u32,
    sq_thread_idle: u32,
    features: u32,
    wq_fd: u32,
    resv: [u32; 3],
    sq_off: SqringOffsets,
    cq_off: CqringOffsets,
}

/// `struct io_uring_sqe` (64 bytes). The kernel's trailing unions are
/// flattened to the members this engine uses.
#[repr(C)]
#[derive(Clone, Copy)]
struct Sqe {
    opcode: u8,
    flags: u8,
    ioprio: u16,
    fd: i32,
    off: u64,
    addr: u64,
    len: u32,
    op_flags: u32,
    user_data: u64,
    buf_index: u16,
    personality: u16,
    splice_fd_in: i32,
    addr3: u64,
    pad2: u64,
}

impl Sqe {
    fn zeroed() -> Sqe {
        Sqe {
            opcode: 0,
            flags: 0,
            ioprio: 0,
            fd: -1,
            off: 0,
            addr: 0,
            len: 0,
            op_flags: 0,
            user_data: 0,
            buf_index: 0,
            personality: 0,
            splice_fd_in: 0,
            addr3: 0,
            pad2: 0,
        }
    }
}

/// `struct io_uring_cqe` (16 bytes).
#[repr(C)]
#[derive(Clone, Copy)]
struct RawCqe {
    user_data: u64,
    res: i32,
    flags: u32,
}

/// `struct __kernel_timespec`.
#[repr(C)]
#[derive(Clone, Copy)]
struct KernelTimespec {
    tv_sec: i64,
    tv_nsec: i64,
}

/// `struct io_uring_getevents_arg` for `IORING_ENTER_EXT_ARG` (24
/// bytes): lets one `io_uring_enter` carry a wait timeout.
#[repr(C)]
#[derive(Clone, Copy)]
struct GeteventsArg {
    sigmask: u64,
    sigmask_sz: u32,
    pad: u32,
    ts: u64,
}

/// `struct iovec` for `IORING_REGISTER_BUFFERS`.
#[repr(C)]
#[derive(Clone, Copy)]
struct IoVec {
    base: *mut c_void,
    len: usize,
}

extern "C" {
    fn syscall(num: c_long, ...) -> c_long;
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
    fn close(fd: c_int) -> c_int;
}

fn io_uring_setup(entries: u32, params: &mut IoUringParams) -> io::Result<RawFd> {
    count::bump();
    // SAFETY: `params` is a live, writable struct of the exact layout
    // the kernel expects (checked by the `abi_layout` tests); all
    // arguments are passed as the C `long`s the syscall ABI takes.
    let ret = unsafe {
        syscall(SYS_IO_URING_SETUP, entries as c_long, params as *mut IoUringParams as c_long)
    };
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret as RawFd)
    }
}

fn io_uring_enter(
    fd: RawFd,
    to_submit: u32,
    min_complete: u32,
    flags: c_uint,
    arg: *const c_void,
    argsz: usize,
) -> io::Result<u32> {
    count::bump();
    // SAFETY: `arg` is either null or a live `GeteventsArg` whose `ts`
    // points at a timespec that outlives the call; the fd is the ring
    // fd owned by the caller.
    let ret = unsafe {
        syscall(
            SYS_IO_URING_ENTER,
            fd as c_long,
            to_submit as c_long,
            min_complete as c_long,
            flags as c_long,
            arg as c_long,
            argsz as c_long,
        )
    };
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret as u32)
    }
}

fn io_uring_register(
    fd: RawFd,
    opcode: c_uint,
    arg: *const c_void,
    nr_args: u32,
) -> io::Result<()> {
    count::bump();
    // SAFETY: for IORING_REGISTER_BUFFERS `arg` is a live array of
    // `nr_args` iovecs describing memory owned by the engine for the
    // ring's whole lifetime (the kernel pins those pages).
    let ret = unsafe {
        syscall(
            SYS_IO_URING_REGISTER,
            fd as c_long,
            opcode as c_long,
            arg as c_long,
            nr_args as c_long,
        )
    };
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Mmap'd ring views
// ---------------------------------------------------------------------------

struct Mmap {
    ptr: *mut c_void,
    len: usize,
}

impl Mmap {
    fn map(fd: RawFd, len: usize, offset: i64) -> io::Result<Mmap> {
        count::bump();
        // SAFETY: plain shared file mapping of the ring fd at a
        // kernel-defined offset; a MAP_FAILED return is checked below.
        let ptr = unsafe {
            mmap(std::ptr::null_mut(), len, PROT_READ | PROT_WRITE, MAP_SHARED, fd, offset)
        };
        if ptr as isize == -1 {
            Err(io::Error::last_os_error())
        } else {
            Ok(Mmap { ptr, len })
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        count::bump();
        // SAFETY: `ptr`/`len` came from a successful mmap and are
        // unmapped exactly once; the kernel keeps its own mapping of
        // the ring pages, so CQE stores never touch our view again.
        unsafe { munmap(self.ptr, self.len) };
    }
}

/// The raw ring: fd, the three mappings, and cached pointers into them.
struct Ring {
    fd: RawFd,
    features: u32,
    // Keep mappings alive; field order is irrelevant because `Ring`'s
    // Drop closes the fd before the Mmaps unmap.
    _sq_map: Mmap,
    _cq_map: Option<Mmap>, // None when FEAT_SINGLE_MMAP shares sq_map
    _sqe_map: Mmap,
    sq_head: *const AtomicU32,
    sq_tail: *const AtomicU32,
    sq_mask: u32,
    sq_entries: u32,
    sqes: *mut Sqe,
    cq_head: *const AtomicU32,
    cq_tail: *const AtomicU32,
    cq_mask: u32,
    cqes: *const RawCqe,
}

// SAFETY: the pointers target the ring mmaps and SQE array owned by
// this struct; all mutation goes through `&mut` methods on the owning
// engine, so moving the struct across threads is sound.
unsafe impl Send for Ring {}

impl Ring {
    fn new(entries: u32) -> io::Result<Ring> {
        let mut p = IoUringParams { flags: IORING_SETUP_CLAMP, ..Default::default() };
        let fd = io_uring_setup(entries, &mut p)?;
        let build = (|| -> io::Result<Ring> {
            let sq_len = p.sq_off.array as usize + p.sq_entries as usize * size_of::<u32>();
            let cq_len = p.cq_off.cqes as usize + p.cq_entries as usize * size_of::<RawCqe>();
            let single = p.features & IORING_FEAT_SINGLE_MMAP != 0;
            let sq_map = Mmap::map(
                fd,
                if single { sq_len.max(cq_len) } else { sq_len },
                IORING_OFF_SQ_RING,
            )?;
            let cq_map =
                if single { None } else { Some(Mmap::map(fd, cq_len, IORING_OFF_CQ_RING)?) };
            let sqe_map = Mmap::map(fd, p.sq_entries as usize * size_of::<Sqe>(), IORING_OFF_SQES)?;

            let sq_base = sq_map.ptr as *mut u8;
            let cq_base = cq_map.as_ref().map_or(sq_base, |m| m.ptr as *mut u8);
            // SAFETY: every offset below comes straight from the
            // io_uring_setup params for these mappings, so the derived
            // pointers are in-bounds, live for the mapping's lifetime,
            // and 4-byte aligned as the kernel ABI guarantees.
            unsafe {
                let sq_mask = *(sq_base.add(p.sq_off.ring_mask as usize) as *const u32);
                let cq_mask = *(cq_base.add(p.cq_off.ring_mask as usize) as *const u32);
                // Fill the SQ index array once with the identity map:
                // slot i of the SQE array is published as entry i.
                let array = sq_base.add(p.sq_off.array as usize) as *mut u32;
                for i in 0..p.sq_entries {
                    *array.add(i as usize) = i;
                }
                Ok(Ring {
                    fd,
                    features: p.features,
                    sq_head: sq_base.add(p.sq_off.head as usize) as *const AtomicU32,
                    sq_tail: sq_base.add(p.sq_off.tail as usize) as *const AtomicU32,
                    sq_mask,
                    sq_entries: p.sq_entries,
                    sqes: sqe_map.ptr as *mut Sqe,
                    cq_head: cq_base.add(p.cq_off.head as usize) as *const AtomicU32,
                    cq_tail: cq_base.add(p.cq_off.tail as usize) as *const AtomicU32,
                    cq_mask,
                    cqes: cq_base.add(p.cq_off.cqes as usize) as *const RawCqe,
                    _sq_map: sq_map,
                    _cq_map: cq_map,
                    _sqe_map: sqe_map,
                })
            }
        })();
        match build {
            Ok(ring) => Ok(ring),
            Err(e) => {
                count::bump();
                // SAFETY: the setup fd is ours and closed exactly once
                // on this error path (no Ring was constructed).
                unsafe { close(fd) };
                Err(e)
            }
        }
    }

    fn sq_head(&self) -> u32 {
        // SAFETY: `sq_head` points into the live SQ mapping; acquire
        // pairs with the kernel's release store when it consumes SQEs.
        unsafe { (*self.sq_head).load(Ordering::Acquire) }
    }

    fn publish_sq_tail(&self, tail: u32) {
        // SAFETY: `sq_tail` points into the live SQ mapping; release
        // makes the SQE contents visible before the tail moves.
        unsafe { (*self.sq_tail).store(tail, Ordering::Release) }
    }

    fn cq_tail(&self) -> u32 {
        // SAFETY: `cq_tail` points into the live CQ mapping; acquire
        // pairs with the kernel's release store when it posts CQEs.
        unsafe { (*self.cq_tail).load(Ordering::Acquire) }
    }

    fn publish_cq_head(&self, head: u32) {
        // SAFETY: `cq_head` points into the live CQ mapping; release
        // tells the kernel the slot may be reused.
        unsafe { (*self.cq_head).store(head, Ordering::Release) }
    }

    fn write_sqe(&mut self, idx: u32, sqe: Sqe) {
        // SAFETY: `idx` is masked to the SQE array bounds and the slot
        // is free: the caller only writes between kernel head and our
        // unpublished tail.
        unsafe { *self.sqes.add((idx & self.sq_mask) as usize) = sqe }
    }

    fn read_cqe(&self, idx: u32) -> RawCqe {
        // SAFETY: `idx` is masked into the CQ array and lies between
        // the published head and the kernel's tail, so the entry is
        // fully written (acquire on `cq_tail` ordered the stores).
        unsafe { *self.cqes.add((idx & self.cq_mask) as usize) }
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        count::bump();
        // SAFETY: the ring fd is owned by this struct and closed
        // exactly once; the kernel cancels and waits out in-flight ops
        // on final release before freeing ring pages.
        unsafe { close(self.fd) };
    }
}

// ---------------------------------------------------------------------------
// Safe engine: slot arena + op slab over the raw ring
// ---------------------------------------------------------------------------

/// Which half of a slot an op occupies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Half {
    Read,
    Write,
}

#[derive(Default)]
struct SlotState {
    live: bool,
    read_busy: bool,
    write_busy: bool,
    /// Released by the caller while an op was still in flight; the
    /// real free happens when the last op on it completes.
    zombie: bool,
}

struct OpInfo {
    token: u64,
    slot: Option<(usize, Half)>,
    multishot: bool,
}

/// One reaped completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The caller's token from the matching `push_*` call.
    pub token: u64,
    /// The op's raw result: bytes moved / new fd, or a negative errno.
    pub result: i32,
    /// True while a multishot op will keep producing completions.
    pub more: bool,
}

/// Plain-value snapshot of the engine's internal meters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UringCounters {
    /// `io_uring_enter` calls issued.
    pub enters: u64,
    /// Enter calls that asked to wait for a completion.
    pub waits: u64,
    /// SQEs handed to the kernel.
    pub sqes_submitted: u64,
    /// CQEs reaped.
    pub cqes_reaped: u64,
    /// Reads served from the registered (fixed) buffer window.
    pub fixed_reads: u64,
    /// Writes served from the registered (fixed) buffer window.
    pub fixed_writes: u64,
    /// Reads/writes that fell back to plain opcodes (overflow slots).
    pub plain_ops: u64,
}

/// A batched io_uring I/O engine with an engine-owned buffer arena.
///
/// All ops are submitted with [`push_read`](UringEngine::push_read)-
/// style calls that queue SQEs locally; one
/// [`submit_and_wait`](UringEngine::submit_and_wait) per event-loop
/// iteration flushes the whole batch and waits, and
/// [`pop`](UringEngine::pop) drains completions.
pub struct UringEngine {
    ring: Ring,
    sq_tail: u32,
    cq_head: u32,
    to_submit: u32,
    inflight: usize,
    // Buffer arena. `arena` is the registered fixed window: `fixed`
    // slots of `2 * half_bytes` each (read half then write half).
    arena: Box<[u8]>,
    fixed: usize,
    half_bytes: usize,
    registered: bool,
    overflow: Vec<Box<[u8]>>,
    slots: Vec<SlotState>,
    free_slots: Vec<usize>,
    // Op slab: sqe.user_data is an index here, so caller tokens stay
    // fully opaque and slot bookkeeping survives any token scheme.
    ops: Vec<Option<OpInfo>>,
    free_ops: Vec<usize>,
    // Stable 8-byte target for the doorbell eventfd read.
    wakeup_buf: Box<u64>,
    counters: UringCounters,
}

// SAFETY: the engine's raw pointers all target memory it owns (ring
// mmaps, arena, overflow boxes); every mutation requires `&mut self`,
// so handing the whole engine to another thread is sound.
unsafe impl Send for UringEngine {}

impl UringEngine {
    /// Create a ring with `entries` SQEs (kernel-clamped) and an arena
    /// of `fixed_slots` registered slots of `2 * half_bytes` each.
    ///
    /// If buffer registration is refused (memlock limits, old kernel),
    /// the engine silently degrades to plain `READ`/`WRITE` opcodes
    /// for every slot — same semantics, one fewer fast path.
    pub fn new(entries: u32, fixed_slots: usize, half_bytes: usize) -> io::Result<UringEngine> {
        let ring = Ring::new(entries)?;
        let arena = vec![0u8; fixed_slots * 2 * half_bytes].into_boxed_slice();
        let mut engine = UringEngine {
            ring,
            sq_tail: 0,
            cq_head: 0,
            to_submit: 0,
            inflight: 0,
            arena,
            fixed: fixed_slots,
            half_bytes,
            registered: false,
            overflow: Vec::new(),
            slots: (0..fixed_slots).map(|_| SlotState::default()).collect(),
            free_slots: (0..fixed_slots).rev().collect(),
            ops: Vec::new(),
            free_ops: Vec::new(),
            wakeup_buf: Box::new(0),
            counters: UringCounters::default(),
        };
        if fixed_slots > 0 {
            let iovecs: Vec<IoVec> = (0..fixed_slots)
                .map(|s| IoVec {
                    base: engine.arena[s * 2 * half_bytes..].as_ptr() as *mut c_void,
                    len: 2 * half_bytes,
                })
                .collect();
            match io_uring_register(
                engine.ring.fd,
                IORING_REGISTER_BUFFERS,
                iovecs.as_ptr() as *const c_void,
                fixed_slots as u32,
            ) {
                Ok(()) => engine.registered = true,
                Err(_) => engine.registered = false,
            }
        }
        Ok(engine)
    }

    /// Bytes per slot half (one read buffer / one write buffer).
    pub fn half_bytes(&self) -> usize {
        self.half_bytes
    }

    /// Whether the fixed window actually registered (false = plain
    /// opcodes everywhere).
    pub fn buffers_registered(&self) -> bool {
        self.registered
    }

    /// Ops currently owned by the kernel (queued-not-yet-submitted
    /// SQEs count too).
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Snapshot the internal meters.
    pub fn counters(&self) -> UringCounters {
        self.counters
    }

    /// Claim a buffer slot for a connection. Prefers the registered
    /// window; past it, engine-owned heap slots are minted on demand.
    pub fn alloc_slot(&mut self) -> usize {
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                self.overflow.push(vec![0u8; 2 * self.half_bytes].into_boxed_slice());
                self.slots.push(SlotState::default());
                self.slots.len() - 1
            }
        };
        let st = &mut self.slots[slot];
        debug_assert!(!st.live && !st.read_busy && !st.write_busy && !st.zombie);
        st.live = true;
        slot
    }

    /// Return a slot. If ops are still in flight on it the free is
    /// deferred until the last of them completes, so the kernel can
    /// never write into a recycled buffer.
    pub fn release_slot(&mut self, slot: usize) {
        let st = &mut self.slots[slot];
        assert!(st.live, "release of a slot that is not live");
        if st.read_busy || st.write_busy {
            st.zombie = true;
        } else {
            st.live = false;
            self.free_slots.push(slot);
        }
    }

    /// Whether `slot` lies in the registered fixed-buffer window.
    pub fn slot_is_fixed(&self, slot: usize) -> bool {
        self.registered && slot < self.fixed
    }

    /// View the first `len` bytes of a slot's read half (after a read
    /// completion reported `len`).
    ///
    /// # Panics
    /// Panics if a read is still in flight on the slot — the kernel
    /// would be writing the bytes being viewed.
    pub fn read_slice(&self, slot: usize, len: usize) -> &[u8] {
        assert!(!self.slots[slot].read_busy, "read_slice while a read is in flight");
        assert!(len <= self.half_bytes);
        if slot < self.fixed {
            &self.arena[slot * 2 * self.half_bytes..][..len]
        } else {
            &self.overflow[slot - self.fixed][..len]
        }
    }

    fn op_token(&mut self, token: u64, slot: Option<(usize, Half)>, multishot: bool) -> u64 {
        let info = OpInfo { token, slot, multishot };
        let idx = match self.free_ops.pop() {
            Some(i) => {
                self.ops[i] = Some(info);
                i
            }
            None => {
                self.ops.push(Some(info));
                self.ops.len() - 1
            }
        };
        idx as u64
    }

    fn push_sqe(&mut self, sqe: Sqe) -> io::Result<()> {
        while self.sq_tail.wrapping_sub(self.ring.sq_head()) >= self.ring.sq_entries {
            // SQ full mid-batch: flush what we have so the loop's
            // single enter stays the common case.
            self.submit()?;
        }
        self.ring.write_sqe(self.sq_tail, sqe);
        self.sq_tail = self.sq_tail.wrapping_add(1);
        self.ring.publish_sq_tail(self.sq_tail);
        self.to_submit += 1;
        self.inflight += 1;
        Ok(())
    }

    /// Queue a multishot accept on a listening socket. Each completion
    /// carries a new connection fd in `result`; when `more` is false
    /// the SQE is spent and must be re-armed.
    pub fn push_accept(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
        let ud = self.op_token(token, None, true);
        let mut sqe = Sqe::zeroed();
        sqe.opcode = IORING_OP_ACCEPT;
        sqe.fd = fd;
        sqe.ioprio = IORING_ACCEPT_MULTISHOT;
        sqe.user_data = ud;
        self.push_sqe(sqe)
    }

    /// Queue a read into `slot`'s read half. Uses `READ_FIXED` when the
    /// slot is in the registered window.
    pub fn push_read(&mut self, fd: RawFd, slot: usize, token: u64) -> io::Result<()> {
        let st = &mut self.slots[slot];
        assert!(st.live && !st.read_busy, "one read per slot at a time");
        st.read_busy = true;
        let fixed = self.slot_is_fixed(slot);
        let addr = if slot < self.fixed {
            self.arena[slot * 2 * self.half_bytes..].as_ptr() as u64
        } else {
            self.overflow[slot - self.fixed].as_ptr() as u64
        };
        if fixed {
            self.counters.fixed_reads += 1;
        } else {
            self.counters.plain_ops += 1;
        }
        let ud = self.op_token(token, Some((slot, Half::Read)), false);
        let mut sqe = Sqe::zeroed();
        sqe.opcode = if fixed { IORING_OP_READ_FIXED } else { IORING_OP_READ };
        sqe.fd = fd;
        sqe.addr = addr;
        sqe.len = self.half_bytes as u32;
        sqe.buf_index = if fixed { slot as u16 } else { 0 };
        sqe.user_data = ud;
        self.push_sqe(sqe)
    }

    /// Copy up to a half's worth of `data` into `slot`'s write half and
    /// queue a write of it. Returns the byte count queued; the caller
    /// advances its own buffer by the *completion* result, which may be
    /// shorter still.
    pub fn push_write(
        &mut self,
        fd: RawFd,
        slot: usize,
        data: &[u8],
        token: u64,
    ) -> io::Result<usize> {
        let st = &mut self.slots[slot];
        assert!(st.live && !st.write_busy, "one write per slot at a time");
        st.write_busy = true;
        let n = data.len().min(self.half_bytes);
        let fixed = self.slot_is_fixed(slot);
        let base = slot * 2 * self.half_bytes + self.half_bytes;
        let addr = if slot < self.fixed {
            self.arena[base..][..n].copy_from_slice(&data[..n]);
            self.arena[base..].as_ptr() as u64
        } else {
            let b = &mut self.overflow[slot - self.fixed];
            b[self.half_bytes..][..n].copy_from_slice(&data[..n]);
            b[self.half_bytes..].as_ptr() as u64
        };
        if fixed {
            self.counters.fixed_writes += 1;
        } else {
            self.counters.plain_ops += 1;
        }
        let ud = self.op_token(token, Some((slot, Half::Write)), false);
        let mut sqe = Sqe::zeroed();
        sqe.opcode = if fixed { IORING_OP_WRITE_FIXED } else { IORING_OP_WRITE };
        sqe.fd = fd;
        sqe.addr = addr;
        sqe.len = n as u32;
        sqe.buf_index = if fixed { slot as u16 } else { 0 };
        sqe.user_data = ud;
        self.push_sqe(sqe)?;
        Ok(n)
    }

    /// Arm a plain 8-byte read on the doorbell eventfd; the completion
    /// means "someone rang" and resets the eventfd counter, folding
    /// cross-thread wakeups into the ring wait with zero extra
    /// syscalls on the receive side.
    pub fn push_wakeup_read(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
        let ud = self.op_token(token, None, false);
        let mut sqe = Sqe::zeroed();
        sqe.opcode = IORING_OP_READ;
        sqe.fd = fd;
        sqe.addr = &*self.wakeup_buf as *const u64 as u64;
        sqe.len = 8;
        sqe.user_data = ud;
        self.push_sqe(sqe)
    }

    /// Queue cancellation of every in-flight op on `fd` (close path:
    /// the fd must stay open until those ops' CQEs arrive).
    pub fn push_cancel_fd(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
        let ud = self.op_token(token, None, false);
        let mut sqe = Sqe::zeroed();
        sqe.opcode = IORING_OP_ASYNC_CANCEL;
        sqe.fd = fd;
        sqe.op_flags = IORING_ASYNC_CANCEL_FD | IORING_ASYNC_CANCEL_ALL;
        sqe.user_data = ud;
        self.push_sqe(sqe)
    }

    /// Queue a NOP (probe/self-test traffic).
    pub fn push_nop(&mut self, token: u64) -> io::Result<()> {
        let ud = self.op_token(token, None, false);
        let mut sqe = Sqe::zeroed();
        sqe.opcode = IORING_OP_NOP;
        sqe.user_data = ud;
        self.push_sqe(sqe)
    }

    fn enter(&mut self, min_complete: u32, timeout: Option<Duration>) -> io::Result<()> {
        let want = self.to_submit;
        let ts;
        let arg;
        let (argp, argsz, mut flags) = if min_complete > 0 {
            self.counters.waits += 1;
            match timeout {
                Some(d) if self.ring.features & IORING_FEAT_EXT_ARG != 0 => {
                    ts = KernelTimespec {
                        tv_sec: d.as_secs() as i64,
                        tv_nsec: i64::from(d.subsec_nanos()),
                    };
                    arg = GeteventsArg {
                        sigmask: 0,
                        sigmask_sz: 0,
                        pad: 0,
                        ts: &ts as *const KernelTimespec as u64,
                    };
                    (
                        &arg as *const GeteventsArg as *const c_void,
                        size_of::<GeteventsArg>(),
                        IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
                    )
                }
                _ => (std::ptr::null(), 0, IORING_ENTER_GETEVENTS),
            }
        } else {
            (std::ptr::null(), 0, 0)
        };
        if want == 0 && min_complete == 0 {
            return Ok(());
        }
        // Without EXT_ARG support a timed wait degrades to a plain
        // GETEVENTS; the engine's callers treat early return as a tick.
        if min_complete > 0 && timeout.is_some() && self.ring.features & IORING_FEAT_EXT_ARG == 0 {
            flags = IORING_ENTER_GETEVENTS;
        }
        self.counters.enters += 1;
        match io_uring_enter(self.ring.fd, want, min_complete, flags, argp, argsz) {
            Ok(consumed) => {
                let consumed = consumed.min(want);
                self.to_submit -= consumed;
                self.counters.sqes_submitted += u64::from(consumed);
                Ok(())
            }
            Err(e) => match e.raw_os_error() {
                // Timeout, signal, or a CQ that needs reaping first:
                // all are "wake up and run the loop", not failures.
                Some(62) | Some(4) | Some(11) | Some(16) => Ok(()), // ETIME/EINTR/EAGAIN/EBUSY
                _ => Err(e),
            },
        }
    }

    /// Flush queued SQEs without waiting.
    pub fn submit(&mut self) -> io::Result<()> {
        self.enter(0, None)
    }

    /// Flush queued SQEs and wait until at least one completion is
    /// ready or `timeout` elapses. If completions are already pending,
    /// submits without blocking.
    pub fn submit_and_wait(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        if self.cq_ready() > 0 {
            return self.submit();
        }
        self.enter(1, timeout)
    }

    fn cq_ready(&self) -> u32 {
        self.ring.cq_tail().wrapping_sub(self.cq_head)
    }

    /// Reap one completion, if any.
    pub fn pop(&mut self) -> Option<Completion> {
        if self.cq_ready() == 0 {
            return None;
        }
        let raw = self.ring.read_cqe(self.cq_head);
        self.cq_head = self.cq_head.wrapping_add(1);
        self.ring.publish_cq_head(self.cq_head);
        self.counters.cqes_reaped += 1;

        let idx = raw.user_data as usize;
        let more = raw.flags & CQE_F_MORE != 0;
        let info = self.ops[idx].as_ref().expect("CQE for a dead op slab entry");
        let token = info.token;
        let slot = info.slot;
        let retire = !(info.multishot && more);
        if retire {
            self.ops[idx] = None;
            self.free_ops.push(idx);
            self.inflight -= 1;
            if let Some((s, half)) = slot {
                let st = &mut self.slots[s];
                match half {
                    Half::Read => st.read_busy = false,
                    Half::Write => st.write_busy = false,
                }
                if st.zombie && !st.read_busy && !st.write_busy {
                    st.zombie = false;
                    st.live = false;
                    self.free_slots.push(s);
                }
            }
        }
        Some(Completion { token, result: raw.res, more })
    }
}

impl Drop for UringEngine {
    fn drop(&mut self) {
        // Quiesce: cancel everything still in flight and reap it, so no
        // kernel-side op can touch the arena/overflow boxes after they
        // free. Best-effort with a short deadline; the kernel's own
        // ring teardown is the backstop.
        if self.inflight > 0 {
            let mut sqe = Sqe::zeroed();
            sqe.opcode = IORING_OP_ASYNC_CANCEL;
            sqe.op_flags = IORING_ASYNC_CANCEL_ANY;
            sqe.user_data = self.op_token(u64::MAX, None, false);
            let _ = self.push_sqe(sqe);
            for _ in 0..64 {
                if self.inflight == 0 {
                    break;
                }
                if self.submit_and_wait(Some(Duration::from_millis(5))).is_err() {
                    break;
                }
                while self.pop().is_some() {}
            }
        }
    }
}

/// Wrap a connection fd from an `ACCEPT` completion into a `TcpStream`.
///
/// Ownership transfers to the returned stream (it closes the fd). The
/// fd must be a live socket the caller owns and must not be wrapped
/// twice — the accept path is the only caller.
pub fn take_accepted_fd(fd: RawFd) -> TcpStream {
    // SAFETY (I/O safety contract): `fd` is a fresh accepted socket
    // delivered by the kernel in a CQE and owned by the caller; it is
    // wrapped exactly once, so no double-close can occur.
    unsafe { TcpStream::from_raw_fd(fd) }
}

// ---------------------------------------------------------------------------
// Capability probe
// ---------------------------------------------------------------------------

static PROBE: OnceLock<Result<(), String>> = OnceLock::new();

fn run_probe() -> Result<(), String> {
    let mut engine = match UringEngine::new(8, 0, 64) {
        Ok(e) => e,
        Err(e) => {
            return Err(match e.raw_os_error() {
                Some(38) => "io_uring_setup: ENOSYS (kernel too old or syscall filtered)".into(),
                Some(1) | Some(13) => {
                    "io_uring_setup: permission denied (seccomp or kernel.io_uring_disabled)".into()
                }
                _ => format!("io_uring_setup failed: {e}"),
            })
        }
    };
    engine.push_nop(7).map_err(|e| format!("io_uring probe submit failed: {e}"))?;
    engine
        .submit_and_wait(Some(Duration::from_millis(200)))
        .map_err(|e| format!("io_uring_enter failed: {e}"))?;
    match engine.pop() {
        Some(c) if c.token == 7 => Ok(()),
        _ => Err("io_uring probe NOP produced no completion".into()),
    }
}

/// One cached full-round-trip capability check (setup → NOP → enter).
pub fn probe() -> &'static Result<(), String> {
    PROBE.get_or_init(run_probe)
}

/// `true` when this kernel/container lets us drive io_uring.
pub fn available() -> bool {
    probe().is_ok()
}

// ---------------------------------------------------------------------------
// Tests: ABI layout + live-ring behaviour (self-skipping off-kernel)
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::mem::offset_of;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    // --- ABI layout: sizes and offsets the kernel contract fixes. ---

    #[test]
    fn abi_layout_params() {
        assert_eq!(size_of::<IoUringParams>(), 120);
        assert_eq!(size_of::<SqringOffsets>(), 40);
        assert_eq!(size_of::<CqringOffsets>(), 40);
        assert_eq!(offset_of!(IoUringParams, features), 20);
        assert_eq!(offset_of!(IoUringParams, sq_off), 40);
        assert_eq!(offset_of!(IoUringParams, cq_off), 80);
        assert_eq!(offset_of!(SqringOffsets, array), 24);
        assert_eq!(offset_of!(CqringOffsets, cqes), 20);
    }

    #[test]
    fn abi_layout_sqe_cqe() {
        assert_eq!(size_of::<Sqe>(), 64);
        assert_eq!(offset_of!(Sqe, fd), 4);
        assert_eq!(offset_of!(Sqe, off), 8);
        assert_eq!(offset_of!(Sqe, addr), 16);
        assert_eq!(offset_of!(Sqe, len), 24);
        assert_eq!(offset_of!(Sqe, op_flags), 28);
        assert_eq!(offset_of!(Sqe, user_data), 32);
        assert_eq!(offset_of!(Sqe, buf_index), 40);
        assert_eq!(size_of::<RawCqe>(), 16);
        assert_eq!(offset_of!(RawCqe, res), 8);
        assert_eq!(size_of::<GeteventsArg>(), 24);
        assert_eq!(size_of::<KernelTimespec>(), 16);
    }

    // --- Live ring tests (skip when the kernel refuses io_uring). ---

    fn engine_or_skip(fixed: usize) -> Option<UringEngine> {
        if !available() {
            eprintln!("skipping: io_uring unavailable: {:?}", probe());
            return None;
        }
        Some(UringEngine::new(64, fixed, 4096).unwrap())
    }

    #[test]
    fn probe_is_coherent() {
        // Either outcome is legal; it must be stable and classified.
        assert_eq!(probe().is_ok(), available());
    }

    #[test]
    fn nop_round_trip_batches() {
        let Some(mut e) = engine_or_skip(0) else { return };
        for t in 0..5u64 {
            e.push_nop(100 + t).unwrap();
        }
        e.submit_and_wait(Some(Duration::from_secs(2))).unwrap();
        let mut seen = Vec::new();
        while seen.len() < 5 {
            match e.pop() {
                Some(c) => seen.push(c.token),
                None => e.submit_and_wait(Some(Duration::from_secs(2))).unwrap(),
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![100, 101, 102, 103, 104]);
        assert!(e.counters().enters >= 1);
        assert_eq!(e.counters().sqes_submitted, 5);
        assert_eq!(e.inflight(), 0);
    }

    #[test]
    fn fixed_buffer_socket_echo() {
        let Some(mut e) = engine_or_skip(4) else { return };
        assert!(e.buffers_registered(), "fixed window should register on this kernel");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();

        let slot = e.alloc_slot();
        assert!(e.slot_is_fixed(slot));
        client.write_all(b"ping").unwrap();
        e.push_read(server.as_raw_fd(), slot, 1).unwrap();
        e.submit_and_wait(Some(Duration::from_secs(2))).unwrap();
        let c = loop {
            if let Some(c) = e.pop() {
                break c;
            }
            e.submit_and_wait(Some(Duration::from_secs(2))).unwrap();
        };
        assert_eq!(c.token, 1);
        assert_eq!(c.result, 4);
        assert_eq!(e.read_slice(slot, 4), b"ping");
        assert_eq!(e.counters().fixed_reads, 1);

        let queued = e.push_write(server.as_raw_fd(), slot, b"pong", 2).unwrap();
        assert_eq!(queued, 4);
        e.submit_and_wait(Some(Duration::from_secs(2))).unwrap();
        let c = loop {
            if let Some(c) = e.pop() {
                break c;
            }
            e.submit_and_wait(Some(Duration::from_secs(2))).unwrap();
        };
        assert_eq!((c.token, c.result), (2, 4));
        let mut buf = [0u8; 4];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
        assert_eq!(e.counters().fixed_writes, 1);
        e.release_slot(slot);
    }

    #[test]
    fn overflow_slots_use_plain_opcodes() {
        let Some(mut e) = engine_or_skip(1) else { return };
        let a = e.alloc_slot();
        let b = e.alloc_slot(); // past the fixed window
        assert!(!e.slot_is_fixed(b));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        e.push_read(server.as_raw_fd(), b, 9).unwrap();
        e.submit_and_wait(Some(Duration::from_secs(2))).unwrap();
        let c = loop {
            if let Some(c) = e.pop() {
                break c;
            }
            e.submit_and_wait(Some(Duration::from_secs(2))).unwrap();
        };
        assert_eq!((c.token, c.result), (9, 1));
        assert_eq!(e.read_slice(b, 1), b"x");
        assert!(e.counters().plain_ops >= 1);
        e.release_slot(a);
        e.release_slot(b);
    }

    #[test]
    fn multishot_accept_delivers_connections() {
        let Some(mut e) = engine_or_skip(0) else { return };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        e.push_accept(listener.as_raw_fd(), 42).unwrap();
        e.submit().unwrap();
        let _c1 = TcpStream::connect(addr).unwrap();
        let _c2 = TcpStream::connect(addr).unwrap();
        let mut got = 0;
        while got < 2 {
            e.submit_and_wait(Some(Duration::from_secs(2))).unwrap();
            while let Some(c) = e.pop() {
                assert_eq!(c.token, 42);
                assert!(c.result >= 0, "accept errno {}", c.result);
                let stream = take_accepted_fd(c.result);
                stream.set_nodelay(true).unwrap();
                got += 1;
                if !c.more {
                    // Kernel retired the multishot SQE; re-arm.
                    e.push_accept(listener.as_raw_fd(), 42).unwrap();
                }
            }
        }
    }

    #[test]
    fn wakeup_read_on_nonblocking_eventfd_parks_until_rung() {
        // The doorbell design hinges on this: an in-ring READ of the
        // Poller's EFD_NONBLOCK eventfd must poll-arm inside the kernel
        // (park until a write arrives), not complete -EAGAIN — an
        // -EAGAIN completion would turn the doorbell into a busy loop.
        let Some(mut e) = engine_or_skip(0) else { return };
        let poller = crate::Poller::new().unwrap();
        e.push_wakeup_read(poller.notify_fd(), 7).unwrap();
        e.submit_and_wait(Some(Duration::from_millis(50))).unwrap();
        assert!(e.pop().is_none(), "doorbell read completed with nothing to read (-EAGAIN?)");
        poller.notify().unwrap();
        e.submit_and_wait(Some(Duration::from_secs(2))).unwrap();
        let c = e.pop().expect("doorbell read never completed after notify");
        assert_eq!(c.token, 7);
        assert_eq!(c.result, 8, "eventfd read must deliver the 8-byte counter");
    }

    #[test]
    fn release_while_inflight_defers_slot_reuse() {
        let Some(mut e) = engine_or_skip(2) else { return };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let slot = e.alloc_slot();
        // Read never completes (client sends nothing) until cancelled.
        e.push_read(server.as_raw_fd(), slot, 5).unwrap();
        e.submit().unwrap();
        e.release_slot(slot);
        // The slot must NOT be handed out again while the read holds it.
        let other = e.alloc_slot();
        assert_ne!(other, slot, "zombie slot was recycled under the kernel");
        e.push_cancel_fd(server.as_raw_fd(), 6).unwrap();
        let mut done = 0;
        while done < 2 {
            e.submit_and_wait(Some(Duration::from_secs(2))).unwrap();
            while let Some(c) = e.pop() {
                assert!(c.token == 5 || c.token == 6);
                done += 1;
            }
        }
        drop(client);
        // Now the zombie is really free and may be recycled.
        let again = e.alloc_slot();
        assert!(again == slot || again < e.slots.len());
    }
}
