//! Minimal offline stand-in for the `polling` crate: a readiness
//! poller over Linux `epoll(7)` with an `eventfd(2)` wakeup token, in
//! the style of the other vendored shims (no crates.io access, so the
//! syscall surface is bound directly with `extern "C"` declarations —
//! the one place in the workspace that needs `unsafe`).
//!
//! The API is the small level-triggered subset the PSD server's two
//! front-end engines use:
//!
//! * [`Poller::add`] / [`Poller::modify`] / [`Poller::delete`] manage
//!   interest in a raw fd under a caller-chosen `usize` key;
//! * [`Poller::wait`] blocks (with optional timeout) and fills a
//!   caller-owned `Vec<Event>`;
//! * [`Poller::notify`] wakes a blocked `wait` from any thread — the
//!   reactor's cross-thread completion doorbell.
//!
//! Level-triggered mode is deliberate: readiness is re-reported until
//! consumed, so a connection state machine that stops mid-buffer is
//! re-driven on the next tick instead of wedging (the classic
//! edge-trigger starvation bug).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;
use std::time::Duration;

pub mod count;
pub mod uring;

// Linux ABI constants (uapi/linux/eventpoll.h, bits/eventfd.h).
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// `struct epoll_event`. x86-64 is the one Linux ABI where the kernel
/// declares it packed; everywhere else it has natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn check(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// The key [`Poller`] reserves for its internal wakeup eventfd; user
/// fds must use any other value.
pub const NOTIFY_KEY: usize = usize::MAX;

/// What to watch a registered fd for. Error/hang-up conditions are
/// always reported (mapped onto both directions) regardless of
/// interest, as epoll itself does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the fd is readable (or closed by the peer).
    pub readable: bool,
    /// Report when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    /// Writable only.
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    /// Both directions.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    /// Neither direction — only errors/hang-ups are reported.
    pub const NONE: Interest = Interest { readable: false, writable: false };

    fn bits(self) -> u32 {
        let mut e = EPOLLRDHUP; // peer half-close always interesting
        if self.readable {
            e |= EPOLLIN;
        }
        if self.writable {
            e |= EPOLLOUT;
        }
        e
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key the fd was registered under.
    pub key: usize,
    /// Readable, peer-closed, or in an error state (a read will not
    /// block — it may return 0 or the pending error).
    pub readable: bool,
    /// Writable or in an error state (a write will not block).
    pub writable: bool,
}

/// A level-triggered epoll instance plus an eventfd wakeup token.
///
/// `wait` is meant to be called from one thread; `add`/`modify`/
/// `delete`/`notify` are safe from any thread concurrently with it
/// (epoll and eventfd are thread-safe kernel objects).
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
    event_fd: RawFd,
}

// Raw fds are plain integers; the kernel objects behind them are
// thread-safe for the operations this API exposes.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// Create an epoll instance with its wakeup eventfd registered
    /// under [`NOTIFY_KEY`].
    pub fn new() -> io::Result<Self> {
        count::bump();
        // SAFETY: epoll_create1 takes no pointers; the returned fd (or
        // -1) is checked before use.
        let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        count::bump();
        // SAFETY: eventfd takes no pointers; the fd is checked.
        let event_fd = match check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
            Ok(fd) => fd,
            Err(e) => {
                // SAFETY: epfd came from epoll_create1 above and is
                // closed exactly once on this error path.
                unsafe { close(epfd) };
                return Err(e);
            }
        };
        let poller = Self { epfd, event_fd };
        poller.ctl(EPOLL_CTL_ADD, event_fd, NOTIFY_KEY, Interest::READABLE)?;
        Ok(poller)
    }

    fn ctl(&self, op: c_int, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest.bits(), data: key as u64 };
        count::bump();
        // SAFETY: `ev` is a live stack value for the duration of the
        // call; the kernel copies it and keeps no reference.
        check(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` under `key` with the given interest.
    ///
    /// # Panics
    /// Panics if `key` is [`NOTIFY_KEY`] (reserved for the wakeup fd).
    pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        assert_ne!(key, NOTIFY_KEY, "key {NOTIFY_KEY} is reserved for the notify eventfd");
        self.ctl(EPOLL_CTL_ADD, fd, key, interest)
    }

    /// Change the interest (and/or key) of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        assert_ne!(key, NOTIFY_KEY, "key {NOTIFY_KEY} is reserved for the notify eventfd");
        self.ctl(EPOLL_CTL_MOD, fd, key, interest)
    }

    /// Deregister `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        count::bump();
        // SAFETY: EPOLL_CTL_DEL ignores the event pointer (null is the
        // documented form since Linux 2.6.9).
        check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) })?;
        Ok(())
    }

    /// The raw fd of the internal wakeup eventfd. The io_uring engine
    /// keeps an `IORING_OP_READ` armed on it so [`Poller::notify`]
    /// doorbells fold into the ring wait instead of an epoll wakeup;
    /// the fd stays owned by (and is closed by) this `Poller`.
    pub fn notify_fd(&self) -> RawFd {
        self.event_fd
    }

    /// Block until at least one registered fd is ready, `timeout`
    /// elapses (`None` = forever), or [`Poller::notify`] is called.
    /// Ready fds are appended to `events` (cleared first); the internal
    /// wakeup token is drained and never reported. Returns the number
    /// of events delivered; `0` means timeout, wakeup, or a signal.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round up so a 1 ns timeout does not busy-spin at 0 ms.
            Some(d) => {
                d.as_millis().saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0)) as c_int
            }
        };
        let mut raw = [EpollEvent { events: 0, data: 0 }; 128];
        count::bump();
        // SAFETY: `raw` is a live, writable array of `raw.len()`
        // `EpollEvent`s; the kernel writes at most that many entries.
        let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as c_int, timeout_ms) };
        let n = match check(n) {
            Ok(n) => n as usize,
            // A signal interrupting the wait is a spurious wakeup, not
            // an error — callers loop on their own predicate anyway.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &raw[..n] {
            let key = ev.data as usize;
            let bits = ev.events;
            if key == NOTIFY_KEY {
                self.drain_notify();
                continue;
            }
            let hangup = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
            events.push(Event {
                key,
                readable: bits & EPOLLIN != 0 || hangup,
                writable: bits & EPOLLOUT != 0 || hangup,
            });
        }
        Ok(events.len())
    }

    /// Wake the thread blocked in [`Poller::wait`], if any; the next
    /// `wait` returns immediately otherwise. Callable from any thread.
    pub fn notify(&self) -> io::Result<()> {
        let one: u64 = 1;
        count::bump();
        // SAFETY: the buffer is a live 8-byte stack value, the exact
        // width an eventfd write requires.
        let ret = unsafe { write(self.event_fd, (&one as *const u64).cast(), 8) };
        // EAGAIN means the counter is already saturated — the wakeup is
        // pending, which is all a doorbell needs.
        if ret < 0 {
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::WouldBlock {
                return Err(e);
            }
        }
        Ok(())
    }

    fn drain_notify(&self) {
        let mut buf = 0u64;
        count::bump();
        // SAFETY: the buffer is a live, writable 8-byte stack value;
        // a nonblocking eventfd read resets the counter.
        unsafe { read(self.event_fd, (&mut buf as *mut u64).cast(), 8) };
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        count::add(2);
        // SAFETY: both fds are owned by this Poller and closed exactly
        // once; no other handle to them escapes the type.
        unsafe {
            close(self.event_fd);
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn wait_times_out_empty() {
        let p = Poller::new().unwrap();
        let mut evs = Vec::new();
        let n = p.wait(&mut evs, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        assert!(evs.is_empty());
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let p = std::sync::Arc::new(Poller::new().unwrap());
        let p2 = std::sync::Arc::clone(&p);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            p2.notify().unwrap();
        });
        let mut evs = Vec::new();
        let t = std::time::Instant::now();
        // Without the notify this would block for 5 s.
        p.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
        assert!(t.elapsed() < Duration::from_secs(2), "notify must cut the wait short");
        assert!(evs.is_empty(), "the wakeup token is never reported");
        waker.join().unwrap();
        // The token was drained: the next wait times out normally.
        let n = p.wait(&mut evs, Some(Duration::from_millis(5))).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let p = Poller::new().unwrap();
        p.add(listener.as_raw_fd(), 7, Interest::READABLE).unwrap();
        let mut evs = Vec::new();
        assert_eq!(p.wait(&mut evs, Some(Duration::from_millis(20))).unwrap(), 0, "quiet");
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = p.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(evs[0].key, 7);
        assert!(evs[0].readable);
        p.delete(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn stream_readability_tracks_data_and_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let p = Poller::new().unwrap();
        p.add(server.as_raw_fd(), 1, Interest::NONE).unwrap();
        client.write_all(b"x").unwrap();
        let mut evs = Vec::new();
        // No read interest: data alone must not wake us.
        assert_eq!(p.wait(&mut evs, Some(Duration::from_millis(30))).unwrap(), 0);
        p.modify(server.as_raw_fd(), 1, Interest::READABLE).unwrap();
        let n = p.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(evs[0].readable && !evs[0].writable);

        // A connected socket with write interest is instantly writable.
        p.modify(server.as_raw_fd(), 1, Interest::WRITABLE).unwrap();
        let n = p.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(evs[0].writable);
        p.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn peer_close_reports_readable_without_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let p = Poller::new().unwrap();
        p.add(server.as_raw_fd(), 3, Interest::NONE).unwrap();
        drop(client);
        let mut evs = Vec::new();
        let n = p.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1, "hang-up must surface even with empty interest");
        assert!(evs[0].readable, "hang-up maps onto readable so the owner sees EOF");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn notify_key_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let p = Poller::new().unwrap();
        let _ = p.add(listener.as_raw_fd(), NOTIFY_KEY, Interest::READABLE);
    }
}
