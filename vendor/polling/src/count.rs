//! Process-global syscall accounting for the I/O shims.
//!
//! Every syscall this crate issues — epoll, eventfd, io_uring, the
//! close calls in the poller's `Drop` — bumps one relaxed counter, and
//! the server's engines [`add`] their own direct `read`/`write`/
//! `accept` calls so the two transport engines are comparable on the
//! same meter. The point is the syscalls-per-request gate
//! (`crates/server/tests/syscall_gate.rs`): the epoll reactor is
//! pinned at its current budget and the io_uring engine must come in
//! strictly below it, so a regression that sneaks an extra syscall
//! into either hot path fails a test instead of a benchmark eyeball.
//!
//! The counter is process-global, so a measurement is only meaningful
//! when one engine is driving traffic; the gate test runs engines
//! sequentially and takes [`total`] deltas.

use std::sync::atomic::{AtomicU64, Ordering};

static SYSCALLS: AtomicU64 = AtomicU64::new(0);

/// Record one syscall.
#[inline]
pub fn bump() {
    SYSCALLS.fetch_add(1, Ordering::Relaxed);
}

/// Record `n` syscalls at once (e.g. a `Drop` that closes two fds, or
/// an engine batching its own accounting).
#[inline]
pub fn add(n: u64) {
    SYSCALLS.fetch_add(n, Ordering::Relaxed);
}

/// Total syscalls recorded since process start. Subtract two readings
/// to meter a workload.
#[inline]
pub fn total() -> u64 {
    SYSCALLS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_accumulate() {
        let before = total();
        bump();
        add(3);
        assert!(total() - before >= 4, "other threads may add, never subtract");
    }
}
