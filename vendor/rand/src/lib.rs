//! Minimal offline stand-in for the `rand` crate.
//!
//! The workspace is built in environments without a crates.io mirror,
//! so the few external APIs it consumes are vendored as tiny
//! API-compatible shims. This one provides only [`RngCore`]; concrete
//! generators (e.g. `psd_dist::rng::Xoshiro256pp`) implement it in
//! their own crates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// The core of a random number generator, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut c = Counter(0);
        let mut buf = [0u8; 11];
        c.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &1u64.to_le_bytes());
        assert_eq!(&buf[8..], &2u64.to_le_bytes()[..3]);
    }
}
