//! Minimal offline stand-in for the `serde` crate.
//!
//! Real serde separates the data model from formats; this workspace
//! only ever serializes reports to JSON, so the shim collapses the two:
//! [`Serialize`] writes JSON text directly and the vendored
//! `serde_json` is a thin wrapper over it. `#[derive(Serialize)]` comes
//! from the vendored `serde_derive` proc macro.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// Types that can write themselves as a JSON value.
pub trait Serialize {
    /// Append this value's JSON representation to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Append `"key":` (escaped) to `out` — helper for derived impls.
pub fn write_json_key(out: &mut String, key: &str) {
    write_json_string(out, key);
    out.push(':');
}

/// Append a JSON string literal for `s` to `out`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

serialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    // `{:?}` is the shortest round-trip form (ryu-like):
                    // 1.0 stays "1.0", matching serde_json's output.
                    out.push_str(&format!("{self:?}"));
                } else {
                    // serde_json writes null for non-finite floats.
                    out.push_str("null");
                }
            }
        }
    )*};
}

serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )+};
}

serialize_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn scalars() {
        assert_eq!(json(1.0f64), "1.0");
        assert_eq!(json(0.3f64), "0.3");
        assert_eq!(json(f64::NAN), "null");
        assert_eq!(json(42u64), "42");
        assert_eq!(json(true), "true");
        assert_eq!(json("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn compounds() {
        assert_eq!(json(vec![1u64, 2]), "[1,2]");
        assert_eq!(json(Option::<u64>::None), "null");
        assert_eq!(json(Some(5u64)), "5");
        assert_eq!(json((1usize, 2.0f64, 3.0f64)), "[1,2.0,3.0]");
        assert_eq!(json(Vec::<Vec<f64>>::from([vec![], vec![2.0]])), "[[],[2.0]]");
    }
}
