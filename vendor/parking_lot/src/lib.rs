//! Minimal offline stand-in for the `parking_lot` crate: `Mutex` and
//! `Condvar` with parking_lot's poison-free API, implemented over the
//! std primitives.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard by
    // value (std's wait consumes it) while the caller keeps `&mut self`.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Result of [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present outside wait");
        let reacquired = self.inner.wait(inner).unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Like [`Condvar::wait`], but give up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present outside wait");
        let (reacquired, result) =
            self.inner.wait_timeout(inner, timeout).unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(reacquired);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(r.timed_out());
        drop(g);
        assert_eq!(*m.lock(), ());
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
