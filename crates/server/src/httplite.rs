//! A deliberately tiny HTTP/1.0–1.1 front-end for the PSD server:
//! parse the request head, classify (`X-Class` header or URL prefix),
//! execute through the PSD dispatch queue, and answer with timing
//! headers so external clients can observe their slowdown.
//!
//! HTTP/1.1 connections are kept alive (and `Connection:` headers are
//! honored in both directions), so load generators are not bottlenecked
//! on per-request TCP handshakes; HTTP/1.0 defaults to close. Request
//! parsing is bounded — header lines are capped at
//! [`MAX_HEAD_LINE_BYTES`] and heads at [`MAX_HEADERS`] lines — so a
//! hostile client cannot feed the parser unbounded input.
//!
//! This is not a web server — it exists so the "Internet server" in the
//! paper's title is an actual socket-accepting program in the examples,
//! the load-generation harness (`psd-loadgen`) and integration tests.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::classify::classify;
use crate::server::PsdServer;

/// Longest accepted request-line or header line, in bytes.
pub const MAX_HEAD_LINE_BYTES: usize = 8 * 1024;

/// Most header lines accepted in one request head.
pub const MAX_HEADERS: usize = 100;

/// Largest request body the front-end will drain to keep a keep-alive
/// connection framed; bigger bodies get the response and then a close.
pub const MAX_BODY_BYTES: u64 = 1024 * 1024;

/// How long an idle keep-alive connection waits for the next request
/// before re-checking the stop flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Consecutive mid-request read timeouts tolerated before the
/// connection is dropped as stalled (with [`IDLE_POLL`] this bounds a
/// half-written request head to a few seconds).
const MAX_MID_REQUEST_STALLS: u32 = 50;

/// A parsed HTTP-lite request.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpRequest {
    /// Request method (GET, POST, …) — not interpreted.
    pub method: String,
    /// Request path (before `?`).
    pub path: String,
    /// `cost` query parameter, if present and parseable.
    pub cost: Option<f64>,
    /// `X-Class` header value, if present.
    pub x_class: Option<String>,
    /// `true` for `HTTP/1.1` (or newer) requests.
    pub http11: bool,
    /// Lower-cased `Connection:` header value, if present.
    pub connection: Option<String>,
    /// Declared `Content-Length` (0 when absent). The front-end drains
    /// (and ignores) up to [`MAX_BODY_BYTES`] of body so keep-alive
    /// framing stays aligned.
    pub content_length: u64,
    /// Whether a `Transfer-Encoding` header was present (unsupported —
    /// the front-end answers and closes).
    pub chunked: bool,
}

impl HttpRequest {
    /// Whether the connection should be kept open after the response:
    /// the `Connection:` header wins; otherwise HTTP/1.1 defaults to
    /// keep-alive and HTTP/1.0 to close.
    pub fn keep_alive(&self) -> bool {
        match self.connection.as_deref() {
            Some("keep-alive") => true,
            Some("close") => false,
            _ => self.http11,
        }
    }
}

/// Wait until the reader has buffered data (or hit EOF), applying the
/// shared stall policy: `Interrupted` retries, `WouldBlock`/`TimedOut`
/// counts against `stalls` (reset whenever data arrives) and turns into
/// `InvalidData(what)` past [`MAX_MID_REQUEST_STALLS`] *consecutive*
/// timeouts. With `idle_ok` the first timeout is passed through raw
/// instead (the idle keep-alive case — the caller may safely retry).
/// Returns the number of buffered bytes (0 = EOF); the data itself is
/// re-read via `fill_buf`, which is then a buffered no-op.
fn await_data<R: BufRead>(
    reader: &mut R,
    stalls: &mut u32,
    idle_ok: bool,
    what: &'static str,
) -> io::Result<usize> {
    loop {
        match reader.fill_buf() {
            Ok(c) => {
                if !c.is_empty() {
                    *stalls = 0; // data arrived: the client is making progress
                }
                return Ok(c.len());
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if idle_ok {
                    return Err(e);
                }
                *stalls += 1;
                if *stalls > MAX_MID_REQUEST_STALLS {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, what));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Read one `\n`-terminated head line, rejecting lines longer than
/// `max` bytes and non-UTF-8 bytes. Returns `Ok(None)` at EOF before
/// any byte of the line arrived.
///
/// A `WouldBlock`/`TimedOut` read error is passed through *only* when
/// no byte of the line has arrived yet (an idle keep-alive connection);
/// once a line has started, timeouts are retried up to
/// [`MAX_MID_REQUEST_STALLS`] consecutive times so a slow-but-live
/// client is not corrupted by the idle-poll deadline.
fn read_head_line<R: BufRead>(reader: &mut R, max: usize) -> io::Result<Option<String>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut stalls = 0u32;
    loop {
        let n = await_data(reader, &mut stalls, buf.is_empty(), "stalled mid-request")?;
        if n == 0 {
            // EOF: a clean close between requests, or a truncated line.
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated head line"));
        }
        let chunk = reader.fill_buf()?; // buffered: returns the awaited bytes
        let (taken, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (chunk.len(), false),
        };
        if buf.len() + taken > max {
            // Oversized line: consume what we saw and reject.
            reader.consume(taken);
            return Err(io::Error::new(io::ErrorKind::InvalidData, "head line too long"));
        }
        buf.extend_from_slice(&chunk[..taken]);
        reader.consume(taken);
        if done {
            let line = String::from_utf8(buf).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "head line is not UTF-8")
            })?;
            return Ok(Some(line));
        }
    }
}

/// Parse the head of an HTTP request (request line + headers).
///
/// Errors are sorted by kind so connection loops can react:
/// `UnexpectedEof` means the client closed before a request line (clean
/// keep-alive close), `WouldBlock`/`TimedOut` means an idle connection
/// hit its read timeout with no bytes consumed (safe to retry), and
/// `InvalidData` means a malformed head (answer 400 and close).
pub fn parse_request<R: BufRead>(reader: &mut R) -> io::Result<HttpRequest> {
    let line = read_head_line(reader, MAX_HEAD_LINE_BYTES)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "closed before request"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = match parts.next() {
        Some(t) => t.to_string(),
        None => {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "missing request target"));
        }
    };
    if method.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty request line"));
    }
    let version = parts.next().unwrap_or("HTTP/1.0");
    if !version.starts_with("HTTP/") {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad HTTP version token"));
    }
    let http11 = version != "HTTP/1.0" && version != "HTTP/0.9";
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target, None),
    };
    let cost = query.as_deref().and_then(|q| {
        q.split('&').find_map(|kv| kv.strip_prefix("cost=")).and_then(|v| v.parse::<f64>().ok())
    });
    let mut x_class = None;
    let mut connection = None;
    let mut content_length = 0u64;
    let mut chunked = false;
    let mut n_headers = 0usize;
    // Once the request line is consumed, an idle-poll timeout must NOT
    // escape to the caller — it would retry parse_request and misread
    // the remaining headers as a fresh request line. Between-line
    // timeouts inside one head are retried like mid-line stalls.
    let mut head_stalls = 0u32;
    // EOF inside the head ends it (tolerated, as before the rewrite).
    loop {
        let header = match read_head_line(reader, MAX_HEAD_LINE_BYTES) {
            Ok(Some(h)) => h,
            Ok(None) => break,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                head_stalls += 1;
                if head_stalls > MAX_MID_REQUEST_STALLS {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "stalled mid-head"));
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        head_stalls = 0; // a full line arrived: progress
        if header.trim().is_empty() {
            break;
        }
        n_headers += 1;
        if n_headers > MAX_HEADERS {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "too many headers"));
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("x-class") {
                x_class = Some(value.trim().to_string());
            } else if name.eq_ignore_ascii_case("connection") {
                connection = Some(value.trim().to_ascii_lowercase());
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                chunked = true;
            }
        }
    }
    Ok(HttpRequest { method, path, cost, x_class, http11, connection, content_length, chunked })
}

/// Consume and discard `remaining` body bytes so the next request on a
/// keep-alive connection starts at a clean frame. Read timeouts are
/// tolerated while the body trickles in (same stall policy as heads).
fn drain_body<R: BufRead>(reader: &mut R, mut remaining: u64) -> io::Result<()> {
    let mut stalls = 0u32;
    while remaining > 0 {
        let n = await_data(reader, &mut stalls, false, "stalled mid-body")?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated body"));
        }
        let take = (n as u64).min(remaining) as usize;
        reader.consume(take);
        remaining -= take as u64;
    }
    Ok(())
}

/// Serve requests on one connection until it closes, errors, asks for
/// `Connection: close`, or `stop` flips while the connection is idle.
fn handle_connection(stream: TcpStream, server: &PsdServer, default_cost: f64, stop: &AtomicBool) {
    // The idle poll lets keep-alive handlers notice a drain request.
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        let req = match parse_request(&mut reader) {
            Ok(r) => r,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    return; // graceful drain: close the idle connection
                }
                continue;
            }
            Err(_) => {
                let _ = stream.write_all(b"HTTP/1.0 400 Bad Request\r\nConnection: close\r\n\r\n");
                return;
            }
        };
        let proto = if req.http11 { "HTTP/1.1" } else { "HTTP/1.0" };
        // A body we can bound is drained so the next request starts at
        // a clean frame; chunked or oversized bodies get their response
        // and then a close (we never re-read such a connection).
        let framed = !req.chunked && req.content_length <= MAX_BODY_BYTES;
        if framed && req.content_length > 0 && drain_body(&mut reader, req.content_length).is_err()
        {
            let _ = stream.write_all(b"HTTP/1.0 400 Bad Request\r\nConnection: close\r\n\r\n");
            return;
        }
        // Stop keeping alive once a drain began so shutdown converges.
        let keep = req.keep_alive() && framed && !stop.load(Ordering::SeqCst);
        let conn_header = if keep { "keep-alive" } else { "close" };
        let class = classify(&req.path, req.x_class.as_deref(), server.num_classes() - 1).class;
        let cost = req.cost.unwrap_or(default_cost).max(1e-3);
        match server.submit_sync(class, cost) {
            Some(done) => {
                let body = Bytes::from(format!(
                    "served path={} class={} cost={:.3} delay_s={:.6} service_s={:.6} slowdown={:.3}\n",
                    req.path,
                    class,
                    cost,
                    done.delay_s,
                    done.service_s,
                    done.slowdown()
                ));
                let head = format!(
                    "{proto} 200 OK\r\nContent-Length: {}\r\nConnection: {conn_header}\r\nX-Class: {}\r\nX-Delay-Us: {}\r\nX-Slowdown: {:.4}\r\n\r\n",
                    body.len(),
                    class,
                    (done.delay_s * 1e6) as u64,
                    done.slowdown()
                );
                if stream.write_all(head.as_bytes()).is_err() || stream.write_all(&body).is_err() {
                    return;
                }
            }
            None => {
                let _ = stream.write_all(
                    format!("{proto} 503 Service Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
                        .as_bytes(),
                );
                return;
            }
        }
        if !keep {
            return;
        }
    }
}

/// Counts in-flight connection handlers so a drain can wait for them.
#[derive(Default)]
struct ConnTracker {
    active: Mutex<usize>,
    idle: Condvar,
}

impl ConnTracker {
    fn started(&self) {
        *self.active.lock() += 1;
    }

    fn finished(&self) {
        let mut g = self.active.lock();
        *g -= 1;
        if *g == 0 {
            self.idle.notify_all();
        }
    }

    /// Wait until no handler is running, up to `timeout`. Returns the
    /// number of handlers still alive (0 on success).
    fn wait_idle(&self, timeout: Duration) -> usize {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.active.lock();
        while *g > 0 {
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            self.idle.wait_for(&mut g, deadline - now);
        }
        *g
    }
}

fn accept_loop(
    listener: TcpListener,
    server: Arc<PsdServer>,
    default_cost: f64,
    stop: Arc<AtomicBool>,
    tracker: Arc<ConnTracker>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let server = Arc::clone(&server);
                let stop = Arc::clone(&stop);
                let tracker = Arc::clone(&tracker);
                tracker.started();
                thread::spawn(move || {
                    handle_connection(stream, &server, default_cost, &stop);
                    // Release the server before reporting done, so a
                    // drain that saw zero handlers can unwrap the Arc.
                    drop(server);
                    tracker.finished();
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Accept loop: serve connections until `stop` flips. One thread per
/// connection (requests block on the PSD queue anyway).
///
/// This is the bare loop; [`HttpFrontend`] wraps it with the graceful
/// drain the `psd_httpd` binary and the load-generation harness use.
pub fn serve(
    listener: TcpListener,
    server: Arc<PsdServer>,
    default_cost: f64,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    accept_loop(listener, server, default_cost, stop, Arc::new(ConnTracker::default()))
}

/// A running HTTP front-end with a graceful drain: `shutdown` stops
/// accepting, closes idle keep-alive connections, waits for in-flight
/// handlers, and joins the accept thread.
pub struct HttpFrontend {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    tracker: Arc<ConnTracker>,
    accept: Option<JoinHandle<io::Result<()>>>,
}

impl HttpFrontend {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// accepting connections for `server`.
    pub fn start(addr: &str, server: Arc<PsdServer>, default_cost: f64) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Self::start_on(listener, server, default_cost)
    }

    /// Start accepting on an already-bound listener.
    pub fn start_on(
        listener: TcpListener,
        server: Arc<PsdServer>,
        default_cost: f64,
    ) -> io::Result<Self> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let tracker = Arc::new(ConnTracker::default());
        let accept = {
            let stop = Arc::clone(&stop);
            let tracker = Arc::clone(&tracker);
            thread::spawn(move || accept_loop(listener, server, default_cost, stop, tracker))
        };
        Ok(Self { addr, stop, tracker, accept: Some(accept) })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful drain: stop accepting, let in-flight requests finish,
    /// close idle keep-alive connections, join the accept thread.
    /// Returns the number of handler threads that failed to finish
    /// within `timeout` (0 on a clean drain) — they keep the
    /// `PsdServer` `Arc` alive if non-zero.
    pub fn shutdown(mut self, timeout: Duration) -> io::Result<usize> {
        self.stop.store(true, Ordering::SeqCst);
        let accept_result = match self.accept.take() {
            Some(h) => {
                h.join().map_err(|_| io::Error::other("accept thread panicked")).and_then(|r| r)
            }
            None => Ok(()),
        };
        // Even when the accept loop died early, wait for the handlers
        // it already spawned before reporting — otherwise callers tear
        // the server down under live connections.
        let leftover = self.tracker.wait_idle(timeout);
        accept_result?;
        Ok(leftover)
    }
}

impl Drop for HttpFrontend {
    /// Dropping without [`HttpFrontend::shutdown`] (e.g. on an error
    /// path) still stops the accept loop and reclaims its thread and
    /// port; connection handlers wind down on their next idle poll.
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_request_line_and_query() {
        let raw = "GET /class1/page?cost=2.5&x=1 HTTP/1.0\r\nHost: a\r\n\r\n";
        let r = parse_request(&mut Cursor::new(raw)).unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/class1/page");
        assert_eq!(r.cost, Some(2.5));
        assert_eq!(r.x_class, None);
        assert!(!r.http11);
        assert!(!r.keep_alive());
    }

    #[test]
    fn parses_x_class_header() {
        let raw = "POST / HTTP/1.0\r\nX-Class: 2\r\nContent-Length: 0\r\n\r\n";
        let r = parse_request(&mut Cursor::new(raw)).unwrap();
        assert_eq!(r.x_class.as_deref(), Some("2"));
        assert_eq!(r.cost, None);
    }

    #[test]
    fn case_insensitive_header() {
        let raw = "GET / HTTP/1.0\r\nx-CLASS: 1\r\n\r\n";
        let r = parse_request(&mut Cursor::new(raw)).unwrap();
        assert_eq!(r.x_class.as_deref(), Some("1"));
    }

    #[test]
    fn rejects_empty() {
        let e = parse_request(&mut Cursor::new("")).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn bad_cost_ignored() {
        let raw = "GET /?cost=abc HTTP/1.0\r\n\r\n";
        let r = parse_request(&mut Cursor::new(raw)).unwrap();
        assert_eq!(r.cost, None);
    }

    #[test]
    fn http11_defaults_to_keep_alive() {
        let r = parse_request(&mut Cursor::new("GET / HTTP/1.1\r\n\r\n")).unwrap();
        assert!(r.http11);
        assert!(r.keep_alive());
        // …unless the client asks to close.
        let r =
            parse_request(&mut Cursor::new("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n")).unwrap();
        assert!(!r.keep_alive());
    }

    #[test]
    fn http10_keep_alive_opt_in() {
        let raw = "GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n";
        let r = parse_request(&mut Cursor::new(raw)).unwrap();
        assert!(!r.http11);
        assert!(r.keep_alive());
    }

    #[test]
    fn missing_target_rejected() {
        let e = parse_request(&mut Cursor::new("GET\r\n\r\n")).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_token_rejected() {
        let e = parse_request(&mut Cursor::new("GET / JUNK/9\r\n\r\n")).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_request_line_rejected() {
        let raw = format!("GET /{} HTTP/1.0\r\n\r\n", "a".repeat(MAX_HEAD_LINE_BYTES));
        let e = parse_request(&mut Cursor::new(raw)).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_header_line_rejected() {
        let raw = format!("GET / HTTP/1.0\r\nX-Junk: {}\r\n\r\n", "b".repeat(MAX_HEAD_LINE_BYTES));
        let e = parse_request(&mut Cursor::new(raw)).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn too_many_headers_rejected() {
        let mut raw = String::from("GET / HTTP/1.0\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("X-H{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        let e = parse_request(&mut Cursor::new(raw)).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn non_utf8_head_rejected() {
        let raw = b"GET /\xff\xfe HTTP/1.0\r\n\r\n".to_vec();
        let e = parse_request(&mut Cursor::new(raw)).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_line_is_eof_error() {
        let e = parse_request(&mut Cursor::new("GET / HTTP/1.0")).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
    }

    /// A scripted reader that interleaves data chunks with one-shot
    /// `WouldBlock` stalls, mimicking read timeouts on a live socket.
    struct Script {
        steps: std::collections::VecDeque<Result<&'static [u8], ()>>,
        cur: &'static [u8],
    }

    impl Script {
        fn new(steps: Vec<Result<&'static [u8], ()>>) -> Self {
            Self { steps: steps.into(), cur: &[] }
        }
    }

    impl io::Read for Script {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            let chunk = self.fill_buf()?;
            let n = chunk.len().min(out.len());
            out[..n].copy_from_slice(&chunk[..n]);
            self.consume(n);
            Ok(n)
        }
    }

    impl BufRead for Script {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            if self.cur.is_empty() {
                match self.steps.pop_front() {
                    Some(Ok(data)) => self.cur = data,
                    Some(Err(())) => {
                        return Err(io::Error::new(io::ErrorKind::WouldBlock, "stall"));
                    }
                    None => return Ok(&[]),
                }
            }
            Ok(self.cur)
        }

        fn consume(&mut self, n: usize) {
            self.cur = &self.cur[n..];
        }
    }

    #[test]
    fn idle_timeout_before_request_line_escapes() {
        // No bytes consumed yet: the caller may safely retry.
        let mut r = Script::new(vec![Err(()), Ok(b"GET / HTTP/1.0\r\n\r\n")]);
        let e = parse_request(&mut r).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::WouldBlock);
        // And the retry parses the request whole.
        let req = parse_request(&mut r).unwrap();
        assert_eq!(req.path, "/");
    }

    #[test]
    fn timeout_between_head_lines_does_not_desync() {
        // Stalls after the request line and between headers must be
        // absorbed inside parse_request — otherwise a retry would
        // misread the remaining headers as a new request line.
        let mut r = Script::new(vec![
            Ok(b"GET /class1/x HTTP/1.1\r\n"),
            Err(()),
            Ok(b"X-Class: 1\r\n"),
            Err(()),
            Ok(b"\r\n"),
        ]);
        let req = parse_request(&mut r).unwrap();
        assert_eq!(req.path, "/class1/x");
        assert_eq!(req.x_class.as_deref(), Some("1"));
        assert!(req.keep_alive());
    }

    #[test]
    fn timeout_mid_line_is_retried() {
        let mut r = Script::new(vec![Ok(b"GET /a"), Err(()), Ok(b"b HTTP/1.0\r\n\r\n")]);
        let req = parse_request(&mut r).unwrap();
        assert_eq!(req.path, "/ab", "split request line reassembles across the stall");
    }

    #[test]
    fn content_length_and_transfer_encoding_captured() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 42\r\n\r\n";
        let r = parse_request(&mut Cursor::new(raw)).unwrap();
        assert_eq!(r.content_length, 42);
        assert!(!r.chunked);
        let raw = "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        let r = parse_request(&mut Cursor::new(raw)).unwrap();
        assert!(r.chunked);
        let e = parse_request(&mut Cursor::new("POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n"))
            .unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn keep_alive_survives_request_bodies() {
        use crate::server::{PsdServer, SchedulerKind, ServerConfig, Workload};
        use std::io::Read;
        use std::sync::Arc;

        let server = Arc::new(PsdServer::start(ServerConfig {
            deltas: vec![1.0],
            mean_cost: 1.0,
            scheduler: SchedulerKind::Wfq,
            workers: 1,
            work_unit: Duration::from_micros(100),
            workload: Workload::Sleep,
            control_window: Duration::from_millis(50),
            estimator_history: 3,
        }));
        let fe = HttpFrontend::start("127.0.0.1:0", Arc::clone(&server), 1.0).expect("bind");
        let mut s = TcpStream::connect(fe.addr()).expect("connect");
        // A request with a body, then a second request on the same
        // connection: the body must be drained, not parsed as a head.
        s.write_all(b"POST /a HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        s.write_all(b"GET /b HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut all = String::new();
        s.read_to_string(&mut all).unwrap();
        let oks = all.matches("HTTP/1.1 200 OK").count();
        assert_eq!(oks, 2, "both requests must answer 200, got:\n{all}");
        assert!(!all.contains("400"), "body bytes must not desync the parser:\n{all}");
        assert_eq!(fe.shutdown(Duration::from_secs(5)).expect("drain"), 0);
        Arc::try_unwrap(server).ok().expect("handlers drained").shutdown();
    }

    #[test]
    fn dropping_frontend_stops_the_accept_loop() {
        use crate::server::{PsdServer, SchedulerKind, ServerConfig, Workload};
        use std::sync::Arc;

        let server = Arc::new(PsdServer::start(ServerConfig {
            deltas: vec![1.0],
            mean_cost: 1.0,
            scheduler: SchedulerKind::Wfq,
            workers: 1,
            work_unit: Duration::from_micros(100),
            workload: Workload::Sleep,
            control_window: Duration::from_millis(50),
            estimator_history: 3,
        }));
        let fe = HttpFrontend::start("127.0.0.1:0", Arc::clone(&server), 1.0).expect("bind");
        let addr = fe.addr();
        drop(fe); // no shutdown(): Drop must still stop the accept thread
                  // Once the loop is gone, fresh connections go unserved: either
                  // the connect fails or the socket just closes without a byte.
        std::thread::sleep(Duration::from_millis(30));
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
            let _ = s.write_all(b"GET / HTTP/1.0\r\n\r\n");
            let mut buf = [0u8; 16];
            use std::io::Read;
            assert!(
                !matches!(s.read(&mut buf), Ok(n) if n > 0),
                "accept loop must be dead after drop"
            );
        }
        Arc::try_unwrap(server).ok().expect("no handlers left").shutdown();
    }
}
