//! A deliberately tiny HTTP/1.0 front-end for the PSD server: parse the
//! request line and headers, classify (`X-Class` header or URL prefix),
//! execute through the PSD dispatch queue, and answer with timing
//! headers so external clients can observe their slowdown.
//!
//! This is not a web server — it exists so the "Internet server" in the
//! paper's title is an actual socket-accepting program in the examples
//! and integration tests.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use bytes::Bytes;

use crate::classify::classify;
use crate::server::PsdServer;

/// A parsed HTTP-lite request.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpRequest {
    /// Request method (GET, POST, …) — not interpreted.
    pub method: String,
    /// Request path (before `?`).
    pub path: String,
    /// `cost` query parameter, if present and parseable.
    pub cost: Option<f64>,
    /// `X-Class` header value, if present.
    pub x_class: Option<String>,
}

/// Parse the head of an HTTP request (request line + headers).
pub fn parse_request<R: BufRead>(reader: &mut R) -> std::io::Result<HttpRequest> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("/").to_string();
    if method.is_empty() {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "empty request line"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target, None),
    };
    let cost = query.as_deref().and_then(|q| {
        q.split('&').find_map(|kv| kv.strip_prefix("cost=")).and_then(|v| v.parse::<f64>().ok())
    });
    let mut x_class = None;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header.trim().is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("x-class") {
                x_class = Some(value.trim().to_string());
            }
        }
    }
    Ok(HttpRequest { method, path, cost, x_class })
}

fn handle_connection(stream: TcpStream, server: &PsdServer, default_cost: f64) {
    let peer = stream.peer_addr().ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    let req = match parse_request(&mut reader) {
        Ok(r) => r,
        Err(_) => {
            let _ = stream.write_all(b"HTTP/1.0 400 Bad Request\r\n\r\n");
            return;
        }
    };
    let class = classify(&req.path, req.x_class.as_deref(), server.num_classes() - 1).class;
    let cost = req.cost.unwrap_or(default_cost).max(1e-3);
    match server.submit_sync(class, cost) {
        Some(done) => {
            let body = Bytes::from(format!(
                "served path={} class={} cost={:.3} delay_s={:.6} service_s={:.6} slowdown={:.3}\n",
                req.path,
                class,
                cost,
                done.delay_s,
                done.service_s,
                done.slowdown()
            ));
            let head = format!(
                "HTTP/1.0 200 OK\r\nContent-Length: {}\r\nX-Class: {}\r\nX-Delay-Us: {}\r\nX-Slowdown: {:.4}\r\n\r\n",
                body.len(),
                class,
                (done.delay_s * 1e6) as u64,
                done.slowdown()
            );
            let _ = stream.write_all(head.as_bytes());
            let _ = stream.write_all(&body);
        }
        None => {
            let _ = stream.write_all(b"HTTP/1.0 503 Service Unavailable\r\n\r\n");
        }
    }
    let _ = peer;
}

/// Accept loop: serve connections until `stop` flips. One thread per
/// connection (requests block on the PSD queue anyway).
pub fn serve(
    listener: TcpListener,
    server: Arc<PsdServer>,
    default_cost: f64,
    stop: Arc<AtomicBool>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let server = Arc::clone(&server);
                thread::spawn(move || handle_connection(stream, &server, default_cost));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(std::time::Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_request_line_and_query() {
        let raw = "GET /class1/page?cost=2.5&x=1 HTTP/1.0\r\nHost: a\r\n\r\n";
        let r = parse_request(&mut Cursor::new(raw)).unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/class1/page");
        assert_eq!(r.cost, Some(2.5));
        assert_eq!(r.x_class, None);
    }

    #[test]
    fn parses_x_class_header() {
        let raw = "POST / HTTP/1.0\r\nX-Class: 2\r\nContent-Length: 0\r\n\r\n";
        let r = parse_request(&mut Cursor::new(raw)).unwrap();
        assert_eq!(r.x_class.as_deref(), Some("2"));
        assert_eq!(r.cost, None);
    }

    #[test]
    fn case_insensitive_header() {
        let raw = "GET / HTTP/1.0\r\nx-CLASS: 1\r\n\r\n";
        let r = parse_request(&mut Cursor::new(raw)).unwrap();
        assert_eq!(r.x_class.as_deref(), Some("1"));
    }

    #[test]
    fn rejects_empty() {
        assert!(parse_request(&mut Cursor::new("")).is_err());
    }

    #[test]
    fn bad_cost_ignored() {
        let raw = "GET /?cost=abc HTTP/1.0\r\n\r\n";
        let r = parse_request(&mut Cursor::new(raw)).unwrap();
        assert_eq!(r.cost, None);
    }
}
