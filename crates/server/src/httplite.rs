//! The HTTP-lite front-end: classify (`X-Class` header or URL prefix),
//! execute through the PSD dispatch queue, and answer with timing
//! headers so external clients can observe their slowdown.
//!
//! Two interchangeable engines serve the same protocol (selected by
//! [`FrontendConfig::engine`], surfaced as `--engine` on the binaries):
//!
//! * [`EngineKind::Threads`] — the legacy baseline: one OS thread per
//!   connection, blocked in `submit_sync` while the PSD queue runs the
//!   request. Simple, and fine up to a few dozen connections.
//! * [`EngineKind::Reactor`] — an epoll event loop
//!   ([`crate::reactor`]): all connections multiplexed on one thread,
//!   PSD workers reply through a completion mailbox + poller wakeup.
//!   Hundreds of keep-alive connections cost file descriptors, not
//!   threads.
//!
//! Both engines share the sans-io parser and serializer in
//! [`crate::codec`] (so the wire behavior cannot drift), the vendored
//! [`polling`] readiness poller for accept (no accept-poll sleep), a
//! [`FrontendConfig::max_connections`] cap answered with `503` +
//! `Connection: close`, and a [`FrontendConfig::idle_timeout`] for
//! keep-alive connections. HTTP/1.1 connections are kept alive
//! (`Connection:` headers honored in both directions); HTTP/1.0
//! defaults to close. Parsing is bounded (see the codec's limits), so a
//! hostile client cannot feed the parser unbounded input.
//!
//! This is not a web server — it exists so the "Internet server" in the
//! paper's title is an actual socket-accepting program in the examples,
//! the load-generation harness (`psd-loadgen`) and integration tests.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use polling::{Interest, Poller};

pub use crate::codec::{HttpRequest, MAX_BODY_BYTES, MAX_HEADERS, MAX_HEAD_LINE_BYTES};

use crate::classify::classify;
use crate::codec::{RequestCodec, Response};
use crate::reactor;
use crate::server::{Completion, PsdServer};

/// How long an idle keep-alive connection waits for the next request
/// before re-checking the stop flag (threaded engine's read timeout).
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Consecutive mid-request read timeouts tolerated before the
/// connection is dropped as stalled (with [`IDLE_POLL`] this bounds a
/// half-written request head to a few seconds).
const MAX_MID_REQUEST_STALLS: u32 = 50;

/// How long the accept loop parks in the poller between stop-flag
/// checks when no connection arrives. [`HttpFrontend::shutdown`] cuts
/// the wait short with [`Poller::notify`]; for the bare [`serve`] loop
/// (whose caller only has the stop flag) this bounds stop latency, so
/// it stays small — still 25× fewer idle wakeups than the removed 2 ms
/// accept-poll sleep.
const ACCEPT_TICK: Duration = Duration::from_millis(50);

/// Which front-end engine serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Thread per connection, blocking I/O (the legacy baseline).
    Threads,
    /// Sharded epoll event loops multiplexing every connection.
    Reactor,
    /// The same sharded reactor on an io_uring completion plane:
    /// batched SQEs, registered buffers, in-ring doorbell. Requires
    /// kernel support — [`HttpFrontend::start_on_with`] probes at
    /// startup and falls back to [`EngineKind::Reactor`] (with a
    /// logged warning) when the kernel refuses io_uring.
    Uring,
}

impl EngineKind {
    /// Parse a CLI token (`threads` | `reactor` | `uring`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "threads" => Some(EngineKind::Threads),
            "reactor" => Some(EngineKind::Reactor),
            "uring" => Some(EngineKind::Uring),
            _ => None,
        }
    }

    /// The CLI token for this engine.
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::Threads => "threads",
            EngineKind::Reactor => "reactor",
            EngineKind::Uring => "uring",
        }
    }
}

/// True when the running kernel accepts io_uring (one cached probe:
/// ring setup + NOP round-trip). [`EngineKind::Uring`] serves on the
/// ring iff this holds; otherwise it falls back to the epoll reactor.
/// Tests and the bench harness use it to self-skip uring cases on
/// kernels (or seccomp sandboxes) without io_uring.
pub fn uring_available() -> bool {
    polling::uring::available()
}

/// Front-end configuration shared by both engines.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Which engine serves connections.
    pub engine: EngineKind,
    /// Reactor event-loop shards: connections are assigned round-robin
    /// across this many independent epoll threads, each with its own
    /// poller, connection table and completion mailbox (share-nothing).
    /// Ignored by the threaded engine. Clamped to ≥ 1.
    pub shards: usize,
    /// Most concurrently open connections (across all shards); excess
    /// accepts are answered `503 Service Unavailable` +
    /// `Connection: close` immediately.
    pub max_connections: usize,
    /// Idle keep-alive connections (no request in flight, no bytes
    /// arriving) are closed after this long — slow-loris heads count as
    /// idle too, since only *arriving bytes* refresh the clock.
    pub idle_timeout: Duration,
    /// Cost assigned to requests without a `?cost=` parameter.
    pub default_cost: f64,
}

/// The default reactor shard count: one event loop per core, capped at
/// 4 — beyond that the PSD dispatch core, not the event loops, is the
/// bottleneck.
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(4)
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self {
            engine: EngineKind::Threads,
            shards: default_shards(),
            max_connections: 1024,
            idle_timeout: Duration::from_secs(30),
            default_cost: 1.0,
        }
    }
}

/// Map a parsed request onto (class, cost) for the PSD queue. The cost
/// is clamped into the finite band `submit` accepts — `?cost=inf`
/// parses as a valid f64 and would otherwise trip the queue's
/// positivity assert, letting one request panic a serving thread (or
/// the whole reactor loop).
pub(crate) fn class_and_cost(
    server: &PsdServer,
    req: &HttpRequest,
    default_cost: f64,
) -> (usize, f64) {
    let class = classify(&req.path, req.x_class.as_deref(), server.num_classes() - 1).class;
    let mut cost = req.cost.unwrap_or(default_cost);
    if !cost.is_finite() {
        cost = 1.0;
    }
    (class, cost.clamp(1e-3, 1e9))
}

/// Serialize the `200 OK` response both engines send for an executed
/// request **directly into `out`**, using `scratch` for the body (the
/// head needs the body length first). Both buffers are caller-owned
/// and reused across requests, so the per-request response path
/// allocates nothing — the old `Response`-building version cost a
/// `Vec`, three header `String`s and a body `String` per request,
/// which at reactor rates was the largest allocation source in the
/// server. The wire bytes are identical between engines because both
/// call exactly this function.
pub(crate) fn write_ok_response(
    out: &mut Vec<u8>,
    scratch: &mut Vec<u8>,
    req: &HttpRequest,
    class: usize,
    cost: f64,
    done: &Completion,
    keep_alive: bool,
) {
    scratch.clear();
    let _ = writeln!(
        scratch,
        "served path={} class={} cost={:.3} delay_s={:.6} service_s={:.6} slowdown={:.3}",
        req.path,
        class,
        cost,
        done.delay_s,
        done.service_s,
        done.slowdown()
    );
    let proto = if req.http11 { "HTTP/1.1" } else { "HTTP/1.0" };
    let conn = if keep_alive { "keep-alive" } else { "close" };
    let _ = write!(
        out,
        "{proto} 200 OK\r\nContent-Length: {}\r\nConnection: {conn}\r\nX-Class: {class}\r\n\
         X-Delay-Us: {}\r\nX-Slowdown: {:.4}\r\n\r\n",
        scratch.len(),
        (done.delay_s * 1e6) as u64,
        done.slowdown()
    );
    out.extend_from_slice(scratch);
}

/// Record one completed request into the trace ring and the latency
/// histogram. Assembled exactly once, at respond time, from values the
/// response path already has — the only extra work on the hot path is
/// one sampling draw and (when kept) a slot overwrite; no allocation.
/// `total` is admit-to-respond; write-back is whatever of it the queue
/// and the task server cannot account for.
pub(crate) fn record_span(
    server: &PsdServer,
    shard: usize,
    class: usize,
    cost: f64,
    done: &Completion,
    total: Duration,
) {
    let telemetry = server.obs();
    let total_ns = total.as_nanos().min(u64::MAX as u128) as u64;
    let queue_ns = (done.delay_s.max(0.0) * 1e9) as u64;
    let service_ns = (done.service_s.max(0.0) * 1e9) as u64;
    telemetry.spans.record(
        shard,
        psd_obs::SpanRecord {
            seq: 0,
            class: class as u32,
            shard: shard as u32,
            admitted: true,
            cost,
            queue_ns,
            service_ns,
            nominal_ns: (cost * server.work_unit().as_secs_f64() * 1e9) as u64,
            writeback_ns: total_ns.saturating_sub(queue_ns.saturating_add(service_ns)),
        },
    );
    telemetry.observe_latency_ns(class, total_ns);
}

/// Record a request turned away by the admission draw (zero timing
/// stages, `admitted: false`) so `/trace` decompositions account shed
/// load per class.
pub(crate) fn record_shed_span(server: &PsdServer, shard: usize, class: usize, cost: f64) {
    server.obs().spans.record(
        shard,
        psd_obs::SpanRecord {
            seq: 0,
            class: class as u32,
            shard: shard as u32,
            admitted: false,
            cost,
            queue_ns: 0,
            service_ns: 0,
            nominal_ns: (cost * server.work_unit().as_secs_f64() * 1e9) as u64,
            writeback_ns: 0,
        },
    );
}

/// A stable per-thread index for sharding trace-ring writes from the
/// threaded engine (the reactor uses its shard index instead).
fn span_shard() -> usize {
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ID: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

/// `400 Bad Request`, always closing (malformed head — the framing is
/// unknown, so the HTTP/1.0 status line is the safe common ground).
pub(crate) fn bad_request() -> Response {
    Response::empty(false, 400, "Bad Request", false)
}

/// `503 Service Unavailable`, always closing.
pub(crate) fn service_unavailable(http11: bool) -> Response {
    Response::empty(http11, 503, "Service Unavailable", false)
}

/// The admission-shed response: `503` + `Connection: close` like the
/// saturation answer, but tagged `X-Shed: 1` so load generators can
/// account shed load separately from failures. Closing is deliberate:
/// a shedding server wants the connection's kernel buffers back, and a
/// well-behaved client backs off before reconnecting.
pub(crate) fn shed_response(http11: bool) -> Response {
    let mut resp = Response::empty(http11, 503, "Service Unavailable", false);
    resp.extra_headers.push(("X-Shed", "1".to_string()));
    resp
}

/// Answer one over-cap accept with 503 and drop the connection. Writes
/// with a short timeout so a client that never reads cannot wedge the
/// accept path.
fn reject_saturated(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    let _ = stream.write_all(&service_unavailable(true).to_bytes());
}

/// Serve requests on one connection until it closes, errors, asks for
/// `Connection: close`, idles past the timeout, or `stop` flips while
/// the connection is idle. (Threaded engine: the codec does the
/// parsing; this loop owns the blocking socket and the stall policy.)
fn handle_connection(
    stream: TcpStream,
    server: &PsdServer,
    default_cost: f64,
    idle_timeout: Duration,
    stop: &AtomicBool,
) {
    // The idle poll lets keep-alive handlers notice a drain request.
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let mut codec = RequestCodec::new();
    let mut chunk = [0u8; 8192];
    // Reused across every request on this connection: the response
    // head+body buffer and the body-formatting scratch (see
    // `write_ok_response`) — zero per-request allocation after warmup.
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    let mut stalls = 0u32;
    let mut idle_since = Instant::now();
    loop {
        // Serve everything already parsed before reading again.
        match codec.poll() {
            Err(_) => {
                let _ = stream.write_all(&bad_request().to_bytes());
                return;
            }
            Ok(Some(req)) => {
                // Stop keeping alive once a drain began so shutdown
                // converges; unframed bodies force a close too.
                let keep = req.keep_alive() && req.framed() && !stop.load(Ordering::SeqCst);
                // Admin routes are served by the front-end itself —
                // never classified, admitted or queued.
                let info = crate::admin::AdminInfo {
                    engine: "threads",
                    shard_stats: &[],
                    uring_stats: &[],
                };
                if let Some(resp) = crate::admin::handle(server, &req, keep, &info) {
                    let closing = !resp.keep_alive;
                    if stream.write_all(&resp.to_bytes()).is_err() || closing {
                        return;
                    }
                    idle_since = Instant::now();
                    continue;
                }
                let since = Instant::now();
                let (class, cost) = class_and_cost(server, &req, default_cost);
                // Admission shedding: the control plane's per-class
                // probabilities, highest classes protected.
                if !server.admit(class, cost) {
                    record_shed_span(server, span_shard(), class, cost);
                    let _ = stream.write_all(&shed_response(req.http11).to_bytes());
                    return;
                }
                let written = match server.submit_sync(class, cost) {
                    Some(done) => {
                        out.clear();
                        write_ok_response(&mut out, &mut scratch, &req, class, cost, &done, keep);
                        let written = stream.write_all(&out);
                        // Threaded engine spans include the socket
                        // write: write-back here is real write-back.
                        record_span(server, span_shard(), class, cost, &done, since.elapsed());
                        written
                    }
                    None => {
                        let _ = stream.write_all(&service_unavailable(req.http11).to_bytes());
                        return;
                    }
                };
                if written.is_err() || !keep {
                    return;
                }
                idle_since = Instant::now();
                continue;
            }
            Ok(None) => {}
        }
        match stream.read(&mut chunk) {
            // EOF: a clean close between requests, or a truncated
            // request — either way there is nothing left to answer.
            Ok(0) => return,
            Ok(n) => {
                codec.feed(&chunk[..n]);
                stalls = 0; // data arrived: the client is making progress
                idle_since = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if codec.is_mid_request() {
                    stalls += 1;
                    if stalls > MAX_MID_REQUEST_STALLS {
                        let _ = stream.write_all(&bad_request().to_bytes());
                        return;
                    }
                } else {
                    if stop.load(Ordering::SeqCst) {
                        return; // graceful drain: close the idle connection
                    }
                    if idle_since.elapsed() >= idle_timeout {
                        return; // idle keep-alive expired
                    }
                }
            }
            Err(_) => return,
        }
    }
}

/// Counts in-flight connection handlers so a drain can wait for them
/// and the accept loop can enforce the connection cap.
#[derive(Default)]
struct ConnTracker {
    active: Mutex<usize>,
    idle: Condvar,
}

impl ConnTracker {
    fn started(&self) {
        *self.active.lock() += 1;
    }

    fn finished(&self) {
        let mut g = self.active.lock();
        *g -= 1;
        if *g == 0 {
            self.idle.notify_all();
        }
    }

    /// RAII completion: releases the handler's `PsdServer` `Arc` and
    /// then reports the slot free — **also on unwind**, so a panicking
    /// handler cannot leak a `max_connections` slot or wedge
    /// `wait_idle` forever.
    fn guard(self: &Arc<Self>, server: Arc<PsdServer>) -> HandlerGuard {
        self.started();
        HandlerGuard { server: Some(server), tracker: Arc::clone(self) }
    }

    fn active(&self) -> usize {
        *self.active.lock()
    }

    /// Wait until no handler is running, up to `timeout`. Returns the
    /// number of handlers still alive (0 on success).
    fn wait_idle(&self, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        let mut g = self.active.lock();
        while *g > 0 {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            self.idle.wait_for(&mut g, deadline - now);
        }
        *g
    }
}

/// See [`ConnTracker::guard`].
struct HandlerGuard {
    server: Option<Arc<PsdServer>>,
    tracker: Arc<ConnTracker>,
}

impl HandlerGuard {
    fn server(&self) -> &PsdServer {
        self.server.as_deref().expect("held until drop")
    }
}

impl Drop for HandlerGuard {
    fn drop(&mut self) {
        // Release the server before reporting done, so a drain that saw
        // zero handlers can unwrap the Arc.
        self.server.take();
        self.tracker.finished();
    }
}

fn accept_loop(
    listener: TcpListener,
    server: Arc<PsdServer>,
    cfg: FrontendConfig,
    stop: Arc<AtomicBool>,
    tracker: Arc<ConnTracker>,
    poller: Arc<Poller>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    poller.add(listener.as_raw_fd(), 0, Interest::READABLE)?;
    let mut events = Vec::new();
    let result = 'outer: loop {
        if stop.load(Ordering::SeqCst) {
            break Ok(());
        }
        // Readiness-based accept: park in the poller until a connection
        // arrives (or shutdown notifies) instead of the old 2 ms
        // sleep-poll, which burned idle CPU and jittered accept latency.
        if let Err(e) = poller.wait(&mut events, Some(ACCEPT_TICK)) {
            break Err(e);
        }
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if tracker.active() >= cfg.max_connections {
                        reject_saturated(stream);
                        continue;
                    }
                    let _ = stream.set_nonblocking(false);
                    let stop = Arc::clone(&stop);
                    let guard = tracker.guard(Arc::clone(&server));
                    let default_cost = cfg.default_cost;
                    let idle_timeout = cfg.idle_timeout;
                    thread::spawn(move || {
                        handle_connection(
                            stream,
                            guard.server(),
                            default_cost,
                            idle_timeout,
                            &stop,
                        );
                        drop(guard);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => break 'outer Err(e),
            }
        }
    };
    let _ = poller.delete(listener.as_raw_fd());
    result
}

/// Accept loop: serve connections until `stop` flips, one thread per
/// connection with the default [`FrontendConfig`] limits.
///
/// This is the bare loop; [`HttpFrontend`] wraps it with the graceful
/// drain the `psd_httpd` binary and the load-generation harness use.
pub fn serve(
    listener: TcpListener,
    server: Arc<PsdServer>,
    default_cost: f64,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    let cfg = FrontendConfig { default_cost, ..FrontendConfig::default() };
    let poller = Arc::new(Poller::new()?);
    accept_loop(listener, server, cfg, stop, Arc::new(ConnTracker::default()), poller)
}

enum Engine {
    Threads {
        stop: Arc<AtomicBool>,
        tracker: Arc<ConnTracker>,
        poller: Arc<Poller>,
        accept: Option<JoinHandle<io::Result<()>>>,
    },
    Reactor(reactor::Handle),
}

/// A running HTTP front-end with a graceful drain: `shutdown` stops
/// accepting, closes idle keep-alive connections, waits for in-flight
/// requests, and joins the engine's threads. Construct with
/// [`HttpFrontend::start`] (threaded engine, defaults) or
/// [`HttpFrontend::start_with`] (explicit [`FrontendConfig`], either
/// engine).
pub struct HttpFrontend {
    addr: SocketAddr,
    engine: Engine,
}

impl HttpFrontend {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the **threaded** engine with default limits — the legacy
    /// constructor most tests use.
    pub fn start(addr: &str, server: Arc<PsdServer>, default_cost: f64) -> io::Result<Self> {
        Self::start_with(addr, server, FrontendConfig { default_cost, ..FrontendConfig::default() })
    }

    /// Start the threaded engine on an already-bound listener.
    pub fn start_on(
        listener: TcpListener,
        server: Arc<PsdServer>,
        default_cost: f64,
    ) -> io::Result<Self> {
        Self::start_on_with(
            listener,
            server,
            FrontendConfig { default_cost, ..FrontendConfig::default() },
        )
    }

    /// Bind `addr` and start the engine selected by `cfg`.
    pub fn start_with(addr: &str, server: Arc<PsdServer>, cfg: FrontendConfig) -> io::Result<Self> {
        Self::start_on_with(TcpListener::bind(addr)?, server, cfg)
    }

    /// Start the engine selected by `cfg` on an already-bound listener.
    pub fn start_on_with(
        listener: TcpListener,
        server: Arc<PsdServer>,
        cfg: FrontendConfig,
    ) -> io::Result<Self> {
        let addr = listener.local_addr()?;
        let engine = match cfg.engine {
            EngineKind::Threads => {
                let stop = Arc::new(AtomicBool::new(false));
                let tracker = Arc::new(ConnTracker::default());
                let poller = Arc::new(Poller::new()?);
                let accept = {
                    let stop = Arc::clone(&stop);
                    let tracker = Arc::clone(&tracker);
                    let poller = Arc::clone(&poller);
                    thread::spawn(move || accept_loop(listener, server, cfg, stop, tracker, poller))
                };
                Engine::Threads { stop, tracker, poller, accept: Some(accept) }
            }
            EngineKind::Reactor => Engine::Reactor(reactor::Handle::start(
                listener,
                server,
                cfg,
                reactor::Backend::Epoll,
            )?),
            EngineKind::Uring => {
                // Probe first (cheap, cached): a kernel without io_uring
                // (ENOSYS), or one that refuses it (seccomp/EPERM),
                // downgrades to the epoll reactor with a warning rather
                // than failing startup — `--engine uring` is a request
                // for the fast path, not a hard requirement. A probe
                // pass followed by a ring-construction failure (e.g.
                // memlock exhaustion) downgrades the same way.
                match polling::uring::probe() {
                    Err(why) => {
                        eprintln!(
                            "psd-server: io_uring unavailable ({why}); \
                             falling back to the epoll reactor engine"
                        );
                        Engine::Reactor(reactor::Handle::start(
                            listener,
                            server,
                            cfg,
                            reactor::Backend::Epoll,
                        )?)
                    }
                    Ok(()) => {
                        let listener2 = listener.try_clone()?;
                        match reactor::Handle::start(
                            listener,
                            server.clone(),
                            cfg.clone(),
                            reactor::Backend::Uring,
                        ) {
                            Ok(handle) => Engine::Reactor(handle),
                            Err(e) => {
                                eprintln!(
                                    "psd-server: io_uring engine failed to start ({e}); \
                                     falling back to the epoll reactor engine"
                                );
                                Engine::Reactor(reactor::Handle::start(
                                    listener2,
                                    server,
                                    cfg,
                                    reactor::Backend::Epoll,
                                )?)
                            }
                        }
                    }
                }
            }
        };
        Ok(Self { addr, engine })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Which engine is **actually** serving — after an io_uring probe
    /// failure this reports [`EngineKind::Reactor`] even though the
    /// config asked for [`EngineKind::Uring`], so callers (and the
    /// harness) can see which plane they measured.
    pub fn engine(&self) -> EngineKind {
        match &self.engine {
            Engine::Threads { .. } => EngineKind::Threads,
            Engine::Reactor(handle) => match handle.backend() {
                reactor::Backend::Epoll => EngineKind::Reactor,
                reactor::Backend::Uring => EngineKind::Uring,
            },
        }
    }

    /// Graceful drain: stop accepting, let in-flight requests finish,
    /// close idle keep-alive connections, join the engine's threads.
    /// Returns the number of connections (reactor) or handler threads
    /// (threaded) that failed to finish within `timeout` — 0 on a clean
    /// drain; non-zero leftovers keep the `PsdServer` `Arc` alive.
    pub fn shutdown(mut self, timeout: Duration) -> io::Result<usize> {
        match &mut self.engine {
            Engine::Threads { stop, tracker, poller, accept } => {
                stop.store(true, Ordering::SeqCst);
                let _ = poller.notify();
                let accept_result = match accept.take() {
                    Some(h) => h
                        .join()
                        .map_err(|_| io::Error::other("accept thread panicked"))
                        .and_then(|r| r),
                    None => Ok(()),
                };
                // Even when the accept loop died early, wait for the
                // handlers it already spawned before reporting —
                // otherwise callers tear the server down under live
                // connections.
                let leftover = tracker.wait_idle(timeout);
                accept_result?;
                Ok(leftover)
            }
            Engine::Reactor(handle) => handle.shutdown(timeout),
        }
    }
}

impl Drop for HttpFrontend {
    /// Dropping without [`HttpFrontend::shutdown`] (e.g. on an error
    /// path) still stops the engine and reclaims its accept/event
    /// thread and port; threaded connection handlers wind down on their
    /// next idle poll.
    fn drop(&mut self) {
        if let Engine::Threads { stop, poller, accept, .. } = &mut self.engine {
            stop.store(true, Ordering::SeqCst);
            let _ = poller.notify();
            if let Some(h) = accept.take() {
                let _ = h.join();
            }
        }
        // The reactor handle has its own Drop with the same contract.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{PsdServer, ServerConfig};
    use std::io::Read;

    fn quick_server() -> Arc<PsdServer> {
        Arc::new(PsdServer::start(ServerConfig {
            deltas: vec![1.0],
            work_unit: Duration::from_micros(100),
            ..ServerConfig::default()
        }))
    }

    #[test]
    fn keep_alive_survives_request_bodies() {
        let server = quick_server();
        let fe = HttpFrontend::start("127.0.0.1:0", Arc::clone(&server), 1.0).expect("bind");
        let mut s = TcpStream::connect(fe.addr()).expect("connect");
        // A request with a body, then a second request on the same
        // connection: the body must be drained, not parsed as a head.
        s.write_all(b"POST /a HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        s.write_all(b"GET /b HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut all = String::new();
        s.read_to_string(&mut all).unwrap();
        let oks = all.matches("HTTP/1.1 200 OK").count();
        assert_eq!(oks, 2, "both requests must answer 200, got:\n{all}");
        assert!(!all.contains("400"), "body bytes must not desync the parser:\n{all}");
        assert_eq!(fe.shutdown(Duration::from_secs(5)).expect("drain"), 0);
        Arc::try_unwrap(server).ok().expect("handlers drained").shutdown();
    }

    #[test]
    fn malformed_head_answers_400() {
        let server = quick_server();
        let fe = HttpFrontend::start("127.0.0.1:0", Arc::clone(&server), 1.0).expect("bind");
        let mut s = TcpStream::connect(fe.addr()).expect("connect");
        s.write_all(b"GET\r\n\r\n").unwrap();
        let mut all = String::new();
        s.read_to_string(&mut all).unwrap();
        assert!(all.starts_with("HTTP/1.0 400"), "got:\n{all}");
        assert_eq!(fe.shutdown(Duration::from_secs(5)).expect("drain"), 0);
        Arc::try_unwrap(server).ok().expect("handlers drained").shutdown();
    }

    #[test]
    fn saturated_threaded_engine_answers_503() {
        let server = quick_server();
        let fe = HttpFrontend::start_with(
            "127.0.0.1:0",
            Arc::clone(&server),
            FrontendConfig { max_connections: 2, ..FrontendConfig::default() },
        )
        .expect("bind");
        // Two connections occupy the cap (handlers spawn at accept)…
        let mut held: Vec<TcpStream> = (0..2)
            .map(|_| {
                let mut s = TcpStream::connect(fe.addr()).expect("connect");
                s.write_all(b"GET /a HTTP/1.1\r\n\r\n").unwrap();
                let mut buf = [0u8; 256];
                let n = s.read(&mut buf).unwrap();
                assert!(std::str::from_utf8(&buf[..n]).unwrap().contains("200 OK"));
                s
            })
            .collect();
        // …so the third is rejected outright with 503 + close.
        let mut s3 = TcpStream::connect(fe.addr()).expect("connect");
        let mut all = String::new();
        s3.read_to_string(&mut all).unwrap();
        assert!(all.starts_with("HTTP/1.1 503"), "over-cap accept must 503, got:\n{all}");
        assert!(all.contains("Connection: close"), "got:\n{all}");
        // Closing one held connection frees a slot for new arrivals.
        held.pop();
        std::thread::sleep(Duration::from_millis(300));
        let mut s4 = TcpStream::connect(fe.addr()).expect("connect");
        s4.write_all(b"GET /b HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut all = String::new();
        s4.read_to_string(&mut all).unwrap();
        assert!(all.contains("200 OK"), "freed slot must serve again, got:\n{all}");
        drop(held);
        assert_eq!(fe.shutdown(Duration::from_secs(5)).expect("drain"), 0);
        Arc::try_unwrap(server).ok().expect("handlers drained").shutdown();
    }

    #[test]
    fn threaded_idle_timeout_closes_quiet_keep_alives() {
        let server = quick_server();
        let fe = HttpFrontend::start_with(
            "127.0.0.1:0",
            Arc::clone(&server),
            FrontendConfig {
                idle_timeout: Duration::from_millis(250),
                ..FrontendConfig::default()
            },
        )
        .expect("bind");
        let mut s = TcpStream::connect(fe.addr()).expect("connect");
        s.write_all(b"GET /a HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = [0u8; 512];
        let n = s.read(&mut buf).unwrap();
        assert!(std::str::from_utf8(&buf[..n]).unwrap().contains("200 OK"));
        // Now go quiet: the server must close us, not hold the handler
        // thread forever.
        let t = Instant::now();
        let n = s.read(&mut buf).unwrap();
        assert_eq!(n, 0, "idle connection must be closed by the server");
        assert!(t.elapsed() >= Duration::from_millis(150), "not closed *immediately*");
        assert_eq!(fe.shutdown(Duration::from_secs(5)).expect("drain"), 0);
        Arc::try_unwrap(server).ok().expect("handlers drained").shutdown();
    }

    #[test]
    fn dropping_frontend_stops_the_accept_loop() {
        let server = quick_server();
        let fe = HttpFrontend::start("127.0.0.1:0", Arc::clone(&server), 1.0).expect("bind");
        let addr = fe.addr();
        drop(fe); // no shutdown(): Drop must still stop the accept thread
                  // Once the loop is gone, fresh connections go unserved: either
                  // the connect fails or the socket just closes without a byte.
        std::thread::sleep(Duration::from_millis(30));
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
            let _ = s.write_all(b"GET / HTTP/1.0\r\n\r\n");
            let mut buf = [0u8; 16];
            assert!(
                !matches!(s.read(&mut buf), Ok(n) if n > 0),
                "accept loop must be dead after drop"
            );
        }
        Arc::try_unwrap(server).ok().expect("no handlers left").shutdown();
    }
}
