//! Timer-wheel virtual task servers: the paper's per-class *serial
//! virtual task server* (Fig. 1) executed as **deadline chains on a
//! hashed hierarchical timer wheel** instead of worker threads parked
//! in `thread::sleep`.
//!
//! In rate-partition mode a class's requests run one at a time,
//! stretched by `1/r_i` — pure *waiting*, not computation. PR 2/PR 3
//! realized that wait by occupying an OS worker thread per in-service
//! request, so service concurrency was capped by the worker count and
//! every completion cost a context switch pair. Here a request's
//! *virtual finish time* is computed at dispatch and inserted into the
//! wheel; one timer thread fires every due completion in batches. No
//! thread blocks per request, and in-service concurrency is bounded
//! only by the class count (or memory), which is what lets hundreds of
//! stretched requests progress on a 2-worker configuration.
//!
//! ```text
//!  submit ──▶ lane[class] (tiny mutex)        ┌── timer thread ──────────────┐
//!              ├─ idle: schedule finish time ─┼▶ wheel: 4 levels × 256 slots │
//!              └─ busy: FIFO behind head      │   advance → fire batch       │
//!                                             │   fire: record metrics,      │
//!     chain: fire pops the lane FIFO and ◀────┤   deliver CompletionNotify,  │
//!     schedules the next finish time          │   chain next from the lane   │
//!                                             └──────────────────────────────┘
//! ```
//!
//! The wheel itself ([`WheelCore`]) is a pure data structure (ticks in,
//! fired payloads out) so the tick rounding, cascade and cancellation
//! logic is unit-testable without clocks or threads. Expired slots keep
//! their capacity, so steady-state operation allocates nothing.

use std::collections::{HashSet, VecDeque};
use std::mem;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use psd_obs::WheelStats;

use crate::metrics::{MetricsRecorder, MetricsSink};
use crate::queues::{CompletionNotify, QueuedRequest, MAX_STRETCH, MIN_SHARE};
use crate::server::Completion;
use crate::timing;

/// Wheel resolution in nanoseconds (50 µs). Finish times are rounded
/// **up** to the next tick, so a completion fires at most one tick
/// late; 50 µs is well under both the sleep-overshoot the old path
/// suffered and the shortest modeled service times (≥ ~100 µs work
/// units).
const TICK_NANOS: u64 = 50_000;

/// Slots per level (256 ⇒ 8 bits of the tick count per level).
const SLOTS: usize = 256;

const SLOT_BITS: u32 = 8;

/// Hierarchy depth: 4 levels × 8 bits = 2³² ticks ≈ 59 hours of range
/// at the 50 µs tick; farther deadlines are clamped to the horizon.
const LEVELS: usize = 4;

const MAX_RANGE: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// One scheduled timer.
#[derive(Debug)]
struct Entry<T> {
    id: u64,
    expiry: u64,
    payload: T,
}

/// The hashed hierarchical timer wheel, in pure tick arithmetic.
///
/// Level `L` slot `j` holds timers whose expiry tick has `j` in bit
/// range `[8L, 8L+8)` and is between `256^L` and `256^(L+1)` ticks
/// away. Advancing cascades a level-`L` slot down when the clock
/// reaches the slot boundary `j << 8L`, so every timer reaches level 0
/// before it is due and fires in the exact tick of its expiry.
#[derive(Debug)]
pub(crate) struct WheelCore<T> {
    now: u64,
    pending: usize,
    next_id: u64,
    /// Entries re-homed from an outer level toward level 0, cumulative
    /// — the cascade cost the exposition layer reports.
    cascaded: u64,
    cancelled: HashSet<u64>,
    levels: Vec<Vec<Vec<Entry<T>>>>,
}

impl<T> WheelCore<T> {
    pub(crate) fn new() -> Self {
        Self {
            now: 0,
            pending: 0,
            next_id: 0,
            cascaded: 0,
            cancelled: HashSet::new(),
            levels: (0..LEVELS).map(|_| (0..SLOTS).map(|_| Vec::new()).collect()).collect(),
        }
    }

    /// Cumulative count of entries cascaded down a level.
    pub(crate) fn cascaded(&self) -> u64 {
        self.cascaded
    }

    /// Current wheel time in ticks.
    #[cfg(test)]
    pub(crate) fn now(&self) -> u64 {
        self.now
    }

    /// Timers scheduled and not yet fired (cancelled timers count until
    /// their slot drains).
    #[cfg(test)]
    pub(crate) fn pending(&self) -> usize {
        self.pending
    }

    /// Schedule `payload` to fire at absolute tick `expiry` (clamped to
    /// the future and to the wheel horizon). Returns a cancellation id.
    pub(crate) fn schedule_at(&mut self, expiry: u64, payload: T) -> u64 {
        let expiry = expiry.clamp(self.now + 1, self.now + MAX_RANGE - 1);
        let id = self.next_id;
        self.next_id += 1;
        self.pending += 1;
        self.place(Entry { id, expiry, payload });
        id
    }

    /// Cancel a scheduled timer: it will be discarded instead of fired.
    /// Lazy — the slot entry is dropped when its tick drains. (The
    /// virtual task servers never cancel — an aborted client's request
    /// still occupies its class's serial server for the stretched
    /// duration, exactly as a parked worker thread used to — but the
    /// wheel supports it for callers that do abort.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn cancel(&mut self, id: u64) {
        self.cancelled.insert(id);
    }

    fn place(&mut self, e: Entry<T>) {
        let delta = e.expiry.saturating_sub(self.now);
        let mut lvl = 0;
        while lvl + 1 < LEVELS && delta >= 1 << (SLOT_BITS * (lvl as u32 + 1)) {
            lvl += 1;
        }
        let slot = ((e.expiry >> (SLOT_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as usize;
        self.levels[lvl][slot].push(e);
    }

    /// The next tick at which something happens: a level-0 expiry or a
    /// higher-level cascade boundary with occupants. `None` when empty.
    /// Sleeping until this tick and re-advancing is always correct —
    /// a cascade wake re-files entries and yields a new, exact deadline.
    pub(crate) fn next_event_tick(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        for j in 1..=(SLOTS as u64 - 1) {
            let t = self.now + j;
            if !self.levels[0][(t & (SLOTS as u64 - 1)) as usize].is_empty() {
                best = Some(t);
                break;
            }
        }
        for lvl in 1..LEVELS {
            let shift = SLOT_BITS * lvl as u32;
            let base = self.now >> shift;
            for k in 1..=(SLOTS as u64) {
                let s = base + k;
                let boundary = s << shift;
                if best.is_some_and(|b| b <= boundary) {
                    break;
                }
                if !self.levels[lvl][(s & (SLOTS as u64 - 1)) as usize].is_empty() {
                    best = Some(match best {
                        Some(b) => b.min(boundary),
                        None => boundary,
                    });
                    break;
                }
            }
        }
        best
    }

    /// Advance the wheel clock to absolute tick `to`, appending every
    /// fired payload to `fired`. Empty stretches are skipped in O(1)
    /// per occupied slot, so a long idle gap costs nothing.
    pub(crate) fn advance(&mut self, to: u64, fired: &mut Vec<T>) {
        while self.now < to {
            match self.next_event_tick() {
                Some(t) if t <= to => {
                    self.now = t;
                    self.run_current_tick(fired);
                }
                _ => {
                    self.now = to;
                    return;
                }
            }
        }
    }

    /// Cascade any level boundaries aligned with `now` (top-down, so a
    /// level-2 entry can pass through level 1 in the same tick), then
    /// fire the level-0 slot.
    fn run_current_tick(&mut self, fired: &mut Vec<T>) {
        for lvl in (1..LEVELS).rev() {
            let shift = SLOT_BITS * lvl as u32;
            if self.now & ((1 << shift) - 1) != 0 {
                continue;
            }
            let slot = ((self.now >> shift) & (SLOTS as u64 - 1)) as usize;
            let mut tmp = mem::take(&mut self.levels[lvl][slot]);
            self.cascaded += tmp.len() as u64;
            for e in tmp.drain(..) {
                self.place(e);
            }
            // Hand the (now empty) vec back so the slot keeps capacity.
            self.levels[lvl][slot] = tmp;
        }
        let slot = (self.now & (SLOTS as u64 - 1)) as usize;
        let lane = &mut self.levels[0][slot];
        for e in lane.drain(..) {
            self.pending -= 1;
            debug_assert_eq!(e.expiry, self.now, "level-0 entries fire in their exact tick");
            if !self.cancelled.remove(&e.id) {
                fired.push(e.payload);
            }
        }
    }
}

/// What fires when a virtual task server finishes a request.
struct Pending {
    class: usize,
    enqueued: Instant,
    dispatched: Instant,
    notify: CompletionNotify,
}

/// One class's serial virtual task server: the allocated share (read
/// lock-free on the submit path) and the FIFO of requests waiting
/// behind the in-service head.
struct Lane {
    /// `r_i` as f64 bits; submitters read it without any lock.
    share: AtomicU64,
    queue: Mutex<LaneQueue>,
}

#[derive(Default)]
struct LaneQueue {
    fifo: VecDeque<QueuedRequest>,
    busy: bool,
}

struct WheelShared {
    epoch: Instant,
    work_unit: Duration,
    lanes: Vec<Lane>,
    state: Mutex<WheelCore<Pending>>,
    alarm: Condvar,
    closed: AtomicBool,
    /// Requests accepted and not yet fired (in a FIFO or on the wheel).
    in_flight: AtomicUsize,
    recorder: MetricsRecorder,
    /// Cascade/fire/wakeup counters for the exposition layer.
    stats: WheelStats,
}

/// The rate-partitioned Sleep-workload execution engine: all classes'
/// virtual task servers multiplexed on one timer thread.
pub(crate) struct WheelServers {
    shared: Arc<WheelShared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl WheelServers {
    /// Start the timer thread for `n` classes at an even rate split.
    pub(crate) fn start(n: usize, work_unit: Duration, metrics: &MetricsSink) -> Arc<Self> {
        let even = (1.0 / n as f64).to_bits();
        let shared = Arc::new(WheelShared {
            epoch: Instant::now(),
            work_unit,
            lanes: (0..n)
                .map(|_| Lane {
                    share: AtomicU64::new(even),
                    queue: Mutex::new(LaneQueue::default()),
                })
                .collect(),
            state: Mutex::new(WheelCore::new()),
            alarm: Condvar::new(),
            closed: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            recorder: metrics.recorder(),
            stats: WheelStats::default(),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("psd-wheel".into())
                .spawn(move || timer_loop(&shared))
                .expect("spawn wheel thread")
        };
        Arc::new(Self { shared, thread: Mutex::new(Some(thread)) })
    }

    /// Accept a request: start service immediately if the class's
    /// virtual server is idle, else queue behind it. Returns `false`
    /// after [`WheelServers::close`].
    pub(crate) fn submit(&self, req: QueuedRequest) -> bool {
        let class = req.class.min(self.shared.lanes.len() - 1);
        let lane = &self.shared.lanes[class];
        let start = {
            let mut q = lane.queue.lock();
            // Same protocol as the dispatch queue: `close` passes
            // through every lane lock after flipping the flag, so a
            // submit that saw it unset is visible to the final drain.
            if self.shared.closed.load(Ordering::SeqCst) {
                return false;
            }
            self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            if q.busy {
                q.fifo.push_back(req);
                None
            } else {
                q.busy = true;
                Some(req)
            }
        };
        if let Some(req) = start {
            self.shared.start_service(class, req);
        }
        true
    }

    /// Update the per-class rate shares (normalized internally).
    pub(crate) fn set_weights(&self, weights: &[f64]) {
        let total: f64 = weights.iter().map(|&w| w.max(MIN_SHARE)).sum();
        for (lane, &w) in self.shared.lanes.iter().zip(weights) {
            lane.share.store((w.max(MIN_SHARE) / total).to_bits(), Ordering::Relaxed);
        }
    }

    /// Requests queued behind `class`'s in-service head.
    pub(crate) fn backlog(&self, class: usize) -> usize {
        self.shared.lanes[class].queue.lock().fifo.len()
    }

    /// Stop accepting; queued and in-service requests still complete.
    pub(crate) fn close(&self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        for lane in &self.shared.lanes {
            drop(lane.queue.lock());
        }
        drop(self.shared.state.lock());
        self.shared.alarm.notify_all();
    }

    /// Wait for the timer thread to drain and exit (call after
    /// [`WheelServers::close`]).
    pub(crate) fn join(&self) {
        if let Some(h) = self.thread.lock().take() {
            let _ = h.join();
        }
    }

    /// Activity counters for the exposition layer.
    pub(crate) fn stats(&self) -> &WheelStats {
        &self.shared.stats
    }

    /// Current occupancy: requests accepted and not yet fired.
    pub(crate) fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }
}

impl WheelShared {
    /// Begin executing `req` on `class`'s virtual server: compute the
    /// stretched finish time and file it on the wheel.
    fn start_service(&self, class: usize, req: QueuedRequest) {
        let share = f64::from_bits(self.lanes[class].share.load(Ordering::Relaxed));
        let stretch = (1.0 / share.max(MIN_SHARE)).min(MAX_STRETCH);
        let dispatched = Instant::now();
        // Compensate like the sleeping worker did: the timer thread's
        // wait overshoots by the calibrated amount, so aim early and
        // let the overshoot land the fire on the true finish time.
        let target = timing::compensated(self.work_unit.mul_f64(req.cost * stretch));
        let offset_ns = (dispatched + target - self.epoch).as_nanos() as u64;
        let expiry = offset_ns.div_ceil(TICK_NANOS);
        self.stats.scheduled.fetch_add(1, Ordering::Relaxed);
        let pending = Pending { class, enqueued: req.enqueued, dispatched, notify: req.notify };
        let wake = {
            let mut st = self.state.lock();
            let earlier = st.next_event_tick().is_none_or(|d| expiry < d);
            st.schedule_at(expiry, pending);
            earlier
        };
        if wake {
            self.alarm.notify_one();
        }
    }

    /// Deliver one fired completion and chain the lane's next request.
    fn complete(&self, p: Pending) {
        let service_s = p.dispatched.elapsed().as_secs_f64();
        let delay_s = p.dispatched.saturating_duration_since(p.enqueued).as_secs_f64();
        self.recorder.record(p.class, delay_s, service_s);
        p.notify.deliver(Completion { delay_s, service_s });
        let next = {
            let mut q = self.lanes[p.class].queue.lock();
            match q.fifo.pop_front() {
                Some(next) => Some(next),
                None => {
                    q.busy = false;
                    None
                }
            }
        };
        if let Some(next) = next {
            self.start_service(p.class, next);
        }
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    fn now_tick(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() as u64) / TICK_NANOS
    }
}

fn timer_loop(shared: &WheelShared) {
    let mut fired: Vec<Pending> = Vec::new();
    let mut st = shared.state.lock();
    loop {
        st.advance(shared.now_tick(), &mut fired);
        shared.stats.cascades.store(st.cascaded(), Ordering::Relaxed);
        if !fired.is_empty() {
            shared.stats.fires.fetch_add(fired.len() as u64, Ordering::Relaxed);
            drop(st);
            // Fire outside the wheel lock: completions take lane locks,
            // record metrics and may re-enter `start_service` to chain.
            for p in fired.drain(..) {
                shared.complete(p);
            }
            st = shared.state.lock();
            continue;
        }
        match st.next_event_tick() {
            Some(tick) => {
                let due_ns = tick.saturating_mul(TICK_NANOS);
                let now_ns = shared.epoch.elapsed().as_nanos() as u64;
                if due_ns <= now_ns {
                    continue;
                }
                let wait = Duration::from_nanos(due_ns - now_ns);
                shared.alarm.wait_for(&mut st, wait);
                shared.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                if shared.closed.load(Ordering::SeqCst)
                    && shared.in_flight.load(Ordering::SeqCst) == 0
                {
                    return;
                }
                // Idle: sleep until a submit or close rings the alarm.
                // Both do so while ordering against this lock, so the
                // wakeup cannot be lost.
                shared.alarm.wait(&mut st);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(core: &mut WheelCore<u32>, to: u64) -> Vec<u32> {
        let mut fired = Vec::new();
        core.advance(to, &mut fired);
        fired
    }

    #[test]
    fn fires_at_exact_tick_not_before() {
        let mut w = WheelCore::new();
        w.schedule_at(5, 1u32);
        assert!(drain(&mut w, 4).is_empty(), "not due yet");
        assert_eq!(drain(&mut w, 5), vec![1], "due exactly at tick 5");
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn past_deadlines_round_up_to_the_next_tick() {
        let mut w = WheelCore::new();
        let _ = drain(&mut w, 100);
        w.schedule_at(7, 9u32); // already past: clamps to now+1
        assert_eq!(drain(&mut w, 101), vec![9]);
    }

    #[test]
    fn same_tick_timers_fire_together() {
        let mut w = WheelCore::new();
        for v in 0..10u32 {
            w.schedule_at(42, v);
        }
        let mut got = drain(&mut w, 1000);
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cascade_level1_fires_in_exact_tick() {
        let mut w = WheelCore::new();
        // 1000 ticks out: lands on level 1, must cascade to level 0 at
        // the 768 boundary and fire exactly at 1000.
        w.schedule_at(1000, 7u32);
        assert!(drain(&mut w, 999).is_empty());
        assert_eq!(drain(&mut w, 1000), vec![7]);
    }

    #[test]
    fn cascade_level2_through_level1() {
        let mut w = WheelCore::new();
        let expiry = 70_000; // > 65536: level 2
        w.schedule_at(expiry, 3u32);
        // Walk up in uneven jumps, crossing several cascade boundaries.
        let mut fired = Vec::new();
        for to in [10_000, 65_536, 65_537, 69_999] {
            w.advance(to, &mut fired);
            assert!(fired.is_empty(), "nothing before {expiry}, at {to}");
        }
        w.advance(expiry, &mut fired);
        assert_eq!(fired, vec![3]);
    }

    #[test]
    fn cancel_on_abort_suppresses_the_fire() {
        let mut w = WheelCore::new();
        let a = w.schedule_at(50, 1u32);
        let _b = w.schedule_at(50, 2u32);
        w.cancel(a);
        assert_eq!(drain(&mut w, 60), vec![2], "cancelled timer must not fire");
        assert_eq!(w.pending(), 0, "cancelled entries still drain from their slot");
    }

    #[test]
    fn far_deadlines_clamp_to_the_horizon() {
        let mut w = WheelCore::new();
        w.schedule_at(u64::MAX, 5u32);
        assert_eq!(w.pending(), 1);
        // Fires at the clamped horizon, not never.
        assert_eq!(drain(&mut w, MAX_RANGE), vec![5]);
    }

    #[test]
    fn idle_gaps_are_skipped_cheaply() {
        let mut w = WheelCore::new();
        let t = Instant::now();
        assert!(drain(&mut w, 10_000_000_000).is_empty());
        assert!(t.elapsed() < Duration::from_millis(100), "empty advance must jump");
        w.schedule_at(10_000_000_100, 1u32);
        assert_eq!(drain(&mut w, 10_000_000_100), vec![1]);
    }

    #[test]
    fn next_event_tick_bounds_the_true_deadline() {
        let mut w = WheelCore::new();
        w.schedule_at(1000, 1u32);
        let mut fired = Vec::new();
        // Repeatedly sleeping until next_event_tick must converge on
        // the exact expiry without ever passing it.
        loop {
            let next = w.next_event_tick().expect("timer pending");
            assert!(next <= 1000);
            w.advance(next, &mut fired);
            if !fired.is_empty() {
                assert_eq!(w.now(), 1000);
                break;
            }
        }
    }
}
