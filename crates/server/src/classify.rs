//! Request classification for the HTTP-lite front-end.
//!
//! Real servers classify by URL prefix, client identity or an explicit
//! header. We support:
//!
//! * an explicit `X-Class: <n>` header,
//! * a `/classN/...` path prefix,
//! * tier-name prefixes (`/premium`, `/standard`, `/basic` → 0, 1, 2),
//! * a default class for everything else,
//!
//! plus the **admin route family** ([`admin_route`]): `/metrics` and
//! `/config` are control-plane endpoints served by the front-end
//! itself (never classified or queued) — see `crate::admin`.

/// Result of classifying a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// Class index (clamped to the server's class count by the caller).
    pub class: usize,
}

/// The control-plane endpoints both front-end engines serve directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminRoute {
    /// `GET /metrics` — JSON snapshot of the control plane and the
    /// per-class statistics.
    Metrics,
    /// `GET /metrics/prometheus` — the same signals (plus engine
    /// internals) in Prometheus text exposition format 0.0.4.
    MetricsProm,
    /// `GET /config` (read) / `PUT /config?…` (hot reconfiguration).
    Config,
    /// `GET /healthz` — liveness: engine, shards, uptime, epochs.
    Healthz,
    /// `GET /trace` — recent request spans with the per-stage slowdown
    /// decomposition (queueing vs stretch vs service vs write-back).
    Trace,
    /// `GET /trace/control` — the control-decision flight recorder.
    TraceControl,
}

/// Recognize an admin path. Admin routes win over classification: a
/// request matching one is answered by the front-end, not executed.
pub fn admin_route(path: &str) -> Option<AdminRoute> {
    match path {
        "/metrics" => Some(AdminRoute::Metrics),
        "/metrics/prometheus" => Some(AdminRoute::MetricsProm),
        "/config" => Some(AdminRoute::Config),
        "/healthz" => Some(AdminRoute::Healthz),
        "/trace" => Some(AdminRoute::Trace),
        "/trace/control" => Some(AdminRoute::TraceControl),
        _ => None,
    }
}

/// Classify from a request path (no header).
pub fn classify_path(path: &str, default_class: usize) -> Classification {
    let trimmed = path.trim_start_matches('/');
    let first = trimmed.split('/').next().unwrap_or("");
    if let Some(rest) = first.strip_prefix("class") {
        if let Ok(n) = rest.parse::<usize>() {
            return Classification { class: n };
        }
    }
    let class = match first {
        "premium" | "gold" => 0,
        "standard" | "silver" => 1,
        "basic" | "bronze" => 2,
        _ => default_class,
    };
    Classification { class }
}

/// Classify from header + path: the `X-Class` header wins when present
/// and parseable.
pub fn classify(path: &str, x_class_header: Option<&str>, default_class: usize) -> Classification {
    if let Some(h) = x_class_header {
        if let Ok(n) = h.trim().parse::<usize>() {
            return Classification { class: n };
        }
    }
    classify_path(path, default_class)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_prefix() {
        assert_eq!(classify_path("/class0/index.html", 9).class, 0);
        assert_eq!(classify_path("/class2/a/b", 9).class, 2);
        assert_eq!(classify_path("/class17", 9).class, 17);
    }

    #[test]
    fn tier_names() {
        assert_eq!(classify_path("/premium/cart", 9).class, 0);
        assert_eq!(classify_path("/gold", 9).class, 0);
        assert_eq!(classify_path("/standard/x", 9).class, 1);
        assert_eq!(classify_path("/basic", 9).class, 2);
    }

    #[test]
    fn default_fallback() {
        assert_eq!(classify_path("/images/logo.png", 3).class, 3);
        assert_eq!(classify_path("/", 1).class, 1);
        assert_eq!(classify_path("/classless", 4).class, 4, "non-numeric suffix");
    }

    #[test]
    fn admin_routes_recognized() {
        assert_eq!(admin_route("/metrics"), Some(AdminRoute::Metrics));
        assert_eq!(admin_route("/metrics/prometheus"), Some(AdminRoute::MetricsProm));
        assert_eq!(admin_route("/config"), Some(AdminRoute::Config));
        assert_eq!(admin_route("/healthz"), Some(AdminRoute::Healthz));
        assert_eq!(admin_route("/trace"), Some(AdminRoute::Trace));
        assert_eq!(admin_route("/trace/control"), Some(AdminRoute::TraceControl));
        assert_eq!(admin_route("/metrics/x"), None, "exact paths only");
        assert_eq!(admin_route("/trace/x"), None);
        assert_eq!(admin_route("/class0/metrics"), None);
    }

    #[test]
    fn header_wins() {
        assert_eq!(classify("/basic", Some("0"), 9).class, 0);
        assert_eq!(classify("/premium", Some(" 2 "), 9).class, 2);
        assert_eq!(classify("/premium", Some("junk"), 9).class, 0, "bad header ignored");
        assert_eq!(classify("/other", None, 5).class, 5);
    }
}
