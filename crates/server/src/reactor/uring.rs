//! One io_uring shard: the completion-based twin of [`super::shard`].
//!
//! Same per-connection state machine (`Reading` → `Waiting` →
//! `Flushing`), same idle policy, same drain semantics, same
//! round-robin handoff — but the I/O plane inverts from readiness to
//! completion:
//!
//! * Accepts arrive through one **multishot `ACCEPT`** SQE that stays
//!   armed across completions instead of an epoll-readable listener.
//! * Reads and writes are **submitted up front** into registered fixed
//!   buffers (`READ_FIXED`/`WRITE_FIXED` when the slot sits in the
//!   registered window, plain `READ`/`WRITE` past it); the kernel
//!   reports *finished* I/O, so the loop never calls `read(2)`/
//!   `write(2)` at all.
//! * PSD-worker completions still land in the shard mailbox, but the
//!   eventfd ring is observed by an in-ring **doorbell read** armed on
//!   the poller's notify fd — the wakeup folds into the same
//!   `io_uring_enter` wait as every other completion instead of
//!   costing an `epoll_wait` + `read` round-trip.
//!
//! Everything a loop iteration queued — accept re-arms, reads, response
//! writes, cancels, the doorbell — is flushed by **one**
//! `io_uring_enter` at the top of the next iteration. Under load the
//! syscall count per request approaches 1/batch instead of the epoll
//! engine's several-per-request (`tests/syscall_gate.rs` pins the
//! ordering).
//!
//! Closing inverts too: an fd with in-flight SQEs must outlive them, so
//! `close` cancels the ops (`ASYNC_CANCEL` on the fd) and parks the
//! connection as *closing* until the cancelled completions drain; only
//! then does the `TcpStream` drop. Buffer slots go through the
//! engine's zombie deferral the same way.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use polling::uring::{take_accepted_fd, UringEngine};
use psd_obs::{ReactorShardStats, UringStats};

use crate::codec::{HttpRequest, RequestCodec, WriteBuf};
use crate::httplite::{
    bad_request, class_and_cost, record_shed_span, record_span, service_unavailable, shed_response,
    write_ok_response,
};
use crate::server::{Completion, PsdServer};
use crate::FrontendConfig;

use super::{Shared, DRAIN_GRACE, TICK};

/// Ring capacity: enough SQEs that a full iteration's batch (reads +
/// writes + re-arms across hundreds of connections) never forces a
/// mid-batch flush.
const ENTRIES: u32 = 1024;
/// Registered fixed-buffer slots per shard; connections past this use
/// engine-owned heap slots with plain opcodes (correct, one fewer fast
/// path).
const FIXED_SLOTS: usize = 128;
/// Bytes per buffer half (one read half + one write half per slot) —
/// matches the epoll shard's 8 KiB stack chunk.
const HALF_BYTES: usize = 8192;

/// Completion-token tags: `token = key << TAG_BITS | tag`.
const TAG_BITS: u32 = 3;
const TAG_READ: u64 = 0;
const TAG_WRITE: u64 = 1;
const TAG_ACCEPT: u64 = 2;
const TAG_DOORBELL: u64 = 3;
const TAG_CANCEL: u64 = 4;

fn token(key: usize, tag: u64) -> u64 {
    ((key as u64) << TAG_BITS) | tag
}

/// Build one shard's engine. Called by [`super::Handle::start`] *before*
/// any thread spawns so an io_uring-refusing kernel fails the whole
/// start call (and the frontend falls back to epoll) instead of a
/// half-started reactor.
pub(super) fn new_engine() -> io::Result<UringEngine> {
    UringEngine::new(ENTRIES, FIXED_SLOTS, HALF_BYTES)
}

/// How many retired (codec, write) buffer pairs a shard keeps for
/// reuse by future connections.
const POOL_CAP: usize = 256;

/// Where a connection is in its request/response cycle. Identical
/// semantics to the epoll shard's phases; only the I/O mechanics
/// differ (in-flight SQEs instead of registered interest).
enum Phase {
    /// Parsing the next request; a read SQE is normally in flight.
    Reading,
    /// Request queued in the PSD dispatcher; **no SQE in flight** —
    /// pipelined bytes wait in the kernel socket buffer (natural TCP
    /// backpressure), exactly like the epoll shard's deregistered fd.
    Waiting { req: HttpRequest, class: usize, cost: f64, since: Instant },
    /// Draining the write buffer through write SQEs.
    Flushing { then_close: bool },
}

struct Conn {
    stream: TcpStream,
    codec: RequestCodec,
    out: WriteBuf,
    phase: Phase,
    /// Refreshed by transferred bytes only, stamped from the loop's
    /// coarse per-iteration clock.
    last_progress: Instant,
    /// The engine buffer slot owned by this connection for its
    /// lifetime (read half + write half).
    slot: usize,
    read_inflight: bool,
    write_inflight: bool,
    /// Close requested while SQEs were in flight: cancels issued, the
    /// stream stays open until the last completion drains.
    closing: bool,
}

pub(super) struct UringLoop {
    /// Declared before `conns`: the engine drops (and quiesces every
    /// in-flight op) while the connection fds are still open.
    engine: UringEngine,
    /// The accepting shard's listener (shard 0 only).
    listener: Option<TcpListener>,
    peers: Vec<Arc<Shared>>,
    self_index: usize,
    rr_next: usize,
    server: Arc<PsdServer>,
    cfg: FrontendConfig,
    shared: Arc<Shared>,
    conns: HashMap<usize, Conn>,
    next_key: usize,
    accepting: bool,
    /// Coarse cached clock, read once per loop iteration.
    now: Instant,
    /// Retired connection buffers, reused by future accepts.
    pool: Vec<(Vec<u8>, Vec<u8>)>,
    body_scratch: Vec<u8>,
    key_scratch: Vec<usize>,
    /// Set when the ring itself fails (enter error, doorbell lost):
    /// the loop exits rather than spin blind.
    dead: bool,
    stats: Arc<ReactorShardStats>,
    peer_stats: Vec<Arc<ReactorShardStats>>,
    peer_uring_stats: Vec<Arc<UringStats>>,
}

impl UringLoop {
    #[allow(clippy::too_many_arguments)]
    pub(super) fn new(
        listener: Option<TcpListener>,
        peers: Vec<Arc<Shared>>,
        self_index: usize,
        server: Arc<PsdServer>,
        cfg: FrontendConfig,
        shared: Arc<Shared>,
        engine: UringEngine,
    ) -> Self {
        let accepting = listener.is_some();
        let stats = Arc::clone(&shared.stats);
        let peer_stats = peers.iter().map(|p| Arc::clone(&p.stats)).collect();
        let peer_uring_stats = peers.iter().map(|p| Arc::clone(&p.uring_stats)).collect();
        Self {
            engine,
            listener,
            peers,
            self_index,
            rr_next: self_index,
            server,
            cfg,
            shared,
            conns: HashMap::new(),
            next_key: 1,
            accepting,
            now: Instant::now(),
            pool: Vec::new(),
            body_scratch: Vec::new(),
            key_scratch: Vec::new(),
            dead: false,
            stats,
            peer_stats,
            peer_uring_stats,
        }
    }

    pub(super) fn run(&mut self) {
        // Permanent SQEs: the doorbell read on the poller's eventfd
        // (cross-thread wakeups fold into the ring wait) and, on the
        // accepting shard, the multishot accept.
        if self
            .engine
            .push_wakeup_read(self.shared.poller.notify_fd(), token(0, TAG_DOORBELL))
            .is_err()
        {
            self.dead = true;
        }
        if let Some(listener) = &self.listener {
            if self.engine.push_accept(listener.as_raw_fd(), token(0, TAG_ACCEPT)).is_err() {
                self.dead = true;
            }
        }
        let mut completions: Vec<(usize, Completion)> = Vec::new();
        let mut streams: Vec<TcpStream> = Vec::new();
        while !self.dead {
            let draining = self.shared.stop.load(Ordering::SeqCst);
            if draining {
                self.begin_drain();
                if self.conns.is_empty() {
                    break;
                }
            }
            // The one syscall of the iteration: flush everything the
            // previous iteration queued (reads, writes, re-arms,
            // cancels) and wait for the first completion or the tick.
            if self.engine.submit_and_wait(Some(TICK)).is_err() {
                break;
            }
            self.now = Instant::now();
            self.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            // Reap the whole CQ. Handlers queue follow-up SQEs locally;
            // they ride the next iteration's enter.
            let mut reaped = 0u64;
            while let Some(c) = self.engine.pop() {
                reaped += 1;
                self.on_cqe(c.token, c.result, c.more);
            }
            if reaped > 0 {
                self.stats.events.fetch_add(reaped, Ordering::Relaxed);
            }
            // Handed-off streams from the accepting shard.
            if !self.shared.inbox.lock().streams.is_empty() {
                std::mem::swap(&mut self.shared.inbox.lock().streams, &mut streams);
                for stream in streams.drain(..) {
                    self.adopt(stream);
                }
            }
            // PSD executor completions (the doorbell CQE above is what
            // woke us; the mailbox drain is identical to epoll's).
            {
                let mut mb = self.shared.mailbox.lock();
                std::mem::swap(&mut *mb, &mut completions);
            }
            self.stats.record_drain(completions.len() as u64);
            for (key, done) in completions.drain(..) {
                self.on_complete(key, done);
            }
            self.sweep_idle();
            self.publish_counters();
        }
        // Loop exit. Everything still connected drops below; the engine
        // field precedes `conns`, so its Drop cancels and reaps every
        // in-flight op while the fds are still open, and only then do
        // the streams close.
        self.publish_counters();
        let leftover_conns = self.conns.len();
        for _ in 0..leftover_conns {
            self.shared.global.live.fetch_sub(1, Ordering::SeqCst);
        }
        self.conns.clear();
        let leftover = {
            let mut inbox = self.shared.inbox.lock();
            inbox.closed = true;
            std::mem::take(&mut inbox.streams)
        };
        for stream in leftover {
            drop(stream);
            self.shared.global.live.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Copy the engine's single-threaded meters into the shared atomics
    /// (plain stores — the loop is the only writer).
    fn publish_counters(&self) {
        let c = self.engine.counters();
        let s = &self.shared.uring_stats;
        s.enters.store(c.enters, Ordering::Relaxed);
        s.waits.store(c.waits, Ordering::Relaxed);
        s.sqes.store(c.sqes_submitted, Ordering::Relaxed);
        s.cqes.store(c.cqes_reaped, Ordering::Relaxed);
        s.fixed_reads.store(c.fixed_reads, Ordering::Relaxed);
        s.fixed_writes.store(c.fixed_writes, Ordering::Relaxed);
        s.plain_ops.store(c.plain_ops, Ordering::Relaxed);
    }

    fn on_cqe(&mut self, tok: u64, result: i32, more: bool) {
        let key = (tok >> TAG_BITS) as usize;
        match tok & ((1 << TAG_BITS) - 1) {
            TAG_DOORBELL => {
                // Someone rang (completion posted, handoff, stop): the
                // mailbox/inbox drains below. Re-arm immediately —
                // writes landing between the CQE and the re-arm stick
                // in the eventfd counter, so no wakeup is ever lost.
                let fd = self.shared.poller.notify_fd();
                if self.engine.push_wakeup_read(fd, token(0, TAG_DOORBELL)).is_err() {
                    self.dead = true;
                }
            }
            TAG_ACCEPT => self.on_accept_cqe(result, more),
            TAG_READ => self.on_read_cqe(key, result),
            TAG_WRITE => self.on_write_cqe(key, result),
            TAG_CANCEL => {} // the cancelled ops' own CQEs do the work
            _ => unreachable!("unknown completion tag"),
        }
    }

    fn on_accept_cqe(&mut self, result: i32, more: bool) {
        // A spent multishot (kernel stops producing) must be re-armed
        // by hand; do it first so an error result can't leak the arm.
        if !more && self.accepting {
            if let Some(listener) = &self.listener {
                if self.engine.push_accept(listener.as_raw_fd(), token(0, TAG_ACCEPT)).is_err() {
                    self.dead = true;
                }
            }
        }
        if result < 0 {
            return; // ECANCELED after drain, or transient (EMFILE etc.)
        }
        let stream = take_accepted_fd(result);
        if !self.accepting {
            return; // raced a drain: refuse politely by closing
        }
        if self.shared.global.live.load(Ordering::SeqCst) >= self.cfg.max_connections {
            // Over cap: best-effort 503 without blocking the loop.
            let mut stream = stream;
            let _ = stream.set_nonblocking(true);
            let _ = stream.write_all(&service_unavailable(true).to_bytes());
            return;
        }
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            return;
        }
        self.shared.global.live.fetch_add(1, Ordering::SeqCst);
        self.stats.accepts.fetch_add(1, Ordering::Relaxed);
        let target = self.rr_next % self.peers.len();
        self.rr_next = self.rr_next.wrapping_add(1);
        if target == self.self_index {
            self.adopt(stream);
        } else {
            let peer = &self.peers[target];
            let refused = {
                let mut inbox = peer.inbox.lock();
                if inbox.closed {
                    Some(stream)
                } else {
                    inbox.streams.push(stream);
                    None
                }
            };
            match refused {
                None => {
                    let _ = peer.poller.notify();
                }
                // Peer exited (drain race): keep the connection here.
                Some(stream) => self.adopt(stream),
            }
        }
    }

    /// Take ownership of an accepted (or handed-off) stream: claim a
    /// buffer slot, set up connection state, and put the first read in
    /// flight.
    fn adopt(&mut self, stream: TcpStream) {
        let key = self.next_key;
        self.next_key += 1;
        let slot = self.engine.alloc_slot();
        if self.engine.push_read(stream.as_raw_fd(), slot, token(key, TAG_READ)).is_err() {
            self.engine.release_slot(slot);
            self.shared.global.live.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let (read_buf, write_buf) = self.pool.pop().unwrap_or_default();
        self.conns.insert(
            key,
            Conn {
                stream,
                codec: RequestCodec::with_buffer(read_buf),
                out: WriteBuf::with_buffer(write_buf),
                phase: Phase::Reading,
                last_progress: self.now,
                slot,
                read_inflight: true,
                write_inflight: false,
                closing: false,
            },
        );
    }

    fn on_read_cqe(&mut self, key: usize, result: i32) {
        let Some(conn) = self.conns.get_mut(&key) else { return };
        conn.read_inflight = false;
        if conn.closing {
            self.try_finish_close(key);
            return;
        }
        if result == -11 {
            // EAGAIN (kernel chose not to poll-arm): just re-arm.
            self.arm_read(key);
            return;
        }
        if result <= 0 {
            self.close(key); // EOF or socket error
            return;
        }
        if !matches!(conn.phase, Phase::Reading) {
            // A read should never be in flight outside Reading; if one
            // slips through, drop the bytes on the floor is wrong —
            // close instead of desynchronizing the stream.
            self.close(key);
            return;
        }
        let n = result as usize;
        let slot = conn.slot;
        // Disjoint field borrows: the slice lives in the engine arena,
        // the codec in the connection table.
        let data = self.engine.read_slice(slot, n);
        conn.codec.feed(data);
        conn.last_progress = self.now;
        match conn.codec.poll() {
            Ok(Some(req)) => self.begin_request(key, req),
            Ok(None) => self.arm_read(key),
            Err(_) => {
                conn.out.push_response(&bad_request());
                conn.phase = Phase::Flushing { then_close: true };
                self.pump_write(key);
            }
        }
    }

    /// Put (or re-put) the connection's read SQE in flight.
    fn arm_read(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else { return };
        if conn.read_inflight {
            return;
        }
        let fd = conn.stream.as_raw_fd();
        let slot = conn.slot;
        if self.engine.push_read(fd, slot, token(key, TAG_READ)).is_err() {
            self.close(key);
            return;
        }
        let Some(conn) = self.conns.get_mut(&key) else { return };
        conn.read_inflight = true;
    }

    /// Hand a parsed request to the PSD queue and park the connection —
    /// no SQE in flight at all — until the executor rings back through
    /// the mailbox + doorbell. Admin routes and admission sheds
    /// short-circuit, exactly like the epoll shard.
    fn begin_request(&mut self, key: usize, req: HttpRequest) {
        let draining = self.shared.stop.load(Ordering::SeqCst);
        let keep = req.keep_alive() && req.framed() && !draining;
        let info = crate::admin::AdminInfo {
            engine: "uring",
            shard_stats: &self.peer_stats,
            uring_stats: &self.peer_uring_stats,
        };
        if let Some(resp) = crate::admin::handle(&self.server, &req, keep, &info) {
            let Some(conn) = self.conns.get_mut(&key) else { return };
            conn.out.push_response(&resp);
            conn.phase = Phase::Flushing { then_close: !resp.keep_alive };
            self.pump_write(key);
            return;
        }
        let (class, cost) = class_and_cost(&self.server, &req, self.cfg.default_cost);
        if !self.server.admit(class, cost) {
            record_shed_span(&self.server, self.self_index, class, cost);
            let Some(conn) = self.conns.get_mut(&key) else { return };
            conn.out.push_response(&shed_response(req.http11));
            conn.phase = Phase::Flushing { then_close: true };
            self.pump_write(key);
            return;
        }
        let http11 = req.http11;
        let since = self.now;
        let Some(conn) = self.conns.get_mut(&key) else { return };
        conn.phase = Phase::Waiting { req, class, cost, since };
        let shared = Arc::clone(&self.shared);
        let submitted = self.server.submit_async(class, cost, move |done| {
            shared.post_completion(key, done);
        });
        if !submitted {
            let Some(conn) = self.conns.get_mut(&key) else { return };
            conn.out.push_response(&service_unavailable(http11));
            conn.phase = Phase::Flushing { then_close: true };
            self.pump_write(key);
        }
    }

    /// A PSD executor finished this connection's request: encode the
    /// response and start flushing.
    fn on_complete(&mut self, key: usize, done: Completion) {
        let draining = self.shared.stop.load(Ordering::SeqCst);
        let Some(conn) = self.conns.get_mut(&key) else { return };
        if conn.closing || !matches!(conn.phase, Phase::Waiting { .. }) {
            return; // stale completion for a recycled state: ignore
        }
        let Phase::Waiting { req, class, cost, since } =
            std::mem::replace(&mut conn.phase, Phase::Reading)
        else {
            unreachable!("checked above");
        };
        let keep = req.keep_alive() && req.framed() && !draining;
        let scratch = &mut self.body_scratch;
        conn.out.append_with(|out| write_ok_response(out, scratch, &req, class, cost, &done, keep));
        let total = self.now.saturating_duration_since(since);
        record_span(&self.server, self.self_index, class, cost, &done, total);
        conn.phase = Phase::Flushing { then_close: !keep };
        self.pump_write(key);
    }

    /// Keep the write pipeline full: queue a write SQE for the front of
    /// the unflushed buffer unless one is already in flight. The
    /// completion handler advances the buffer and calls back here.
    fn pump_write(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else { return };
        if conn.write_inflight || conn.closing {
            return;
        }
        if conn.out.unflushed().is_empty() {
            self.finish_flush(key);
            return;
        }
        let fd = conn.stream.as_raw_fd();
        let slot = conn.slot;
        // Disjoint borrows again: source bytes in the connection's
        // WriteBuf, destination half in the engine arena (push_write
        // copies, so the response may exceed a half and drain in turns).
        let data = conn.out.unflushed();
        if self.engine.push_write(fd, slot, data, token(key, TAG_WRITE)).is_err() {
            self.close(key);
            return;
        }
        let Some(conn) = self.conns.get_mut(&key) else { return };
        conn.write_inflight = true;
    }

    fn on_write_cqe(&mut self, key: usize, result: i32) {
        let Some(conn) = self.conns.get_mut(&key) else { return };
        conn.write_inflight = false;
        if conn.closing {
            self.try_finish_close(key);
            return;
        }
        if result == -11 {
            self.pump_write(key); // EAGAIN: retry the same bytes
            return;
        }
        if result < 0 {
            self.close(key); // EPIPE/ECONNRESET: client went away
            return;
        }
        conn.out.consume(result as usize);
        if result > 0 {
            conn.last_progress = self.now;
        }
        self.pump_write(key);
    }

    /// The write buffer drained: close, or hand the connection back to
    /// the read path (serving any pipelined request already buffered).
    fn finish_flush(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else { return };
        let Phase::Flushing { then_close } = conn.phase else { return };
        if then_close {
            self.close(key);
            return;
        }
        conn.phase = Phase::Reading;
        match conn.codec.poll() {
            Ok(Some(req)) => self.begin_request(key, req),
            Ok(None) => self.arm_read(key),
            Err(_) => {
                conn.out.push_response(&bad_request());
                conn.phase = Phase::Flushing { then_close: true };
                self.pump_write(key);
            }
        }
    }

    /// First stop-flag observation: stop accepting (cancel the
    /// multishot accept) and close idle keep-alive connections;
    /// mid-request connections serve out under the tightened
    /// [`DRAIN_GRACE`], mirroring the epoll shard.
    fn begin_drain(&mut self) {
        if self.accepting {
            self.accepting = false;
            if let Some(listener) = &self.listener {
                let _ = self.engine.push_cancel_fd(listener.as_raw_fd(), token(0, TAG_CANCEL));
            }
        }
        self.key_scratch.clear();
        self.key_scratch.extend(
            self.conns
                .iter()
                .filter(|(_, c)| {
                    !c.closing && matches!(c.phase, Phase::Reading) && !c.codec.is_mid_request()
                })
                .map(|(&k, _)| k),
        );
        let mut keys = std::mem::take(&mut self.key_scratch);
        for key in keys.drain(..) {
            self.close(key);
        }
        self.key_scratch = keys;
    }

    /// Reap connections without byte progress for `idle_timeout`
    /// (tightened to [`DRAIN_GRACE`] during a drain). `Waiting` is
    /// exempt (their time belongs to the PSD queue); `closing` is
    /// exempt (they are already on the cancel path).
    fn sweep_idle(&mut self) {
        let mut timeout = self.cfg.idle_timeout;
        if self.shared.stop.load(Ordering::SeqCst) {
            timeout = timeout.min(DRAIN_GRACE);
        }
        let now = self.now;
        self.key_scratch.clear();
        self.key_scratch.extend(
            self.conns
                .iter()
                .filter(|(_, c)| {
                    !c.closing
                        && !matches!(c.phase, Phase::Waiting { .. })
                        && now.saturating_duration_since(c.last_progress) >= timeout
                })
                .map(|(&k, _)| k),
        );
        self.stats.sweeps.fetch_add(1, Ordering::Relaxed);
        if !self.key_scratch.is_empty() {
            self.stats.swept.fetch_add(self.key_scratch.len() as u64, Ordering::Relaxed);
        }
        let mut keys = std::mem::take(&mut self.key_scratch);
        for key in keys.drain(..) {
            self.close(key);
        }
        self.key_scratch = keys;
    }

    /// Close a connection. With SQEs in flight the fd must outlive
    /// them, so the first call cancels the ops and parks the connection
    /// as closing; [`Self::try_finish_close`] retires it when the last
    /// completion drains. Idempotent.
    fn close(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else { return };
        if conn.closing {
            return;
        }
        if conn.read_inflight || conn.write_inflight {
            conn.closing = true;
            let fd = conn.stream.as_raw_fd();
            let _ = self.engine.push_cancel_fd(fd, token(key, TAG_CANCEL));
            return;
        }
        self.finish_close(key);
    }

    fn try_finish_close(&mut self, key: usize) {
        if matches!(
            self.conns.get(&key),
            Some(c) if c.closing && !c.read_inflight && !c.write_inflight
        ) {
            self.finish_close(key);
        }
    }

    fn finish_close(&mut self, key: usize) {
        if let Some(conn) = self.conns.remove(&key) {
            self.engine.release_slot(conn.slot);
            if self.pool.len() < POOL_CAP {
                self.pool.push((conn.codec.into_buffer(), conn.out.into_buffer()));
            }
            self.shared.global.live.fetch_sub(1, Ordering::SeqCst);
        }
    }
}
