//! The epoll reactor engine: every connection multiplexed on one event
//! loop thread, so concurrency costs file descriptors instead of OS
//! threads.
//!
//! ```text
//!            ┌────────────────────── reactor thread ───────────────────────┐
//!  accept ──▶│ epoll { listener, conns, eventfd }                          │
//!            │   readable ─▶ read ─▶ codec.feed/poll ─▶ submit_async ──────┼──▶ PSD queue
//!            │   writable ─▶ WriteBuf::flush_into (partial-write resume)   │        │
//!            │   eventfd  ─▶ drain completion mailbox ─▶ encode response   │◀───────┘
//!            └─────────────────────────────────────────────────────────────┘  worker callback:
//!                                                                             mailbox.push + poller.notify
//! ```
//!
//! Per-connection state machine ([`Phase`]):
//!
//! * `Reading` — read interest; bytes feed the sans-io codec until a
//!   full request (head + drained body) is parsed.
//! * `Waiting` — no epoll interest at all: the request sits in the PSD
//!   dispatch queue and the connection costs nothing. Pipelined bytes
//!   stay in the kernel socket buffer (natural TCP backpressure, like
//!   the blocked thread of the legacy engine). The PSD worker's
//!   completion callback posts into the mailbox and rings the eventfd.
//! * `Flushing` — write interest while [`WriteBuf`] drains; resumes at
//!   the exact byte offset after every short write, then returns to
//!   `Reading` (keep-alive) or closes.
//!
//! Idle policy: only *arriving or departing bytes* refresh a
//! connection's clock, so both a silent keep-alive and a slow-loris
//! drip-feeding a head are reaped after `idle_timeout` (the drip
//! refreshes the clock per byte, but each head line is bounded, so the
//! bounded parser plus the cap on connections bounds total exposure).
//! `Waiting` connections are exempt — their latency belongs to the PSD
//! queue, which is the thing under test.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use polling::{Event, Interest, Poller};

use crate::codec::{HttpRequest, RequestCodec, WriteBuf};
use crate::httplite::{bad_request, class_and_cost, ok_response, service_unavailable};
use crate::server::{Completion, PsdServer};
use crate::FrontendConfig;

/// Epoll key of the listener; connection keys start above it.
const LISTENER_KEY: usize = 0;

/// Event-loop tick: upper bound on idle-sweep latency and stop-flag
/// latency (wakeups via the eventfd make the common paths immediate).
const TICK: Duration = Duration::from_millis(100);

/// During a drain, how long a mid-request connection may go without
/// byte progress before it is closed anyway (see [`EventLoop::sweep_idle`]).
const DRAIN_GRACE: Duration = Duration::from_secs(1);

/// Cross-thread state shared between the event loop, the PSD worker
/// completion callbacks, and the owning [`Handle`].
struct Shared {
    poller: Poller,
    stop: AtomicBool,
    /// (connection key, completion) pairs posted by PSD workers.
    mailbox: Mutex<Vec<(usize, Completion)>>,
    /// Live connection count (for `503` capping and drain reporting).
    live: AtomicUsize,
    exited: Mutex<bool>,
    exited_cv: Condvar,
}

/// Where a connection is in its request/response cycle.
enum Phase {
    /// Parsing the next request; read interest.
    Reading,
    /// Request submitted to the PSD queue; no epoll interest.
    Waiting { req: HttpRequest, class: usize, cost: f64 },
    /// Draining the write buffer; write interest.
    Flushing { then_close: bool },
}

struct Conn {
    stream: TcpStream,
    codec: RequestCodec,
    out: WriteBuf,
    phase: Phase,
    /// Refreshed by transferred bytes only (see module docs).
    last_progress: Instant,
    /// The interest currently registered with the poller, or `None`
    /// while the fd is deregistered (`Waiting` phase). Deregistering —
    /// not registering-with-empty-interest — matters: epoll reports
    /// ERR/HUP regardless of interest, so a client that aborts while
    /// its request is queued would otherwise level-trigger a busy loop
    /// until the PSD worker completes.
    registration: Option<Interest>,
}

/// A running reactor front-end. Created through
/// [`crate::HttpFrontend::start_with`] with [`crate::EngineKind::Reactor`].
pub struct Handle {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl Handle {
    /// Spawn the event loop on `listener`.
    pub(crate) fn start(
        listener: TcpListener,
        server: Arc<PsdServer>,
        cfg: FrontendConfig,
    ) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            poller: Poller::new()?,
            stop: AtomicBool::new(false),
            mailbox: Mutex::new(Vec::new()),
            live: AtomicUsize::new(0),
            exited: Mutex::new(false),
            exited_cv: Condvar::new(),
        });
        shared.poller.add(listener.as_raw_fd(), LISTENER_KEY, Interest::READABLE)?;
        let thread = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                EventLoop {
                    listener,
                    server,
                    cfg,
                    shared: Arc::clone(&shared),
                    conns: HashMap::new(),
                    next_key: LISTENER_KEY + 1,
                    accepting: true,
                }
                .run();
                *shared.exited.lock() = true;
                shared.exited_cv.notify_all();
            })
        };
        Ok(Self { shared, thread: Some(thread) })
    }

    /// Graceful drain: stop accepting, close idle connections, serve
    /// out in-flight requests, then join the event loop. Returns the
    /// number of connections still alive after `timeout` (0 on a clean
    /// drain); non-zero means the loop is still flushing and keeps its
    /// `PsdServer` `Arc`.
    pub(crate) fn shutdown(&mut self, timeout: Duration) -> io::Result<usize> {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = self.shared.poller.notify();
        let deadline = Instant::now() + timeout;
        let mut exited = self.shared.exited.lock();
        while !*exited {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            self.shared.exited_cv.wait_for(&mut exited, deadline - now);
        }
        let clean = *exited;
        drop(exited);
        if clean {
            if let Some(h) = self.thread.take() {
                h.join().map_err(|_| io::Error::other("reactor thread panicked"))?;
            }
            Ok(0)
        } else {
            Ok(self.shared.live.load(Ordering::SeqCst).max(1))
        }
    }
}

impl Drop for Handle {
    /// Dropping without a shutdown still stops the loop; in-flight PSD
    /// requests complete (workers are alive until `PsdServer::shutdown`)
    /// so the join below converges, mirroring the threaded engine's
    /// drop contract.
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = self.shared.poller.notify();
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

struct EventLoop {
    listener: TcpListener,
    server: Arc<PsdServer>,
    cfg: FrontendConfig,
    shared: Arc<Shared>,
    conns: HashMap<usize, Conn>,
    next_key: usize,
    accepting: bool,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut completions: Vec<(usize, Completion)> = Vec::new();
        loop {
            let draining = self.shared.stop.load(Ordering::SeqCst);
            if draining {
                self.begin_drain();
                if self.conns.is_empty() {
                    break;
                }
            }
            if self.shared.poller.wait(&mut events, Some(TICK)).is_err() {
                break; // poller gone: nothing recoverable
            }
            // Completions first: they free connections for new reads
            // and are the latency-critical path.
            {
                let mut mb = self.shared.mailbox.lock();
                std::mem::swap(&mut *mb, &mut completions);
            }
            for (key, done) in completions.drain(..) {
                self.on_complete(key, done);
            }
            for ev in &events {
                if ev.key == LISTENER_KEY {
                    self.accept_ready();
                } else {
                    if ev.readable {
                        self.on_readable(ev.key);
                    }
                    if ev.writable {
                        self.on_writable(ev.key);
                    }
                }
            }
            self.sweep_idle();
        }
        // Loop exit: deregister what's left and release the server.
        let keys: Vec<usize> = self.conns.keys().copied().collect();
        for key in keys {
            self.close(key);
        }
    }

    /// First stop-flag observation: stop accepting and close *idle*
    /// keep-alive connections. Connections mid-request — a partial head
    /// or body still arriving (`Reading` + `is_mid_request`), queued in
    /// the PSD dispatcher (`Waiting`), or flushing a response — serve
    /// out, exactly like the threaded engine's drain; a stalled
    /// mid-request client is bounded by [`Self::sweep_idle`]'s
    /// tightened drain grace instead of wedging the drain.
    fn begin_drain(&mut self) {
        if self.accepting {
            self.accepting = false;
            let _ = self.shared.poller.delete(self.listener.as_raw_fd());
        }
        let idle: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| matches!(c.phase, Phase::Reading) && !c.codec.is_mid_request())
            .map(|(&k, _)| k)
            .collect();
        for key in idle {
            self.close(key);
        }
    }

    fn accept_ready(&mut self) {
        if !self.accepting {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.cfg.max_connections {
                        // Over cap: best-effort 503 without ever
                        // blocking the loop (the socket buffer of a
                        // fresh connection always fits 80 bytes; if it
                        // somehow doesn't, the close alone is answer
                        // enough).
                        let mut stream = stream;
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.write_all(&service_unavailable(true).to_bytes());
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let key = self.next_key;
                    self.next_key += 1;
                    if self.shared.poller.add(stream.as_raw_fd(), key, Interest::READABLE).is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        key,
                        Conn {
                            stream,
                            codec: RequestCodec::new(),
                            out: WriteBuf::new(),
                            phase: Phase::Reading,
                            last_progress: Instant::now(),
                            registration: Some(Interest::READABLE),
                        },
                    );
                    self.shared.live.store(self.conns.len(), Ordering::SeqCst);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // transient accept error: try next tick
            }
        }
    }

    fn on_readable(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else { return };
        if !matches!(conn.phase, Phase::Reading) {
            return; // stale event for a Waiting/Flushing connection
        }
        let mut chunk = [0u8; 8192];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    self.close(key);
                    return;
                }
                Ok(n) => {
                    conn.codec.feed(&chunk[..n]);
                    conn.last_progress = Instant::now();
                    match conn.codec.poll() {
                        Ok(Some(req)) => {
                            self.begin_request(key, req);
                            return;
                        }
                        Ok(None) => {} // need more bytes
                        Err(_) => {
                            conn.out.push_response(&bad_request());
                            conn.phase = Phase::Flushing { then_close: true };
                            self.flush(key);
                            return;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(key);
                    return;
                }
            }
        }
    }

    /// Hand a parsed request to the PSD queue and park the connection
    /// (fd deregistered from epoll) until the worker's callback rings
    /// back.
    fn begin_request(&mut self, key: usize, req: HttpRequest) {
        let (class, cost) = class_and_cost(&self.server, &req, self.cfg.default_cost);
        let http11 = req.http11;
        let Some(conn) = self.conns.get_mut(&key) else { return };
        conn.phase = Phase::Waiting { req, class, cost };
        if conn.registration.take().is_some() {
            let _ = self.shared.poller.delete(conn.stream.as_raw_fd());
        }
        let shared = Arc::clone(&self.shared);
        let submitted = self.server.submit_async(class, cost, move |done| {
            shared.mailbox.lock().push((key, done));
            let _ = shared.poller.notify();
        });
        if !submitted {
            // Server already shutting down: answer 503 and close.
            let Some(conn) = self.conns.get_mut(&key) else { return };
            conn.out.push_response(&service_unavailable(http11));
            conn.phase = Phase::Flushing { then_close: true };
            self.flush(key);
        }
    }

    /// A PSD worker finished this connection's request: encode the
    /// response and start flushing.
    fn on_complete(&mut self, key: usize, done: Completion) {
        let draining = self.shared.stop.load(Ordering::SeqCst);
        let Some(conn) = self.conns.get_mut(&key) else { return };
        if !matches!(conn.phase, Phase::Waiting { .. }) {
            return; // stale completion for a recycled state: ignore
        }
        let Phase::Waiting { req, class, cost } =
            std::mem::replace(&mut conn.phase, Phase::Reading)
        else {
            unreachable!("checked above");
        };
        // Stop keeping alive once a drain began so shutdown converges;
        // unframed bodies force a close too.
        let keep = req.keep_alive() && req.framed() && !draining;
        conn.out.push_response(&ok_response(&req, class, cost, &done, keep));
        conn.phase = Phase::Flushing { then_close: !keep };
        self.flush(key);
    }

    fn on_writable(&mut self, key: usize) {
        if matches!(self.conns.get(&key), Some(c) if matches!(c.phase, Phase::Flushing { .. })) {
            self.flush(key);
        }
    }

    /// Drive the write buffer; on drain, close or hand the connection
    /// back to the read path (serving any pipelined request already
    /// buffered in the codec).
    fn flush(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else { return };
        let Phase::Flushing { then_close } = conn.phase else { return };
        let before = conn.out.pending();
        match conn.out.flush_into(&mut conn.stream) {
            Ok(true) => {
                conn.last_progress = Instant::now();
                if then_close {
                    self.close(key);
                    return;
                }
                conn.phase = Phase::Reading;
                self.set_interest(key, Interest::READABLE);
                // A pipelined request may already be parseable without
                // another byte arriving.
                let Some(conn) = self.conns.get_mut(&key) else { return };
                match conn.codec.poll() {
                    Ok(Some(req)) => self.begin_request(key, req),
                    Ok(None) => {}
                    Err(_) => {
                        let Some(conn) = self.conns.get_mut(&key) else { return };
                        conn.out.push_response(&bad_request());
                        conn.phase = Phase::Flushing { then_close: true };
                        self.flush(key);
                    }
                }
            }
            Ok(false) => {
                if conn.out.pending() < before {
                    conn.last_progress = Instant::now(); // partial progress
                }
                self.set_interest(key, Interest::WRITABLE);
            }
            Err(_) => self.close(key),
        }
    }

    /// Reap connections that made no byte progress for `idle_timeout`:
    /// silent keep-alives, slow-loris heads, and clients that stopped
    /// reading their response. `Waiting` connections are exempt (their
    /// time belongs to the PSD queue). During a drain the grace
    /// tightens to [`DRAIN_GRACE`] so one stalled mid-request client
    /// cannot pin the shutdown to the full idle timeout.
    fn sweep_idle(&mut self) {
        let mut timeout = self.cfg.idle_timeout;
        if self.shared.stop.load(Ordering::SeqCst) {
            timeout = timeout.min(DRAIN_GRACE);
        }
        let expired: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                !matches!(c.phase, Phase::Waiting { .. }) && c.last_progress.elapsed() >= timeout
            })
            .map(|(&k, _)| k)
            .collect();
        for key in expired {
            self.close(key);
        }
    }

    /// (Re)register the connection's fd with `interest`, adding it back
    /// if it was parked during `Waiting`.
    fn set_interest(&mut self, key: usize, interest: Interest) {
        let Some(conn) = self.conns.get_mut(&key) else { return };
        let fd = conn.stream.as_raw_fd();
        let result = match conn.registration {
            Some(current) if current == interest => return,
            Some(_) => self.shared.poller.modify(fd, key, interest),
            None => self.shared.poller.add(fd, key, interest),
        };
        if result.is_err() {
            // Registration lost (shouldn't happen): drop the
            // connection rather than wedge it.
            self.close(key);
            return;
        }
        conn.registration = Some(interest);
    }

    fn close(&mut self, key: usize) {
        if let Some(conn) = self.conns.remove(&key) {
            if conn.registration.is_some() {
                let _ = self.shared.poller.delete(conn.stream.as_raw_fd());
            }
            self.shared.live.store(self.conns.len(), Ordering::SeqCst);
        }
    }
}
