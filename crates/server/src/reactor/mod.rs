//! The sharded epoll reactor engine: connections multiplexed over N
//! independent event-loop threads ("shards"), so concurrency costs file
//! descriptors instead of OS threads and event handling scales across
//! cores without any shared connection state.
//!
//! ```text
//!            ┌─ shard 0 (owns the listener) ──────────────────────────┐
//!  accept ──▶│ epoll { listener, conns, eventfd }                     │
//!            │   round-robin: keep conn, or hand fd to shard k ───────┼──┐
//!            │   readable ─▶ read ─▶ codec ─▶ submit_async ───────────┼──┼─▶ PSD queue
//!            │   eventfd  ─▶ drain completion mailbox ─▶ respond      │◀─┼──────┘
//!            └────────────────────────────────────────────────────────┘  │ worker/wheel
//!            ┌─ shard 1..N-1 ──────────────────────────────────────────┐ │ callback:
//!            │ epoll { conns, eventfd } ◀── inbox: handed-off streams ◀┼─┘ mailbox.push
//!            │   same per-connection state machine, own mailbox        │   + eventfd ring
//!            └─────────────────────────────────────────────────────────┘   (coalesced)
//! ```
//!
//! Share-nothing by construction: each shard owns its poller, its
//! connection table, its completion mailbox, its buffer pool and its
//! scratch vectors. The only cross-shard state is the global live
//! connection counter (for the `max_connections` cap) and the one-way
//! stream handoff inboxes filled by the accepting shard. PSD workers
//! reply through the owning shard's mailbox; the eventfd ring is
//! **coalesced** — a completion only writes the eventfd when it is the
//! first into an empty mailbox, so a burst of completions costs one
//! wakeup, not one syscall each.
//!
//! Each loop iteration reads the clock **once** and stamps every event
//! of that iteration with it (the coarse cached clock); per-connection
//! idle bookkeeping never calls `clock_gettime` itself.
//!
//! The per-connection state machine, idle policy and drain semantics
//! are unchanged from the single-loop reactor and live in [`shard`].

mod shard;
mod uring;

use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use polling::{Interest, Poller};
use psd_obs::{ReactorShardStats, UringStats};

use crate::server::{Completion, PsdServer};
use crate::FrontendConfig;

use shard::ShardLoop;
use uring::UringLoop;

/// Which kernel interface drives the shard event loops. Both backends
/// share [`Shared`] (mailbox, inbox, stop/exit protocol) and the
/// per-connection state machine semantics; only the I/O plane differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Backend {
    /// Readiness: `epoll_wait` + per-fd `read`/`write` syscalls.
    Epoll,
    /// Completion: batched SQEs through one `io_uring_enter` per loop
    /// iteration, registered-buffer reads/writes, in-ring doorbell.
    Uring,
}

/// Epoll key of the listener (shard 0 only); connection keys start
/// above it.
pub(crate) const LISTENER_KEY: usize = 0;

/// Event-loop tick: upper bound on idle-sweep latency and stop-flag
/// latency (wakeups via the eventfd make the common paths immediate).
pub(crate) const TICK: Duration = Duration::from_millis(100);

/// During a drain, how long a mid-request connection may go without
/// byte progress before it is closed anyway (see
/// [`shard::ShardLoop::sweep_idle`]).
pub(crate) const DRAIN_GRACE: Duration = Duration::from_secs(1);

/// State shared by every shard: the total live connection count backing
/// the `max_connections` cap.
pub(crate) struct Global {
    pub(crate) live: AtomicUsize,
}

/// Accepted streams handed off by the accepting shard, waiting to be
/// registered by the owning shard's loop. `closed` flips (under the
/// same lock) when that loop exits, so a handoff racing the exit is
/// refused instead of stranded — the accepting shard then answers the
/// client itself rather than leaking a live-counter slot.
#[derive(Default)]
pub(crate) struct Inbox {
    pub(crate) streams: Vec<TcpStream>,
    pub(crate) closed: bool,
}

/// Cross-thread state of one shard, shared between its event loop, the
/// PSD completion callbacks targeting its connections, the accepting
/// shard (stream handoffs) and the owning [`Handle`].
pub(crate) struct Shared {
    pub(crate) poller: Poller,
    pub(crate) stop: AtomicBool,
    /// (connection key, completion) pairs posted by PSD executors.
    pub(crate) mailbox: Mutex<Vec<(usize, Completion)>>,
    pub(crate) inbox: Mutex<Inbox>,
    pub(crate) exited: Mutex<bool>,
    pub(crate) exited_cv: Condvar,
    pub(crate) global: Arc<Global>,
    /// This shard's event-loop counters, shared with the admin
    /// exposition (`GET /metrics/prometheus`).
    pub(crate) stats: Arc<ReactorShardStats>,
    /// Ring counters, published only by the uring backend (all-zero
    /// under epoll; the exposition omits them when empty).
    pub(crate) uring_stats: Arc<UringStats>,
}

impl Shared {
    /// Post a completion for `key` and ring the shard's eventfd only if
    /// the mailbox was empty — completions arriving while a wakeup is
    /// already pending coalesce into the same poller wake.
    pub(crate) fn post_completion(&self, key: usize, done: Completion) {
        let was_empty = {
            let mut mb = self.mailbox.lock();
            let was_empty = mb.is_empty();
            mb.push((key, done));
            was_empty
        };
        if was_empty {
            let _ = self.poller.notify();
        }
    }
}

/// A running reactor front-end. Created through
/// [`crate::HttpFrontend::start_with`] with [`crate::EngineKind::Reactor`].
pub struct Handle {
    shards: Vec<(Arc<Shared>, Option<JoinHandle<()>>)>,
    global: Arc<Global>,
    backend: Backend,
}

impl Handle {
    /// Spawn `cfg.shards` event loops on `backend`; shard 0 owns
    /// `listener` and assigns accepted connections round-robin.
    ///
    /// For [`Backend::Uring`] every ring (and its registered buffer
    /// arena) is created here, before any thread spawns — a kernel
    /// that refuses io_uring fails this call and the caller falls back
    /// to [`Backend::Epoll`] instead of limping half-started.
    pub(crate) fn start(
        listener: TcpListener,
        server: Arc<PsdServer>,
        cfg: FrontendConfig,
        backend: Backend,
    ) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let n = cfg.shards.max(1);
        let global = Arc::new(Global { live: AtomicUsize::new(0) });
        let mut shareds = Vec::with_capacity(n);
        for _ in 0..n {
            shareds.push(Arc::new(Shared {
                poller: Poller::new()?,
                stop: AtomicBool::new(false),
                mailbox: Mutex::new(Vec::new()),
                inbox: Mutex::new(Inbox::default()),
                exited: Mutex::new(false),
                exited_cv: Condvar::new(),
                global: Arc::clone(&global),
                stats: Arc::new(ReactorShardStats::default()),
                uring_stats: Arc::new(UringStats::default()),
            }));
        }
        // The uring backend accepts through a multishot SQE instead of
        // epoll readiness, so only the epoll backend registers the
        // listener with shard 0's poller.
        let mut engines = Vec::new();
        match backend {
            Backend::Epoll => {
                shareds[0].poller.add(listener.as_raw_fd(), LISTENER_KEY, Interest::READABLE)?;
            }
            Backend::Uring => {
                for _ in 0..n {
                    engines.push(uring::new_engine()?);
                }
            }
        }
        let mut engines = engines.into_iter();
        let mut listener = Some(listener);
        let mut shards = Vec::with_capacity(n);
        for (i, shared) in shareds.iter().enumerate() {
            // Shard 0 keeps the listener itself — the fd moves with it,
            // so no re-registration races.
            let shard_listener = if i == 0 { listener.take() } else { None };
            let thread = {
                let shared_for_exit = Arc::clone(shared);
                let peers = shareds.clone();
                let server = Arc::clone(&server);
                let cfg = cfg.clone();
                let shared = Arc::clone(shared);
                let engine = engines.next();
                let name = match backend {
                    Backend::Epoll => format!("psd-reactor-{i}"),
                    Backend::Uring => format!("psd-uring-{i}"),
                };
                thread::Builder::new().name(name).spawn(move || {
                    match engine {
                        None => ShardLoop::new(shard_listener, peers, i, server, cfg, shared).run(),
                        Some(engine) => {
                            UringLoop::new(shard_listener, peers, i, server, cfg, shared, engine)
                                .run()
                        }
                    }
                    *shared_for_exit.exited.lock() = true;
                    shared_for_exit.exited_cv.notify_all();
                })?
            };
            shards.push((Arc::clone(shared), Some(thread)));
        }
        Ok(Self { shards, global, backend })
    }

    /// Which kernel interface this reactor's shards run on.
    pub(crate) fn backend(&self) -> Backend {
        self.backend
    }

    /// Graceful drain: stop accepting, close idle connections, serve
    /// out in-flight requests, then join every shard. Returns the
    /// number of connections still alive after `timeout` (0 on a clean
    /// drain); non-zero means some loop is still flushing and keeps its
    /// `PsdServer` `Arc`.
    pub(crate) fn shutdown(&mut self, timeout: Duration) -> io::Result<usize> {
        for (shared, _) in &self.shards {
            shared.stop.store(true, Ordering::SeqCst);
            let _ = shared.poller.notify();
        }
        let deadline = Instant::now() + timeout;
        let mut clean = true;
        for (shared, thread) in &mut self.shards {
            let mut exited = shared.exited.lock();
            while !*exited {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                shared.exited_cv.wait_for(&mut exited, deadline - now);
            }
            let this_clean = *exited;
            drop(exited);
            clean &= this_clean;
            if this_clean {
                if let Some(h) = thread.take() {
                    h.join().map_err(|_| io::Error::other("reactor shard panicked"))?;
                }
            }
        }
        if clean {
            Ok(0)
        } else {
            Ok(self.global.live.load(Ordering::SeqCst).max(1))
        }
    }
}

impl Drop for Handle {
    /// Dropping without a shutdown still stops every shard; in-flight
    /// PSD requests complete (the executors are alive until
    /// `PsdServer::shutdown`) so the joins below converge, mirroring
    /// the threaded engine's drop contract.
    fn drop(&mut self) {
        for (shared, _) in &self.shards {
            shared.stop.store(true, Ordering::SeqCst);
            let _ = shared.poller.notify();
        }
        for (_, thread) in &mut self.shards {
            if let Some(h) = thread.take() {
                let _ = h.join();
            }
        }
    }
}
