//! One reactor shard: a single-threaded epoll event loop owning a
//! subset of the connections (assigned round-robin by the accepting
//! shard).
//!
//! Per-connection state machine ([`Phase`]):
//!
//! * `Reading` — read interest; bytes feed the sans-io codec until a
//!   full request (head + drained body) is parsed.
//! * `Waiting` — no epoll interest at all: the request sits in the PSD
//!   dispatch queue and the connection costs nothing. Pipelined bytes
//!   stay in the kernel socket buffer (natural TCP backpressure, like
//!   the blocked thread of the legacy engine). The PSD executor's
//!   completion callback posts into this shard's mailbox and rings its
//!   eventfd.
//! * `Flushing` — write interest while [`WriteBuf`] drains; resumes at
//!   the exact byte offset after every short write, then returns to
//!   `Reading` (keep-alive) or closes.
//!
//! Idle policy: only *arriving or departing bytes* refresh a
//! connection's clock, so both a silent keep-alive and a slow-loris
//! drip-feeding a head are reaped after `idle_timeout` (the drip
//! refreshes the clock per byte, but each head line is bounded, so the
//! bounded parser plus the cap on connections bounds total exposure).
//! `Waiting` connections are exempt — their latency belongs to the PSD
//! queue, which is the thing under test.
//!
//! Allocation discipline: the loop owns every scratch buffer it uses
//! (poller events, drained completions, handed-off streams, expiry key
//! lists, the response-body scratch) and a pool of retired
//! per-connection codec/write buffers, so steady-state event handling
//! performs **no allocation per event** — `tests/reactor_alloc.rs`
//! pins this with a counting global allocator. The clock is read once
//! per loop iteration ([`ShardLoop::now`]) instead of per event.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use polling::{Event, Interest};
use psd_obs::ReactorShardStats;

use crate::codec::{HttpRequest, RequestCodec, WriteBuf};
use crate::httplite::{
    bad_request, class_and_cost, record_shed_span, record_span, service_unavailable, shed_response,
    write_ok_response,
};
use crate::server::{Completion, PsdServer};
use crate::FrontendConfig;

use super::{Shared, DRAIN_GRACE, LISTENER_KEY, TICK};

/// How many retired (codec, write) buffer pairs a shard keeps for
/// reuse by future connections.
const POOL_CAP: usize = 256;

/// Where a connection is in its request/response cycle.
enum Phase {
    /// Parsing the next request; read interest.
    Reading,
    /// Request submitted to the PSD queue; no epoll interest. `since`
    /// is the coarse-clock instant of admission — the span's total
    /// lifetime starts there.
    Waiting { req: HttpRequest, class: usize, cost: f64, since: Instant },
    /// Draining the write buffer; write interest.
    Flushing { then_close: bool },
}

struct Conn {
    stream: TcpStream,
    codec: RequestCodec,
    out: WriteBuf,
    phase: Phase,
    /// Refreshed by transferred bytes only (see module docs), stamped
    /// from the loop's coarse cached clock.
    last_progress: Instant,
    /// The interest currently registered with the poller, or `None`
    /// while the fd is deregistered (`Waiting` phase). Deregistering —
    /// not registering-with-empty-interest — matters: epoll reports
    /// ERR/HUP regardless of interest, so a client that aborts while
    /// its request is queued would otherwise level-trigger a busy loop
    /// until the PSD executor completes.
    registration: Option<Interest>,
}

pub(super) struct ShardLoop {
    /// The accepting shard's listener (shard 0 only).
    listener: Option<TcpListener>,
    /// Every shard's shared state, for round-robin handoffs.
    peers: Vec<Arc<Shared>>,
    self_index: usize,
    rr_next: usize,
    server: Arc<PsdServer>,
    cfg: FrontendConfig,
    shared: Arc<Shared>,
    conns: HashMap<usize, Conn>,
    next_key: usize,
    accepting: bool,
    /// Coarse cached clock: read once per loop iteration, used for
    /// every progress stamp and idle comparison in that iteration.
    now: Instant,
    /// Retired connection buffers, reused by future accepts.
    pool: Vec<(Vec<u8>, Vec<u8>)>,
    /// Response-body formatting scratch shared by every connection.
    body_scratch: Vec<u8>,
    /// Reused key list for idle sweeps / drains.
    key_scratch: Vec<usize>,
    /// This shard's loop counters (a clone of `shared.stats`).
    stats: Arc<ReactorShardStats>,
    /// Every shard's counters, in shard order, for the admin
    /// exposition. Collected once at construction so building an
    /// [`crate::admin::AdminInfo`] per request allocates nothing.
    peer_stats: Vec<Arc<ReactorShardStats>>,
}

impl ShardLoop {
    pub(super) fn new(
        listener: Option<TcpListener>,
        peers: Vec<Arc<Shared>>,
        self_index: usize,
        server: Arc<PsdServer>,
        cfg: FrontendConfig,
        shared: Arc<Shared>,
    ) -> Self {
        let accepting = listener.is_some();
        let stats = Arc::clone(&shared.stats);
        let peer_stats = peers.iter().map(|p| Arc::clone(&p.stats)).collect();
        Self {
            listener,
            peers,
            self_index,
            rr_next: self_index,
            server,
            cfg,
            shared,
            conns: HashMap::new(),
            next_key: LISTENER_KEY + 1,
            accepting,
            now: Instant::now(),
            pool: Vec::new(),
            body_scratch: Vec::new(),
            key_scratch: Vec::new(),
            stats,
            peer_stats,
        }
    }

    pub(super) fn run(&mut self) {
        // Loop-owned scratch, reused every iteration (the poller clears
        // `events`; `completions`/`streams` are swapped with the shared
        // vectors and drained, handing the capacity back and forth).
        let mut events: Vec<Event> = Vec::new();
        let mut completions: Vec<(usize, Completion)> = Vec::new();
        let mut streams: Vec<TcpStream> = Vec::new();
        loop {
            let draining = self.shared.stop.load(Ordering::SeqCst);
            if draining {
                self.begin_drain();
                if self.conns.is_empty() {
                    break;
                }
            }
            if self.shared.poller.wait(&mut events, Some(TICK)).is_err() {
                break; // poller gone: nothing recoverable
            }
            // One clock read per iteration: every event handled below
            // is stamped with this instant.
            self.now = Instant::now();
            self.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            if !events.is_empty() {
                self.stats.events.fetch_add(events.len() as u64, Ordering::Relaxed);
            }
            // Handed-off streams from the accepting shard.
            if !self.shared.inbox.lock().streams.is_empty() {
                std::mem::swap(&mut self.shared.inbox.lock().streams, &mut streams);
                for stream in streams.drain(..) {
                    self.adopt(stream);
                }
            }
            // Completions first: they free connections for new reads
            // and are the latency-critical path. The swap drains the
            // whole batch under one lock — paired with the
            // first-into-empty-mailbox eventfd ring, a burst of
            // completions costs one wakeup and one lock.
            {
                let mut mb = self.shared.mailbox.lock();
                std::mem::swap(&mut *mb, &mut completions);
            }
            self.stats.record_drain(completions.len() as u64);
            for (key, done) in completions.drain(..) {
                self.on_complete(key, done);
            }
            for ev in &events {
                if ev.key == LISTENER_KEY {
                    self.accept_ready();
                } else {
                    if ev.readable {
                        self.on_readable(ev.key);
                    }
                    if ev.writable {
                        self.on_writable(ev.key);
                    }
                }
            }
            self.sweep_idle();
        }
        // Loop exit: deregister what's left and release the server.
        self.key_scratch.clear();
        self.key_scratch.extend(self.conns.keys().copied());
        let mut keys = std::mem::take(&mut self.key_scratch);
        for key in keys.drain(..) {
            self.close(key);
        }
        // Close the inbox under its lock — a racing handoff either
        // lands before this drain (closed below) or observes `closed`
        // and stays with the accepting shard — then release the live
        // slots of anything never adopted.
        let leftover = {
            let mut inbox = self.shared.inbox.lock();
            inbox.closed = true;
            std::mem::take(&mut inbox.streams)
        };
        for stream in leftover {
            drop(stream);
            self.shared.global.live.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// First stop-flag observation: stop accepting and close *idle*
    /// keep-alive connections. Connections mid-request — a partial head
    /// or body still arriving (`Reading` + `is_mid_request`), queued in
    /// the PSD dispatcher (`Waiting`), or flushing a response — serve
    /// out, exactly like the threaded engine's drain; a stalled
    /// mid-request client is bounded by [`Self::sweep_idle`]'s
    /// tightened drain grace instead of wedging the drain.
    fn begin_drain(&mut self) {
        if self.accepting {
            self.accepting = false;
            if let Some(listener) = &self.listener {
                let _ = self.shared.poller.delete(listener.as_raw_fd());
            }
        }
        self.key_scratch.clear();
        self.key_scratch.extend(
            self.conns
                .iter()
                .filter(|(_, c)| matches!(c.phase, Phase::Reading) && !c.codec.is_mid_request())
                .map(|(&k, _)| k),
        );
        let mut keys = std::mem::take(&mut self.key_scratch);
        for key in keys.drain(..) {
            self.close(key);
        }
        self.key_scratch = keys;
    }

    fn accept_ready(&mut self) {
        if !self.accepting {
            return;
        }
        // Temporarily take the listener so `adopt` can borrow `self`.
        let Some(listener) = self.listener.take() else { return };
        loop {
            polling::count::bump(); // accept(2)
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.global.live.load(Ordering::SeqCst) >= self.cfg.max_connections {
                        // Over cap: best-effort 503 without ever
                        // blocking the loop (the socket buffer of a
                        // fresh connection always fits 80 bytes; if it
                        // somehow doesn't, the close alone is answer
                        // enough).
                        let mut stream = stream;
                        let _ = stream.set_nonblocking(true);
                        polling::count::bump(); // write(2)
                        let _ = stream.write_all(&service_unavailable(true).to_bytes());
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    self.shared.global.live.fetch_add(1, Ordering::SeqCst);
                    self.stats.accepts.fetch_add(1, Ordering::Relaxed);
                    // Round-robin assignment across shards; the target
                    // shard registers the fd with its own poller.
                    let target = self.rr_next % self.peers.len();
                    self.rr_next = self.rr_next.wrapping_add(1);
                    if target == self.self_index {
                        self.adopt(stream);
                    } else {
                        let peer = &self.peers[target];
                        let refused = {
                            let mut inbox = peer.inbox.lock();
                            if inbox.closed {
                                Some(stream)
                            } else {
                                inbox.streams.push(stream);
                                None
                            }
                        };
                        match refused {
                            None => {
                                let _ = peer.poller.notify();
                            }
                            // The peer exited (drain race): keep the
                            // connection here instead of stranding it —
                            // this shard serves or closes it like any
                            // of its own.
                            Some(stream) => self.adopt(stream),
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // transient accept error: try next tick
            }
        }
        self.listener = Some(listener);
    }

    /// Take ownership of an accepted (or handed-off) stream: register
    /// it with this shard's poller and set up its connection state,
    /// reusing pooled buffers when available.
    fn adopt(&mut self, stream: TcpStream) {
        let key = self.next_key;
        self.next_key += 1;
        if self.shared.poller.add(stream.as_raw_fd(), key, Interest::READABLE).is_err() {
            self.shared.global.live.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let (read_buf, write_buf) = self.pool.pop().unwrap_or_default();
        self.conns.insert(
            key,
            Conn {
                stream,
                codec: RequestCodec::with_buffer(read_buf),
                out: WriteBuf::with_buffer(write_buf),
                phase: Phase::Reading,
                last_progress: self.now,
                registration: Some(Interest::READABLE),
            },
        );
    }

    fn on_readable(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else { return };
        if !matches!(conn.phase, Phase::Reading) {
            return; // stale event for a Waiting/Flushing connection
        }
        let mut chunk = [0u8; 8192];
        loop {
            polling::count::bump(); // read(2)
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    self.close(key);
                    return;
                }
                Ok(n) => {
                    conn.codec.feed(&chunk[..n]);
                    conn.last_progress = self.now;
                    match conn.codec.poll() {
                        Ok(Some(req)) => {
                            self.begin_request(key, req);
                            return;
                        }
                        Ok(None) => {} // need more bytes
                        Err(_) => {
                            conn.out.push_response(&bad_request());
                            conn.phase = Phase::Flushing { then_close: true };
                            self.flush(key);
                            return;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(key);
                    return;
                }
            }
        }
    }

    /// Hand a parsed request to the PSD queue and park the connection
    /// (fd deregistered from epoll) until the executor's callback rings
    /// back. Admin routes and admission-shed requests short-circuit to
    /// an immediate response — they never touch the queue.
    fn begin_request(&mut self, key: usize, req: HttpRequest) {
        let draining = self.shared.stop.load(Ordering::SeqCst);
        let keep = req.keep_alive() && req.framed() && !draining;
        let info = crate::admin::AdminInfo {
            engine: "reactor",
            shard_stats: &self.peer_stats,
            uring_stats: &[],
        };
        if let Some(resp) = crate::admin::handle(&self.server, &req, keep, &info) {
            let Some(conn) = self.conns.get_mut(&key) else { return };
            conn.out.push_response(&resp);
            conn.phase = Phase::Flushing { then_close: !resp.keep_alive };
            self.flush(key);
            return;
        }
        let (class, cost) = class_and_cost(&self.server, &req, self.cfg.default_cost);
        if !self.server.admit(class, cost) {
            record_shed_span(&self.server, self.self_index, class, cost);
            let Some(conn) = self.conns.get_mut(&key) else { return };
            conn.out.push_response(&shed_response(req.http11));
            conn.phase = Phase::Flushing { then_close: true };
            self.flush(key);
            return;
        }
        let http11 = req.http11;
        let since = self.now;
        let Some(conn) = self.conns.get_mut(&key) else { return };
        conn.phase = Phase::Waiting { req, class, cost, since };
        if conn.registration.take().is_some() {
            let _ = self.shared.poller.delete(conn.stream.as_raw_fd());
        }
        let shared = Arc::clone(&self.shared);
        let submitted = self.server.submit_async(class, cost, move |done| {
            shared.post_completion(key, done);
        });
        if !submitted {
            // Server already shutting down: answer 503 and close.
            let Some(conn) = self.conns.get_mut(&key) else { return };
            conn.out.push_response(&service_unavailable(http11));
            conn.phase = Phase::Flushing { then_close: true };
            self.flush(key);
        }
    }

    /// A PSD executor finished this connection's request: encode the
    /// response and start flushing.
    fn on_complete(&mut self, key: usize, done: Completion) {
        let draining = self.shared.stop.load(Ordering::SeqCst);
        let Some(conn) = self.conns.get_mut(&key) else { return };
        if !matches!(conn.phase, Phase::Waiting { .. }) {
            return; // stale completion for a recycled state: ignore
        }
        let Phase::Waiting { req, class, cost, since } =
            std::mem::replace(&mut conn.phase, Phase::Reading)
        else {
            unreachable!("checked above");
        };
        // Stop keeping alive once a drain began so shutdown converges;
        // unframed bodies force a close too.
        let keep = req.keep_alive() && req.framed() && !draining;
        let scratch = &mut self.body_scratch;
        conn.out.append_with(|out| write_ok_response(out, scratch, &req, class, cost, &done, keep));
        // Span assembled once at respond time: the write-back stage is
        // the mailbox + wakeup delivery latency (total minus queueing
        // minus service), measured on the coarse per-iteration clock.
        let total = self.now.saturating_duration_since(since);
        record_span(&self.server, self.self_index, class, cost, &done, total);
        conn.phase = Phase::Flushing { then_close: !keep };
        self.flush(key);
    }

    fn on_writable(&mut self, key: usize) {
        if matches!(self.conns.get(&key), Some(c) if matches!(c.phase, Phase::Flushing { .. })) {
            self.flush(key);
        }
    }

    /// Drive the write buffer; on drain, close or hand the connection
    /// back to the read path (serving any pipelined request already
    /// buffered in the codec).
    fn flush(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else { return };
        let Phase::Flushing { then_close } = conn.phase else { return };
        let before = conn.out.pending();
        // One bump per flush attempt (flush_into may issue several
        // write(2)s — undercounting epoll is the conservative side of
        // the syscall-gate comparison).
        polling::count::bump();
        match conn.out.flush_into(&mut conn.stream) {
            Ok(true) => {
                conn.last_progress = self.now;
                if then_close {
                    self.close(key);
                    return;
                }
                conn.phase = Phase::Reading;
                self.set_interest(key, Interest::READABLE);
                // A pipelined request may already be parseable without
                // another byte arriving.
                let Some(conn) = self.conns.get_mut(&key) else { return };
                match conn.codec.poll() {
                    Ok(Some(req)) => self.begin_request(key, req),
                    Ok(None) => {}
                    Err(_) => {
                        let Some(conn) = self.conns.get_mut(&key) else { return };
                        conn.out.push_response(&bad_request());
                        conn.phase = Phase::Flushing { then_close: true };
                        self.flush(key);
                    }
                }
            }
            Ok(false) => {
                if conn.out.pending() < before {
                    conn.last_progress = self.now; // partial progress
                }
                self.set_interest(key, Interest::WRITABLE);
            }
            Err(_) => self.close(key),
        }
    }

    /// Reap connections that made no byte progress for `idle_timeout`:
    /// silent keep-alives, slow-loris heads, and clients that stopped
    /// reading their response. `Waiting` connections are exempt (their
    /// time belongs to the PSD queue). During a drain the grace
    /// tightens to [`DRAIN_GRACE`] so one stalled mid-request client
    /// cannot pin the shutdown to the full idle timeout.
    fn sweep_idle(&mut self) {
        let mut timeout = self.cfg.idle_timeout;
        if self.shared.stop.load(Ordering::SeqCst) {
            timeout = timeout.min(DRAIN_GRACE);
        }
        let now = self.now;
        self.key_scratch.clear();
        self.key_scratch.extend(
            self.conns
                .iter()
                .filter(|(_, c)| {
                    !matches!(c.phase, Phase::Waiting { .. })
                        && now.saturating_duration_since(c.last_progress) >= timeout
                })
                .map(|(&k, _)| k),
        );
        self.stats.sweeps.fetch_add(1, Ordering::Relaxed);
        if !self.key_scratch.is_empty() {
            self.stats.swept.fetch_add(self.key_scratch.len() as u64, Ordering::Relaxed);
        }
        let mut keys = std::mem::take(&mut self.key_scratch);
        for key in keys.drain(..) {
            self.close(key);
        }
        self.key_scratch = keys;
    }

    /// (Re)register the connection's fd with `interest`, adding it back
    /// if it was parked during `Waiting`.
    fn set_interest(&mut self, key: usize, interest: Interest) {
        let Some(conn) = self.conns.get_mut(&key) else { return };
        let fd = conn.stream.as_raw_fd();
        let result = match conn.registration {
            Some(current) if current == interest => return,
            Some(_) => self.shared.poller.modify(fd, key, interest),
            None => self.shared.poller.add(fd, key, interest),
        };
        if result.is_err() {
            // Registration lost (shouldn't happen): drop the
            // connection rather than wedge it.
            self.close(key);
            return;
        }
        conn.registration = Some(interest);
    }

    fn close(&mut self, key: usize) {
        if let Some(conn) = self.conns.remove(&key) {
            if conn.registration.is_some() {
                let _ = self.shared.poller.delete(conn.stream.as_raw_fd());
            }
            // Retire the connection's buffers into the shard pool so
            // the next accept starts warm.
            if self.pool.len() < POOL_CAP {
                self.pool.push((conn.codec.into_buffer(), conn.out.into_buffer()));
            }
            self.shared.global.live.fetch_sub(1, Ordering::SeqCst);
        }
    }
}
