//! Shared wall-clock pacing utilities: the `thread::sleep` overshoot
//! calibration (measured once per process, cached) and a compensated
//! sleep used by every component that targets a wall-clock instant —
//! the worker pool's Sleep workload, the timer wheel, the in-process
//! [`crate::driver`] and the `psd-loadgen` open-loop pacing.
//!
//! On Linux `thread::sleep` systematically overshoots by the timer
//! slack plus scheduler latency (typically 50–150 µs). Uncompensated,
//! that bias inflates every modeled service time and every open-loop
//! inter-arrival gap, so offered load lands *below* target exactly at
//! the high rates where the model is interesting. Each caller used to
//! calibrate (or not) on its own; this module is now the single
//! implementation.

use std::sync::OnceLock;
use std::thread;
use std::time::{Duration, Instant};

/// Measure `thread::sleep`'s systematic overshoot with a few short
/// probe sleeps. This is the raw measurement; almost every caller
/// wants the process-wide cached [`sleep_overshoot`] instead.
pub fn calibrate_sleep_overshoot() -> Duration {
    const PROBES: u32 = 8;
    let probe = Duration::from_micros(500);
    let mut total = Duration::ZERO;
    for _ in 0..PROBES {
        let t = Instant::now();
        thread::sleep(probe);
        total += t.elapsed().saturating_sub(probe);
    }
    total / PROBES
}

/// The process-wide cached sleep-overshoot calibration. First call
/// pays ~4 ms of probe sleeps; every later call is a load.
pub fn sleep_overshoot() -> Duration {
    static CACHED: OnceLock<Duration> = OnceLock::new();
    *CACHED.get_or_init(calibrate_sleep_overshoot)
}

/// Sleep so that the thread wakes *at* `deadline` instead of
/// `overshoot` past it: the calibrated overshoot is subtracted from the
/// requested duration, capped at a quarter of the remaining time so a
/// noisy calibration can bias a short wait only mildly. Already-past
/// deadlines return immediately.
pub fn sleep_until(deadline: Instant) {
    let now = Instant::now();
    if deadline <= now {
        return;
    }
    let remaining = deadline - now;
    let comp = sleep_overshoot().min(remaining / 4);
    thread::sleep(remaining - comp);
}

/// The compensated duration to hand `thread::sleep` (or a condvar
/// timeout) for a wait of `target`: `target` minus the calibrated
/// overshoot, capped at a quarter of the target.
pub fn compensated(target: Duration) -> Duration {
    target.saturating_sub(sleep_overshoot().min(target / 4))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_small_and_cached() {
        let a = sleep_overshoot();
        let b = sleep_overshoot();
        assert_eq!(a, b, "cached value is stable");
        assert!(a < Duration::from_millis(20), "overshoot {a:?} is implausibly large");
    }

    #[test]
    fn compensated_never_underflows() {
        assert_eq!(compensated(Duration::ZERO), Duration::ZERO);
        let tiny = Duration::from_nanos(100);
        assert!(compensated(tiny) <= tiny);
        let big = Duration::from_millis(50);
        assert!(compensated(big) <= big);
        assert!(compensated(big) >= big / 2, "compensation is bounded");
    }

    #[test]
    fn sleep_until_lands_near_the_deadline() {
        // Scheduler noise on a loaded CI box can push any single wait
        // tens of milliseconds late; what must hold is that the
        // *mechanism* lands near the deadline when the OS cooperates.
        // Take the best of a few attempts so one preempted wake cannot
        // fail the test, while a systematic bias still would.
        let best = (0..5)
            .map(|_| {
                let target = Instant::now() + Duration::from_millis(5);
                sleep_until(target);
                Instant::now().saturating_duration_since(target)
            })
            .min()
            .unwrap();
        assert!(best < Duration::from_millis(15), "best wake {best:?} past the deadline");
        // A deadline in the past returns immediately.
        let t = Instant::now();
        sleep_until(t - Duration::from_millis(1));
        assert!(t.elapsed() < Duration::from_millis(5));
    }
}
