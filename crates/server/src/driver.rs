//! Open-loop load driver: per-class Poisson client threads submitting
//! requests with configurable cost distributions against a running
//! [`crate::PsdServer`] — the in-process equivalent of the paper's
//! "request generators".

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use psd_dist::rng::{SplitMix64, Xoshiro256pp};
use psd_dist::{ServiceDist, ServiceDistribution};

use crate::server::PsdServer;
use crate::timing;

/// Per-class traffic description for the driver.
#[derive(Debug, Clone)]
pub struct ClassTraffic {
    /// Poisson arrival rate in requests per second.
    pub rate_per_s: f64,
    /// Cost distribution (work units per request).
    pub cost: ServiceDist,
}

/// Drive `server` with open-loop Poisson traffic for `duration`.
///
/// One thread per class; each derives its RNG from `seed` and the class
/// index, so a run is reproducible up to OS scheduling jitter in the
/// *service* (arrival instants are deterministic targets).
/// Returns the number of requests submitted per class.
pub fn drive(
    server: &Arc<PsdServer>,
    traffic: &[ClassTraffic],
    duration: Duration,
    seed: u64,
) -> Vec<u64> {
    assert!(!traffic.is_empty(), "no traffic classes");
    assert!(traffic.len() <= server.num_classes(), "more traffic classes than server classes");
    let mut handles = Vec::new();
    for (class, spec) in traffic.iter().enumerate() {
        assert!(spec.rate_per_s > 0.0, "class {class} has non-positive rate");
        let server = Arc::clone(server);
        let spec = spec.clone();
        let class_seed = SplitMix64::derive(seed, class as u64 + 1);
        handles.push(thread::spawn(move || {
            let mut rng = Xoshiro256pp::seed_from(class_seed);
            let start = Instant::now();
            let mut next_at = Duration::ZERO;
            let mut submitted = 0u64;
            loop {
                // Exponential interarrival.
                let gap = -rng.next_open_f64().ln() / spec.rate_per_s;
                next_at += Duration::from_secs_f64(gap);
                if next_at >= duration {
                    break;
                }
                // Compensated pacing (shared `timing` calibration):
                // uncompensated `thread::sleep` overshoots ~50–150 µs
                // per arrival, which at thousands of arrivals per
                // second quietly drops the offered load below target.
                timing::sleep_until(start + next_at);
                let cost = spec.cost.sample(&mut rng).max(1e-3);
                // The same admission gate the HTTP engines apply: a
                // shed arrival never enters the system (visible in
                // `ServerStats::shed`, not in the submitted count).
                if !server.admit(class, cost) {
                    continue;
                }
                if !server.submit(class, cost) {
                    break; // server shutting down
                }
                submitted += 1;
            }
            submitted
        }));
    }
    handles.into_iter().map(|h| h.join().expect("driver thread panicked")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use psd_dist::Deterministic;

    fn server(deltas: Vec<f64>) -> Arc<PsdServer> {
        Arc::new(PsdServer::start(ServerConfig {
            deltas,
            workers: 2,
            work_unit: Duration::from_micros(100),
            ..ServerConfig::default()
        }))
    }

    #[test]
    fn drives_roughly_the_requested_rate() {
        let s = server(vec![1.0, 2.0]);
        let det = ServiceDist::Deterministic(Deterministic::new(1.0).unwrap());
        let submitted = drive(
            &s,
            &[
                ClassTraffic { rate_per_s: 400.0, cost: det.clone() },
                ClassTraffic { rate_per_s: 400.0, cost: det },
            ],
            Duration::from_millis(400),
            7,
        );
        // Expect ≈ 160 per class; allow wide jitter for CI machines.
        for (i, &n) in submitted.iter().enumerate() {
            assert!((80..280).contains(&(n as usize)), "class {i} submitted {n}");
        }
        let stats = Arc::try_unwrap(s).ok().expect("sole owner").shutdown();
        let done: u64 = stats.classes.iter().map(|c| c.completed).sum();
        assert_eq!(done, submitted.iter().sum::<u64>(), "everything drains");
    }

    #[test]
    #[should_panic(expected = "more traffic classes")]
    fn too_many_classes_rejected() {
        let s = server(vec![1.0]);
        let det = ServiceDist::Deterministic(Deterministic::new(1.0).unwrap());
        drive(
            &s,
            &[
                ClassTraffic { rate_per_s: 1.0, cost: det.clone() },
                ClassTraffic { rate_per_s: 1.0, cost: det },
            ],
            Duration::from_millis(10),
            1,
        );
    }
}
