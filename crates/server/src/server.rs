//! The [`PsdServer`] facade: execution engine (worker pool or timer
//! wheel) + dispatch queue + online PSD rate monitor.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use psd_core::allocation::psd_rates_clamped;
use psd_core::estimator::LoadEstimator;
use psd_propshare::{Drr, Lottery, Stride, Wfq};

use crate::metrics::{MetricsRecorder, MetricsSink, ServerStats};
use crate::queues::{CompletionNotify, DispatchQueue, QueuedRequest};
use crate::timing;
use crate::wheel::WheelServers;

/// Which proportional-share kernel drives the worker dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// Start-time fair queueing (default; deterministic, near-GPS).
    Wfq,
    /// Lottery scheduling with the given seed.
    Lottery(u64),
    /// Stride scheduling.
    Stride,
    /// Deficit round robin with the given base quantum (work units).
    Drr(f64),
    /// Paper-faithful rate partitioning (Fig. 1): one *serial* virtual
    /// task server per class, executing at its allocated fraction `r_i`
    /// of the machine rate (execution stretched by `1/r_i`), so each
    /// class is an independent M/G/1 at rate `r_i` — the regime Eq. 17
    /// assumes. Non-work-conserving; the machine rate is one worker's
    /// speed.
    ///
    /// With the Sleep workload the virtual servers run as **deadline
    /// chains on a timer wheel** ([`crate::wheel`]): no worker thread
    /// blocks per in-service request and `workers` does not bound the
    /// in-service concurrency. The Spin workload still needs real CPU,
    /// so it keeps the worker pool (raised to ≥ the class count so
    /// every virtual server stays runnable).
    RatePartition,
}

/// How workers "execute" a request's work units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Busy-spin (CPU-bound, like dynamic content generation).
    Spin,
    /// Precise sleep (I/O-bound; cheap for tests). In rate-partition
    /// mode this executes on the timer wheel, not a worker thread.
    Sleep,
}

/// The default monitor window. This is the **single source of truth**
/// for the control-window default — tests, the `psd_httpd` binary and
/// the in-process drivers all inherit it through
/// [`ServerConfig::default`] (they used to scatter 20/25/50/200 ms
/// copies). 50 ms refreshes the Eq. 17 weights ~20×/s: fast enough
/// that sub-second tests see at least one reallocation, slow enough
/// that the estimator sees tens of arrivals per window at the request
/// rates the front-ends sustain. Scenario profiles that model the
/// paper's 1000-time-unit window override it explicitly.
pub const DEFAULT_CONTROL_WINDOW: Duration = Duration::from_millis(50);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Differentiation parameters, one per class (class 0 highest).
    pub deltas: Vec<f64>,
    /// Mean request cost in work units (the allocator's `E[X]`, in the
    /// same units clients use for `submit`).
    pub mean_cost: f64,
    /// Dispatch kernel.
    pub scheduler: SchedulerKind,
    /// Worker threads (the machine's "capacity"). Ignored by the
    /// timer-wheel path (rate partition + Sleep), which needs none.
    pub workers: usize,
    /// Wall-clock duration of one work unit.
    pub work_unit: Duration,
    /// Spin or sleep execution.
    pub workload: Workload,
    /// Monitor window (the paper's 1000-time-unit estimator window).
    pub control_window: Duration,
    /// Estimator history in windows (paper: 5).
    pub estimator_history: usize,
}

impl Default for ServerConfig {
    /// Two classes at δ = 1:2 over one worker, WFQ dispatch, sleep
    /// workload, a 200 µs work unit, [`DEFAULT_CONTROL_WINDOW`] and the
    /// paper's 5-window estimator history. Callers override what they
    /// need with struct-update syntax; nothing else in the tree
    /// hard-codes these values anymore.
    fn default() -> Self {
        Self {
            deltas: vec![1.0, 2.0],
            mean_cost: 1.0,
            scheduler: SchedulerKind::Wfq,
            workers: 1,
            work_unit: Duration::from_micros(200),
            workload: Workload::Sleep,
            control_window: DEFAULT_CONTROL_WINDOW,
            estimator_history: 5,
        }
    }
}

/// Completion receipt for synchronous submitters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Queueing delay in seconds.
    pub delay_s: f64,
    /// Service duration in seconds.
    pub service_s: f64,
}

impl Completion {
    /// Measured slowdown of this request.
    pub fn slowdown(&self) -> f64 {
        self.delay_s / self.service_s.max(1e-9)
    }
}

/// The execution engine behind the facade: either the shared dispatch
/// queue feeding a worker pool, or the timer-wheel virtual task
/// servers (rate partition + Sleep — no blocked threads).
enum Exec {
    Pool(Arc<DispatchQueue>),
    Wheel(Arc<WheelServers>),
}

impl Exec {
    fn submit(&self, req: QueuedRequest) -> bool {
        match self {
            Exec::Pool(q) => q.push(req),
            Exec::Wheel(w) => w.submit(req),
        }
    }

    fn set_weights(&self, weights: &[f64]) {
        match self {
            Exec::Pool(q) => q.set_weights(weights),
            Exec::Wheel(w) => w.set_weights(weights),
        }
    }

    fn backlog(&self, class: usize) -> usize {
        match self {
            Exec::Pool(q) => q.backlog(class),
            Exec::Wheel(w) => w.backlog(class),
        }
    }
}

/// An interruptible stop signal: the monitor parks on it between
/// control windows instead of in a bare `thread::sleep`, so a shutdown
/// never waits out a long window (scenario profiles use multi-second
/// windows; the old sleep pinned every drain to one).
struct StopFlag {
    state: Mutex<bool>,
    cv: Condvar,
}

impl StopFlag {
    fn new() -> Self {
        Self { state: Mutex::new(false), cv: Condvar::new() }
    }

    fn set(&self) {
        *self.state.lock() = true;
        self.cv.notify_all();
    }

    /// Park for up to `d`; returns `true` once stop has been requested
    /// (immediately, or mid-wait).
    fn wait_for(&self, d: Duration) -> bool {
        let mut g = self.state.lock();
        if *g {
            return true;
        }
        self.cv.wait_for(&mut g, d);
        *g
    }
}

/// A running PSD server.
pub struct PsdServer {
    exec: Arc<Exec>,
    metrics: Arc<MetricsSink>,
    window_arrivals: Arc<Vec<AtomicU64>>,
    stop: Arc<StopFlag>,
    workers: Vec<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
    n_classes: usize,
}

impl PsdServer {
    /// Start the execution engine and the rate monitor.
    pub fn start(cfg: ServerConfig) -> Self {
        assert!(!cfg.deltas.is_empty(), "at least one class");
        assert!(cfg.workers >= 1, "at least one worker");
        assert!(cfg.mean_cost > 0.0, "mean cost must be positive");
        let n = cfg.deltas.len();
        let metrics = Arc::new(MetricsSink::new(n));
        let window_arrivals: Arc<Vec<AtomicU64>> =
            Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let stop = Arc::new(StopFlag::new());

        let use_wheel =
            cfg.scheduler == SchedulerKind::RatePartition && cfg.workload == Workload::Sleep;
        let (exec, workers) = if use_wheel {
            // Rate-partitioned sleeps are pure waiting: the wheel fires
            // their virtual finish times, so no worker threads exist at
            // all and in-service concurrency is unbounded by `workers`.
            (Exec::Wheel(WheelServers::start(n, cfg.work_unit, &metrics)), Vec::new())
        } else {
            let queue = Arc::new(match cfg.scheduler {
                SchedulerKind::Wfq => DispatchQueue::new(Box::new(Wfq::new(vec![1.0; n]))),
                SchedulerKind::Lottery(seed) => {
                    DispatchQueue::new(Box::new(Lottery::new(vec![1.0; n], seed)))
                }
                SchedulerKind::Stride => DispatchQueue::new(Box::new(Stride::new(vec![1.0; n]))),
                SchedulerKind::Drr(q) => DispatchQueue::new(Box::new(Drr::new(vec![1.0; n], q))),
                SchedulerKind::RatePartition => DispatchQueue::new_paced(n),
            });
            // Spinning rate partition needs one runnable thread per
            // serial virtual task server or classes would also queue
            // behind each other for workers, drifting the slowdown
            // ratios off the δ's.
            let worker_count = match cfg.scheduler {
                SchedulerKind::RatePartition => cfg.workers.max(n),
                _ => cfg.workers,
            };
            let workers = (0..worker_count)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    let recorder = metrics.recorder();
                    let work_unit = cfg.work_unit;
                    let workload = cfg.workload;
                    thread::spawn(move || worker_loop(&queue, &recorder, work_unit, workload))
                })
                .collect();
            (Exec::Pool(queue), workers)
        };
        let exec = Arc::new(exec);

        let monitor = {
            let exec = Arc::clone(&exec);
            let arrivals = Arc::clone(&window_arrivals);
            let stop = Arc::clone(&stop);
            let cfg = cfg.clone();
            Some(thread::spawn(move || monitor_loop(&cfg, &exec, &arrivals, &stop)))
        };

        Self { exec, metrics, window_arrivals, stop, workers, monitor, n_classes: n }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.n_classes
    }

    /// Fire-and-forget submission. Returns `false` after shutdown began.
    pub fn submit(&self, class: usize, cost: f64) -> bool {
        self.submit_inner(class, cost, CompletionNotify::None)
    }

    /// Submit and receive a [`Completion`] receipt when the request has
    /// executed (used by the threaded HTTP front-end, which parks the
    /// connection's thread until then).
    pub fn submit_sync(&self, class: usize, cost: f64) -> Option<Completion> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        if !self.submit_inner(class, cost, CompletionNotify::Channel(tx)) {
            return None;
        }
        rx.recv().ok()
    }

    /// Submit and have the executing engine invoke `notify` with the
    /// [`Completion`] — no thread blocks in between. The reactor engine
    /// replies through this: the callback posts into the reactor's
    /// mailbox and rings its poller. Returns `false` (without invoking
    /// `notify`) after shutdown began.
    pub fn submit_async(
        &self,
        class: usize,
        cost: f64,
        notify: impl FnOnce(Completion) + Send + 'static,
    ) -> bool {
        self.submit_inner(class, cost, CompletionNotify::Callback(Box::new(notify)))
    }

    fn submit_inner(&self, class: usize, cost: f64, notify: CompletionNotify) -> bool {
        assert!(cost.is_finite() && cost > 0.0, "request cost must be positive");
        let class = class.min(self.n_classes - 1);
        self.window_arrivals[class].fetch_add(1, Ordering::Relaxed);
        self.exec.submit(QueuedRequest { class, cost, enqueued: Instant::now(), notify })
    }

    /// Live statistics snapshot.
    pub fn stats(&self) -> ServerStats {
        self.metrics.snapshot()
    }

    /// Backlog of one class.
    pub fn backlog(&self, class: usize) -> usize {
        self.exec.backlog(class)
    }

    /// Drain pending work, stop all threads, return final statistics.
    pub fn shutdown(self) -> ServerStats {
        self.stop.set();
        match &*self.exec {
            Exec::Pool(queue) => {
                queue.close();
                for w in self.workers {
                    let _ = w.join();
                }
            }
            Exec::Wheel(wheel) => {
                wheel.close();
                wheel.join();
            }
        }
        if let Some(m) = self.monitor {
            let _ = m.join();
        }
        self.metrics.snapshot()
    }
}

fn worker_loop(
    queue: &DispatchQueue,
    recorder: &MetricsRecorder,
    work_unit: Duration,
    workload: Workload,
) {
    while let Some(d) = queue.pop() {
        let req = d.req;
        let dispatched = Instant::now();
        let delay_s = dispatched.duration_since(req.enqueued).as_secs_f64();
        // In rate-partition mode the stretch slows the class's virtual
        // server to its allocated rate, so `service_s` below is the
        // paper's rate-scaled service time X/r — and the recorded
        // slowdown is exactly the paper's S = W/(X/r).
        let target = work_unit.mul_f64(req.cost * d.stretch);
        match workload {
            // The shared calibration caps its compensation at a quarter
            // of the target, so a noisy probe can bias a short service
            // only mildly while millisecond services get the full
            // correction.
            Workload::Sleep => thread::sleep(timing::compensated(target)),
            Workload::Spin => {
                let until = dispatched + target;
                while Instant::now() < until {
                    std::hint::spin_loop();
                }
            }
        }
        let service_s = dispatched.elapsed().as_secs_f64();
        queue.complete(req.class);
        recorder.record(req.class, delay_s, service_s);
        req.notify.deliver(Completion { delay_s, service_s });
    }
}

fn monitor_loop(cfg: &ServerConfig, exec: &Exec, arrivals: &[AtomicU64], stop: &StopFlag) {
    let n = cfg.deltas.len();
    let mut estimator = LoadEstimator::new(n, cfg.estimator_history);
    // Effective "mean service time" as a fraction of machine capacity:
    // in the shared pool, one request occupies one of `workers` workers
    // for cost·work_unit; in rate-partition mode the machine is a
    // single full-rate processor split into the per-class shares.
    let mean_service_s = match cfg.scheduler {
        SchedulerKind::RatePartition => cfg.mean_cost * cfg.work_unit.as_secs_f64(),
        _ => cfg.mean_cost * cfg.work_unit.as_secs_f64() / cfg.workers as f64,
    };
    loop {
        if stop.wait_for(cfg.control_window) {
            return;
        }
        let window_s = cfg.control_window.as_secs_f64();
        let rates: Vec<f64> =
            arrivals.iter().map(|a| a.swap(0, Ordering::Relaxed) as f64 / window_s).collect();
        estimator.observe(&rates);
        let est = estimator.estimate().expect("observed at least one window");
        if let Ok(weights) = psd_rates_clamped(&est, &cfg.deltas, mean_service_s, 1e-4, 0.02) {
            exec.set_weights(&weights);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(deltas: Vec<f64>) -> ServerConfig {
        ServerConfig { deltas, ..ServerConfig::default() }
    }

    #[test]
    fn starts_executes_and_shuts_down() {
        let s = PsdServer::start(quick_cfg(vec![1.0, 2.0]));
        for i in 0..50 {
            assert!(s.submit(i % 2, 1.0));
        }
        let stats = s.shutdown();
        let total: u64 = stats.classes.iter().map(|c| c.completed).sum();
        assert_eq!(total, 50, "all submitted requests execute before shutdown");
    }

    #[test]
    fn submit_sync_returns_receipt() {
        let s = PsdServer::start(quick_cfg(vec![1.0]));
        let c = s.submit_sync(0, 2.0).unwrap();
        assert!(c.service_s >= 0.0003, "2 work units ≈ 400µs, got {}", c.service_s);
        assert!(c.delay_s >= 0.0);
        s.shutdown();
    }

    #[test]
    fn out_of_range_class_clamped() {
        let s = PsdServer::start(quick_cfg(vec![1.0, 2.0]));
        assert!(s.submit(99, 1.0));
        let stats = s.shutdown();
        assert_eq!(stats.classes[1].completed, 1, "clamped to the last class");
    }

    #[test]
    fn submit_after_shutdown_fails_gracefully() {
        for scheduler in [SchedulerKind::Wfq, SchedulerKind::RatePartition] {
            let s = PsdServer::start(ServerConfig { scheduler, ..quick_cfg(vec![1.0]) });
            let exec = Arc::clone(&s.exec);
            s.shutdown();
            assert!(
                !exec.submit(QueuedRequest {
                    class: 0,
                    cost: 1.0,
                    enqueued: Instant::now(),
                    notify: CompletionNotify::None
                }),
                "{scheduler:?}: closed engine must reject"
            );
        }
    }

    #[test]
    fn rate_partition_sleep_uses_the_wheel() {
        let s = PsdServer::start(ServerConfig {
            scheduler: SchedulerKind::RatePartition,
            workload: Workload::Sleep,
            ..quick_cfg(vec![1.0, 2.0])
        });
        assert!(matches!(*s.exec, Exec::Wheel(_)), "sleep + rate partition runs on the wheel");
        assert!(s.workers.is_empty(), "no worker threads parked in sleeps");
        let c = s.submit_sync(0, 1.0).expect("executes");
        // Even split over 2 classes: stretch 2 → ≈ 400 µs of service.
        assert!(c.service_s >= 0.0002, "stretched service, got {}", c.service_s);
        let stats = s.shutdown();
        assert_eq!(stats.classes[0].completed, 1);
    }

    #[test]
    fn rate_partition_spin_keeps_the_worker_pool() {
        let s = PsdServer::start(ServerConfig {
            scheduler: SchedulerKind::RatePartition,
            workload: Workload::Spin,
            work_unit: Duration::from_micros(50),
            ..quick_cfg(vec![1.0, 2.0])
        });
        assert!(matches!(*s.exec, Exec::Pool(_)), "spinning needs real CPU");
        assert_eq!(s.workers.len(), 2, "raised to the class count");
        assert!(s.submit_sync(1, 1.0).is_some());
        s.shutdown();
    }

    #[test]
    #[should_panic(expected = "cost must be positive")]
    fn bad_cost_rejected() {
        let s = PsdServer::start(quick_cfg(vec![1.0]));
        s.submit(0, 0.0);
    }
}
