//! The [`PsdServer`] facade: execution engine (worker pool or timer
//! wheel) + dispatch queue + online PSD rate monitor.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use psd_core::control::{
    build_controller, ClassTable, ControllerKind, RateController, SharedControl, WindowObservation,
};
use psd_obs::{ControlTrace, ObsBundle, ObsConfig};
use psd_propshare::{Drr, Lottery, Stride, Wfq};

use crate::metrics::{MetricsRecorder, MetricsSink, ServerStats};
use crate::queues::{CompletionNotify, DispatchQueue, QueuedRequest};
use crate::timing;
use crate::wheel::WheelServers;

/// Which proportional-share kernel drives the worker dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// Start-time fair queueing (default; deterministic, near-GPS).
    Wfq,
    /// Lottery scheduling with the given seed.
    Lottery(u64),
    /// Stride scheduling.
    Stride,
    /// Deficit round robin with the given base quantum (work units).
    Drr(f64),
    /// Paper-faithful rate partitioning (Fig. 1): one *serial* virtual
    /// task server per class, executing at its allocated fraction `r_i`
    /// of the machine rate (execution stretched by `1/r_i`), so each
    /// class is an independent M/G/1 at rate `r_i` — the regime Eq. 17
    /// assumes. Non-work-conserving; the machine rate is one worker's
    /// speed.
    ///
    /// With the Sleep workload the virtual servers run as **deadline
    /// chains on a timer wheel** ([`crate::wheel`]): no worker thread
    /// blocks per in-service request and `workers` does not bound the
    /// in-service concurrency. The Spin workload still needs real CPU,
    /// so it keeps the worker pool (raised to ≥ the class count so
    /// every virtual server stays runnable).
    RatePartition,
}

/// How workers "execute" a request's work units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Busy-spin (CPU-bound, like dynamic content generation).
    Spin,
    /// Precise sleep (I/O-bound; cheap for tests). In rate-partition
    /// mode this executes on the timer wheel, not a worker thread.
    Sleep,
}

/// The default monitor window. This is the **single source of truth**
/// for the control-window default — tests, the `psd_httpd` binary and
/// the in-process drivers all inherit it through
/// [`ServerConfig::default`] (they used to scatter 20/25/50/200 ms
/// copies). 50 ms refreshes the Eq. 17 weights ~20×/s: fast enough
/// that sub-second tests see at least one reallocation, slow enough
/// that the estimator sees tens of arrivals per window at the request
/// rates the front-ends sustain. Scenario profiles that model the
/// paper's 1000-time-unit window override it explicitly.
pub const DEFAULT_CONTROL_WINDOW: Duration = Duration::from_millis(50);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Differentiation parameters, one per class (class 0 highest).
    pub deltas: Vec<f64>,
    /// Mean request cost in work units (the allocator's `E[X]`, in the
    /// same units clients use for `submit`).
    pub mean_cost: f64,
    /// Dispatch kernel.
    pub scheduler: SchedulerKind,
    /// Worker threads (the machine's "capacity"). Ignored by the
    /// timer-wheel path (rate partition + Sleep), which needs none.
    pub workers: usize,
    /// Wall-clock duration of one work unit.
    pub work_unit: Duration,
    /// Spin or sleep execution.
    pub workload: Workload,
    /// Monitor window (the paper's 1000-time-unit estimator window).
    pub control_window: Duration,
    /// Estimator history in windows (paper: 5).
    pub estimator_history: usize,
    /// Which controller family drives the monitor (`--controller`):
    /// the open-loop Eq. 17 allocator or the slowdown-feedback
    /// extension. Both are the same objects the simulator runs.
    pub controller: ControllerKind,
    /// Integral gain of the feedback controller (`--gain`); ignored by
    /// [`ControllerKind::Open`]. `gain = 0` makes the feedback
    /// controller bit-identical to the open loop.
    pub gain: f64,
    /// Target admitted utilization (`--admission-cap`): when set, the
    /// control plane sheds the lowest classes first once the
    /// estimator-smoothed offered load exceeds the cap — requests
    /// rejected by [`PsdServer::admit`] are answered `503` upstream.
    /// `None` disables admission control.
    pub admission_cap: Option<f64>,
    /// Request-trace sampling probability in `[0, 1]` (`--trace-sample`).
    /// Every sampled request writes one span into the observability
    /// ring; `0` disables span tracing entirely (counters, histograms
    /// and the flight recorder stay on — they are not per-request
    /// allocations either way).
    pub trace_sample: f64,
    /// Total span slots retained across the trace ring's shards.
    pub trace_capacity: usize,
    /// Control windows retained by the control-decision flight
    /// recorder (`GET /trace/control`).
    pub flight_capacity: usize,
}

impl Default for ServerConfig {
    /// Two classes at δ = 1:2 over one worker, WFQ dispatch, sleep
    /// workload, a 200 µs work unit, [`DEFAULT_CONTROL_WINDOW`] and the
    /// paper's 5-window estimator history. Callers override what they
    /// need with struct-update syntax; nothing else in the tree
    /// hard-codes these values anymore.
    fn default() -> Self {
        Self {
            deltas: vec![1.0, 2.0],
            mean_cost: 1.0,
            scheduler: SchedulerKind::Wfq,
            workers: 1,
            work_unit: Duration::from_micros(200),
            workload: Workload::Sleep,
            control_window: DEFAULT_CONTROL_WINDOW,
            estimator_history: 5,
            controller: ControllerKind::Open,
            gain: 0.3,
            admission_cap: None,
            trace_sample: 1.0,
            trace_capacity: 4096,
            flight_capacity: 256,
        }
    }
}

/// Completion receipt for synchronous submitters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Queueing delay in seconds.
    pub delay_s: f64,
    /// Service duration in seconds.
    pub service_s: f64,
}

impl Completion {
    /// Measured slowdown of this request.
    pub fn slowdown(&self) -> f64 {
        self.delay_s / self.service_s.max(1e-9)
    }
}

/// The execution engine behind the facade: either the shared dispatch
/// queue feeding a worker pool, or the timer-wheel virtual task
/// servers (rate partition + Sleep — no blocked threads).
enum Exec {
    Pool(Arc<DispatchQueue>),
    Wheel(Arc<WheelServers>),
}

impl Exec {
    fn submit(&self, req: QueuedRequest) -> bool {
        match self {
            Exec::Pool(q) => q.push(req),
            Exec::Wheel(w) => w.submit(req),
        }
    }

    fn set_weights(&self, weights: &[f64]) {
        match self {
            Exec::Pool(q) => q.set_weights(weights),
            Exec::Wheel(w) => w.set_weights(weights),
        }
    }

    fn backlog(&self, class: usize) -> usize {
        match self {
            Exec::Pool(q) => q.backlog(class),
            Exec::Wheel(w) => w.backlog(class),
        }
    }
}

/// An interruptible stop signal: the monitor parks on it between
/// control windows instead of in a bare `thread::sleep`, so a shutdown
/// never waits out a long window (scenario profiles use multi-second
/// windows; the old sleep pinned every drain to one).
struct StopFlag {
    state: Mutex<bool>,
    cv: Condvar,
}

impl StopFlag {
    fn new() -> Self {
        Self { state: Mutex::new(false), cv: Condvar::new() }
    }

    fn set(&self) {
        *self.state.lock() = true;
        self.cv.notify_all();
    }

    /// Park for up to `d`; returns `true` once stop has been requested
    /// (immediately, or mid-wait).
    fn wait_for(&self, d: Duration) -> bool {
        let mut g = self.state.lock();
        if *g {
            return true;
        }
        self.cv.wait_for(&mut g, d);
        *g
    }
}

/// A running PSD server.
pub struct PsdServer {
    exec: Arc<Exec>,
    metrics: Arc<MetricsSink>,
    window_arrivals: Arc<Vec<AtomicU64>>,
    /// Per-class admitted work inside the current window, in
    /// fixed-point milli-work-units (f64 costs don't add atomically;
    /// 1/1000 of a work unit is far below every other measurement
    /// error here).
    window_work_mu: Arc<Vec<AtomicU64>>,
    /// Per-class work turned away at the door inside the current
    /// window (same fixed point). The admission controller must see
    /// **offered** load — admitted plus shed — or it would equilibrate
    /// above its cap: post-shed load looks compliant the moment the
    /// shedding works.
    window_shed_mu: Arc<Vec<AtomicU64>>,
    control: Arc<SharedControl>,
    shed: Arc<Vec<AtomicU64>>,
    stop: Arc<StopFlag>,
    workers: Vec<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
    n_classes: usize,
    obs: Arc<ObsBundle>,
    work_unit: Duration,
    started: Instant,
}

impl PsdServer {
    /// Start the execution engine and the rate monitor.
    pub fn start(cfg: ServerConfig) -> Self {
        assert!(!cfg.deltas.is_empty(), "at least one class");
        assert!(cfg.workers >= 1, "at least one worker");
        assert!(cfg.mean_cost > 0.0, "mean cost must be positive");
        let n = cfg.deltas.len();
        let metrics = Arc::new(MetricsSink::new(n));
        let window_arrivals: Arc<Vec<AtomicU64>> =
            Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let window_work_mu: Arc<Vec<AtomicU64>> =
            Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let window_shed_mu: Arc<Vec<AtomicU64>> =
            Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let control = Arc::new(SharedControl::new(ClassTable {
            deltas: cfg.deltas.clone(),
            gain: cfg.gain,
            admission_cap: cfg.admission_cap,
            controller: cfg.controller,
            epoch: 0,
        }));
        let shed: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let stop = Arc::new(StopFlag::new());
        let obs = Arc::new(ObsBundle::new(
            n,
            ObsConfig {
                span_capacity: cfg.trace_capacity,
                sample: cfg.trace_sample,
                flight_capacity: cfg.flight_capacity,
                ..ObsConfig::default()
            },
        ));

        let use_wheel =
            cfg.scheduler == SchedulerKind::RatePartition && cfg.workload == Workload::Sleep;
        let (exec, workers) = if use_wheel {
            // Rate-partitioned sleeps are pure waiting: the wheel fires
            // their virtual finish times, so no worker threads exist at
            // all and in-service concurrency is unbounded by `workers`.
            (Exec::Wheel(WheelServers::start(n, cfg.work_unit, &metrics)), Vec::new())
        } else {
            let queue = Arc::new(match cfg.scheduler {
                SchedulerKind::Wfq => DispatchQueue::new(Box::new(Wfq::new(vec![1.0; n]))),
                SchedulerKind::Lottery(seed) => {
                    DispatchQueue::new(Box::new(Lottery::new(vec![1.0; n], seed)))
                }
                SchedulerKind::Stride => DispatchQueue::new(Box::new(Stride::new(vec![1.0; n]))),
                SchedulerKind::Drr(q) => DispatchQueue::new(Box::new(Drr::new(vec![1.0; n], q))),
                SchedulerKind::RatePartition => DispatchQueue::new_paced(n),
            });
            // Spinning rate partition needs one runnable thread per
            // serial virtual task server or classes would also queue
            // behind each other for workers, drifting the slowdown
            // ratios off the δ's.
            let worker_count = match cfg.scheduler {
                SchedulerKind::RatePartition => cfg.workers.max(n),
                _ => cfg.workers,
            };
            let workers = (0..worker_count)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    let recorder = metrics.recorder();
                    let work_unit = cfg.work_unit;
                    let workload = cfg.workload;
                    thread::spawn(move || worker_loop(&queue, &recorder, work_unit, workload))
                })
                .collect();
            (Exec::Pool(queue), workers)
        };
        let exec = Arc::new(exec);

        // Build the controller stack and publish its initial directive
        // *before* the monitor thread exists: `start` returns with the
        // rates and admission tables already in force, so nothing ever
        // observes a half-initialized control plane.
        let table = control.table();
        let mut controller = build_monitor_controller(&cfg, &table);
        let initial = controller.initial_rates(n);
        exec.set_weights(&initial);
        control.publish(table.epoch, &initial, None);

        let monitor = {
            let exec = Arc::clone(&exec);
            let arrivals = Arc::clone(&window_arrivals);
            let work = Arc::clone(&window_work_mu);
            let shed_work = Arc::clone(&window_shed_mu);
            let metrics = Arc::clone(&metrics);
            let control = Arc::clone(&control);
            let stop = Arc::clone(&stop);
            let telemetry = Arc::clone(&obs);
            let cfg = cfg.clone();
            Some(thread::spawn(move || {
                monitor_loop(
                    &cfg, &exec, &arrivals, &work, &shed_work, &metrics, &control, &stop,
                    &telemetry, controller, table, initial,
                )
            }))
        };

        Self {
            exec,
            metrics,
            window_arrivals,
            window_work_mu,
            window_shed_mu,
            control,
            shed,
            stop,
            workers,
            monitor,
            n_classes: n,
            obs,
            work_unit: cfg.work_unit,
            started: Instant::now(),
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.n_classes
    }

    /// Fire-and-forget submission. Returns `false` after shutdown began.
    pub fn submit(&self, class: usize, cost: f64) -> bool {
        self.submit_inner(class, cost, CompletionNotify::None)
    }

    /// Submit and receive a [`Completion`] receipt when the request has
    /// executed (used by the threaded HTTP front-end, which parks the
    /// connection's thread until then).
    pub fn submit_sync(&self, class: usize, cost: f64) -> Option<Completion> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        if !self.submit_inner(class, cost, CompletionNotify::Channel(tx)) {
            return None;
        }
        rx.recv().ok()
    }

    /// Submit and have the executing engine invoke `notify` with the
    /// [`Completion`] — no thread blocks in between. The reactor engine
    /// replies through this: the callback posts into the reactor's
    /// mailbox and rings its poller. Returns `false` (without invoking
    /// `notify`) after shutdown began.
    pub fn submit_async(
        &self,
        class: usize,
        cost: f64,
        notify: impl FnOnce(Completion) + Send + 'static,
    ) -> bool {
        self.submit_inner(class, cost, CompletionNotify::Callback(Box::new(notify)))
    }

    fn submit_inner(&self, class: usize, cost: f64, notify: CompletionNotify) -> bool {
        assert!(cost.is_finite() && cost > 0.0, "request cost must be positive");
        let class = class.min(self.n_classes - 1);
        self.window_arrivals[class].fetch_add(1, Ordering::Relaxed);
        self.window_work_mu[class].fetch_add((cost * 1000.0).round() as u64, Ordering::Relaxed);
        self.exec.submit(QueuedRequest { class, cost, enqueued: Instant::now(), notify })
    }

    /// One admission decision for a class-`class` request of `cost`
    /// work units, against the probabilities most recently published by
    /// the control plane: `true` to serve, `false` to shed (the shed
    /// counter and the window's shed-work account are bumped here;
    /// callers answer `503` + `Connection: close`). The cost matters
    /// even for rejected requests — the monitor's controller must see
    /// the **offered** load, not just what survived the door. With no
    /// `admission_cap` configured this is always `true` at the cost of
    /// one relaxed atomic load.
    pub fn admit(&self, class: usize, cost: f64) -> bool {
        let class = class.min(self.n_classes - 1);
        self.obs.admission.draws.fetch_add(1, Ordering::Relaxed);
        if self.control.admit(class) {
            true
        } else {
            self.obs.admission.sheds.fetch_add(1, Ordering::Relaxed);
            self.shed[class].fetch_add(1, Ordering::Relaxed);
            self.window_shed_mu[class]
                .fetch_add((cost.max(0.0) * 1000.0).round() as u64, Ordering::Relaxed);
            false
        }
    }

    /// The control plane's runtime surface: published rates and
    /// admission probabilities, the epoch-stamped class table, and the
    /// hot-reconfiguration entry point the admin endpoints use.
    pub fn control(&self) -> &SharedControl {
        &self.control
    }

    /// The observability bundle the frontends and admin routes write
    /// into and scrape from: the request-span ring, per-class latency
    /// histograms, admission counters and the control-decision flight
    /// recorder.
    pub fn obs(&self) -> &Arc<ObsBundle> {
        &self.obs
    }

    /// The configured wall-clock duration of one work unit — what the
    /// span decomposition uses to compute a request's nominal
    /// (full-rate) service time.
    pub fn work_unit(&self) -> Duration {
        self.work_unit
    }

    /// When this server started (for `/healthz` uptime).
    pub fn started_at(&self) -> Instant {
        self.started
    }

    /// Timer-wheel activity counters and current occupancy, when this
    /// server runs on the wheel (`None` for the worker-pool engines).
    pub fn wheel_stats(&self) -> Option<(&psd_obs::WheelStats, usize)> {
        match &*self.exec {
            Exec::Wheel(w) => Some((w.stats(), w.in_flight())),
            Exec::Pool(_) => None,
        }
    }

    /// Requests shed at admission for one class.
    pub fn shed_count(&self, class: usize) -> u64 {
        self.shed[class.min(self.n_classes - 1)].load(Ordering::Relaxed)
    }

    /// Live statistics snapshot.
    pub fn stats(&self) -> ServerStats {
        self.fill_shed(self.metrics.snapshot())
    }

    fn fill_shed(&self, mut stats: ServerStats) -> ServerStats {
        for (c, shed) in stats.classes.iter_mut().zip(self.shed.iter()) {
            c.shed = shed.load(Ordering::Relaxed);
        }
        stats
    }

    /// Backlog of one class.
    pub fn backlog(&self, class: usize) -> usize {
        self.exec.backlog(class)
    }

    /// Drain pending work, stop all threads, return final statistics.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop.set();
        match &*self.exec {
            Exec::Pool(queue) => {
                queue.close();
                for w in std::mem::take(&mut self.workers) {
                    let _ = w.join();
                }
            }
            Exec::Wheel(wheel) => {
                wheel.close();
                wheel.join();
            }
        }
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
        self.fill_shed(self.metrics.snapshot())
    }
}

fn worker_loop(
    queue: &DispatchQueue,
    recorder: &MetricsRecorder,
    work_unit: Duration,
    workload: Workload,
) {
    while let Some(d) = queue.pop() {
        let req = d.req;
        let dispatched = Instant::now();
        let delay_s = dispatched.duration_since(req.enqueued).as_secs_f64();
        // In rate-partition mode the stretch slows the class's virtual
        // server to its allocated rate, so `service_s` below is the
        // paper's rate-scaled service time X/r — and the recorded
        // slowdown is exactly the paper's S = W/(X/r).
        let target = work_unit.mul_f64(req.cost * d.stretch);
        match workload {
            // The shared calibration caps its compensation at a quarter
            // of the target, so a noisy probe can bias a short service
            // only mildly while millisecond services get the full
            // correction.
            Workload::Sleep => thread::sleep(timing::compensated(target)),
            Workload::Spin => {
                let until = dispatched + target;
                while Instant::now() < until {
                    std::hint::spin_loop();
                }
            }
        }
        let service_s = dispatched.elapsed().as_secs_f64();
        queue.complete(req.class);
        recorder.record(req.class, delay_s, service_s);
        req.notify.deliver(Completion { delay_s, service_s });
    }
}

/// The rate monitor: every control window it closes a
/// [`WindowObservation`] — swept arrivals/work counters, **measured
/// per-class slowdowns** from the sharded metrics recorders
/// ([`MetricsSink::sweep_window`], snapshot-and-reset so nothing
/// double-counts), and live backlogs — and hands it to an arbitrary
/// [`RateController`] built by the shared `psd_core::control` factory.
/// The directive's rates drive the execution engine; its admission
/// probabilities are published to [`SharedControl`] for the submit
/// paths. The old inlined `LoadEstimator` + `psd_rates_clamped` loop is
/// gone: the controller stack is the single source of truth for rates,
/// and the exact same controller objects run in the desim engine.
///
/// Hot reconfiguration: when the admin surface bumps the class-table
/// epoch, the monitor rebuilds its controller from the new table at the
/// next window boundary and publishes under the new epoch (see the
/// epoch-ordering notes on [`SharedControl`]).
/// Fraction of the machine one worker represents (the `/ workers` in
/// the shared pool; rate partition is a single full-rate processor
/// split into per-class shares).
fn capacity_workers(cfg: &ServerConfig) -> f64 {
    match cfg.scheduler {
        SchedulerKind::RatePartition => 1.0,
        _ => cfg.workers as f64,
    }
}

/// Build the controller stack for the monitor from a class table — the
/// shared `psd_core::control` factory with this server's effective
/// mean service time (mean request cost as a fraction of machine
/// capacity).
fn build_monitor_controller(
    cfg: &ServerConfig,
    table: &ClassTable,
) -> Box<dyn RateController + Send> {
    let mean_service_s = cfg.mean_cost * cfg.work_unit.as_secs_f64() / capacity_workers(cfg);
    build_controller(
        table.controller,
        &table.deltas,
        mean_service_s,
        table.gain,
        cfg.estimator_history,
        table.admission_cap,
    )
}

#[allow(clippy::too_many_arguments)]
fn monitor_loop(
    cfg: &ServerConfig,
    exec: &Exec,
    arrivals: &[AtomicU64],
    work_mu: &[AtomicU64],
    shed_mu: &[AtomicU64],
    metrics: &MetricsSink,
    control: &SharedControl,
    stop: &StopFlag,
    telemetry: &ObsBundle,
    mut controller: Box<dyn RateController + Send>,
    mut table: ClassTable,
    mut current_rates: Vec<f64>,
) {
    let n = cfg.deltas.len();
    let capacity_workers = capacity_workers(cfg);
    let work_unit_s = cfg.work_unit.as_secs_f64();
    let started = Instant::now();
    let mut window_start = 0.0f64;
    let mut index = 0u64;
    loop {
        if stop.wait_for(cfg.control_window) {
            return;
        }
        // Hot reconfig: a bumped epoch swaps in a rebuilt controller at
        // this window boundary (its estimator restarts cold; the
        // current rates stay in force until its first directive).
        if control.epoch() != table.epoch {
            table = control.table();
            controller = build_monitor_controller(cfg, &table);
        }
        let now_s = started.elapsed().as_secs_f64();
        let sweep = metrics.sweep_window();
        let obs = WindowObservation {
            index,
            start: window_start,
            end: now_s,
            arrivals: arrivals.iter().map(|a| a.swap(0, Ordering::Relaxed)).collect(),
            arrived_work: work_mu
                .iter()
                .map(|w| {
                    w.swap(0, Ordering::Relaxed) as f64 * 1e-3 * work_unit_s / capacity_workers
                })
                .collect(),
            shed_work: shed_mu
                .iter()
                .map(|w| {
                    w.swap(0, Ordering::Relaxed) as f64 * 1e-3 * work_unit_s / capacity_workers
                })
                .collect(),
            completions: sweep.completions,
            backlog: (0..n).map(|c| exec.backlog(c) as u64).collect(),
            slowdown_sums: sweep.slowdown_sums,
        };
        index += 1;
        window_start = now_s;

        let directive = controller.control(now_s, &obs);
        if let Some(rates) = &directive.rates {
            exec.set_weights(rates);
            current_rates = rates.clone();
        }
        control.publish(table.epoch, &current_rates, directive.admit_probability.as_deref());
        // Flight-record the full decision — what the controller saw,
        // what it answered, what went into force, and its internals —
        // after publishing so telemetry never delays the control path.
        telemetry.flight.record(ControlTrace {
            at_s: now_s,
            epoch: table.epoch,
            observation: obs,
            directive,
            applied_rates: current_rates.clone(),
            internals: controller.internals(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(deltas: Vec<f64>) -> ServerConfig {
        ServerConfig { deltas, ..ServerConfig::default() }
    }

    #[test]
    fn starts_executes_and_shuts_down() {
        let s = PsdServer::start(quick_cfg(vec![1.0, 2.0]));
        for i in 0..50 {
            assert!(s.submit(i % 2, 1.0));
        }
        let stats = s.shutdown();
        let total: u64 = stats.classes.iter().map(|c| c.completed).sum();
        assert_eq!(total, 50, "all submitted requests execute before shutdown");
    }

    #[test]
    fn submit_sync_returns_receipt() {
        let s = PsdServer::start(quick_cfg(vec![1.0]));
        let c = s.submit_sync(0, 2.0).unwrap();
        assert!(c.service_s >= 0.0003, "2 work units ≈ 400µs, got {}", c.service_s);
        assert!(c.delay_s >= 0.0);
        s.shutdown();
    }

    #[test]
    fn out_of_range_class_clamped() {
        let s = PsdServer::start(quick_cfg(vec![1.0, 2.0]));
        assert!(s.submit(99, 1.0));
        let stats = s.shutdown();
        assert_eq!(stats.classes[1].completed, 1, "clamped to the last class");
    }

    #[test]
    fn submit_after_shutdown_fails_gracefully() {
        for scheduler in [SchedulerKind::Wfq, SchedulerKind::RatePartition] {
            let s = PsdServer::start(ServerConfig { scheduler, ..quick_cfg(vec![1.0]) });
            let exec = Arc::clone(&s.exec);
            s.shutdown();
            assert!(
                !exec.submit(QueuedRequest {
                    class: 0,
                    cost: 1.0,
                    enqueued: Instant::now(),
                    notify: CompletionNotify::None
                }),
                "{scheduler:?}: closed engine must reject"
            );
        }
    }

    #[test]
    fn rate_partition_sleep_uses_the_wheel() {
        let s = PsdServer::start(ServerConfig {
            scheduler: SchedulerKind::RatePartition,
            workload: Workload::Sleep,
            ..quick_cfg(vec![1.0, 2.0])
        });
        assert!(matches!(*s.exec, Exec::Wheel(_)), "sleep + rate partition runs on the wheel");
        assert!(s.workers.is_empty(), "no worker threads parked in sleeps");
        let c = s.submit_sync(0, 1.0).expect("executes");
        // Even split over 2 classes: stretch 2 → ≈ 400 µs of service.
        assert!(c.service_s >= 0.0002, "stretched service, got {}", c.service_s);
        let stats = s.shutdown();
        assert_eq!(stats.classes[0].completed, 1);
    }

    #[test]
    fn rate_partition_spin_keeps_the_worker_pool() {
        let s = PsdServer::start(ServerConfig {
            scheduler: SchedulerKind::RatePartition,
            workload: Workload::Spin,
            work_unit: Duration::from_micros(50),
            ..quick_cfg(vec![1.0, 2.0])
        });
        assert!(matches!(*s.exec, Exec::Pool(_)), "spinning needs real CPU");
        assert_eq!(s.workers.len(), 2, "raised to the class count");
        assert!(s.submit_sync(1, 1.0).is_some());
        s.shutdown();
    }

    #[test]
    #[should_panic(expected = "cost must be positive")]
    fn bad_cost_rejected() {
        let s = PsdServer::start(quick_cfg(vec![1.0]));
        s.submit(0, 0.0);
    }
}
