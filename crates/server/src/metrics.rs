//! Measured per-class statistics of the threaded server.

use parking_lot::Mutex;
use psd_dist::stats::Welford;

/// Snapshot of one class's measured behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// Requests completed.
    pub completed: u64,
    /// Mean queueing delay in seconds (enqueue → dispatch).
    pub mean_delay: f64,
    /// Mean service duration in seconds (dispatch → done).
    pub mean_service: f64,
    /// Mean slowdown (delay / service, per request).
    pub mean_slowdown: f64,
}

/// Snapshot over all classes.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Per-class stats, indexed by class.
    pub classes: Vec<ClassStats>,
}

impl ServerStats {
    /// Achieved slowdown ratio of class `i` vs class `j`, if both have
    /// completions and the denominator is positive.
    pub fn slowdown_ratio(&self, i: usize, j: usize) -> Option<f64> {
        let a = &self.classes[i];
        let b = &self.classes[j];
        (a.completed > 0 && b.completed > 0 && b.mean_slowdown > 0.0)
            .then(|| a.mean_slowdown / b.mean_slowdown)
    }
}

#[derive(Debug, Default)]
struct ClassAccum {
    delay: Welford,
    service: Welford,
    slowdown: Welford,
}

/// Thread-safe metrics sink shared by the worker pool.
#[derive(Debug)]
pub struct MetricsSink {
    classes: Vec<Mutex<ClassAccum>>,
}

impl MetricsSink {
    /// Sink for `n` classes.
    pub fn new(n: usize) -> Self {
        Self { classes: (0..n).map(|_| Mutex::new(ClassAccum::default())).collect() }
    }

    /// Record one completed request (durations in seconds).
    pub fn record(&self, class: usize, delay_s: f64, service_s: f64) {
        let mut g = self.classes[class].lock();
        g.delay.push(delay_s);
        g.service.push(service_s);
        // Guard the division: sub-microsecond services can measure as 0.
        let service = service_s.max(1e-9);
        g.slowdown.push(delay_s / service);
    }

    /// Take a consistent-enough snapshot (per-class locks, no global
    /// freeze — fine for monitoring).
    pub fn snapshot(&self) -> ServerStats {
        ServerStats {
            classes: self
                .classes
                .iter()
                .map(|m| {
                    let g = m.lock();
                    ClassStats {
                        completed: g.slowdown.count(),
                        mean_delay: g.delay.mean(),
                        mean_service: g.service.mean(),
                        mean_slowdown: g.slowdown.mean(),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = MetricsSink::new(2);
        s.record(0, 1.0, 0.5); // slowdown 2
        s.record(0, 3.0, 0.5); // slowdown 6
        s.record(1, 1.0, 1.0); // slowdown 1
        let snap = s.snapshot();
        assert_eq!(snap.classes[0].completed, 2);
        assert!((snap.classes[0].mean_slowdown - 4.0).abs() < 1e-12);
        assert!((snap.classes[0].mean_delay - 2.0).abs() < 1e-12);
        assert_eq!(snap.classes[1].completed, 1);
        assert_eq!(snap.slowdown_ratio(0, 1), Some(4.0));
    }

    #[test]
    fn empty_ratio_is_none() {
        let s = MetricsSink::new(2);
        s.record(0, 1.0, 1.0);
        assert!(s.snapshot().slowdown_ratio(0, 1).is_none());
    }

    #[test]
    fn zero_service_guarded() {
        let s = MetricsSink::new(1);
        s.record(0, 1.0, 0.0);
        assert!(s.snapshot().classes[0].mean_slowdown.is_finite());
    }
}
