//! Measured per-class statistics of the server, accumulated
//! **share-nothing**: every executor (worker thread, timer-wheel
//! thread) registers its own [`MetricsRecorder`] shard and records
//! completions into it without ever contending with another thread.
//!
//! The old design put one `Mutex<ClassAccum>` per *class*, so every
//! completion of a class serialized all workers (and the reactor's
//! completion callbacks) on the same lock — measurable at hundreds of
//! thousands of completions per second. Now the lock is per *recorder*
//! (one owner thread → always uncontended, a parking_lot fast-path
//! CAS), and [`MetricsSink::snapshot`] sweeps the shards — the same
//! sweep-at-the-control-window pattern the dispatch queue uses for
//! arrivals.

use parking_lot::Mutex;
use std::sync::Arc;

/// Snapshot of one class's measured behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// Requests completed.
    pub completed: u64,
    /// Requests shed at admission (503, never executed). Counted by the
    /// server facade, not the metrics shards — the sink reports 0.
    pub shed: u64,
    /// Mean queueing delay in seconds (enqueue → dispatch).
    pub mean_delay: f64,
    /// Mean service duration in seconds (dispatch → done).
    pub mean_service: f64,
    /// Mean slowdown (delay / service, per request).
    pub mean_slowdown: f64,
}

/// Snapshot over all classes.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Per-class stats, indexed by class.
    pub classes: Vec<ClassStats>,
}

impl ServerStats {
    /// Achieved slowdown ratio of class `i` vs class `j`, if both have
    /// completions and the denominator is positive.
    pub fn slowdown_ratio(&self, i: usize, j: usize) -> Option<f64> {
        let a = &self.classes[i];
        let b = &self.classes[j];
        (a.completed > 0 && b.completed > 0 && b.mean_slowdown > 0.0)
            .then(|| a.mean_slowdown / b.mean_slowdown)
    }
}

/// One class's running sums. Means only need Σx (the old Welford
/// accumulators tracked variance nobody read — plain sums are cheaper
/// and merge exactly).
#[derive(Debug, Default, Clone, Copy)]
struct ClassAccum {
    completed: u64,
    delay_sum: f64,
    service_sum: f64,
    slowdown_sum: f64,
}

impl ClassAccum {
    fn add(&mut self, other: &ClassAccum) {
        self.completed += other.completed;
        self.delay_sum += other.delay_sum;
        self.service_sum += other.service_sum;
        self.slowdown_sum += other.slowdown_sum;
    }
}

/// One recorder's private accumulators (all classes). The hot path
/// writes **only** `window`; `totals` holds everything already swept
/// out of it (folded in by [`MetricsSink::sweep_window`] under the
/// same lock), so a lifetime snapshot is `totals + window` and a
/// record costs one set of additions, not two.
#[derive(Debug)]
struct ShardData {
    totals: Vec<ClassAccum>,
    window: Vec<ClassAccum>,
}

/// One recorder's private accumulator array (all classes).
#[derive(Debug)]
struct Shard {
    classes: Mutex<ShardData>,
}

/// A per-executor handle into the sink: recording takes only this
/// shard's (uncontended) lock.
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    shard: Arc<Shard>,
}

impl MetricsRecorder {
    /// Record one completed request (durations in seconds).
    pub fn record(&self, class: usize, delay_s: f64, service_s: f64) {
        let mut g = self.shard.classes.lock();
        // Guard the division: sub-microsecond services can measure as 0.
        let slowdown = delay_s / service_s.max(1e-9);
        let c = &mut g.window[class];
        c.completed += 1;
        c.delay_sum += delay_s;
        c.service_sum += service_s;
        c.slowdown_sum += slowdown;
    }
}

/// One control window's departures, swept (snapshot-and-reset) from
/// every shard by [`MetricsSink::sweep_window`]. Feeds the
/// `completions` / `slowdown_sums` fields of the controller's
/// `WindowObservation`; a class with `completions == 0` yields
/// `mean_slowdowns() == None` downstream — never NaN.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSweep {
    /// Per-class completions since the previous sweep.
    pub completions: Vec<u64>,
    /// Per-class sum of slowdowns of those completions.
    pub slowdown_sums: Vec<f64>,
}

/// Sharded metrics sink: executors register recorders, snapshots sweep
/// them.
#[derive(Debug)]
pub struct MetricsSink {
    n_classes: usize,
    shards: Mutex<Vec<Arc<Shard>>>,
}

impl MetricsSink {
    /// Sink for `n` classes with no shards yet.
    pub fn new(n: usize) -> Self {
        Self { n_classes: n, shards: Mutex::new(Vec::new()) }
    }

    /// Register a new private shard and return its recorder. Shards are
    /// never removed: a recorder dropped mid-run keeps its history in
    /// the snapshot.
    pub fn recorder(&self) -> MetricsRecorder {
        let shard = Arc::new(Shard {
            classes: Mutex::new(ShardData {
                totals: vec![ClassAccum::default(); self.n_classes],
                window: vec![ClassAccum::default(); self.n_classes],
            }),
        });
        self.shards.lock().push(Arc::clone(&shard));
        MetricsRecorder { shard }
    }

    /// Sweep every shard into one consistent-enough snapshot (per-shard
    /// locks, no global freeze — fine for monitoring). Lifetime =
    /// already-swept totals plus the live (un-swept) window.
    pub fn snapshot(&self) -> ServerStats {
        let mut totals = vec![ClassAccum::default(); self.n_classes];
        for shard in self.shards.lock().iter() {
            let g = shard.classes.lock();
            for (t, (swept, live)) in totals.iter_mut().zip(g.totals.iter().zip(g.window.iter())) {
                t.add(swept);
                t.add(live);
            }
        }
        ServerStats {
            classes: totals
                .iter()
                .map(|t| {
                    let n = (t.completed as f64).max(1.0);
                    ClassStats {
                        completed: t.completed,
                        shed: 0,
                        mean_delay: if t.completed > 0 { t.delay_sum / n } else { 0.0 },
                        mean_service: if t.completed > 0 { t.service_sum / n } else { 0.0 },
                        mean_slowdown: if t.completed > 0 { t.slowdown_sum / n } else { 0.0 },
                    }
                })
                .collect(),
        }
    }

    /// Close the current observation window: sweep each shard's window
    /// accumulators **and reset them** under the shard's lock, so a
    /// departure is counted in exactly one window however the sweep
    /// instants fall (no double counting across windows, no losses —
    /// records racing the sweep land in one window or the next).
    pub fn sweep_window(&self) -> WindowSweep {
        let mut completions = vec![0u64; self.n_classes];
        let mut slowdown_sums = vec![0.0f64; self.n_classes];
        for shard in self.shards.lock().iter() {
            let mut g = shard.classes.lock();
            let ShardData { totals, window } = &mut *g;
            for (i, c) in window.iter_mut().enumerate() {
                completions[i] += c.completed;
                slowdown_sums[i] += c.slowdown_sum;
                // Fold the swept window into the shard's lifetime
                // totals (the hot path only ever writes the window).
                totals[i].add(c);
                *c = ClassAccum::default();
            }
        }
        WindowSweep { completions, slowdown_sums }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = MetricsSink::new(2);
        let r = s.recorder();
        r.record(0, 1.0, 0.5); // slowdown 2
        r.record(0, 3.0, 0.5); // slowdown 6
        r.record(1, 1.0, 1.0); // slowdown 1
        let snap = s.snapshot();
        assert_eq!(snap.classes[0].completed, 2);
        assert!((snap.classes[0].mean_slowdown - 4.0).abs() < 1e-12);
        assert!((snap.classes[0].mean_delay - 2.0).abs() < 1e-12);
        assert_eq!(snap.classes[1].completed, 1);
        assert_eq!(snap.slowdown_ratio(0, 1), Some(4.0));
    }

    #[test]
    fn empty_ratio_is_none() {
        let s = MetricsSink::new(2);
        s.recorder().record(0, 1.0, 1.0);
        assert!(s.snapshot().slowdown_ratio(0, 1).is_none());
    }

    #[test]
    fn zero_service_guarded() {
        let s = MetricsSink::new(1);
        s.recorder().record(0, 1.0, 0.0);
        assert!(s.snapshot().classes[0].mean_slowdown.is_finite());
    }

    #[test]
    fn empty_sink_snapshots_zeroes() {
        let snap = MetricsSink::new(3).snapshot();
        assert_eq!(snap.classes.len(), 3);
        assert!(snap.classes.iter().all(|c| c.completed == 0 && c.mean_slowdown == 0.0));
    }

    /// Snapshot-and-reset semantics: a departure lands in exactly one
    /// window, and the lifetime snapshot is untouched by sweeping.
    #[test]
    fn sweep_window_never_double_counts() {
        let s = MetricsSink::new(2);
        let r1 = s.recorder();
        let r2 = s.recorder();
        r1.record(0, 1.0, 0.5); // slowdown 2
        r2.record(0, 3.0, 0.5); // slowdown 6
        r2.record(1, 1.0, 1.0); // slowdown 1
        let w1 = s.sweep_window();
        assert_eq!(w1.completions, vec![2, 1]);
        assert!((w1.slowdown_sums[0] - 8.0).abs() < 1e-12);
        assert!((w1.slowdown_sums[1] - 1.0).abs() < 1e-12);
        // Next window starts empty; only new departures appear in it.
        r1.record(1, 2.0, 1.0);
        let w2 = s.sweep_window();
        assert_eq!(w2.completions, vec![0, 1], "window 1's departures must not repeat");
        assert!((w2.slowdown_sums[1] - 2.0).abs() < 1e-12);
        // Lifetime totals still hold everything.
        let snap = s.snapshot();
        assert_eq!(snap.classes[0].completed, 2);
        assert_eq!(snap.classes[1].completed, 2);
    }

    /// The satellite contract: an empty window must surface to the
    /// controller as `None` mean slowdowns — never NaN.
    #[test]
    fn empty_window_yields_none_not_nan() {
        let s = MetricsSink::new(2);
        let _r = s.recorder();
        let w = s.sweep_window();
        assert_eq!(w.completions, vec![0, 0]);
        assert_eq!(w.slowdown_sums, vec![0.0, 0.0]);
        let obs = psd_core::control::WindowObservation {
            index: 0,
            start: 0.0,
            end: 0.05,
            arrivals: vec![0, 0],
            arrived_work: vec![0.0, 0.0],
            shed_work: vec![0.0; 2],
            completions: w.completions,
            backlog: vec![0, 0],
            slowdown_sums: w.slowdown_sums,
        };
        let means = obs.mean_slowdowns();
        assert_eq!(means, vec![None, None], "no departures ⇒ None, not NaN");
        assert!(means.iter().flatten().all(|m| m.is_finite()), "no NaN can leak");
    }

    /// The sharded-accumulator consistency contract: concurrent
    /// recorders on private shards must sum to exactly what the old
    /// single-mutex sink would have produced.
    #[test]
    fn sharded_accumulators_sum_to_the_serial_totals() {
        const RECORDERS: usize = 4;
        const PER: usize = 1000;
        let s = Arc::new(MetricsSink::new(2));
        let handles: Vec<_> = (0..RECORDERS)
            .map(|k| {
                let r = s.recorder();
                std::thread::spawn(move || {
                    for i in 0..PER {
                        let class = (k + i) % 2;
                        r.record(class, 1.0 + i as f64 * 1e-3, 0.5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Serial oracle with the same stream of records.
        let mut completed = [0u64; 2];
        let mut delay = [0.0f64; 2];
        for k in 0..RECORDERS {
            for i in 0..PER {
                let class = (k + i) % 2;
                completed[class] += 1;
                delay[class] += 1.0 + i as f64 * 1e-3;
            }
        }
        let snap = s.snapshot();
        for c in 0..2 {
            assert_eq!(snap.classes[c].completed, completed[c]);
            let want_mean = delay[c] / completed[c] as f64;
            assert!(
                (snap.classes[c].mean_delay - want_mean).abs() < 1e-9,
                "class {c}: {} vs {want_mean}",
                snap.classes[c].mean_delay
            );
            assert!((snap.classes[c].mean_service - 0.5).abs() < 1e-12);
        }
    }
}
