//! The admin route family served by **both** front-end engines:
//!
//! | route | method | semantics |
//! |---|---|---|
//! | `/metrics` | `GET` | JSON snapshot: controller kind, epochs, published rates & admission probabilities, per-class completed/shed/backlog/mean-slowdown |
//! | `/config`  | `GET` | JSON view of the epoch-stamped class table |
//! | `/config`  | `PUT`/`POST` | hot reconfiguration via query parameters |
//!
//! `PUT /config` accepts any subset of:
//!
//! * `deltas=1,2,4` — swap the differentiation parameters (class count
//!   is fixed; lengths must match);
//! * `gain=0.5` — feedback integral gain;
//! * `admission-cap=0.9` (alias `cap=`) — target admitted utilization,
//!   or `admission-cap=off` to disable admission control;
//! * `controller=open|feedback` — switch the controller family.
//!
//! The update is validated and committed atomically with a bumped
//! epoch; it **takes effect at the next control-window boundary**, when
//! the monitor rebuilds its controller and publishes under the new
//! epoch (`applied_epoch` in the responses tracks that hand-over — see
//! the epoch-ordering notes on `psd_core::control::SharedControl`).
//! Invalid parameters answer `400` with an `{"error": …}` body and
//! leave the table untouched.
//!
//! Responses are `application/json`; admin requests respect keep-alive
//! like any other request. The routes are matched by
//! [`crate::classify::admin_route`] *before* classification, so
//! `/metrics` is never queued behind the PSD scheduler — you can
//! observe an overloaded server while it sheds.

use std::fmt::Write as _;

use bytes::Bytes;

use crate::classify::{admin_route, AdminRoute};
use crate::codec::{HttpRequest, Response};
use crate::server::PsdServer;
use psd_core::control::ControllerKind;

/// Serve `req` if it targets an admin route. `keep_alive` is the
/// connection policy the caller already decided (drain-aware).
pub(crate) fn handle(server: &PsdServer, req: &HttpRequest, keep_alive: bool) -> Option<Response> {
    let route = admin_route(&req.path)?;
    Some(match (route, req.method.as_str()) {
        (AdminRoute::Metrics, "GET") => json_response(req, keep_alive, 200, metrics_json(server)),
        (AdminRoute::Config, "GET") => json_response(req, keep_alive, 200, config_json(server)),
        (AdminRoute::Config, "PUT" | "POST") => match apply_config(server, req) {
            Ok(()) => json_response(req, keep_alive, 200, config_json(server)),
            Err(e) => {
                json_response(req, keep_alive, 400, format!("{{\"error\":{}}}", json_str(&e)))
            }
        },
        _ => json_response(req, keep_alive, 405, "{\"error\":\"method not allowed\"}".to_string()),
    })
}

fn json_response(req: &HttpRequest, keep_alive: bool, status: u16, body: String) -> Response {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        _ => "Method Not Allowed",
    };
    Response {
        http11: req.http11,
        status,
        reason,
        keep_alive,
        extra_headers: vec![("Content-Type", "application/json".to_string())],
        body: Bytes::from(body.into_bytes()),
    }
}

/// Minimal JSON string escaping (error messages only contain ASCII
/// from our own validation code, but stay safe anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64_array(xs: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
    out
}

fn table_fields(server: &PsdServer) -> String {
    let control = server.control();
    // Read `applied_epoch` *before* the table: both only ever increase
    // and applied ≤ epoch holds at every instant, so this order keeps
    // the reported pair consistent (reading the table first could race
    // a PUT + window boundary into `applied_epoch > epoch`).
    let applied = control.applied_epoch();
    let t = control.table();
    let cap = t.admission_cap.map_or("null".to_string(), |c| c.to_string());
    format!(
        "\"controller\":{},\"deltas\":{},\"gain\":{},\"admission_cap\":{cap},\
         \"epoch\":{},\"applied_epoch\":{applied}",
        json_str(t.controller.as_str()),
        json_f64_array(&t.deltas),
        t.gain,
        t.epoch,
    )
}

fn config_json(server: &PsdServer) -> String {
    format!("{{{}}}", table_fields(server))
}

fn metrics_json(server: &PsdServer) -> String {
    let control = server.control();
    let stats = server.stats();
    let mut classes = String::from("[");
    for (i, c) in stats.classes.iter().enumerate() {
        if i > 0 {
            classes.push(',');
        }
        let _ = write!(
            classes,
            "{{\"class\":{i},\"completed\":{},\"shed\":{},\"backlog\":{},\
             \"mean_delay_s\":{},\"mean_service_s\":{},\"mean_slowdown\":{}}}",
            c.completed,
            c.shed,
            server.backlog(i),
            c.mean_delay,
            c.mean_service,
            c.mean_slowdown,
        );
    }
    classes.push(']');
    format!(
        "{{{},\"rates\":{},\"admit_probability\":{},\"classes\":{classes}}}",
        table_fields(server),
        json_f64_array(&control.rates()),
        json_f64_array(&control.admit_probabilities()),
    )
}

/// Parse the `PUT /config` query parameters and commit them as one
/// epoch-bumping update.
fn apply_config(server: &PsdServer, req: &HttpRequest) -> Result<(), String> {
    let query = req.query.as_deref().unwrap_or("");
    if query.is_empty() {
        return Err("no parameters (try deltas=, gain=, admission-cap=, controller=)".to_string());
    }
    let mut deltas: Option<Vec<f64>> = None;
    let mut gain: Option<f64> = None;
    let mut cap: Option<Option<f64>> = None;
    let mut kind: Option<ControllerKind> = None;
    for kv in query.split('&').filter(|kv| !kv.is_empty()) {
        let (key, value) = kv.split_once('=').ok_or_else(|| format!("bare parameter '{kv}'"))?;
        match key {
            "deltas" => {
                let parsed: Result<Vec<f64>, _> =
                    value.split(',').map(|s| s.trim().parse::<f64>()).collect();
                deltas = Some(parsed.map_err(|_| format!("bad deltas '{value}'"))?);
            }
            "gain" => {
                gain = Some(value.parse().map_err(|_| format!("bad gain '{value}'"))?);
            }
            "admission-cap" | "admission_cap" | "cap" => {
                cap = Some(match value {
                    "off" | "none" | "null" => None,
                    v => Some(v.parse().map_err(|_| format!("bad admission cap '{v}'"))?),
                });
            }
            "controller" => {
                kind = Some(
                    ControllerKind::parse(value)
                        .ok_or_else(|| format!("unknown controller '{value}'"))?,
                );
            }
            other => return Err(format!("unknown parameter '{other}'")),
        }
    }
    server
        .control()
        .update(|t| {
            if let Some(d) = deltas {
                t.deltas = d;
            }
            if let Some(g) = gain {
                t.gain = g;
            }
            if let Some(c) = cap {
                t.admission_cap = c;
            }
            if let Some(k) = kind {
                t.controller = k;
            }
        })
        .map(|_| ())
}
