//! The admin route family served by **both** front-end engines:
//!
//! | route | method | semantics |
//! |---|---|---|
//! | `/metrics` | `GET` | JSON snapshot: controller kind, epochs, published rates & admission probabilities, per-class completed/shed/backlog/mean-slowdown |
//! | `/metrics/prometheus` | `GET` | the same signals plus engine internals (timer wheel, reactor shards, admission door, latency histograms) in Prometheus text format 0.0.4 |
//! | `/config`  | `GET` | JSON view of the epoch-stamped class table |
//! | `/config`  | `PUT`/`POST` | hot reconfiguration via query parameters |
//! | `/healthz` | `GET` | liveness: engine, shard count, uptime, epochs |
//! | `/trace`   | `GET` | recent request spans (`?n=` caps the count) with the per-class queueing/service/stretch/write-back decomposition |
//! | `/trace/control` | `GET` | the control-decision flight recorder: one `ControlTrace` per window, JSON-replayable through `psd_obs::replay` |
//!
//! `PUT /config` accepts any subset of:
//!
//! * `deltas=1,2,4` — swap the differentiation parameters (class count
//!   is fixed; lengths must match);
//! * `gain=0.5` — feedback integral gain;
//! * `admission-cap=0.9` (alias `cap=`) — target admitted utilization,
//!   or `admission-cap=off` to disable admission control;
//! * `controller=open|feedback` — switch the controller family.
//!
//! The update is validated and committed atomically with a bumped
//! epoch; it **takes effect at the next control-window boundary**, when
//! the monitor rebuilds its controller and publishes under the new
//! epoch (`applied_epoch` in the responses tracks that hand-over — see
//! the epoch-ordering notes on `psd_core::control::SharedControl`).
//! Invalid parameters answer `400` with an `{"error": …}` body and
//! leave the table untouched.
//!
//! Responses are `application/json`; admin requests respect keep-alive
//! like any other request. The routes are matched by
//! [`crate::classify::admin_route`] *before* classification, so
//! `/metrics` is never queued behind the PSD scheduler — you can
//! observe an overloaded server while it sheds.

use std::fmt::Write as _;
use std::sync::Arc;

use bytes::Bytes;

use crate::classify::{admin_route, AdminRoute};
use crate::codec::{HttpRequest, Response};
use crate::server::PsdServer;
use psd_core::control::ControllerKind;
use psd_obs::{spans_to_json, PromWriter, ReactorShardStats, UringStats};

/// How many spans `GET /trace` returns when the request does not cap
/// the count with `?n=`.
const DEFAULT_TRACE_SPANS: usize = 512;

/// Engine-side context the front-end hands to every admin call: which
/// engine is serving and (reactor only) the per-shard loop counters.
/// Built from references so constructing one on the request path costs
/// nothing.
pub(crate) struct AdminInfo<'a> {
    /// Engine token (`"threads"` | `"reactor"` | `"uring"`).
    pub(crate) engine: &'static str,
    /// Reactor event-loop shard counters, empty for the threaded
    /// engine (both reactor backends fill them).
    pub(crate) shard_stats: &'a [Arc<ReactorShardStats>],
    /// io_uring ring counters per shard, empty unless the uring
    /// backend is serving.
    pub(crate) uring_stats: &'a [Arc<UringStats>],
}

/// Serve `req` if it targets an admin route. `keep_alive` is the
/// connection policy the caller already decided (drain-aware).
pub(crate) fn handle(
    server: &PsdServer,
    req: &HttpRequest,
    keep_alive: bool,
    info: &AdminInfo<'_>,
) -> Option<Response> {
    let route = admin_route(&req.path)?;
    Some(match (route, req.method.as_str()) {
        (AdminRoute::Metrics, "GET") => json_response(req, keep_alive, 200, metrics_json(server)),
        (AdminRoute::MetricsProm, "GET") => prom_response(req, keep_alive, prom_text(server, info)),
        (AdminRoute::Config, "GET") => json_response(req, keep_alive, 200, config_json(server)),
        (AdminRoute::Config, "PUT" | "POST") => match apply_config(server, req) {
            Ok(()) => json_response(req, keep_alive, 200, config_json(server)),
            Err(e) => {
                json_response(req, keep_alive, 400, format!("{{\"error\":{}}}", json_str(&e)))
            }
        },
        (AdminRoute::Healthz, "GET") => {
            json_response(req, keep_alive, 200, healthz_json(server, info))
        }
        (AdminRoute::Trace, "GET") => json_response(req, keep_alive, 200, trace_json(server, req)),
        (AdminRoute::TraceControl, "GET") => {
            json_response(req, keep_alive, 200, server.obs().flight.to_json())
        }
        _ => json_response(req, keep_alive, 405, "{\"error\":\"method not allowed\"}".to_string()),
    })
}

fn json_response(req: &HttpRequest, keep_alive: bool, status: u16, body: String) -> Response {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        _ => "Method Not Allowed",
    };
    Response {
        http11: req.http11,
        status,
        reason,
        keep_alive,
        extra_headers: vec![("Content-Type", "application/json".to_string())],
        body: Bytes::from(body.into_bytes()),
    }
}

/// `200 OK` carrying the Prometheus exposition with its versioned
/// content type (scrapers negotiate on it).
fn prom_response(req: &HttpRequest, keep_alive: bool, body: String) -> Response {
    Response {
        http11: req.http11,
        status: 200,
        reason: "OK",
        keep_alive,
        extra_headers: vec![("Content-Type", psd_obs::prom::CONTENT_TYPE.to_string())],
        body: Bytes::from(body.into_bytes()),
    }
}

/// Minimal JSON string escaping (error messages only contain ASCII
/// from our own validation code, but stay safe anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64_array(xs: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
    out
}

fn table_fields(server: &PsdServer) -> String {
    let control = server.control();
    // Read `applied_epoch` *before* the table: both only ever increase
    // and applied ≤ epoch holds at every instant, so this order keeps
    // the reported pair consistent (reading the table first could race
    // a PUT + window boundary into `applied_epoch > epoch`).
    let applied = control.applied_epoch();
    let t = control.table();
    let cap = t.admission_cap.map_or("null".to_string(), |c| c.to_string());
    format!(
        "\"controller\":{},\"deltas\":{},\"gain\":{},\"admission_cap\":{cap},\
         \"epoch\":{},\"applied_epoch\":{applied}",
        json_str(t.controller.as_str()),
        json_f64_array(&t.deltas),
        t.gain,
        t.epoch,
    )
}

fn config_json(server: &PsdServer) -> String {
    format!("{{{}}}", table_fields(server))
}

fn metrics_json(server: &PsdServer) -> String {
    let control = server.control();
    let stats = server.stats();
    let mut classes = String::from("[");
    for (i, c) in stats.classes.iter().enumerate() {
        if i > 0 {
            classes.push(',');
        }
        let _ = write!(
            classes,
            "{{\"class\":{i},\"completed\":{},\"shed\":{},\"backlog\":{},\
             \"mean_delay_s\":{},\"mean_service_s\":{},\"mean_slowdown\":{}}}",
            c.completed,
            c.shed,
            server.backlog(i),
            c.mean_delay,
            c.mean_service,
            c.mean_slowdown,
        );
    }
    classes.push(']');
    format!(
        "{{{},\"rates\":{},\"admit_probability\":{},\"classes\":{classes}}}",
        table_fields(server),
        json_f64_array(&control.rates()),
        json_f64_array(&control.admit_probabilities()),
    )
}

fn healthz_json(server: &PsdServer, info: &AdminInfo<'_>) -> String {
    let control = server.control();
    let applied = control.applied_epoch();
    let t = control.table();
    format!(
        "{{\"status\":\"ok\",\"engine\":{},\"shards\":{},\"classes\":{},\
         \"uptime_s\":{:.3},\"epoch\":{},\"applied_epoch\":{applied},\
         \"trace_sample\":{}}}",
        json_str(info.engine),
        info.shard_stats.len(),
        server.num_classes(),
        server.started_at().elapsed().as_secs_f64(),
        t.epoch,
        server.obs().spans.sample_rate(),
    )
}

fn trace_json(server: &PsdServer, req: &HttpRequest) -> String {
    let mut max = DEFAULT_TRACE_SPANS;
    if let Some(q) = req.query.as_deref() {
        for kv in q.split('&') {
            if let Some(v) = kv.strip_prefix("n=") {
                if let Ok(n) = v.parse::<usize>() {
                    max = n;
                }
            }
        }
    }
    let spans = server.obs().spans.recent(max);
    spans_to_json(
        &spans,
        server.num_classes(),
        server.obs().spans.sample_rate(),
        server.obs().spans.recorded(),
    )
}

/// Render the whole Prometheus exposition: control plane, per-class
/// service stats, latency histograms, and the engine internals that
/// the JSON `/metrics` never carried (timer-wheel cascade activity,
/// per-shard reactor loop behaviour, admission door counters).
fn prom_text(server: &PsdServer, info: &AdminInfo<'_>) -> String {
    let control = server.control();
    let applied = control.applied_epoch();
    let t = control.table();
    let stats = server.stats();
    let telemetry = server.obs();
    let mut w = PromWriter::new();

    w.help("psd_server_info", "gauge", "Constant 1, labeled with the serving engine.");
    w.sample("psd_server_info", &[("engine", info.engine)], 1.0);
    w.help("psd_uptime_seconds", "gauge", "Seconds since the server started.");
    w.sample("psd_uptime_seconds", &[], server.started_at().elapsed().as_secs_f64());

    w.help("psd_controller_epoch", "gauge", "Config-table epoch (bumped by PUT /config).");
    w.sample("psd_controller_epoch", &[], t.epoch as f64);
    w.help("psd_controller_applied_epoch", "gauge", "Epoch the monitor last published under.");
    w.sample("psd_controller_applied_epoch", &[], applied as f64);

    let rates = control.rates();
    let admit = control.admit_probabilities();
    w.help("psd_rate", "gauge", "Published per-class processing-rate share.");
    w.help("psd_admit_probability", "gauge", "Published per-class admission probability.");
    w.help("psd_requests_completed_total", "counter", "Requests completed per class.");
    w.help("psd_requests_shed_total", "counter", "Requests shed at the door per class.");
    w.help("psd_backlog", "gauge", "Requests queued or in service per class.");
    w.help("psd_mean_slowdown", "gauge", "Mean slowdown of completed requests per class.");
    let mut label = String::new();
    for (i, c) in stats.classes.iter().enumerate() {
        label.clear();
        let _ = write!(label, "{i}");
        let class: &[(&str, &str)] = &[("class", &label)];
        w.sample("psd_rate", class, rates.get(i).copied().unwrap_or(0.0));
        w.sample("psd_admit_probability", class, admit.get(i).copied().unwrap_or(1.0));
        w.sample("psd_requests_completed_total", class, c.completed as f64);
        w.sample("psd_requests_shed_total", class, c.shed as f64);
        w.sample("psd_backlog", class, server.backlog(i) as f64);
        w.sample("psd_mean_slowdown", class, c.mean_slowdown);
    }

    w.help(
        "psd_request_duration_seconds",
        "histogram",
        "End-to-end request latency (admit to response write) per class.",
    );
    for (i, h) in telemetry.latency.iter().enumerate() {
        label.clear();
        let _ = write!(label, "{i}");
        w.histogram("psd_request_duration_seconds", &[("class", &label)], &h.snapshot());
    }

    w.help("psd_admission_draws_total", "counter", "Admission decisions drawn at the door.");
    w.sample(
        "psd_admission_draws_total",
        &[],
        telemetry.admission.draws.load(std::sync::atomic::Ordering::Relaxed) as f64,
    );
    w.help("psd_admission_sheds_total", "counter", "Requests turned away by the admission draw.");
    w.sample(
        "psd_admission_sheds_total",
        &[],
        telemetry.admission.sheds.load(std::sync::atomic::Ordering::Relaxed) as f64,
    );

    w.help("psd_trace_spans_recorded_total", "counter", "Request spans kept by the trace ring.");
    w.sample("psd_trace_spans_recorded_total", &[], telemetry.spans.recorded() as f64);
    w.help("psd_control_traces_recorded_total", "counter", "Control windows flight-recorded.");
    w.sample("psd_control_traces_recorded_total", &[], telemetry.flight.recorded() as f64);

    if let Some((wheel, in_flight)) = server.wheel_stats() {
        use std::sync::atomic::Ordering::Relaxed;
        w.help("psd_wheel_wakeups_total", "counter", "Timer-wheel thread wakeups.");
        w.sample("psd_wheel_wakeups_total", &[], wheel.wakeups.load(Relaxed) as f64);
        w.help("psd_wheel_fires_total", "counter", "Virtual-finish deadlines fired.");
        w.sample("psd_wheel_fires_total", &[], wheel.fires.load(Relaxed) as f64);
        w.help("psd_wheel_cascades_total", "counter", "Entries cascaded between wheel levels.");
        w.sample("psd_wheel_cascades_total", &[], wheel.cascades.load(Relaxed) as f64);
        w.help("psd_wheel_scheduled_total", "counter", "Deadlines scheduled on the wheel.");
        w.sample("psd_wheel_scheduled_total", &[], wheel.scheduled.load(Relaxed) as f64);
        w.help("psd_wheel_in_flight", "gauge", "Requests accepted and not yet fired.");
        w.sample("psd_wheel_in_flight", &[], in_flight as f64);
    }

    if !info.shard_stats.is_empty() {
        w.help("psd_reactor_wakeups_total", "counter", "Poller returns per reactor shard.");
        w.help("psd_reactor_events_total", "counter", "Readiness events per reactor shard.");
        w.help("psd_reactor_accepts_total", "counter", "Connections accepted per shard.");
        w.help("psd_reactor_completions_total", "counter", "Completions drained per shard.");
        w.help("psd_reactor_sweeps_total", "counter", "Idle sweeps per shard.");
        w.help("psd_reactor_swept_total", "counter", "Connections reaped by idle sweeps.");
        w.help("psd_reactor_mailbox_peak", "gauge", "Largest mailbox drain batch per shard.");
        w.help("psd_reactor_events_per_wakeup", "gauge", "Mean readiness events per wakeup.");
        w.help("psd_reactor_mean_mailbox_depth", "gauge", "Mean completions per mailbox drain.");
        w.help("psd_reactor_mean_sweep_size", "gauge", "Mean connections reaped per sweep.");
        for (i, s) in info.shard_stats.iter().enumerate() {
            let snap = s.snapshot();
            label.clear();
            let _ = write!(label, "{i}");
            let shard: &[(&str, &str)] = &[("shard", &label)];
            w.sample("psd_reactor_wakeups_total", shard, snap.wakeups as f64);
            w.sample("psd_reactor_events_total", shard, snap.events as f64);
            w.sample("psd_reactor_accepts_total", shard, snap.accepts as f64);
            w.sample("psd_reactor_completions_total", shard, snap.completions as f64);
            w.sample("psd_reactor_sweeps_total", shard, snap.sweeps as f64);
            w.sample("psd_reactor_swept_total", shard, snap.swept as f64);
            w.sample("psd_reactor_mailbox_peak", shard, snap.mailbox_peak as f64);
            w.sample("psd_reactor_events_per_wakeup", shard, snap.events_per_wakeup());
            w.sample("psd_reactor_mean_mailbox_depth", shard, snap.mean_mailbox_depth());
            w.sample("psd_reactor_mean_sweep_size", shard, snap.mean_sweep_size());
        }
    }

    if !info.uring_stats.is_empty() {
        w.help("psd_uring_enters_total", "counter", "io_uring_enter syscalls per shard.");
        w.help("psd_uring_waits_total", "counter", "Enter calls that waited for a completion.");
        w.help("psd_uring_sqes_total", "counter", "SQEs submitted per shard.");
        w.help("psd_uring_cqes_total", "counter", "CQEs reaped per shard.");
        w.help("psd_uring_fixed_reads_total", "counter", "Reads served via READ_FIXED.");
        w.help("psd_uring_fixed_writes_total", "counter", "Writes served via WRITE_FIXED.");
        w.help("psd_uring_plain_ops_total", "counter", "Reads/writes on plain opcodes.");
        w.help("psd_uring_sqes_per_enter", "gauge", "Mean SQEs batched into one enter.");
        w.help("psd_uring_cqes_per_wait", "gauge", "Mean CQEs reaped per waiting enter.");
        w.help("psd_uring_fixed_hit_ratio", "gauge", "Share of ops on registered buffers.");
        for (i, s) in info.uring_stats.iter().enumerate() {
            let snap = s.snapshot();
            label.clear();
            let _ = write!(label, "{i}");
            let shard: &[(&str, &str)] = &[("shard", &label)];
            w.sample("psd_uring_enters_total", shard, snap.enters as f64);
            w.sample("psd_uring_waits_total", shard, snap.waits as f64);
            w.sample("psd_uring_sqes_total", shard, snap.sqes as f64);
            w.sample("psd_uring_cqes_total", shard, snap.cqes as f64);
            w.sample("psd_uring_fixed_reads_total", shard, snap.fixed_reads as f64);
            w.sample("psd_uring_fixed_writes_total", shard, snap.fixed_writes as f64);
            w.sample("psd_uring_plain_ops_total", shard, snap.plain_ops as f64);
            w.sample("psd_uring_sqes_per_enter", shard, snap.sqes_per_enter());
            w.sample("psd_uring_cqes_per_wait", shard, snap.cqes_per_wait());
            w.sample("psd_uring_fixed_hit_ratio", shard, snap.fixed_hit_ratio());
        }
    }

    // Process-wide I/O-plane syscall meter from the vendored polling
    // shim (epoll ctl/wait, eventfd ops, io_uring setup/enter/register,
    // and the reactor shards' direct read/write/accept calls). The
    // engines' syscall economy is compared on deltas of this counter —
    // see `tests/syscall_gate.rs`.
    w.help(
        "psd_reactor_syscalls_total",
        "counter",
        "I/O-plane syscalls issued through the polling/uring shim.",
    );
    w.sample("psd_reactor_syscalls_total", &[], polling::count::total() as f64);
    w.into_string()
}

/// Parse the `PUT /config` query parameters and commit them as one
/// epoch-bumping update.
fn apply_config(server: &PsdServer, req: &HttpRequest) -> Result<(), String> {
    let query = req.query.as_deref().unwrap_or("");
    if query.is_empty() {
        return Err("no parameters (try deltas=, gain=, admission-cap=, controller=)".to_string());
    }
    let mut deltas: Option<Vec<f64>> = None;
    let mut gain: Option<f64> = None;
    let mut cap: Option<Option<f64>> = None;
    let mut kind: Option<ControllerKind> = None;
    for kv in query.split('&').filter(|kv| !kv.is_empty()) {
        let (key, value) = kv.split_once('=').ok_or_else(|| format!("bare parameter '{kv}'"))?;
        match key {
            "deltas" => {
                let parsed: Result<Vec<f64>, _> =
                    value.split(',').map(|s| s.trim().parse::<f64>()).collect();
                deltas = Some(parsed.map_err(|_| format!("bad deltas '{value}'"))?);
            }
            "gain" => {
                gain = Some(value.parse().map_err(|_| format!("bad gain '{value}'"))?);
            }
            "admission-cap" | "admission_cap" | "cap" => {
                cap = Some(match value {
                    "off" | "none" | "null" => None,
                    v => Some(v.parse().map_err(|_| format!("bad admission cap '{v}'"))?),
                });
            }
            "controller" => {
                kind = Some(
                    ControllerKind::parse(value)
                        .ok_or_else(|| format!("unknown controller '{value}'"))?,
                );
            }
            other => return Err(format!("unknown parameter '{other}'")),
        }
    }
    server
        .control()
        .update(|t| {
            if let Some(d) = deltas {
                t.deltas = d;
            }
            if let Some(g) = gain {
                t.gain = g;
            }
            if let Some(c) = cap {
                t.admission_cap = c;
            }
            if let Some(k) = kind {
                t.controller = k;
            }
        })
        .map(|_| ())
}
