//! # psd-server — a multi-threaded Internet server with PSD scheduling
//!
//! The paper's *task server* is "an abstract concept … a child process
//! in a multi-process server, or a thread in a multi-thread server"
//! (§1). This crate realizes that abstraction: a real request server
//! whose dispatch order is driven by a proportional-share scheduler
//! from [`psd_propshare`], with weights produced online by the PSD rate
//! allocator from [`psd_core`].
//!
//! Architecture (mirrors paper Fig. 1, with two selectable front-end
//! engines feeding the same dispatch core):
//!
//! ```text
//!  clients / TCP                     front-end engines (FrontendConfig::engine)
//!  ─────────────                    ┌──────────────────────────────────────────┐
//!  driver::LoadDriver ──────┐       │ threads: 1 blocking thread / connection  │
//!                           │       │ reactor: epoll loop, conns multiplexed,  │
//!  psd-loadgen / curl ────────────▶ │   sans-io codec, WriteBuf resumption,    │
//!                           │       │   eventfd completion wakeups             │
//!                           │       └──────────────┬───────────────────────────┘
//!                           │  submit / submit_async │ classify → class, cost
//!                           ▼                        ▼
//!                    ┌───────────────────────────────────────────────┐
//!                    │ PsdServer                                     │
//!                    │  per-class arrival shards → dispatch core     │
//!                    │   (ProportionalScheduler | rate partition)    │
//!                    │        ▲ weights                              │
//!                    │ monitor: window arrival rates                 │
//!                    │   → psd_core::psd_rates                       │
//!                    │ worker pool: execute request, record          │
//!                    │   delay / slowdown, CompletionNotify          │
//!                    └───────────────────────────────────────────────┘
//! ```
//!
//! Requests carry a *cost* (work units); workers execute them either by
//! spinning (CPU-bound) or precise sleeping (I/O-like), scaled by a
//! configurable work-unit duration so tests stay fast.
//!
//! ```no_run
//! use psd_server::{PsdServer, ServerConfig, SchedulerKind};
//!
//! let cfg = ServerConfig { deltas: vec![1.0, 2.0], ..ServerConfig::default() };
//! let server = PsdServer::start(cfg);
//! server.submit(0, 1.0);
//! let stats = server.shutdown();
//! ```
//!
//! The blocking front-end engine, the epoll reactor and their shared
//! HTTP codec live in [`httplite`], [`reactor`] and [`codec`]; the
//! `psd_httpd` binary selects between engines with `--engine
//! {threads,reactor}`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classify;
pub mod codec;
pub mod driver;
pub mod httplite;
mod metrics;
mod queues;
pub mod reactor;
mod server;

pub use classify::{classify_path, Classification};
pub use codec::{HttpRequest, RequestCodec, Response, WriteBuf};
pub use httplite::{EngineKind, FrontendConfig, HttpFrontend};
pub use metrics::{ClassStats, ServerStats};
pub use server::{
    Completion, PsdServer, SchedulerKind, ServerConfig, Workload, DEFAULT_CONTROL_WINDOW,
};
