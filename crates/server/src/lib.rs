//! # psd-server — a multi-threaded Internet server with PSD scheduling
//!
//! The paper's *task server* is "an abstract concept … a child process
//! in a multi-process server, or a thread in a multi-thread server"
//! (§1). This crate realizes that abstraction: a real request server
//! whose dispatch order is driven by a proportional-share scheduler
//! from [`psd_propshare`], with weights produced online by the PSD rate
//! allocator from [`psd_core`].
//!
//! Architecture (mirrors paper Fig. 1, with two selectable front-end
//! engines feeding the same dispatch core and two execution engines
//! behind it):
//!
//! ```text
//!  clients / TCP                  front-end engines (FrontendConfig::engine)
//!  ─────────────                 ┌────────────────────────────────────────────┐
//!  driver::LoadDriver ────┐      │ threads: 1 blocking thread / connection    │
//!                         │      │ reactor: N epoll shards (cfg.shards),      │
//!  psd-loadgen / curl ─────────▶ │   round-robin fd assignment, sans-io       │
//!                         │      │   codec, pooled buffers, coarse cached     │
//!                         │      │   clock, coalesced eventfd completions     │
//!                         │      │ uring: the same shards on io_uring —       │
//!                         │      │   multishot accept, registered fixed       │
//!      GET /metrics       │      │   buffers, reads/writes/doorbell batched   │
//!      GET|PUT /config ────────┐ │   into ONE io_uring_enter per loop turn;   │
//!      (hot reconfig:     │    │ │   probe → epoll fallback with warning      │
//!       δ's, gain, cap)   │    └─┼─▶ admin routes (classify::admin_route)     │
//!                         │      └──────────────┬─────────────────────────────┘
//!                         │   classify → class, cost → admit? ──no──▶ 503
//!                         │                     │ yes                X-Shed: 1
//!                         │ submit/submit_async ▼                   + close
//!             ┌─────────────────────────────────────────────────────────┐
//!             │ PsdServer                                               │
//!             │  monitor (every control window):                        │
//!             │    sweep arrivals + offered work (incl. shed) +         │
//!             │    measured slowdowns (MetricsSink::sweep_window) +     │
//!             │    backlogs → WindowObservation                         │
//!             │      → Box<dyn RateController>.control()                │
//!             │        (psd_core::control: open Eq.17 | feedback,       │
//!             │         × Admitting cap — the same objects desim runs)  │
//!             │      → ControlDirective { rates, admit_probability }    │
//!             │        rates → engine weights; admission + epoch →      │
//!             │        SharedControl (lock-free submit-path tables)     │
//!             │  Sleep × RatePartition:      everything else:           │
//!             │  ┌────────────────────────┐  ┌───────────────────────┐  │
//!             │  │ timer-wheel virtual    │  │ per-class arrival     │  │
//!             │  │ task servers (wheel.rs)│  │ shards → dispatch     │  │
//!             │  │ per-class deadline     │  │ core (ProportionalS.  │  │
//!             │  │ chains, 0 blocked      │  │ | rate partition) →   │  │
//!             │  │ threads, 50 µs ticks   │  │ worker pool           │  │
//!             │  └────────────────────────┘  └───────────────────────┘  │
//!             │  both: record delay/slowdown into per-executor metric   │
//!             │  shards (swept per window AND at snapshot), deliver     │
//!             │  CompletionNotify                                       │
//!             └──────────────────────────┬──────────────────────────────┘
//!                                        │ psd-obs (allocation-free)
//!             ┌──────────────────────────▼──────────────────────────────┐
//!             │ ObsBundle: span ring (sampled request traces, stage     │
//!             │ decomposition), per-class log-bucket latency histograms,│
//!             │ admission door counters, control-decision flight        │
//!             │ recorder (one ControlTrace per window, replayable       │
//!             │ through desim's controller)                             │
//!             │   GET /healthz · /trace · /trace/control ·              │
//!             │   /metrics/prometheus  (served by both engines)         │
//!             └─────────────────────────────────────────────────────────┘
//! ```
//!
//! Requests carry a *cost* (work units), scaled by a configurable
//! work-unit duration so tests stay fast. CPU-bound (`Spin`) work
//! executes on the worker pool; I/O-like (`Sleep`) work under the
//! paper's rate partition is pure *waiting*, so it completes on the
//! hashed hierarchical timer wheel instead — no thread blocks per
//! in-service request and in-service concurrency is not bounded by
//! `workers`.
//!
//! # Performance
//!
//! The wheel + sharded reactor + allocation-light request path (pooled
//! codec/write buffers, in-place head parsing, direct-write responses,
//! per-executor metrics shards) move the 5 s steady `psd_loadtest`
//! smoke on one core from **5141 sent / ~1031 req/s** (PR 3, threads
//! or single-loop reactor, offered-load-limited at its stable
//! operating point) to **10977 sent / ~2172 req/s** (reactor ×2
//! shards, 250 µs work units, 2200 req/s offered), and the io_uring
//! engine doubles the hot path again: **24137 sent / ~4850 req/s**
//! (uring ×2 shards, 125 µs work units, 4800 req/s offered) — each
//! step with 0 errors and the achieved S1/S0 slowdown ratio within
//! the ±20 % band of the configured δ1/δ0 = 2. See
//! `BENCH_hotpath.json` / `BENCH_uring.json` in CI and the committed
//! reference runs in `benches/baselines/`. The uring engine gets
//! there on **half the I/O-plane syscalls per request** (4.0 vs 8.0,
//! metered by `polling::count`, exported as
//! `psd_reactor_syscalls_total` and pinned strictly below epoll by
//! `tests/syscall_gate.rs`): per-connection reads, response writes,
//! the multishot accept and the PSD completion doorbell all ride one
//! batched `io_uring_enter` per loop iteration, with payloads in a
//! registered fixed-buffer pool (128 slots/shard, heap spill above).
//! Steady-state request handling performs ~3 heap allocations end to
//! end (`tests/reactor_alloc.rs` pins this with a counting
//! allocator).
//!
//! ```no_run
//! use psd_server::{PsdServer, ServerConfig, SchedulerKind};
//!
//! let cfg = ServerConfig { deltas: vec![1.0, 2.0], ..ServerConfig::default() };
//! let server = PsdServer::start(cfg);
//! server.submit(0, 1.0);
//! let stats = server.shutdown();
//! ```
//!
//! The blocking front-end engine, the sharded reactor (epoll shard
//! loops and the io_uring completion loops share one structure) and
//! their shared HTTP codec live in [`httplite`], [`reactor`] and
//! [`codec`]; the `psd_httpd` binary selects between engines with
//! `--engine {threads,reactor,uring}` (uring probes at startup and
//! falls back to the epoll reactor with a logged warning — exposed to
//! scripts as `--probe-uring`), sizes the reactor with `--shards N`, and
//! selects the control plane with `--controller {open,feedback}`,
//! `--gain` and `--admission-cap`. The admin route family
//! (`GET /metrics`, `GET /metrics/prometheus`, `GET`/`PUT /config` —
//! hot reconfiguration of δ's, gain and admission cap without restart,
//! epoch-ordered at control window boundaries — plus the observability
//! routes `GET /healthz`, `GET /trace` and `GET /trace/control`) is
//! served by both engines ahead of classification; see `admin` and
//! [`SharedControl`]. Request tracing, Prometheus exposition and the
//! control-decision flight recorder come from the dependency-free
//! `psd-obs` crate; the timer-wheel execution engine lives in `wheel`
//! (internal), the shared sleep-overshoot calibration in [`timing`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod admin;
pub mod classify;
pub mod codec;
pub mod driver;
pub mod httplite;
mod metrics;
mod queues;
pub mod reactor;
mod server;
pub mod timing;
mod wheel;

pub use classify::{admin_route, classify_path, AdminRoute, Classification};
pub use codec::{ConnectionHeader, HttpRequest, RequestCodec, Response, WriteBuf};
pub use httplite::{default_shards, uring_available, EngineKind, FrontendConfig, HttpFrontend};
pub use metrics::{ClassStats, MetricsRecorder, ServerStats, WindowSweep};
pub use psd_core::control::{ClassTable, ControllerKind, SharedControl};
pub use server::{
    Completion, PsdServer, SchedulerKind, ServerConfig, Workload, DEFAULT_CONTROL_WINDOW,
};
