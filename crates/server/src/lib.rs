//! # psd-server — a multi-threaded Internet server with PSD scheduling
//!
//! The paper's *task server* is "an abstract concept … a child process
//! in a multi-process server, or a thread in a multi-thread server"
//! (§1). This crate realizes that abstraction: a real threaded request
//! server whose dispatch order is driven by a proportional-share
//! scheduler from [`psd_propshare`], with weights produced online by
//! the PSD rate allocator from [`psd_core`].
//!
//! Architecture (mirrors paper Fig. 1, but with actual threads):
//!
//! ```text
//!  clients / TCP front-end           PsdServer
//!  ───────────────────────  submit  ┌───────────────────────────────┐
//!  driver::LoadDriver  ──────────▶  │ classify → per-class backlog  │
//!  httplite::serve     ──────────▶  │   (ProportionalScheduler)     │
//!                                   │        ▲ weights              │
//!                                   │ monitor: window arrival rates │
//!                                   │   → psd_core::psd_rates       │
//!                                   │ worker pool: execute request, │
//!                                   │   record delay / slowdown     │
//!                                   └───────────────────────────────┘
//! ```
//!
//! Requests carry a *cost* (work units); workers execute them either by
//! spinning (CPU-bound) or precise sleeping (I/O-like), scaled by a
//! configurable work-unit duration so tests stay fast.
//!
//! ```no_run
//! use psd_server::{PsdServer, ServerConfig, SchedulerKind, Workload};
//! use std::time::Duration;
//!
//! let cfg = ServerConfig {
//!     deltas: vec![1.0, 2.0],
//!     mean_cost: 1.0,
//!     scheduler: SchedulerKind::Wfq,
//!     workers: 1,
//!     work_unit: Duration::from_micros(200),
//!     workload: Workload::Sleep,
//!     control_window: Duration::from_millis(50),
//!     estimator_history: 5,
//! };
//! let server = PsdServer::start(cfg);
//! server.submit(0, 1.0);
//! let stats = server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classify;
pub mod driver;
pub mod httplite;
mod metrics;
mod queues;
mod server;

pub use classify::{classify_path, Classification};
pub use httplite::{HttpFrontend, HttpRequest};
pub use metrics::{ClassStats, ServerStats};
pub use server::{Completion, PsdServer, SchedulerKind, ServerConfig, Workload};
