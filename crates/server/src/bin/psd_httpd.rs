//! `psd_httpd` — a runnable PSD-scheduled HTTP-lite server.
//!
//! ```text
//! psd_httpd [--addr 127.0.0.1:8080] [--deltas 1,2,4] [--workers 1]
//!           [--work-unit-us 300] [--default-cost 1.0] [--spin]
//!           [--engine threads|reactor|uring] [--shards N]
//!           [--controller open|feedback] [--gain G] [--admission-cap C]
//!           [--max-connections 1024] [--duration-s N]
//!
//! Requests are classified by URL (`/class0/...`, `/premium/...`) or an
//! `X-Class` header; `?cost=2.5` sets the work amount. Responses carry
//! `X-Delay-Us` and `X-Slowdown` headers. HTTP/1.1 connections are
//! kept alive.
//!
//! `--engine threads` (default) serves one blocking thread per
//! connection; `--engine reactor` multiplexes connections over
//! `--shards N` epoll event-loop threads (default: min(cores, 4)),
//! assigned round-robin; `--engine uring` runs the same sharded
//! reactor on an io_uring completion plane (batched submissions,
//! registered buffers) and falls back to `reactor` with a warning on
//! kernels without io_uring. Past `--max-connections`, new arrivals
//! are answered `503` + `Connection: close` on every engine.
//!
//!   curl 'http://127.0.0.1:8080/class0/hello?cost=2'
//! ```
//!
//! `--controller feedback` closes the control loop on measured
//! per-class slowdowns (`--gain` tunes it; gain 0 ≡ open loop) and
//! `--admission-cap C` sheds the lowest classes (`503` + `X-Shed`)
//! once the offered load exceeds `C`. Both engines also serve the
//! admin routes: `GET /metrics` (JSON snapshot) and `GET|PUT /config`
//! (hot reconfiguration of δ's/gain/cap without restart):
//!
//!   curl 'http://127.0.0.1:8080/metrics'
//!   curl -X PUT 'http://127.0.0.1:8080/config?deltas=2,1,4&gain=0.5'
//!
//! With `--duration-s N` the server runs for N seconds and then drains
//! gracefully — stop accepting, finish in-flight requests, join the
//! worker pool via `PsdServer::shutdown()` — and prints final per-class
//! statistics. Without it the accept loop runs until Ctrl-C (no drain).

use std::sync::Arc;
use std::time::Duration;

use psd_server::{
    ControllerKind, EngineKind, FrontendConfig, HttpFrontend, PsdServer, ServerConfig, Workload,
};

fn main() {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut deltas = vec![1.0, 2.0, 4.0];
    let mut workers = 1usize;
    let mut work_unit_us = 300u64;
    let mut default_cost = 1.0f64;
    let mut workload = Workload::Sleep;
    let mut engine = EngineKind::Threads;
    let mut shards = psd_server::default_shards();
    let mut controller = ControllerKind::Open;
    let mut gain = 0.3f64;
    let mut admission_cap: Option<f64> = None;
    let mut max_connections = FrontendConfig::default().max_connections;
    let mut duration_s: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| die("--addr needs a value")),
            "--deltas" => {
                let v = args.next().unwrap_or_else(|| die("--deltas needs a list"));
                deltas = v
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| die("bad delta")))
                    .collect();
                if deltas.is_empty() {
                    die("need at least one delta");
                }
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
            }
            "--work-unit-us" => {
                work_unit_us = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--work-unit-us needs an integer"));
            }
            "--default-cost" => {
                default_cost = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--default-cost needs a number"));
            }
            "--engine" => {
                engine = args
                    .next()
                    .as_deref()
                    .and_then(EngineKind::parse)
                    .unwrap_or_else(|| die("--engine needs 'threads', 'reactor' or 'uring'"));
            }
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| die("--shards needs a positive integer"));
            }
            "--controller" => {
                controller = args
                    .next()
                    .as_deref()
                    .and_then(ControllerKind::parse)
                    .unwrap_or_else(|| die("--controller needs 'open' or 'feedback'"));
            }
            "--gain" => {
                gain = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&g: &f64| g >= 0.0 && g.is_finite())
                    .unwrap_or_else(|| die("--gain needs a number >= 0"));
            }
            "--admission-cap" => {
                admission_cap = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&c: &f64| c > 0.0 && c < 1.0)
                        .unwrap_or_else(|| die("--admission-cap needs a value in (0,1)")),
                );
            }
            "--max-connections" => {
                max_connections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| die("--max-connections needs a positive integer"));
            }
            "--duration-s" => {
                duration_s = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&d: &f64| d > 0.0)
                        .unwrap_or_else(|| die("--duration-s needs a positive number")),
                );
            }
            "--spin" => workload = Workload::Spin,
            // Exit 0 if this kernel serves io_uring, 1 otherwise — for
            // scripts/CI to gate uring-engine runs without grepping
            // fallback warnings off stderr.
            "--probe-uring" => {
                if psd_server::uring_available() {
                    println!("io_uring: available");
                    return;
                }
                die("io_uring: unavailable on this kernel");
            }
            "--help" | "-h" => {
                println!(
                    "usage: psd_httpd [--addr A] [--deltas 1,2,4] [--workers N] \
                     [--work-unit-us U] [--default-cost C] [--spin] \
                     [--engine threads|reactor|uring] [--shards N] \
                     [--controller open|feedback] [--gain G] [--admission-cap C] \
                     [--max-connections N] [--duration-s N] [--probe-uring]"
                );
                return;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }

    // Everything not exposed as a flag comes from the one documented
    // default set (control window, estimator history, …).
    let server = Arc::new(PsdServer::start(ServerConfig {
        deltas: deltas.clone(),
        mean_cost: default_cost,
        workers,
        work_unit: Duration::from_micros(work_unit_us),
        workload,
        controller,
        gain,
        admission_cap,
        ..ServerConfig::default()
    }));

    let frontend = HttpFrontend::start_with(
        &addr,
        Arc::clone(&server),
        FrontendConfig {
            engine,
            shards,
            max_connections,
            default_cost,
            ..FrontendConfig::default()
        },
    )
    .unwrap_or_else(|e| die(&format!("cannot bind {addr}: {e}")));
    eprintln!(
        "psd_httpd listening on {} — {} engine ({shards} shard(s)), {} classes \
         (deltas {deltas:?}), {} controller{}, {workers} worker(s), \
         {work_unit_us}µs/work-unit, ≤{max_connections} connections",
        frontend.addr(),
        engine.as_str(),
        deltas.len(),
        controller.as_str(),
        admission_cap.map(|c| format!(" (admission cap {c})")).unwrap_or_default()
    );
    eprintln!("try: curl 'http://{}/class0/hello?cost=2'", frontend.addr());

    match duration_s {
        None => {
            // Run forever: park this thread while the front-end serves.
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        Some(secs) => {
            std::thread::sleep(Duration::from_secs_f64(secs));
            eprintln!("psd_httpd: draining…");
            let leftover = frontend
                .shutdown(Duration::from_secs(10))
                .unwrap_or_else(|e| die(&format!("drain failed: {e}")));
            if leftover > 0 {
                // Undrained connections still hold the server; final
                // stats are unavailable, so report and exit instead of
                // tripping over the Arc.
                eprintln!("psd_httpd: {leftover} connection(s) did not drain in time");
                std::process::exit(1);
            }
            let stats = Arc::try_unwrap(server)
                .unwrap_or_else(|_| die("connection handlers still hold the server"))
                .shutdown();
            for (c, s) in stats.classes.iter().enumerate() {
                eprintln!(
                    "class {c}: completed={} mean_delay={:.6}s mean_slowdown={:.3}",
                    s.completed, s.mean_delay, s.mean_slowdown
                );
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
