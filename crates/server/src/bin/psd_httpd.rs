//! `psd_httpd` — a runnable PSD-scheduled HTTP-lite server.
//!
//! ```text
//! psd_httpd [--addr 127.0.0.1:8080] [--deltas 1,2,4] [--workers 1]
//!           [--work-unit-us 300] [--default-cost 1.0] [--spin]
//!
//! Requests are classified by URL (`/class0/...`, `/premium/...`) or an
//! `X-Class` header; `?cost=2.5` sets the work amount. Responses carry
//! `X-Delay-Us` and `X-Slowdown` headers.
//!
//!   curl 'http://127.0.0.1:8080/class0/hello?cost=2'
//! ```
//!
//! Ctrl-C to stop (the process exits without a graceful drain; use the
//! library API for embedded use).

use std::net::TcpListener;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use psd_server::{httplite, PsdServer, SchedulerKind, ServerConfig, Workload};

fn main() {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut deltas = vec![1.0, 2.0, 4.0];
    let mut workers = 1usize;
    let mut work_unit_us = 300u64;
    let mut default_cost = 1.0f64;
    let mut workload = Workload::Sleep;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| die("--addr needs a value")),
            "--deltas" => {
                let v = args.next().unwrap_or_else(|| die("--deltas needs a list"));
                deltas = v
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| die("bad delta")))
                    .collect();
                if deltas.is_empty() {
                    die("need at least one delta");
                }
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
            }
            "--work-unit-us" => {
                work_unit_us = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--work-unit-us needs an integer"));
            }
            "--default-cost" => {
                default_cost = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--default-cost needs a number"));
            }
            "--spin" => workload = Workload::Spin,
            "--help" | "-h" => {
                println!(
                    "usage: psd_httpd [--addr A] [--deltas 1,2,4] [--workers N] \
                     [--work-unit-us U] [--default-cost C] [--spin]"
                );
                return;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let server = Arc::new(PsdServer::start(ServerConfig {
        deltas: deltas.clone(),
        mean_cost: default_cost,
        scheduler: SchedulerKind::Wfq,
        workers,
        work_unit: Duration::from_micros(work_unit_us),
        workload,
        control_window: Duration::from_millis(200),
        estimator_history: 5,
    }));

    let listener =
        TcpListener::bind(&addr).unwrap_or_else(|e| die(&format!("cannot bind {addr}: {e}")));
    eprintln!(
        "psd_httpd listening on {addr} — {} classes (deltas {deltas:?}), {workers} worker(s), \
         {work_unit_us}µs/work-unit",
        deltas.len()
    );
    eprintln!("try: curl 'http://{addr}/class0/hello?cost=2'");

    let stop = Arc::new(AtomicBool::new(false));
    if let Err(e) = httplite::serve(listener, server, default_cost, stop) {
        die(&format!("accept loop failed: {e}"));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
