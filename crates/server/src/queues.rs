//! The shared dispatch core, connecting submitters (clients) to the
//! worker pool behind a mutex + condvar. Two dispatch disciplines:
//!
//! * **Shared pool** — a work-conserving proportional-share scheduler
//!   ([`psd_propshare`]) orders one global dispatch queue; workers
//!   execute at full machine speed.
//! * **Rate partition** — the paper's Fig. 1 architecture: one *serial*
//!   virtual task server per class, each running at its allocated
//!   fraction `r_i` of the machine rate. At most one request per class
//!   is in service, and its execution is stretched by `1/r_i`, so each
//!   class behaves as an independent M/G/1 at rate `r_i` — the regime
//!   Eq. 17 was derived for. Non-work-conserving by design: spare
//!   capacity of an idle class is *not* donated, which is exactly what
//!   keeps the slowdown ratios pinned to the δ's.

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use crossbeam::channel::Sender;
use parking_lot::{Condvar, Mutex};
use psd_propshare::{ProportionalScheduler, WorkItem};

use crate::server::Completion;

/// Shares below this floor are clamped before the `1/r` stretch.
const MIN_SHARE: f64 = 1e-6;

/// Ceiling on the rate-partition execution stretch: a class whose
/// estimated load decays to the allocator's rate floor must still run
/// at ≥1% of the machine rate, or its serial virtual server wedges for
/// longer than every drain/client timeout on the first request after
/// the lull.
const MAX_STRETCH: f64 = 100.0;

/// A request queued for execution.
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    /// Class index.
    pub class: usize,
    /// Work units to execute.
    pub cost: f64,
    /// Enqueue instant (queueing delay is measured from here).
    pub enqueued: Instant,
    /// Optional completion notification for synchronous submitters.
    pub notify: Option<Sender<Completion>>,
}

/// A dispatched request plus its execution-time multiplier.
#[derive(Debug)]
pub struct Dispatched {
    /// The request to execute.
    pub req: QueuedRequest,
    /// Execution stretch factor: `1.0` in shared-pool mode, `1/r_c` in
    /// rate-partition mode (the class's virtual server runs at `r_c` ×
    /// the machine rate).
    pub stretch: f64,
}

enum Core {
    Shared {
        scheduler: Box<dyn ProportionalScheduler + Send>,
        /// Sidecar payloads: the scheduler tracks (id, cost); we map id
        /// to the full request. Entries are removed on dispatch.
        payloads: HashMap<u64, QueuedRequest>,
        next_id: u64,
    },
    Paced {
        fifos: Vec<VecDeque<QueuedRequest>>,
        /// Normalized rate shares `r_i` (sum ≈ 1).
        shares: Vec<f64>,
        /// Whether class `i`'s serial virtual server is busy.
        in_service: Vec<bool>,
    },
}

struct Inner {
    core: Core,
    closed: bool,
}

/// MPMC dispatch queue with proportional-share or rate-partitioned
/// ordering.
pub struct DispatchQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    /// Immutable mode flag, readable without the lock — lets the
    /// per-request `complete` call skip the mutex entirely in
    /// shared-pool mode.
    paced: bool,
}

impl DispatchQueue {
    /// Work-conserving shared pool over a proportional scheduler.
    pub fn new(scheduler: Box<dyn ProportionalScheduler + Send>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                core: Core::Shared { scheduler, payloads: HashMap::new(), next_id: 0 },
                closed: false,
            }),
            ready: Condvar::new(),
            paced: false,
        }
    }

    /// Rate-partitioned dispatch over `n` classes, starting from an
    /// even split.
    pub fn new_paced(n: usize) -> Self {
        assert!(n >= 1, "at least one class");
        Self {
            inner: Mutex::new(Inner {
                core: Core::Paced {
                    fifos: (0..n).map(|_| VecDeque::new()).collect(),
                    shares: vec![1.0 / n as f64; n],
                    in_service: vec![false; n],
                },
                closed: false,
            }),
            ready: Condvar::new(),
            paced: true,
        }
    }

    /// Enqueue a request; wakes one worker. Returns `false` if the
    /// queue is already closed.
    pub fn push(&self, req: QueuedRequest) -> bool {
        let mut g = self.inner.lock();
        if g.closed {
            return false;
        }
        match &mut g.core {
            Core::Shared { scheduler, payloads, next_id } => {
                let id = *next_id;
                *next_id += 1;
                let class = req.class;
                let cost = req.cost;
                payloads.insert(id, req);
                scheduler.enqueue(class, WorkItem { id, cost });
            }
            Core::Paced { fifos, .. } => fifos[req.class].push_back(req),
        }
        drop(g);
        self.ready.notify_one();
        true
    }

    /// Blocking pop in discipline order; `None` once closed *and* no
    /// queued work remains (requests already in service keep running in
    /// their workers).
    pub fn pop(&self) -> Option<Dispatched> {
        let mut g = self.inner.lock();
        loop {
            match &mut g.core {
                Core::Shared { scheduler, payloads, .. } => {
                    if let Some((_, item)) = scheduler.dequeue() {
                        let req = payloads.remove(&item.id).expect("payload tracked");
                        return Some(Dispatched { req, stretch: 1.0 });
                    }
                }
                Core::Paced { fifos, shares, in_service } => {
                    // Among idle classes with backlog, dispatch the
                    // longest-waiting head (each class is serial, so
                    // the pick order barely matters — it only decides
                    // which idle virtual server starts first).
                    let eligible = (0..fifos.len())
                        .filter(|&c| !in_service[c] && !fifos[c].is_empty())
                        .min_by(|&a, &b| {
                            let ta = fifos[a].front().expect("non-empty").enqueued;
                            let tb = fifos[b].front().expect("non-empty").enqueued;
                            ta.cmp(&tb)
                        });
                    if let Some(c) = eligible {
                        in_service[c] = true;
                        let req = fifos[c].pop_front().expect("non-empty");
                        let stretch = (1.0 / shares[c].max(MIN_SHARE)).min(MAX_STRETCH);
                        return Some(Dispatched { req, stretch });
                    }
                }
            }
            let drained = match &g.core {
                Core::Shared { .. } => true, // dequeue above found nothing
                Core::Paced { fifos, .. } => fifos.iter().all(VecDeque::is_empty),
            };
            if g.closed && drained {
                return None;
            }
            self.ready.wait(&mut g);
        }
    }

    /// Mark class `class`'s serial virtual server idle again
    /// (rate-partition mode; a lock-free no-op for the shared pool).
    /// Workers call this when an execution finishes.
    pub fn complete(&self, class: usize) {
        if !self.paced {
            return;
        }
        let mut g = self.inner.lock();
        if let Core::Paced { in_service, .. } = &mut g.core {
            in_service[class] = false;
            drop(g);
            self.ready.notify_all();
        }
    }

    /// Update the per-class rates (class `i` gets `weights[i]`).
    pub fn set_weights(&self, weights: &[f64]) {
        let mut g = self.inner.lock();
        match &mut g.core {
            Core::Shared { scheduler, .. } => {
                for (class, &w) in weights.iter().enumerate() {
                    // Proportional schedulers require strictly positive
                    // weights.
                    scheduler.set_weight(class, w.max(1e-9));
                }
            }
            Core::Paced { shares, .. } => {
                let total: f64 = weights.iter().map(|&w| w.max(MIN_SHARE)).sum();
                for (s, &w) in shares.iter_mut().zip(weights) {
                    *s = w.max(MIN_SHARE) / total;
                }
            }
        }
    }

    /// Close the queue: pending requests still drain, new pushes fail.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current backlog of `class`.
    pub fn backlog(&self, class: usize) -> usize {
        let g = self.inner.lock();
        match &g.core {
            Core::Shared { scheduler, .. } => scheduler.backlog(class),
            Core::Paced { fifos, .. } => fifos[class].len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_propshare::Wfq;
    use std::sync::Arc;
    use std::time::Instant;

    fn queue() -> Arc<DispatchQueue> {
        Arc::new(DispatchQueue::new(Box::new(Wfq::new(vec![1.0, 1.0]))))
    }

    fn req(class: usize, cost: f64) -> QueuedRequest {
        QueuedRequest { class, cost, enqueued: Instant::now(), notify: None }
    }

    #[test]
    fn push_pop_roundtrip() {
        let q = queue();
        assert!(q.push(req(0, 1.0)));
        assert!(q.push(req(1, 2.0)));
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        assert_ne!(a.req.class, b.req.class);
        assert_eq!(a.stretch, 1.0, "shared pool never stretches");
    }

    #[test]
    fn close_rejects_pushes_but_drains() {
        let q = queue();
        q.push(req(0, 1.0));
        q.close();
        assert!(!q.push(req(1, 1.0)));
        assert!(q.pop().is_some(), "queued work drains");
        assert!(q.pop().is_none(), "then None");
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = queue();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(req(1, 1.0));
        let got = h.join().unwrap().unwrap();
        assert_eq!(got.req.class, 1);
    }

    #[test]
    fn weights_update_applies() {
        let q = queue();
        q.set_weights(&[3.0, 1.0]);
        // No panic and backlog still works.
        q.push(req(0, 1.0));
        assert_eq!(q.backlog(0), 1);
        assert_eq!(q.backlog(1), 0);
    }

    #[test]
    fn zero_weight_is_floored_not_fatal() {
        let q = queue();
        q.set_weights(&[0.0, 1.0]); // must not panic
        q.push(req(0, 1.0));
        assert!(q.pop().is_some());
    }

    #[test]
    fn paced_serializes_each_class() {
        let q = DispatchQueue::new_paced(2);
        q.push(req(0, 1.0));
        q.push(req(0, 1.0));
        q.push(req(1, 1.0));
        let a = q.pop().unwrap();
        assert_eq!(a.req.class, 0, "earliest head first");
        // Class 0 is now in service: only class 1 is eligible.
        let b = q.pop().unwrap();
        assert_eq!(b.req.class, 1);
        q.close();
        // Both classes busy, one class-0 request queued: not drained.
        q.complete(0);
        let c = q.pop().unwrap();
        assert_eq!(c.req.class, 0);
        q.complete(0);
        q.complete(1);
        assert!(q.pop().is_none(), "closed and empty");
    }

    #[test]
    fn paced_stretch_is_inverse_share() {
        let q = DispatchQueue::new_paced(2);
        q.set_weights(&[0.8, 0.2]);
        q.push(req(0, 1.0));
        q.push(req(1, 1.0));
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        let (s0, s1) =
            if a.req.class == 0 { (a.stretch, b.stretch) } else { (b.stretch, a.stretch) };
        assert!((s0 - 1.25).abs() < 1e-9, "class 0 runs at 0.8× machine rate, stretch {s0}");
        assert!((s1 - 5.0).abs() < 1e-9, "class 1 runs at 0.2× machine rate, stretch {s1}");
    }

    #[test]
    fn paced_stretch_is_capped_for_starved_shares() {
        let q = DispatchQueue::new_paced(2);
        // The allocator's rate floor (1e-4) must not wedge the class.
        q.set_weights(&[1.0, 1e-4]);
        q.push(req(1, 1.0));
        let d = q.pop().unwrap();
        assert_eq!(d.req.class, 1);
        assert!((d.stretch - MAX_STRETCH).abs() < 1e-9, "stretch capped, got {}", d.stretch);
    }

    #[test]
    fn paced_even_split_by_default() {
        let q = DispatchQueue::new_paced(4);
        q.push(req(2, 1.0));
        let d = q.pop().unwrap();
        assert!((d.stretch - 4.0).abs() < 1e-9, "even split over 4 classes");
        q.complete(2);
        assert_eq!(q.backlog(2), 0);
    }
}
