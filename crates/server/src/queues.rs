//! The shared dispatch core, connecting submitters (clients) to the
//! worker pool. Two dispatch disciplines:
//!
//! * **Shared pool** — a work-conserving proportional-share scheduler
//!   ([`psd_propshare`]) orders one global dispatch queue; workers
//!   execute at full machine speed.
//! * **Rate partition** — the paper's Fig. 1 architecture: one *serial*
//!   virtual task server per class, each running at its allocated
//!   fraction `r_i` of the machine rate. At most one request per class
//!   is in service, and its execution is stretched by `1/r_i`, so each
//!   class behaves as an independent M/G/1 at rate `r_i` — the regime
//!   Eq. 17 was derived for. Non-work-conserving by design: spare
//!   capacity of an idle class is *not* donated, which is exactly what
//!   keeps the slowdown ratios pinned to the δ's.
//!
//! # Sharded arrivals
//!
//! Submitters do not touch the dispatch lock. Each class owns a staging
//! shard (its own tiny mutex + FIFO); [`DispatchQueue::push`] appends
//! to the request's class shard and only rings the dispatch condvar
//! when a worker is actually asleep. Workers sweep every shard into the
//! scheduler core under the single dispatch lock right before picking
//! the next request, so discipline order is unchanged while the
//! submit path — the one the reactor thread and hundreds of connection
//! handlers hammer concurrently — never serializes on the dispatcher.

use std::collections::{HashMap, VecDeque};
use std::mem;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use crossbeam::channel::Sender;
use parking_lot::{Condvar, Mutex};
use psd_propshare::{ProportionalScheduler, WorkItem};

use crate::server::Completion;

/// Shares below this floor are clamped before the `1/r` stretch
/// (shared with the timer-wheel virtual task servers in
/// [`crate::wheel`], which apply the same stretch without a worker).
pub(crate) const MIN_SHARE: f64 = 1e-6;

/// Ceiling on the rate-partition execution stretch: a class whose
/// estimated load decays to the allocator's rate floor must still run
/// at ≥1% of the machine rate, or its serial virtual server wedges for
/// longer than every drain/client timeout on the first request after
/// the lull.
pub(crate) const MAX_STRETCH: f64 = 100.0;

/// How a completed execution is reported back to the submitter.
pub enum CompletionNotify {
    /// Fire-and-forget: nobody is waiting.
    None,
    /// A blocked synchronous submitter ([`crate::PsdServer::submit_sync`]).
    Channel(Sender<Completion>),
    /// An event-driven submitter: the worker invokes the callback on
    /// its own thread — the reactor uses this to post the completion
    /// into its mailbox and ring its poller, instead of parking a whole
    /// connection thread per in-flight request.
    Callback(Box<dyn FnOnce(Completion) + Send>),
}

impl CompletionNotify {
    /// Deliver `done` to whoever is waiting (no-op for `None`).
    pub fn deliver(self, done: Completion) {
        match self {
            CompletionNotify::None => {}
            CompletionNotify::Channel(tx) => {
                let _ = tx.send(done);
            }
            CompletionNotify::Callback(f) => f(done),
        }
    }
}

impl std::fmt::Debug for CompletionNotify {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CompletionNotify::None => "None",
            CompletionNotify::Channel(_) => "Channel",
            CompletionNotify::Callback(_) => "Callback",
        })
    }
}

/// A request queued for execution.
#[derive(Debug)]
pub struct QueuedRequest {
    /// Class index.
    pub class: usize,
    /// Work units to execute.
    pub cost: f64,
    /// Enqueue instant (queueing delay is measured from here).
    pub enqueued: Instant,
    /// Completion notification for the submitter.
    pub notify: CompletionNotify,
}

/// A dispatched request plus its execution-time multiplier.
#[derive(Debug)]
pub struct Dispatched {
    /// The request to execute.
    pub req: QueuedRequest,
    /// Execution stretch factor: `1.0` in shared-pool mode, `1/r_c` in
    /// rate-partition mode (the class's virtual server runs at `r_c` ×
    /// the machine rate).
    pub stretch: f64,
}

enum Core {
    Shared {
        scheduler: Box<dyn ProportionalScheduler + Send>,
        /// Sidecar payloads: the scheduler tracks (id, cost); we map id
        /// to the full request. Entries are removed on dispatch.
        payloads: HashMap<u64, QueuedRequest>,
        next_id: u64,
    },
    Paced {
        fifos: Vec<VecDeque<QueuedRequest>>,
        /// Normalized rate shares `r_i` (sum ≈ 1).
        shares: Vec<f64>,
        /// Whether class `i`'s serial virtual server is busy.
        in_service: Vec<bool>,
    },
}

/// One class's staging FIFO — the only lock a submitter takes.
#[derive(Default)]
struct Shard {
    staged: Mutex<VecDeque<QueuedRequest>>,
}

/// MPMC dispatch queue with proportional-share or rate-partitioned
/// ordering and per-class sharded arrival staging.
pub struct DispatchQueue {
    shards: Vec<Shard>,
    dispatch: Mutex<Core>,
    ready: Condvar,
    /// Requests pushed but not yet handed to a worker (staged or in the
    /// core). `closed && queued == 0` is the drained condition.
    queued: AtomicUsize,
    /// Workers parked on `ready` — lets `push` skip the dispatch lock
    /// entirely when everyone is busy executing.
    sleepers: AtomicUsize,
    /// Bumped on every push / completion / close, so a worker that
    /// raced a wakeup can detect it before parking.
    stamp: AtomicUsize,
    closed: AtomicBool,
    /// Immutable mode flag, readable without any lock.
    paced: bool,
}

impl DispatchQueue {
    /// Work-conserving shared pool over a proportional scheduler.
    pub fn new(scheduler: Box<dyn ProportionalScheduler + Send>) -> Self {
        let n = scheduler.num_classes();
        Self {
            shards: (0..n).map(|_| Shard::default()).collect(),
            dispatch: Mutex::new(Core::Shared { scheduler, payloads: HashMap::new(), next_id: 0 }),
            ready: Condvar::new(),
            queued: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            stamp: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            paced: false,
        }
    }

    /// Rate-partitioned dispatch over `n` classes, starting from an
    /// even split.
    pub fn new_paced(n: usize) -> Self {
        assert!(n >= 1, "at least one class");
        Self {
            shards: (0..n).map(|_| Shard::default()).collect(),
            dispatch: Mutex::new(Core::Paced {
                fifos: (0..n).map(|_| VecDeque::new()).collect(),
                shares: vec![1.0 / n as f64; n],
                in_service: vec![false; n],
            }),
            ready: Condvar::new(),
            queued: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            stamp: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            paced: true,
        }
    }

    /// Enqueue a request onto its class shard; wakes one worker if any
    /// is parked. Returns `false` if the queue is already closed.
    pub fn push(&self, req: QueuedRequest) -> bool {
        let class = req.class.min(self.shards.len() - 1);
        {
            // The closed check lives under the shard lock: `close`
            // flips the flag and then passes through every shard lock,
            // so a push that saw `closed == false` here has its item
            // visible to the final drain.
            let mut staged = self.shards[class].staged.lock();
            if self.closed.load(Ordering::SeqCst) {
                return false;
            }
            staged.push_back(req);
        }
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.stamp.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Taking (and dropping) the dispatch lock orders this
            // notify after any in-progress park decision, closing the
            // lost-wakeup window the sharded fast path opens.
            drop(self.dispatch.lock());
            self.ready.notify_one();
        }
        true
    }

    /// Sweep every shard's staged arrivals into the discipline core.
    /// Caller holds the dispatch lock.
    fn collect(&self, core: &mut Core) {
        for (class, shard) in self.shards.iter().enumerate() {
            let mut staged = {
                let mut g = shard.staged.lock();
                if g.is_empty() {
                    continue;
                }
                mem::take(&mut *g)
            };
            match core {
                Core::Shared { scheduler, payloads, next_id } => {
                    for req in staged.drain(..) {
                        let id = *next_id;
                        *next_id += 1;
                        let cost = req.cost;
                        payloads.insert(id, req);
                        scheduler.enqueue(class, WorkItem { id, cost });
                    }
                }
                Core::Paced { fifos, .. } => fifos[class].append(&mut staged),
            }
        }
    }

    /// Try to dispatch one request in discipline order. Caller holds
    /// the dispatch lock.
    fn try_dispatch(&self, core: &mut Core) -> Option<Dispatched> {
        match core {
            Core::Shared { scheduler, payloads, .. } => {
                let (_, item) = scheduler.dequeue()?;
                let req = payloads.remove(&item.id).expect("payload tracked");
                Some(Dispatched { req, stretch: 1.0 })
            }
            Core::Paced { fifos, shares, in_service } => {
                // Among idle classes with backlog, dispatch the
                // longest-waiting head (each class is serial, so the
                // pick order barely matters — it only decides which
                // idle virtual server starts first).
                let eligible = (0..fifos.len())
                    .filter(|&c| !in_service[c] && !fifos[c].is_empty())
                    .min_by(|&a, &b| {
                        let ta = fifos[a].front().expect("non-empty").enqueued;
                        let tb = fifos[b].front().expect("non-empty").enqueued;
                        ta.cmp(&tb)
                    })?;
                in_service[eligible] = true;
                let req = fifos[eligible].pop_front().expect("non-empty");
                let stretch = (1.0 / shares[eligible].max(MIN_SHARE)).min(MAX_STRETCH);
                Some(Dispatched { req, stretch })
            }
        }
    }

    /// Blocking pop in discipline order; `None` once closed *and* no
    /// queued work remains (requests already in service keep running in
    /// their workers).
    pub fn pop(&self) -> Option<Dispatched> {
        let mut g = self.dispatch.lock();
        loop {
            self.collect(&mut g);
            if let Some(d) = self.try_dispatch(&mut g) {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(d);
            }
            if self.closed.load(Ordering::SeqCst) && self.queued.load(Ordering::SeqCst) == 0 {
                return None;
            }
            // Park — unless a push / completion landed after the sweep
            // above, in which case retry instead of risking a missed
            // wakeup (the push fast path only notifies when it already
            // saw us in `sleepers`).
            let before = self.stamp.load(Ordering::SeqCst);
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            if self.stamp.load(Ordering::SeqCst) == before {
                self.ready.wait(&mut g);
            }
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Mark class `class`'s serial virtual server idle again
    /// (rate-partition mode; a no-op for the shared pool). Workers call
    /// this when an execution finishes.
    pub fn complete(&self, class: usize) {
        if !self.paced {
            return;
        }
        let mut g = self.dispatch.lock();
        if let Core::Paced { in_service, .. } = &mut *g {
            in_service[class] = false;
        }
        drop(g);
        self.stamp.fetch_add(1, Ordering::SeqCst);
        self.ready.notify_all();
    }

    /// Update the per-class rates (class `i` gets `weights[i]`).
    pub fn set_weights(&self, weights: &[f64]) {
        let mut g = self.dispatch.lock();
        match &mut *g {
            Core::Shared { scheduler, .. } => {
                for (class, &w) in weights.iter().enumerate() {
                    // Proportional schedulers require strictly positive
                    // weights.
                    scheduler.set_weight(class, w.max(1e-9));
                }
            }
            Core::Paced { shares, .. } => {
                let total: f64 = weights.iter().map(|&w| w.max(MIN_SHARE)).sum();
                for (s, &w) in shares.iter_mut().zip(weights) {
                    *s = w.max(MIN_SHARE) / total;
                }
            }
        }
    }

    /// Close the queue: pending requests still drain, new pushes fail.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Pass through every shard lock: any push that saw the flag
        // unset has finished inserting by the time we get its lock, so
        // its request is visible to the workers' final sweeps.
        for shard in &self.shards {
            drop(shard.staged.lock());
        }
        drop(self.dispatch.lock());
        self.stamp.fetch_add(1, Ordering::SeqCst);
        self.ready.notify_all();
    }

    /// Current backlog of `class` (staged + scheduled).
    pub fn backlog(&self, class: usize) -> usize {
        let staged = self.shards[class].staged.lock().len();
        let g = self.dispatch.lock();
        staged
            + match &*g {
                Core::Shared { scheduler, .. } => scheduler.backlog(class),
                Core::Paced { fifos, .. } => fifos[class].len(),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_propshare::Wfq;
    use std::sync::Arc;
    use std::time::Instant;

    fn queue() -> Arc<DispatchQueue> {
        Arc::new(DispatchQueue::new(Box::new(Wfq::new(vec![1.0, 1.0]))))
    }

    fn req(class: usize, cost: f64) -> QueuedRequest {
        QueuedRequest { class, cost, enqueued: Instant::now(), notify: CompletionNotify::None }
    }

    #[test]
    fn push_pop_roundtrip() {
        let q = queue();
        assert!(q.push(req(0, 1.0)));
        assert!(q.push(req(1, 2.0)));
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        assert_ne!(a.req.class, b.req.class);
        assert_eq!(a.stretch, 1.0, "shared pool never stretches");
    }

    #[test]
    fn close_rejects_pushes_but_drains() {
        let q = queue();
        q.push(req(0, 1.0));
        q.close();
        assert!(!q.push(req(1, 1.0)));
        assert!(q.pop().is_some(), "queued work drains");
        assert!(q.pop().is_none(), "then None");
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = queue();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(req(1, 1.0));
        let got = h.join().unwrap().unwrap();
        assert_eq!(got.req.class, 1);
    }

    #[test]
    fn weights_update_applies() {
        let q = queue();
        q.set_weights(&[3.0, 1.0]);
        // No panic and backlog still works.
        q.push(req(0, 1.0));
        assert_eq!(q.backlog(0), 1);
        assert_eq!(q.backlog(1), 0);
    }

    #[test]
    fn zero_weight_is_floored_not_fatal() {
        let q = queue();
        q.set_weights(&[0.0, 1.0]); // must not panic
        q.push(req(0, 1.0));
        assert!(q.pop().is_some());
    }

    #[test]
    fn paced_serializes_each_class() {
        let q = DispatchQueue::new_paced(2);
        q.push(req(0, 1.0));
        q.push(req(0, 1.0));
        q.push(req(1, 1.0));
        let a = q.pop().unwrap();
        assert_eq!(a.req.class, 0, "earliest head first");
        // Class 0 is now in service: only class 1 is eligible.
        let b = q.pop().unwrap();
        assert_eq!(b.req.class, 1);
        q.close();
        // Both classes busy, one class-0 request queued: not drained.
        q.complete(0);
        let c = q.pop().unwrap();
        assert_eq!(c.req.class, 0);
        q.complete(0);
        q.complete(1);
        assert!(q.pop().is_none(), "closed and empty");
    }

    #[test]
    fn paced_stretch_is_inverse_share() {
        let q = DispatchQueue::new_paced(2);
        q.set_weights(&[0.8, 0.2]);
        q.push(req(0, 1.0));
        q.push(req(1, 1.0));
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        let (s0, s1) =
            if a.req.class == 0 { (a.stretch, b.stretch) } else { (b.stretch, a.stretch) };
        assert!((s0 - 1.25).abs() < 1e-9, "class 0 runs at 0.8× machine rate, stretch {s0}");
        assert!((s1 - 5.0).abs() < 1e-9, "class 1 runs at 0.2× machine rate, stretch {s1}");
    }

    #[test]
    fn paced_stretch_is_capped_for_starved_shares() {
        let q = DispatchQueue::new_paced(2);
        // The allocator's rate floor (1e-4) must not wedge the class.
        q.set_weights(&[1.0, 1e-4]);
        q.push(req(1, 1.0));
        let d = q.pop().unwrap();
        assert_eq!(d.req.class, 1);
        assert!((d.stretch - MAX_STRETCH).abs() < 1e-9, "stretch capped, got {}", d.stretch);
    }

    #[test]
    fn paced_even_split_by_default() {
        let q = DispatchQueue::new_paced(4);
        q.push(req(2, 1.0));
        let d = q.pop().unwrap();
        assert!((d.stretch - 4.0).abs() < 1e-9, "even split over 4 classes");
        q.complete(2);
        assert_eq!(q.backlog(2), 0);
    }

    #[test]
    fn out_of_range_class_lands_in_last_shard() {
        let q = queue();
        assert!(q.push(req(99, 1.0)));
        assert_eq!(q.backlog(1), 1, "clamped to the last class shard");
    }

    /// The sharded fast path must not lose requests or wakeups under
    /// concurrent pushers and poppers.
    #[test]
    fn concurrent_push_pop_conserves_requests() {
        const PUSHERS: usize = 4;
        const PER_PUSHER: usize = 500;
        let q = queue();
        let mut workers = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            workers.push(std::thread::spawn(move || {
                let mut n = 0usize;
                while q.pop().is_some() {
                    n += 1;
                }
                n
            }));
        }
        let mut pushers = Vec::new();
        for p in 0..PUSHERS {
            let q = Arc::clone(&q);
            pushers.push(std::thread::spawn(move || {
                for i in 0..PER_PUSHER {
                    assert!(q.push(req((p + i) % 2, 1.0)));
                }
            }));
        }
        for h in pushers {
            h.join().unwrap();
        }
        q.close();
        let drained: usize = workers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(drained, PUSHERS * PER_PUSHER, "every push dispatched exactly once");
    }

    #[test]
    fn callback_notify_fires_on_deliver() {
        let hit = Arc::new(AtomicBool::new(false));
        let hit2 = Arc::clone(&hit);
        let notify = CompletionNotify::Callback(Box::new(move |done: Completion| {
            assert!(done.delay_s >= 0.0);
            hit2.store(true, Ordering::SeqCst);
        }));
        notify.deliver(Completion { delay_s: 0.5, service_s: 1.0 });
        assert!(hit.load(Ordering::SeqCst));
    }
}
