//! The shared dispatch core: a proportional-share scheduler behind a
//! mutex + condvar, connecting submitters (clients) to the worker pool.

use std::time::Instant;

use crossbeam::channel::Sender;
use parking_lot::{Condvar, Mutex};
use psd_propshare::{ProportionalScheduler, WorkItem};

use crate::server::Completion;

/// A request queued for execution.
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    /// Class index.
    pub class: usize,
    /// Work units to execute.
    pub cost: f64,
    /// Enqueue instant (queueing delay is measured from here).
    pub enqueued: Instant,
    /// Optional completion notification for synchronous submitters.
    pub notify: Option<Sender<Completion>>,
}

struct Inner {
    scheduler: Box<dyn ProportionalScheduler + Send>,
    /// Sidecar payloads: the scheduler tracks (id, cost); we map id to
    /// the full request. Entries are removed on dispatch.
    payloads: std::collections::HashMap<u64, QueuedRequest>,
    next_id: u64,
    closed: bool,
}

/// MPMC dispatch queue with proportional-share ordering.
pub struct DispatchQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl DispatchQueue {
    /// Wrap a scheduler.
    pub fn new(scheduler: Box<dyn ProportionalScheduler + Send>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                scheduler,
                payloads: std::collections::HashMap::new(),
                next_id: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueue a request; wakes one worker. Returns `false` if the
    /// queue is already closed.
    pub fn push(&self, req: QueuedRequest) -> bool {
        let mut g = self.inner.lock();
        if g.closed {
            return false;
        }
        let id = g.next_id;
        g.next_id += 1;
        let class = req.class;
        let cost = req.cost;
        g.payloads.insert(id, req);
        g.scheduler.enqueue(class, WorkItem { id, cost });
        drop(g);
        self.ready.notify_one();
        true
    }

    /// Blocking pop in scheduler order; `None` once closed *and* empty.
    pub fn pop(&self) -> Option<QueuedRequest> {
        let mut g = self.inner.lock();
        loop {
            if let Some((_, item)) = g.scheduler.dequeue() {
                let req = g.payloads.remove(&item.id).expect("payload tracked");
                return Some(req);
            }
            if g.closed {
                return None;
            }
            self.ready.wait(&mut g);
        }
    }

    /// Update the scheduler weights (class `i` gets `weights[i]`).
    pub fn set_weights(&self, weights: &[f64]) {
        let mut g = self.inner.lock();
        for (class, &w) in weights.iter().enumerate() {
            // Proportional schedulers require strictly positive weights.
            g.scheduler.set_weight(class, w.max(1e-9));
        }
    }

    /// Close the queue: pending requests still drain, new pushes fail.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current backlog of `class`.
    pub fn backlog(&self, class: usize) -> usize {
        self.inner.lock().scheduler.backlog(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_propshare::Wfq;
    use std::sync::Arc;
    use std::time::Instant;

    fn queue() -> Arc<DispatchQueue> {
        Arc::new(DispatchQueue::new(Box::new(Wfq::new(vec![1.0, 1.0]))))
    }

    fn req(class: usize, cost: f64) -> QueuedRequest {
        QueuedRequest { class, cost, enqueued: Instant::now(), notify: None }
    }

    #[test]
    fn push_pop_roundtrip() {
        let q = queue();
        assert!(q.push(req(0, 1.0)));
        assert!(q.push(req(1, 2.0)));
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        assert_ne!(a.class, b.class);
    }

    #[test]
    fn close_rejects_pushes_but_drains() {
        let q = queue();
        q.push(req(0, 1.0));
        q.close();
        assert!(!q.push(req(1, 1.0)));
        assert!(q.pop().is_some(), "queued work drains");
        assert!(q.pop().is_none(), "then None");
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = queue();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(req(1, 1.0));
        let got = h.join().unwrap().unwrap();
        assert_eq!(got.class, 1);
    }

    #[test]
    fn weights_update_applies() {
        let q = queue();
        q.set_weights(&[3.0, 1.0]);
        // No panic and backlog still works.
        q.push(req(0, 1.0));
        assert_eq!(q.backlog(0), 1);
        assert_eq!(q.backlog(1), 0);
    }

    #[test]
    fn zero_weight_is_floored_not_fatal() {
        let q = queue();
        q.set_weights(&[0.0, 1.0]); // must not panic
        q.push(req(0, 1.0));
        assert!(q.pop().is_some());
    }
}
