//! The sans-io HTTP/1.x codec shared by both front-end engines.
//!
//! [`RequestCodec`] is a pure state machine: bytes go in through
//! [`RequestCodec::feed`], complete [`HttpRequest`]s come out of
//! [`RequestCodec::poll`], and no I/O, clocks, or threads are involved
//! — which is what lets the same parser drive the blocking
//! thread-per-connection engine and the epoll reactor, and be
//! property-tested byte-at-a-time. Bodies are consumed (and discarded)
//! inside the codec so a request is only emitted once the connection is
//! at a clean frame for the next head.
//!
//! The response direction is symmetric: [`Response::encode_into`]
//! serializes into a caller-owned buffer and [`WriteBuf`] owns
//! partial-write resumption, so a reactor connection can flush as much
//! as the socket accepts and pick up exactly where it left off.
//!
//! Parsing is bounded exactly as before the extraction: head lines cap
//! at [`MAX_HEAD_LINE_BYTES`], heads at [`MAX_HEADERS`] lines, and
//! drained bodies at [`MAX_BODY_BYTES`] (bigger or chunked bodies still
//! get a response, followed by a close — see [`HttpRequest::framed`]).

use std::fmt;
use std::io::{self, Write};

use bytes::Bytes;

/// Longest accepted request-line or header line, in bytes.
pub const MAX_HEAD_LINE_BYTES: usize = 8 * 1024;

/// Most header lines accepted in one request head.
pub const MAX_HEADERS: usize = 100;

/// Largest request body the front-end will drain to keep a keep-alive
/// connection framed; bigger bodies get the response and then a close.
pub const MAX_BODY_BYTES: u64 = 1024 * 1024;

/// The `Connection:` header, parsed to a copy-free directive (the
/// request hot path sees one on every keep-alive exchange; keeping the
/// raw string would be a per-request allocation nobody reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionHeader {
    /// `Connection: keep-alive` (any case).
    KeepAlive,
    /// `Connection: close` (any case).
    Close,
    /// Any other value — treated as absent for keep-alive policy.
    Other,
}

/// A parsed HTTP-lite request.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpRequest {
    /// Request method (GET, POST, …) — not interpreted.
    pub method: String,
    /// Request path (before `?`).
    pub path: String,
    /// `cost` query parameter, if present and parseable.
    pub cost: Option<f64>,
    /// The raw query string — retained **only for admin paths**
    /// (`/config`), where the control plane reads reconfiguration
    /// parameters from it. On every other path it is `None` without
    /// ever allocating, keeping the hot request path allocation-free.
    pub query: Option<String>,
    /// `X-Class` header value, if present.
    pub x_class: Option<String>,
    /// `true` for `HTTP/1.1` (or newer) requests.
    pub http11: bool,
    /// Parsed `Connection:` header directive, if present.
    pub connection: Option<ConnectionHeader>,
    /// Declared `Content-Length` (0 when absent). Framed bodies are
    /// drained (and ignored) inside the codec so keep-alive framing
    /// stays aligned.
    pub content_length: u64,
    /// Whether a `Transfer-Encoding` header was present (unsupported —
    /// the front-end answers and closes).
    pub chunked: bool,
}

impl HttpRequest {
    /// Whether the connection should be kept open after the response:
    /// the `Connection:` header wins; otherwise HTTP/1.1 defaults to
    /// keep-alive and HTTP/1.0 to close.
    pub fn keep_alive(&self) -> bool {
        match self.connection {
            Some(ConnectionHeader::KeepAlive) => true,
            Some(ConnectionHeader::Close) => false,
            _ => self.http11,
        }
    }

    /// Whether the body could be framed (drained) by the codec. An
    /// unframed request — chunked, or a body over [`MAX_BODY_BYTES`] —
    /// still gets its response, but the connection must close after it.
    pub fn framed(&self) -> bool {
        !self.chunked && self.content_length <= MAX_BODY_BYTES
    }
}

/// A malformed request head; the connection should answer 400 and
/// close. The payload is the same static reason string the old
/// `parse_request` attached to its `InvalidData` errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for io::Error {
    fn from(e: DecodeError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.0)
    }
}

/// Request-line fields, parsed before any header arrives.
#[derive(Debug)]
struct RequestLine {
    method: String,
    path: String,
    cost: Option<f64>,
    query: Option<String>,
    http11: bool,
}

/// Accumulates one head across feeds.
#[derive(Debug, Default)]
struct HeadPartial {
    line: Option<RequestLine>,
    x_class: Option<String>,
    connection: Option<ConnectionHeader>,
    content_length: u64,
    chunked: bool,
    n_headers: usize,
}

#[derive(Debug)]
enum State {
    /// Parsing a request head (possibly mid-way).
    Head(HeadPartial),
    /// Head emitted a framed request pending body drain; the request is
    /// held back until its body is fully consumed.
    Drain { remaining: u64, req: Option<HttpRequest> },
    /// An unframed request was emitted: the connection must respond and
    /// close; the codec accepts no further input.
    Unframed,
    /// A decode error was returned; the stream is poisoned.
    Poisoned,
}

/// Incremental HTTP/1.x request decoder. Feed bytes as they arrive,
/// poll for requests; the codec never blocks and never reads.
#[derive(Debug)]
pub struct RequestCodec {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    start: usize,
    state: State,
}

impl Default for RequestCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestCodec {
    /// A fresh decoder at a clean frame boundary.
    pub fn new() -> Self {
        Self::with_buffer(Vec::new())
    }

    /// A fresh decoder reusing `buf`'s capacity (cleared first) — the
    /// reactor's per-connection buffer pool hands retired buffers back
    /// through this so a new connection starts warm instead of
    /// reallocating its way up from empty.
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { buf, start: 0, state: State::Head(HeadPartial::default()) }
    }

    /// Retire the decoder and reclaim its (cleared) buffer for a pool.
    pub fn into_buffer(self) -> Vec<u8> {
        let mut buf = self.buf;
        buf.clear();
        buf
    }

    /// Append bytes received from the transport.
    pub fn feed(&mut self, data: &[u8]) {
        // Compact before growing: everything before `start` is spent.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Unconsumed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when the codec is mid-request: a partial head line, a
    /// partially parsed head, or an un-drained body. An EOF here is a
    /// truncated request; an EOF while `!is_mid_request()` is a clean
    /// keep-alive close.
    pub fn is_mid_request(&self) -> bool {
        match &self.state {
            State::Head(p) => p.line.is_some() || p.n_headers > 0 || self.buffered() > 0,
            State::Drain { .. } => true,
            State::Unframed | State::Poisoned => false,
        }
    }

    /// Advance the state machine over the buffered bytes. Returns
    /// `Ok(Some(request))` when a complete request (head + drained
    /// body) is available, `Ok(None)` when more bytes are needed, and
    /// `Err` on a malformed head (the caller should answer 400 and
    /// close; subsequent polls return `Ok(None)`).
    pub fn poll(&mut self) -> Result<Option<HttpRequest>, DecodeError> {
        loop {
            match &mut self.state {
                State::Unframed | State::Poisoned => return Ok(None),
                State::Drain { remaining, req } => {
                    let avail = (self.buf.len() - self.start) as u64;
                    let take = avail.min(*remaining);
                    self.start += take as usize;
                    *remaining -= take;
                    if *remaining > 0 {
                        return Ok(None);
                    }
                    let req = req.take().expect("drain holds its request");
                    self.state = State::Head(HeadPartial::default());
                    return Ok(Some(req));
                }
                State::Head(_) => match self.head_step() {
                    Ok(Some(req)) => return Ok(Some(req)),
                    Ok(None) if matches!(self.state, State::Drain { .. }) => continue,
                    Ok(None) => return Ok(None),
                    Err(e) => {
                        self.state = State::Poisoned;
                        return Err(e);
                    }
                },
            }
        }
    }

    /// Consume complete head lines from the buffer. `Ok(Some)` when the
    /// head finished an unframed or bodiless request; `Ok(None)` when
    /// more bytes are needed *or* the state moved to `Drain`.
    ///
    /// Lines are parsed **in place** from the receive buffer — the old
    /// implementation copied every head line into a fresh `String`
    /// (4–6 allocations per request on the hot path); now only the few
    /// retained fields (method, path, `X-Class`) allocate.
    fn head_step(&mut self) -> Result<Option<HttpRequest>, DecodeError> {
        loop {
            let window = &self.buf[self.start..];
            let Some(nl) = window.iter().position(|&b| b == b'\n') else {
                if window.len() > MAX_HEAD_LINE_BYTES {
                    return Err(DecodeError("head line too long"));
                }
                return Ok(None);
            };
            if nl + 1 > MAX_HEAD_LINE_BYTES {
                return Err(DecodeError("head line too long"));
            }
            let line = std::str::from_utf8(&window[..nl + 1])
                .map_err(|_| DecodeError("head line is not UTF-8"))?;
            self.start += nl + 1;

            let State::Head(partial) = &mut self.state else { unreachable!("head_step in Head") };
            if partial.line.is_none() {
                partial.line = Some(parse_request_line(line)?);
                continue;
            }
            if line.trim().is_empty() {
                // Blank line: head complete.
                let partial = std::mem::take(partial);
                let rl = partial.line.expect("request line parsed above");
                let req = HttpRequest {
                    method: rl.method,
                    path: rl.path,
                    cost: rl.cost,
                    query: rl.query,
                    x_class: partial.x_class,
                    http11: rl.http11,
                    connection: partial.connection,
                    content_length: partial.content_length,
                    chunked: partial.chunked,
                };
                if !req.framed() {
                    self.state = State::Unframed;
                    return Ok(Some(req));
                }
                if req.content_length > 0 {
                    self.state = State::Drain { remaining: req.content_length, req: Some(req) };
                    return Ok(None); // poll() continues in Drain
                }
                self.state = State::Head(HeadPartial::default());
                return Ok(Some(req));
            }
            partial.n_headers += 1;
            if partial.n_headers > MAX_HEADERS {
                return Err(DecodeError("too many headers"));
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("x-class") {
                    partial.x_class = Some(value.trim().to_string());
                } else if name.eq_ignore_ascii_case("connection") {
                    let value = value.trim();
                    partial.connection = Some(if value.eq_ignore_ascii_case("keep-alive") {
                        ConnectionHeader::KeepAlive
                    } else if value.eq_ignore_ascii_case("close") {
                        ConnectionHeader::Close
                    } else {
                        ConnectionHeader::Other
                    });
                } else if name.eq_ignore_ascii_case("content-length") {
                    partial.content_length =
                        value.trim().parse().map_err(|_| DecodeError("bad Content-Length"))?;
                } else if name.eq_ignore_ascii_case("transfer-encoding") {
                    partial.chunked = true;
                }
            }
        }
    }
}

fn parse_request_line(line: &str) -> Result<RequestLine, DecodeError> {
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().ok_or(DecodeError("missing request target"))?;
    if method.is_empty() {
        return Err(DecodeError("empty request line"));
    }
    let version = parts.next().unwrap_or("HTTP/1.0");
    if !version.starts_with("HTTP/") {
        return Err(DecodeError("bad HTTP version token"));
    }
    let http11 = version != "HTTP/1.0" && version != "HTTP/0.9";
    // Borrowed until the very end: only the two retained fields
    // allocate, the query string never does.
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let cost = query.and_then(|q| {
        q.split('&').find_map(|kv| kv.strip_prefix("cost=")).and_then(|v| v.parse::<f64>().ok())
    });
    // Only the admin config route keeps its raw query (it carries the
    // hot-reconfiguration parameters); the hot path stays copy-free.
    let query = query.filter(|_| path == "/config").map(str::to_string);
    Ok(RequestLine { method: method.to_string(), path: path.to_string(), cost, query, http11 })
}

/// One HTTP-lite response, ready to serialize. Both engines build the
/// same three shapes (200 with timing headers, 503, 400) through this
/// struct so the wire format cannot drift between them.
#[derive(Debug, Clone)]
pub struct Response {
    /// `true` → `HTTP/1.1` status line, else `HTTP/1.0`.
    pub http11: bool,
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// Emitted as `Connection: keep-alive` / `close`.
    pub keep_alive: bool,
    /// Extra headers, in order (e.g. `X-Class`, `X-Delay-Us`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body; `Content-Length` is always emitted.
    pub body: Bytes,
}

impl Response {
    /// A bodiless response with no extra headers (400/503 shapes).
    pub fn empty(http11: bool, status: u16, reason: &'static str, keep_alive: bool) -> Self {
        Self { http11, status, reason, keep_alive, extra_headers: Vec::new(), body: Bytes::new() }
    }

    /// Serialize head + body onto the end of `out`. Digits and headers
    /// are formatted directly into `out` (a `Vec<u8>` writer never
    /// fails), with no intermediate `String` per response.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let proto = if self.http11 { "HTTP/1.1" } else { "HTTP/1.0" };
        let conn = if self.keep_alive { "keep-alive" } else { "close" };
        let _ = write!(
            out,
            "{proto} {} {}\r\nContent-Length: {}\r\nConnection: {conn}\r\n",
            self.status,
            self.reason,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            let _ = write!(out, "{name}: {value}\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
    }

    /// Serialize into a fresh buffer (blocking-engine convenience).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        self.encode_into(&mut out);
        out
    }
}

/// An outgoing byte buffer with partial-write resumption: the reactor
/// writes as much as the socket accepts, keeps the rest, and resumes at
/// the exact offset on the next writable event.
#[derive(Debug, Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A buffer reusing `buf`'s capacity (cleared first) — see
    /// [`RequestCodec::with_buffer`].
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { buf, pos: 0 }
    }

    /// Retire the buffer and reclaim its (cleared) allocation.
    pub fn into_buffer(self) -> Vec<u8> {
        let mut buf = self.buf;
        buf.clear();
        buf
    }

    /// True when everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Bytes still waiting to be written.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The pending bytes themselves, for completion-based transports
    /// (io_uring) that copy a chunk out, submit it, and advance by the
    /// completion's byte count via [`WriteBuf::consume`].
    pub fn unflushed(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Mark `n` bytes of the pending data as written (a write
    /// completion reported `n`); the next [`WriteBuf::unflushed`]
    /// resumes at the exact offset, mirroring the short-write handling
    /// of [`WriteBuf::flush_into`].
    pub fn consume(&mut self, n: usize) {
        self.pos = (self.pos + n).min(self.buf.len());
        if self.pos == self.buf.len() {
            self.compact();
        }
    }

    /// Queue a response behind whatever is still pending.
    pub fn push_response(&mut self, resp: &Response) {
        self.compact();
        resp.encode_into(&mut self.buf);
    }

    /// Append bytes produced by `f` behind whatever is still pending —
    /// the zero-copy sibling of [`WriteBuf::push_response`] for callers
    /// that serialize a response directly into the output buffer.
    pub fn append_with(&mut self, f: impl FnOnce(&mut Vec<u8>)) {
        self.compact();
        f(&mut self.buf);
    }

    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Write as much pending data as `w` accepts. Returns `Ok(true)`
    /// when the buffer drained completely, `Ok(false)` when the writer
    /// would block (resume on the next writable event), and `Err` on
    /// transport errors. A short write is not an error — the offset
    /// simply advances.
    pub fn flush_into<W: Write>(&mut self, w: &mut W) -> io::Result<bool> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    return Ok(false);
                }
                Err(e) => return Err(e),
            }
        }
        self.compact();
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_pool_through_with_buffer_roundtrip() {
        let mut c = RequestCodec::new();
        c.feed(b"GET / HTTP/1.1\r\n\r\n");
        assert!(c.poll().unwrap().is_some());
        let buf = c.into_buffer();
        assert!(buf.is_empty(), "reclaimed buffer is cleared");
        let cap = buf.capacity();
        assert!(cap > 0, "capacity survives retirement");
        let mut c2 = RequestCodec::with_buffer(buf);
        assert_eq!(c2.buffered(), 0);
        c2.feed(b"GET /again HTTP/1.1\r\n\r\n");
        assert_eq!(c2.poll().unwrap().unwrap().path, "/again");

        let mut wb = WriteBuf::with_buffer(Vec::with_capacity(333));
        wb.push_response(&Response::empty(true, 200, "OK", true));
        let mut sink = Vec::new();
        assert!(wb.flush_into(&mut sink).unwrap());
        assert!(wb.into_buffer().capacity() >= 333, "write capacity survives too");
    }

    #[test]
    fn append_with_matches_push_response_bytes() {
        let resp = Response::empty(true, 200, "OK", false);
        let mut a = WriteBuf::new();
        a.push_response(&resp);
        let mut b = WriteBuf::new();
        b.append_with(|out| resp.encode_into(out));
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        assert!(a.flush_into(&mut oa).unwrap());
        assert!(b.flush_into(&mut ob).unwrap());
        assert_eq!(oa, ob);
    }

    #[test]
    fn connection_header_parses_to_directive() {
        let r = decode_ok("GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n");
        assert_eq!(r.connection, Some(ConnectionHeader::KeepAlive));
        let r = decode_ok("GET / HTTP/1.1\r\nConnection: upgrade\r\n\r\n");
        assert_eq!(r.connection, Some(ConnectionHeader::Other));
        assert!(r.keep_alive(), "unknown directive falls back to the HTTP version default");
    }

    /// Decode one request from a complete byte string, asserting no
    /// leftover state when `exact` (mirrors the old parse_request
    /// single-shot tests).
    fn decode_one(raw: &[u8]) -> Result<Option<HttpRequest>, DecodeError> {
        let mut c = RequestCodec::new();
        c.feed(raw);
        c.poll()
    }

    fn decode_ok(raw: &str) -> HttpRequest {
        decode_one(raw.as_bytes()).expect("decodes").expect("complete")
    }

    fn decode_err(raw: &str) -> DecodeError {
        decode_one(raw.as_bytes()).expect_err("must reject")
    }

    #[test]
    fn parses_request_line_and_query() {
        let r = decode_ok("GET /class1/page?cost=2.5&x=1 HTTP/1.0\r\nHost: a\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/class1/page");
        assert_eq!(r.cost, Some(2.5));
        assert_eq!(r.x_class, None);
        assert!(!r.http11);
        assert!(!r.keep_alive());
    }

    #[test]
    fn parses_x_class_header() {
        let r = decode_ok("POST / HTTP/1.0\r\nX-Class: 2\r\nContent-Length: 0\r\n\r\n");
        assert_eq!(r.x_class.as_deref(), Some("2"));
        assert_eq!(r.cost, None);
    }

    #[test]
    fn case_insensitive_header() {
        let r = decode_ok("GET / HTTP/1.0\r\nx-CLASS: 1\r\n\r\n");
        assert_eq!(r.x_class.as_deref(), Some("1"));
    }

    #[test]
    fn empty_input_needs_more() {
        let mut c = RequestCodec::new();
        assert_eq!(c.poll(), Ok(None));
        assert!(!c.is_mid_request(), "no bytes yet: an EOF here is a clean close");
    }

    #[test]
    fn bad_cost_ignored() {
        let r = decode_ok("GET /?cost=abc HTTP/1.0\r\n\r\n");
        assert_eq!(r.cost, None);
    }

    #[test]
    fn http11_defaults_to_keep_alive() {
        let r = decode_ok("GET / HTTP/1.1\r\n\r\n");
        assert!(r.http11);
        assert!(r.keep_alive());
        let r = decode_ok("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n");
        assert!(!r.keep_alive());
    }

    #[test]
    fn http10_keep_alive_opt_in() {
        let r = decode_ok("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n");
        assert!(!r.http11);
        assert!(r.keep_alive());
    }

    #[test]
    fn missing_target_rejected() {
        assert_eq!(decode_err("GET\r\n\r\n"), DecodeError("missing request target"));
    }

    #[test]
    fn bad_version_token_rejected() {
        assert_eq!(decode_err("GET / JUNK/9\r\n\r\n"), DecodeError("bad HTTP version token"));
    }

    #[test]
    fn oversized_request_line_rejected() {
        let raw = format!("GET /{} HTTP/1.0\r\n\r\n", "a".repeat(MAX_HEAD_LINE_BYTES));
        assert_eq!(decode_err(&raw), DecodeError("head line too long"));
    }

    #[test]
    fn oversized_line_rejected_before_newline_arrives() {
        // A hostile client streaming an endless line must be rejected
        // from buffered length alone — no newline ever comes.
        let mut c = RequestCodec::new();
        c.feed(&vec![b'a'; MAX_HEAD_LINE_BYTES + 2]);
        assert_eq!(c.poll(), Err(DecodeError("head line too long")));
    }

    #[test]
    fn oversized_header_line_rejected() {
        let raw = format!("GET / HTTP/1.0\r\nX-Junk: {}\r\n\r\n", "b".repeat(MAX_HEAD_LINE_BYTES));
        assert_eq!(decode_err(&raw), DecodeError("head line too long"));
    }

    #[test]
    fn too_many_headers_rejected() {
        let mut raw = String::from("GET / HTTP/1.0\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("X-H{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert_eq!(decode_err(&raw), DecodeError("too many headers"));
    }

    #[test]
    fn non_utf8_head_rejected() {
        let e = decode_one(b"GET /\xff\xfe HTTP/1.0\r\n\r\n").unwrap_err();
        assert_eq!(e, DecodeError("head line is not UTF-8"));
    }

    #[test]
    fn bad_content_length_rejected() {
        assert_eq!(
            decode_err("POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n"),
            DecodeError("bad Content-Length")
        );
    }

    #[test]
    fn truncated_head_is_mid_request() {
        let mut c = RequestCodec::new();
        c.feed(b"GET / HTTP/1.0");
        assert_eq!(c.poll(), Ok(None));
        assert!(c.is_mid_request(), "an EOF now is a truncated request, not a clean close");
    }

    #[test]
    fn byte_at_a_time_parse() {
        let raw = b"GET /class1/x?cost=1.5 HTTP/1.1\r\nX-Class: 1\r\nConnection: close\r\n\r\n";
        let mut c = RequestCodec::new();
        for (i, b) in raw.iter().enumerate() {
            assert_eq!(c.poll(), Ok(None), "no request before byte {i}");
            c.feed(std::slice::from_ref(b));
        }
        let req = c.poll().unwrap().expect("complete after the last byte");
        assert_eq!(req.path, "/class1/x");
        assert_eq!(req.cost, Some(1.5));
        assert_eq!(req.x_class.as_deref(), Some("1"));
        assert!(!req.keep_alive());
        assert!(!c.is_mid_request());
    }

    #[test]
    fn body_drained_before_emit_and_frames_stay_aligned() {
        let mut c = RequestCodec::new();
        c.feed(b"POST /a HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel");
        assert_eq!(c.poll(), Ok(None), "body incomplete: request held back");
        assert!(c.is_mid_request());
        c.feed(b"loGET /b HTTP/1.1\r\nConnection: close\r\n\r\n");
        let a = c.poll().unwrap().expect("first request after body");
        assert_eq!(a.path, "/a");
        assert_eq!(a.content_length, 5);
        let b = c.poll().unwrap().expect("second request parsed from the same feed");
        assert_eq!(b.path, "/b", "body bytes must not desync the parser");
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut c = RequestCodec::new();
        c.feed(b"GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\nGET /3 HTTP/1.1\r\n\r\n");
        for want in ["/1", "/2", "/3"] {
            assert_eq!(c.poll().unwrap().expect("pipelined").path, want);
        }
        assert_eq!(c.poll(), Ok(None));
    }

    #[test]
    fn chunked_is_unframed_and_terminal() {
        let mut c = RequestCodec::new();
        c.feed(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        let r = c.poll().unwrap().expect("request emitted");
        assert!(r.chunked);
        assert!(!r.framed());
        c.feed(b"5\r\nhello\r\n0\r\n\r\n");
        assert_eq!(c.poll(), Ok(None), "unframed: codec refuses to parse past the body");
    }

    #[test]
    fn oversized_body_is_unframed() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let r = decode_ok(&raw);
        assert!(!r.framed());
        assert_eq!(r.content_length, MAX_BODY_BYTES + 1);
    }

    #[test]
    fn poisoned_codec_stays_quiet() {
        let mut c = RequestCodec::new();
        c.feed(b"GET\r\n");
        assert!(c.poll().is_err());
        c.feed(b"GET / HTTP/1.0\r\n\r\n");
        assert_eq!(c.poll(), Ok(None), "a rejected stream yields nothing further");
    }

    #[test]
    fn response_encodes_head_then_body() {
        let resp = Response {
            http11: true,
            status: 200,
            reason: "OK",
            keep_alive: true,
            extra_headers: vec![("X-Class", "1".to_string()), ("X-Slowdown", "2.5".to_string())],
            body: Bytes::from("hello\n"),
        };
        let s = String::from_utf8(resp.to_bytes()).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Content-Length: 6\r\n"), "{s}");
        assert!(s.contains("Connection: keep-alive\r\n"), "{s}");
        assert!(s.contains("X-Class: 1\r\n"), "{s}");
        assert!(s.ends_with("\r\n\r\nhello\n"), "{s}");
    }

    #[test]
    fn empty_response_shapes() {
        let s =
            String::from_utf8(Response::empty(false, 503, "Service Unavailable", false).to_bytes())
                .unwrap();
        assert_eq!(
            s,
            "HTTP/1.0 503 Service Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
        );
    }

    /// A writer that accepts a scripted number of bytes per call, then
    /// signals `WouldBlock` — the shape of a nonblocking socket.
    struct Throttle {
        accepted: Vec<u8>,
        quota: std::collections::VecDeque<usize>,
    }

    impl Write for Throttle {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            match self.quota.pop_front() {
                Some(0) | None => Err(io::ErrorKind::WouldBlock.into()),
                Some(n) => {
                    let take = n.min(data.len());
                    self.accepted.extend_from_slice(&data[..take]);
                    Ok(take)
                }
            }
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buf_resumes_after_partial_writes() {
        let resp = Response {
            http11: true,
            status: 200,
            reason: "OK",
            keep_alive: false,
            extra_headers: vec![],
            body: Bytes::from("0123456789".repeat(20)),
        };
        let mut wb = WriteBuf::new();
        wb.push_response(&resp);
        let total = wb.pending();
        let mut w = Throttle { accepted: Vec::new(), quota: [7, 3, 0].into() };
        assert!(!wb.flush_into(&mut w).unwrap(), "blocked after 10 bytes");
        assert_eq!(wb.pending(), total - 10);
        // Next writable event: the rest goes out in two gulps.
        let mut w2 = Throttle { accepted: Vec::new(), quota: [total, total].into() };
        assert!(wb.flush_into(&mut w2).unwrap());
        assert!(wb.is_empty());
        let mut whole = w.accepted;
        whole.extend_from_slice(&w2.accepted);
        assert_eq!(whole, resp.to_bytes(), "resumed bytes splice exactly");
    }

    #[test]
    fn write_buf_unflushed_consume_mirror_flush_into() {
        let resp = Response {
            http11: true,
            status: 200,
            reason: "OK",
            keep_alive: false,
            extra_headers: vec![],
            body: Bytes::from("abcdefghij".repeat(10)),
        };
        let mut wb = WriteBuf::new();
        wb.push_response(&resp);
        let want = resp.to_bytes();
        let mut got = Vec::new();
        // Completion-style draining in uneven gulps.
        for gulp in [1usize, 7, 64, 9999] {
            let chunk = wb.unflushed();
            let n = gulp.min(chunk.len());
            got.extend_from_slice(&chunk[..n]);
            wb.consume(n);
        }
        assert_eq!(got, want, "consume() resumes at exact offsets");
        assert!(wb.is_empty());
        // Over-consume is clamped, not a panic.
        wb.consume(42);
        assert_eq!(wb.pending(), 0);
    }

    #[test]
    fn write_buf_queues_back_to_back_responses() {
        let a = Response::empty(true, 200, "OK", true);
        let b = Response::empty(true, 503, "Service Unavailable", false);
        let mut wb = WriteBuf::new();
        wb.push_response(&a);
        wb.push_response(&b);
        let mut out = Vec::new();
        assert!(wb.flush_into(&mut out).unwrap());
        let mut want = a.to_bytes();
        want.extend_from_slice(&b.to_bytes());
        assert_eq!(out, want);
    }

    #[test]
    fn write_zero_is_an_error() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut wb = WriteBuf::new();
        wb.push_response(&Response::empty(true, 200, "OK", true));
        assert_eq!(wb.flush_into(&mut Dead).unwrap_err().kind(), io::ErrorKind::WriteZero);
    }
}
