//! The allocation-light acceptance test: a counting global allocator
//! measures steady-state heap allocations per request through the full
//! reactor + timer-wheel path. After warmup (codec/write buffers
//! pooled, scratch vectors grown, wheel slots touched) a keep-alive
//! request must cost only the handful of unavoidable allocations
//! (method/path `String`s in the parsed request, the `submit_async`
//! callback box) — **no per-event scratch growth** in the event loop,
//! no per-line head `String`s, no response-building `String`s, no
//! per-completion channel.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use psd_server::{
    EngineKind, FrontendConfig, HttpFrontend, PsdServer, SchedulerKind, ServerConfig, Workload,
};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// One keep-alive exchange on a raw socket with **zero client-side
/// allocation**: a fixed request byte string out, a fixed stack buffer
/// in, and a hand-rolled scan for the response frame — so the counter
/// delta is the server's.
fn exchange(s: &mut TcpStream, req: &[u8], buf: &mut [u8]) {
    s.write_all(req).expect("write");
    let mut filled = 0usize;
    loop {
        let n = s.read(&mut buf[filled..]).expect("read");
        assert!(n > 0, "server closed mid-exchange");
        filled += n;
        let head_end = buf[..filled].windows(4).position(|w| w == b"\r\n\r\n");
        if let Some(end) = head_end {
            let head = std::str::from_utf8(&buf[..end]).expect("utf8 head");
            assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
            let mut content_length = 0usize;
            for line in head.split("\r\n") {
                if let Some(v) = line.strip_prefix("Content-Length: ") {
                    content_length = v.trim().parse().expect("length");
                }
            }
            if filled >= end + 4 + content_length {
                return;
            }
        }
        assert!(filled < buf.len(), "response larger than the scratch buffer");
    }
}

/// Steady-state requests through reactor + wheel allocate O(1) — a
/// small constant per request, with no dependence on event count,
/// connection count or payload reads.
#[test]
fn steady_state_request_allocations_are_bounded() {
    let server = Arc::new(PsdServer::start(ServerConfig {
        deltas: vec![1.0, 2.0],
        work_unit: Duration::from_micros(100),
        scheduler: SchedulerKind::RatePartition,
        workload: Workload::Sleep,
        // Idle the allocator during the measured window: its per-window
        // estimator arithmetic is real but irrelevant to the per-event
        // claim under test.
        control_window: Duration::from_secs(60),
        ..ServerConfig::default()
    }));
    let fe = HttpFrontend::start_with(
        "127.0.0.1:0",
        Arc::clone(&server),
        FrontendConfig { engine: EngineKind::Reactor, shards: 1, ..FrontendConfig::default() },
    )
    .expect("bind reactor");

    let mut s = TcpStream::connect(fe.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).unwrap();
    let req = b"GET /class1/hot?cost=0.5 HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
    let mut buf = [0u8; 4096];

    // Warmup: grow every pooled buffer, scratch vector and wheel slot
    // this workload will ever touch.
    const WARMUP: u64 = 200;
    const MEASURED: u64 = 500;
    for _ in 0..WARMUP {
        exchange(&mut s, req, &mut buf);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..MEASURED {
        exchange(&mut s, req, &mut buf);
    }
    let per_request = (ALLOCS.load(Ordering::Relaxed) - before) as f64 / MEASURED as f64;
    eprintln!("steady-state allocations/request: {per_request:.2}");

    // Unavoidable today: request method + path Strings (2), the boxed
    // submit_async callback (1), plus amortized noise. The bound has
    // ~3× headroom over that floor but sits far below the ~15+ of the
    // pre-pooling path — any reintroduced per-event allocation
    // (scratch growth, head-line Strings, response building) trips it.
    assert!(
        per_request <= 10.0,
        "steady-state request costs {per_request:.1} allocations — the hot path regressed"
    );

    drop(s);
    assert_eq!(fe.shutdown(Duration::from_secs(10)).expect("drain"), 0);
    Arc::try_unwrap(server).ok().expect("released").shutdown();
}
