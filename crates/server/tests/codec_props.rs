//! Property tests for the sans-io HTTP codec: however the transport
//! fragments the byte stream, the parse must be identical — that is the
//! whole contract that lets one parser serve both the blocking engine
//! (BufReader-sized chunks) and the reactor (whatever epoll hands us).

use proptest::prelude::*;
use psd_server::{HttpRequest, RequestCodec, Response, WriteBuf};

/// Decode everything a codec can produce from one whole feed.
fn decode_all(raw: &[u8]) -> Vec<HttpRequest> {
    let mut codec = RequestCodec::new();
    codec.feed(raw);
    let mut out = Vec::new();
    while let Ok(Some(req)) = codec.poll() {
        out.push(req);
    }
    out
}

/// Decode the same bytes delivered in the given chunk sizes (cycled
/// until the input is exhausted; zero-length chunks exercise empty
/// feeds).
fn decode_chunked(raw: &[u8], chunks: &[usize]) -> Vec<HttpRequest> {
    let mut codec = RequestCodec::new();
    let mut out = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < raw.len() {
        let step = chunks[i % chunks.len()].min(raw.len() - pos);
        i += 1;
        codec.feed(&raw[pos..pos + step]);
        pos += step;
        while let Ok(Some(req)) = codec.poll() {
            out.push(req);
        }
    }
    out
}

/// Build one well-formed request from generated knobs.
fn build_request(
    class: usize,
    cost_milli: u64,
    keep_alive: bool,
    body_len: usize,
    extra_headers: usize,
) -> String {
    let mut req = format!(
        "POST /class{class}/page?cost={}.{:03} HTTP/1.1\r\n",
        cost_milli / 1000,
        cost_milli % 1000
    );
    req.push_str(&format!("X-Class: {class}\r\n"));
    for h in 0..extra_headers {
        req.push_str(&format!("X-Filler-{h}: value-{h}\r\n"));
    }
    if !keep_alive {
        req.push_str("Connection: close\r\n");
    }
    req.push_str(&format!("Content-Length: {body_len}\r\n\r\n"));
    req.push_str(&"b".repeat(body_len));
    req
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A pipelined stream of randomized requests parses to the same
    /// request sequence whether fed whole, in random split sizes, or
    /// byte at a time.
    #[test]
    fn fragmentation_never_changes_the_parse(
        specs in proptest::collection::vec(
            (0usize..3, 1u64..5000, any::<bool>(), 0usize..200, 0usize..5),
            1..6,
        ),
        chunks in proptest::collection::vec(0usize..37, 1..12),
    ) {
        let raw: String = specs
            .iter()
            .map(|&(class, cost, keep, body, extra)| build_request(class, cost, keep, body, extra))
            .collect();
        let raw = raw.as_bytes();

        let whole = decode_all(raw);
        prop_assert_eq!(whole.len(), specs.len(), "every request parses from the whole feed");
        for (req, &(class, _, keep, body, _)) in whole.iter().zip(&specs) {
            let want_class = format!("{class}");
            prop_assert_eq!(req.x_class.as_deref(), Some(want_class.as_str()));
            prop_assert_eq!(req.keep_alive(), keep);
            prop_assert_eq!(req.content_length, body as u64);
            prop_assert!(req.cost.is_some(), "cost query must parse");
        }

        let split = decode_chunked(raw, &chunks);
        prop_assert_eq!(&whole, &split, "random splits must not change the parse");

        let bytewise = decode_chunked(raw, &[1]);
        prop_assert_eq!(&whole, &bytewise, "byte-at-a-time must not change the parse");
    }

    /// Serialized responses survive arbitrary partial-write schedules:
    /// flushing through a writer that accepts random amounts per call
    /// reproduces the exact byte stream.
    #[test]
    fn partial_writes_reassemble_exactly(
        bodies in proptest::collection::vec(0usize..400, 1..5),
        quotas in proptest::collection::vec(1usize..61, 1..10),
        keep in any::<bool>(),
    ) {
        struct Throttle<'a> {
            out: Vec<u8>,
            quotas: &'a [usize],
            i: usize,
        }
        impl std::io::Write for Throttle<'_> {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                let q = self.quotas[self.i % self.quotas.len()];
                self.i += 1;
                // Every few calls, pretend the socket buffer is full.
                if self.i % 4 == 3 {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                let n = q.min(data.len());
                self.out.extend_from_slice(&data[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let responses: Vec<Response> = bodies
            .iter()
            .enumerate()
            .map(|(i, &len)| Response {
                http11: true,
                status: 200,
                reason: "OK",
                keep_alive: keep,
                extra_headers: vec![("X-Class", i.to_string())],
                body: bytes::Bytes::from("r".repeat(len)),
            })
            .collect();

        let mut expected = Vec::new();
        let mut wb = WriteBuf::new();
        for r in &responses {
            r.encode_into(&mut expected);
            wb.push_response(r);
        }
        let mut w = Throttle { out: Vec::new(), quotas: &quotas, i: 0 };
        // Drive like the reactor: flush until drained, resuming after
        // each WouldBlock as if a writable event arrived.
        let mut rounds = 0;
        while !wb.flush_into(&mut w).unwrap() {
            rounds += 1;
            prop_assert!(rounds < 100_000, "flush must make progress");
        }
        prop_assert!(wb.is_empty());
        prop_assert_eq!(&w.out, &expected, "partial writes must splice back exactly");
    }

    /// Interleaved feed/poll with a body split anywhere keeps frames
    /// aligned: the next request on the connection always parses.
    #[test]
    fn body_split_points_never_desync(split in 0usize..120, body_len in 1usize..60) {
        let first = build_request(1, 1500, true, body_len, 0);
        let second = "GET /after HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut raw = first.into_bytes();
        raw.extend_from_slice(second.as_bytes());
        let split = split.min(raw.len());

        let mut codec = RequestCodec::new();
        let mut got = Vec::new();
        codec.feed(&raw[..split]);
        while let Ok(Some(r)) = codec.poll() {
            got.push(r);
        }
        codec.feed(&raw[split..]);
        while let Ok(Some(r)) = codec.poll() {
            got.push(r);
        }
        prop_assert_eq!(got.len(), 2, "both requests must parse");
        prop_assert_eq!(got[0].path.as_str(), "/class1/page");
        prop_assert_eq!(got[1].path.as_str(), "/after");
        prop_assert!(!got[1].keep_alive());
    }
}
