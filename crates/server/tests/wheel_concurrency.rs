//! The timer-wheel acceptance test: sleep-workload in-service
//! concurrency is **not** bounded by the worker count. Before the
//! wheel, every in-service rate-partition request parked one OS worker
//! thread in `thread::sleep`, so a 2-worker server executed at most two
//! stretched requests at once (and `PsdServer::start` silently raised
//! the thread count to the class count to compensate). With the
//! deadline chains on the wheel, zero threads block per request.

use std::sync::Arc;
use std::time::{Duration, Instant};

use psd_server::{PsdServer, SchedulerKind, ServerConfig, Workload};

/// 256 classes × one stretched request each on a `workers: 2` config:
/// every virtual task server runs concurrently on the wheel, so the
/// whole batch completes in roughly one (capped) stretched service
/// time, not 128 sequential ones.
#[test]
fn stretched_requests_complete_concurrently_on_two_workers() {
    const CLASSES: usize = 256;
    let work_unit = Duration::from_micros(200);
    let server = Arc::new(PsdServer::start(ServerConfig {
        deltas: vec![1.0; CLASSES],
        workers: 2,
        work_unit,
        scheduler: SchedulerKind::RatePartition,
        workload: Workload::Sleep,
        // Keep the allocator quiet for the whole test so the even
        // 1/256 split (stretch capped at 100) stays in force.
        control_window: Duration::from_secs(30),
        ..ServerConfig::default()
    }));

    // Each class's share is 1/256 → stretch caps at 100 → one request
    // of cost 1.0 occupies its virtual server for ≈ 20 ms.
    let per_request = work_unit.mul_f64(100.0);
    let (tx, rx) = crossbeam::channel::bounded(CLASSES);
    let t0 = Instant::now();
    for class in 0..CLASSES {
        let tx = tx.clone();
        assert!(server.submit_async(class, 1.0, move |done| {
            let _ = tx.send(done);
        }));
    }
    let mut completions = Vec::with_capacity(CLASSES);
    for _ in 0..CLASSES {
        completions.push(rx.recv_timeout(Duration::from_secs(10)).expect("all classes complete"));
    }
    let elapsed = t0.elapsed();

    // Serial execution on 2 workers would need ≥ 128 × 20 ms = 2.56 s;
    // concurrent wheel execution needs ~one service time plus
    // scheduling noise. 1 s of headroom is ~50× the ideal and still
    // 2.5× under the serial floor.
    assert!(
        elapsed < Duration::from_secs(1),
        "256 stretched requests took {elapsed:?} — concurrency is thread-bound again"
    );
    for (i, done) in completions.iter().enumerate() {
        assert!(
            done.service_s > 0.5 * per_request.as_secs_f64(),
            "completion {i}: service {} too short for the stretch",
            done.service_s
        );
        assert!(done.delay_s < 0.5, "completion {i}: head request should barely queue");
    }

    let stats = Arc::try_unwrap(server).ok().expect("sole owner").shutdown();
    let total: u64 = stats.classes.iter().map(|c| c.completed).sum();
    assert_eq!(total, CLASSES as u64);
    assert!(stats.classes.iter().all(|c| c.completed == 1), "one completion per class");
}

/// Back-to-back requests of one class still serialize (the virtual
/// task server is serial by definition): deadline chains preserve the
/// paper's M/G/1-per-class semantics.
#[test]
fn single_class_requests_chain_serially() {
    let work_unit = Duration::from_micros(500);
    let server = Arc::new(PsdServer::start(ServerConfig {
        deltas: vec![1.0],
        workers: 2,
        work_unit,
        scheduler: SchedulerKind::RatePartition,
        workload: Workload::Sleep,
        control_window: Duration::from_secs(30),
        ..ServerConfig::default()
    }));
    // Share 1.0 → stretch 1 → 0.5 ms per request; 8 requests chained.
    let (tx, rx) = crossbeam::channel::bounded(8);
    let t0 = Instant::now();
    for _ in 0..8 {
        let tx = tx.clone();
        assert!(server.submit_async(0, 1.0, move |done| {
            let _ = tx.send(done);
        }));
    }
    let mut delays = Vec::new();
    for _ in 0..8 {
        delays.push(rx.recv_timeout(Duration::from_secs(5)).expect("completes").delay_s);
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed >= Duration::from_millis(3),
        "8 × 0.5 ms serial services cannot finish in {elapsed:?}"
    );
    // Later requests queue behind earlier ones: delays grow.
    assert!(
        delays.last().unwrap() > &delays[0],
        "tail of the chain must wait longer than the head: {delays:?}"
    );
    Arc::try_unwrap(server).ok().expect("sole owner").shutdown();
}
