//! The unified control plane, end to end on the live-server side:
//!
//! * feedback-parity: `--controller feedback --gain 0` produces
//!   **byte-identical** rate trajectories to `--controller open` over a
//!   recorded arrival sequence, through the exact factory the server
//!   monitor uses (the live mirror of the desim property test);
//! * the admin route family (`GET /metrics`, `GET`/`PUT /config`) on
//!   both engines, including hot reconfiguration epochs;
//! * admission shedding over HTTP: `503` + `X-Shed: 1` +
//!   `Connection: close` on both engines, protected classes untouched;
//! * the monitor applies a hot-swapped class table at a window
//!   boundary (`applied_epoch` catches up to `epoch`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use psd_core::control::{build_controller, ControllerKind, RateController, WindowObservation};
use psd_server::{EngineKind, FrontendConfig, HttpFrontend, PsdServer, ServerConfig};

/// A deterministic "recorded arrival sequence": per-window arrivals,
/// offered work and measured slowdowns as a live monitor would sweep
/// them — including an empty window (index 3) and a one-sided window
/// (index 5).
fn recorded_windows() -> Vec<WindowObservation> {
    let shapes: &[(u64, u64, Option<f64>, Option<f64>)] = &[
        (120, 80, Some(1.5), Some(3.2)),
        (200, 40, Some(2.0), Some(4.5)),
        (90, 160, Some(1.1), Some(1.9)),
        (0, 0, None, None),
        (300, 300, Some(4.0), Some(2.0)),
        (50, 0, Some(1.3), None),
        (140, 140, Some(2.2), Some(4.6)),
        (10, 400, Some(0.9), Some(5.0)),
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(a0, a1, s0, s1))| {
            let comp = |s: Option<f64>, a: u64| if s.is_some() { a.max(1) / 2 } else { 0 };
            let (c0, c1) = (comp(s0, a0), comp(s1, a1));
            WindowObservation {
                index: i as u64,
                start: i as f64 * 0.05,
                end: (i + 1) as f64 * 0.05,
                arrivals: vec![a0, a1],
                arrived_work: vec![a0 as f64 * 0.0006, a1 as f64 * 0.0006],
                completions: vec![c0, c1],
                shed_work: vec![0.0; 2],
                backlog: vec![a0 / 10, a1 / 10],
                slowdown_sums: vec![
                    s0.map_or(0.0, |s| s * c0 as f64),
                    s1.map_or(0.0, |s| s * c1 as f64),
                ],
            }
        })
        .collect()
}

/// `feedback --gain 0` ≡ `open`, bit for bit, through the same factory
/// the live monitor calls — the end-to-end guard on the g = 0 ⇒ Eq. 17
/// reduction.
#[test]
fn feedback_gain_zero_is_bit_identical_to_open_loop() {
    let deltas = [1.0, 2.0];
    let mean_service = 0.0001;
    let mut open = build_controller(ControllerKind::Open, &deltas, mean_service, 0.0, 5, None);
    let mut fb = build_controller(ControllerKind::Feedback, &deltas, mean_service, 0.0, 5, None);
    let init_open = open.initial_rates(2);
    let init_fb = fb.initial_rates(2);
    assert_eq!(
        init_open.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
        init_fb.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
        "initial rates must be byte-identical"
    );
    for (i, w) in recorded_windows().iter().enumerate() {
        let d_open = open.control(w.end, w);
        let d_fb = fb.control(w.end, w);
        assert_eq!(d_open.admit_probability, None);
        assert_eq!(d_fb.admit_probability, None);
        let r_open = d_open.rates.expect("open loop re-allocates every window");
        let r_fb = d_fb.rates.expect("feedback re-allocates every window");
        assert_eq!(
            r_open.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            r_fb.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            "window {i}: gain 0 must reduce exactly to Eq. 17 ({r_open:?} vs {r_fb:?})"
        );
    }
}

/// With a real gain the trajectories *must* diverge once slowdown
/// errors accumulate — otherwise the parity test above proves nothing.
#[test]
fn feedback_with_gain_diverges_from_open_loop() {
    let deltas = [1.0, 2.0];
    let mut open = build_controller(ControllerKind::Open, &deltas, 0.0001, 0.0, 5, None);
    let mut fb = build_controller(ControllerKind::Feedback, &deltas, 0.0001, 0.5, 5, None);
    open.initial_rates(2);
    fb.initial_rates(2);
    let mut diverged = false;
    for w in recorded_windows() {
        let r_open = open.control(w.end, &w).rates.unwrap();
        let r_fb = fb.control(w.end, &w).rates.unwrap();
        diverged |= r_open.iter().zip(&r_fb).any(|(a, b)| a.to_bits() != b.to_bits());
    }
    assert!(diverged, "gain 0.5 must actually move the allocation");
}

fn wait_ok(stream: &mut TcpStream, req: &str) -> String {
    stream.write_all(req.as_bytes()).unwrap();
    let mut all = String::new();
    stream.read_to_string(&mut all).unwrap();
    all
}

fn start_frontend(engine: EngineKind, cfg: ServerConfig) -> (HttpFrontend, Arc<PsdServer>) {
    let server = Arc::new(PsdServer::start(cfg));
    let fe = HttpFrontend::start_with(
        "127.0.0.1:0",
        Arc::clone(&server),
        FrontendConfig { engine, shards: 1, ..FrontendConfig::default() },
    )
    .expect("bind");
    (fe, server)
}

fn teardown(fe: HttpFrontend, server: Arc<PsdServer>) {
    assert_eq!(fe.shutdown(Duration::from_secs(10)).expect("drain"), 0);
    Arc::try_unwrap(server).ok().expect("handlers drained").shutdown();
}

/// GET /metrics and GET/PUT /config on both engines: JSON snapshots,
/// validation errors, and the epoch bump of a hot reconfiguration.
#[test]
fn admin_routes_serve_on_both_engines() {
    for engine in [EngineKind::Threads, EngineKind::Reactor] {
        let (fe, server) = start_frontend(
            engine,
            ServerConfig {
                deltas: vec![1.0, 2.0],
                work_unit: Duration::from_micros(100),
                ..ServerConfig::default()
            },
        );
        let addr = fe.addr();

        // A normal request first, so /metrics has something to show.
        let mut s = TcpStream::connect(addr).unwrap();
        let all = wait_ok(&mut s, "GET /class0/x HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(all.contains("200 OK"), "{engine:?}: {all}");

        let mut s = TcpStream::connect(addr).unwrap();
        let metrics = wait_ok(&mut s, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(metrics.contains("200 OK"), "{engine:?}: {metrics}");
        assert!(metrics.contains("application/json"), "{engine:?}: {metrics}");
        for key in ["\"controller\":\"open\"", "\"rates\":", "\"admit_probability\":", "\"shed\":0"]
        {
            assert!(metrics.contains(key), "{engine:?}: /metrics lost {key}:\n{metrics}");
        }

        let mut s = TcpStream::connect(addr).unwrap();
        let config = wait_ok(&mut s, "GET /config HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(config.contains("\"deltas\":[1,2]"), "{engine:?}: {config}");
        assert!(config.contains("\"epoch\":0"), "{engine:?}: {config}");

        // Hot reconfiguration: swap δ's, flip controller, set a cap.
        let mut s = TcpStream::connect(addr).unwrap();
        let put = wait_ok(
            &mut s,
            "PUT /config?deltas=2,1&controller=feedback&gain=0.5&admission-cap=0.9 \
             HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(put.contains("200 OK"), "{engine:?}: {put}");
        assert!(put.contains("\"epoch\":1"), "{engine:?}: {put}");
        assert!(put.contains("\"deltas\":[2,1]"), "{engine:?}: {put}");
        assert!(put.contains("\"controller\":\"feedback\""), "{engine:?}: {put}");
        assert!(put.contains("\"admission_cap\":0.9"), "{engine:?}: {put}");

        // Invalid updates answer 400 and leave the table untouched.
        let mut s = TcpStream::connect(addr).unwrap();
        let bad = wait_ok(&mut s, "PUT /config?deltas=1,2,3 HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(bad.contains("400 Bad Request"), "{engine:?}: {bad}");
        assert!(bad.contains("\"error\""), "{engine:?}: {bad}");
        let mut s = TcpStream::connect(addr).unwrap();
        let after = wait_ok(&mut s, "GET /config HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(after.contains("\"deltas\":[2,1]"), "{engine:?}: {after}");
        assert!(after.contains("\"epoch\":1"), "{engine:?}: rejected update bumped the epoch");

        // Unknown methods on admin routes: 405.
        let mut s = TcpStream::connect(addr).unwrap();
        let del = wait_ok(&mut s, "DELETE /config HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(del.contains("405"), "{engine:?}: {del}");

        teardown(fe, server);
    }
}

/// The monitor picks a bumped epoch up at the next window boundary:
/// `applied_epoch` converges to `epoch`, and the published rates now
/// come from the new table.
#[test]
fn hot_reconfig_applies_at_a_window_boundary() {
    let server = Arc::new(PsdServer::start(ServerConfig {
        deltas: vec![1.0, 2.0],
        control_window: Duration::from_millis(20),
        work_unit: Duration::from_micros(100),
        ..ServerConfig::default()
    }));
    // Offer some load so the controller has something to allocate on.
    for i in 0..40 {
        server.submit(i % 2, 1.0);
    }
    let epoch = server.control().update(|t| t.deltas = vec![2.0, 1.0]).expect("valid");
    assert_eq!(epoch, 1);
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.control().applied_epoch() != epoch {
        assert!(Instant::now() < deadline, "monitor never applied the new epoch");
        std::thread::sleep(Duration::from_millis(5));
    }
    let rates = server.control().rates();
    assert!((rates.iter().sum::<f64>() - 1.0).abs() < 1e-6, "published rates sum to 1: {rates:?}");
    Arc::try_unwrap(server).ok().expect("sole owner").shutdown();
}

/// Admission shedding over HTTP on both engines: the shed response is
/// exactly `503` + `X-Shed: 1` + `Connection: close`, the protected
/// class is never shed, and the shed counters land in the stats. The
/// admission table is published directly (long control window keeps
/// the monitor out of the way) so the test is deterministic.
#[test]
fn shed_responses_are_503_with_close_on_both_engines() {
    for engine in [EngineKind::Threads, EngineKind::Reactor] {
        let (fe, server) = start_frontend(
            engine,
            ServerConfig {
                deltas: vec![1.0, 2.0],
                work_unit: Duration::from_micros(100),
                control_window: Duration::from_secs(3600),
                ..ServerConfig::default()
            },
        );
        // Shed every class-1 request, admit all of class 0.
        server.control().publish(0, &[0.5, 0.5], Some(&[1.0, 0.0]));

        let mut s = TcpStream::connect(fe.addr()).unwrap();
        let shed = wait_ok(&mut s, "GET /class1/x HTTP/1.1\r\n\r\n");
        assert!(shed.starts_with("HTTP/1.1 503"), "{engine:?}: {shed}");
        assert!(shed.contains("X-Shed: 1"), "{engine:?}: {shed}");
        assert!(shed.contains("Connection: close"), "{engine:?}: {shed}");

        let mut s = TcpStream::connect(fe.addr()).unwrap();
        let ok = wait_ok(&mut s, "GET /class0/x HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(ok.contains("200 OK"), "{engine:?}: protected class must serve: {ok}");
        assert!(!ok.contains("X-Shed"), "{engine:?}: {ok}");

        assert_eq!(server.shed_count(1), 1, "{engine:?}");
        assert_eq!(server.shed_count(0), 0, "{engine:?}");
        let stats = server.stats();
        assert_eq!(stats.classes[1].shed, 1, "{engine:?}");
        teardown(fe, server);
    }
}

/// The feedback controller runs the live monitor end to end: real
/// traffic, real sweeps, rates published every window and everything
/// drains — the smoke behind `--controller feedback`.
#[test]
fn feedback_controller_drives_the_live_monitor() {
    use psd_dist::{Deterministic, ServiceDist};
    use psd_server::driver::{drive, ClassTraffic};

    let server = Arc::new(PsdServer::start(ServerConfig {
        deltas: vec![1.0, 2.0],
        controller: ControllerKind::Feedback,
        gain: 0.3,
        workers: 2,
        work_unit: Duration::from_micros(100),
        control_window: Duration::from_millis(25),
        ..ServerConfig::default()
    }));
    let det = ServiceDist::Deterministic(Deterministic::new(1.0).unwrap());
    let submitted = drive(
        &server,
        &[
            ClassTraffic { rate_per_s: 300.0, cost: det.clone() },
            ClassTraffic { rate_per_s: 300.0, cost: det },
        ],
        Duration::from_millis(500),
        11,
    );
    assert!(submitted.iter().sum::<u64>() > 50);
    let rates = server.control().rates();
    assert!((rates.iter().sum::<f64>() - 1.0).abs() < 1e-6, "{rates:?}");
    let stats = Arc::try_unwrap(server).ok().expect("sole owner").shutdown();
    let done: u64 = stats.classes.iter().map(|c| c.completed).sum();
    assert_eq!(done, submitted.iter().sum::<u64>(), "everything drains under feedback");
}

/// The driver honors admission too: with everything shed, arrivals
/// never enter the system and show up as shed counts instead.
#[test]
fn driver_respects_admission_gate() {
    use psd_dist::{Deterministic, ServiceDist};
    use psd_server::driver::{drive, ClassTraffic};

    let server = Arc::new(PsdServer::start(ServerConfig {
        deltas: vec![1.0],
        work_unit: Duration::from_micros(100),
        control_window: Duration::from_secs(3600),
        ..ServerConfig::default()
    }));
    server.control().publish(0, &[1.0], Some(&[0.0]));
    let det = ServiceDist::Deterministic(Deterministic::new(1.0).unwrap());
    let submitted = drive(
        &server,
        &[ClassTraffic { rate_per_s: 500.0, cost: det }],
        Duration::from_millis(200),
        3,
    );
    assert_eq!(submitted[0], 0, "everything shed at the gate");
    let stats = Arc::try_unwrap(server).ok().expect("sole owner").shutdown();
    assert_eq!(stats.classes[0].completed, 0);
    assert!(stats.classes[0].shed > 0, "sheds are visible in the stats");
}
