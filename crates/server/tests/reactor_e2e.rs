//! End-to-end tests for the reactor front-end — on **both** of its
//! backends: the sharded epoll event loops and the io_uring completion
//! engine. Real sockets, the real PSD queue, and the concurrency
//! levels the thread-per-connection baseline cannot reach on a bounded
//! thread count. Every uring case self-skips (with a note) on kernels
//! that refuse io_uring, where the frontend would silently serve epoll.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use psd_server::{
    EngineKind, FrontendConfig, HttpFrontend, PsdServer, SchedulerKind, ServerConfig,
};

/// The reactor backends testable on this kernel: always epoll, plus
/// uring when the probe passes.
fn reactor_backends() -> Vec<EngineKind> {
    let mut v = vec![EngineKind::Reactor];
    if psd_server::uring_available() {
        v.push(EngineKind::Uring);
    } else {
        eprintln!("skipping uring cases: io_uring unavailable on this kernel");
    }
    v
}

/// All engines testable on this kernel (wire-parity suites).
fn all_engines() -> Vec<EngineKind> {
    let mut v = vec![EngineKind::Threads];
    v.extend(reactor_backends());
    v
}

fn cfg_for(engine: EngineKind) -> FrontendConfig {
    FrontendConfig { engine, ..FrontendConfig::default() }
}

fn quick_server(deltas: Vec<f64>) -> Arc<PsdServer> {
    Arc::new(PsdServer::start(ServerConfig {
        deltas,
        workers: 2,
        work_unit: Duration::from_micros(100),
        ..ServerConfig::default()
    }))
}

fn read_response(s: &mut TcpStream) -> String {
    let mut buf = [0u8; 4096];
    let mut out = String::new();
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                out.push_str(std::str::from_utf8(&buf[..n]).expect("utf8 response"));
                // One response per exchange; the body ends with '\n'
                // and Content-Length framing means a complete head +
                // body is readable once the final newline arrives.
                if out.contains("\r\n\r\n") && out.ends_with('\n') && !out.ends_with("\r\n\r\n") {
                    break;
                }
                if out.contains("Content-Length: 0\r\n") && out.contains("\r\n\r\n") {
                    break;
                }
            }
            Err(e) => panic!("read failed: {e}"),
        }
    }
    out
}

#[test]
fn serves_keep_alive_requests_end_to_end() {
    for engine in reactor_backends() {
        let server = quick_server(vec![1.0, 2.0]);
        let fe = HttpFrontend::start_with("127.0.0.1:0", Arc::clone(&server), cfg_for(engine))
            .expect("bind reactor");
        // The probe passed, so the frontend must actually be serving
        // the requested backend, not the fallback.
        assert_eq!(fe.engine(), engine);
        let mut s = TcpStream::connect(fe.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for i in 0..20 {
            s.write_all(format!("GET /class{}/x?cost=0.5 HTTP/1.1\r\n\r\n", i % 2).as_bytes())
                .unwrap();
            let resp = read_response(&mut s);
            assert!(resp.starts_with("HTTP/1.1 200 OK"), "{engine:?} request {i}: {resp}");
            assert!(resp.contains("X-Slowdown:"), "{engine:?} request {i}: {resp}");
            assert!(resp.contains("Connection: keep-alive"), "{engine:?} request {i}: {resp}");
        }
        drop(s);
        assert_eq!(fe.shutdown(Duration::from_secs(10)).expect("drain"), 0);
        let stats = Arc::try_unwrap(server).ok().expect("reactor released the server").shutdown();
        let total: u64 = stats.classes.iter().map(|c| c.completed).sum();
        assert_eq!(total, 20, "{engine:?}: all keep-alive exchanges executed");
    }
}

/// Drive `conns` keep-alive connections through `rounds` full request
/// rounds against a reactor with `shards` event loops; returns the
/// server-side total completions after a clean drain.
fn run_concurrent_rounds(engine: EngineKind, conns: usize, rounds: usize, shards: usize) -> u64 {
    let server = quick_server(vec![1.0, 2.0]);
    let fe = HttpFrontend::start_with(
        "127.0.0.1:0",
        Arc::clone(&server),
        FrontendConfig { engine, shards, max_connections: conns + 8, ..FrontendConfig::default() },
    )
    .expect("bind reactor");

    let mut streams: Vec<TcpStream> = (0..conns)
        .map(|i| {
            let s = TcpStream::connect(fe.addr()).unwrap_or_else(|e| panic!("connect {i}: {e}"));
            s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
            s
        })
        .collect();

    for round in 0..rounds {
        // Fire every request before reading any response: all of them
        // are genuinely in flight through the reactor + PSD queue at
        // once.
        for (i, s) in streams.iter_mut().enumerate() {
            s.write_all(
                format!("GET /class{}/r{round}?cost=0.2 HTTP/1.1\r\n\r\n", i % 2).as_bytes(),
            )
            .unwrap_or_else(|e| panic!("write {i}: {e}"));
        }
        for (i, s) in streams.iter_mut().enumerate() {
            let resp = read_response(s);
            assert!(
                resp.starts_with("HTTP/1.1 200 OK"),
                "{engine:?} {shards} shard(s) round {round} conn {i}: {resp}"
            );
            assert!(
                resp.contains("Connection: keep-alive"),
                "{engine:?} {shards} shard(s) round {round} conn {i} must stay alive: {resp}"
            );
        }
    }

    drop(streams);
    assert_eq!(fe.shutdown(Duration::from_secs(30)).expect("drain"), 0);
    let stats = Arc::try_unwrap(server).ok().expect("reactor released the server").shutdown();
    stats.classes.iter().map(|c| c.completed).sum()
}

/// The tentpole claim: ≥512 concurrent keep-alive connections on ONE
/// reactor thread (the threaded baseline would need 512 OS threads) —
/// on either backend. Every connection makes two request rounds — the
/// second proves the connections all stayed alive concurrently, not
/// serially. On the uring backend this also exercises the overflow
/// slots: 512 connections share 128 registered buffers plus heap
/// spill.
#[test]
fn holds_512_concurrent_keep_alive_connections() {
    for engine in reactor_backends() {
        assert_eq!(
            run_concurrent_rounds(engine, 512, 2, 1),
            1024,
            "{engine:?}: both rounds fully served"
        );
    }
}

/// Shard parity: the same 512-connection script spread round-robin
/// over 2 event-loop shards serves exactly what the single shard does
/// — sharding changes who owns an fd, never what the wire does.
#[test]
fn two_shards_serve_512_connections_with_single_shard_parity() {
    for engine in reactor_backends() {
        let sharded = run_concurrent_rounds(engine, 512, 2, 2);
        assert_eq!(sharded, 1024, "{engine:?}: 2-shard run fully served");
        assert_eq!(
            sharded,
            run_concurrent_rounds(engine, 512, 2, 1),
            "{engine:?}: parity with 1 shard"
        );
    }
}

#[test]
fn over_cap_connections_get_503() {
    for engine in reactor_backends() {
        let server = quick_server(vec![1.0]);
        let fe = HttpFrontend::start_with(
            "127.0.0.1:0",
            Arc::clone(&server),
            FrontendConfig { engine, max_connections: 2, ..FrontendConfig::default() },
        )
        .expect("bind reactor");
        let hold_a = TcpStream::connect(fe.addr()).expect("connect");
        let hold_b = TcpStream::connect(fe.addr()).expect("connect");
        // Give the reactor a tick to register both before over-filling.
        std::thread::sleep(Duration::from_millis(150));
        let mut s3 = TcpStream::connect(fe.addr()).expect("connect");
        s3.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut all = String::new();
        s3.read_to_string(&mut all).unwrap();
        assert!(all.starts_with("HTTP/1.1 503"), "{engine:?}: over-cap must 503, got: {all:?}");
        assert!(all.contains("Connection: close"), "{engine:?}: got: {all:?}");
        drop((hold_a, hold_b, s3));
        assert_eq!(fe.shutdown(Duration::from_secs(10)).expect("drain"), 0);
        Arc::try_unwrap(server).ok().expect("released").shutdown();
    }
}

/// Slow-loris: a client that opens a connection and drips a partial
/// head (or nothing at all) must be reaped by the idle timeout instead
/// of pinning reactor state forever — on the uring backend that close
/// also cancels the connection's in-flight read SQE.
#[test]
fn slow_loris_is_reaped_by_idle_timeout() {
    for engine in reactor_backends() {
        let server = quick_server(vec![1.0]);
        let fe = HttpFrontend::start_with(
            "127.0.0.1:0",
            Arc::clone(&server),
            FrontendConfig {
                engine,
                idle_timeout: Duration::from_millis(300),
                ..FrontendConfig::default()
            },
        )
        .expect("bind reactor");
        let mut loris = TcpStream::connect(fe.addr()).expect("connect");
        loris.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // Half a request head, then silence.
        loris.write_all(b"GET /slow HTTP/1.1\r\nX-Cl").unwrap();
        let t = Instant::now();
        let mut buf = [0u8; 64];
        let n = loris.read(&mut buf).expect("server closes, not times out");
        assert_eq!(n, 0, "{engine:?}: connection must be closed with no response");
        let waited = t.elapsed();
        assert!(waited >= Duration::from_millis(200), "{engine:?}: not instant ({waited:?})");
        assert!(waited < Duration::from_secs(5), "{engine:?}: reaped by timeout ({waited:?})");

        // The reactor is still healthy for well-behaved clients.
        let mut ok = TcpStream::connect(fe.addr()).expect("connect");
        ok.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        ok.write_all(b"GET /fine HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let resp = read_response(&mut ok);
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{engine:?}: {resp}");
        drop(ok);
        assert_eq!(fe.shutdown(Duration::from_secs(10)).expect("drain"), 0);
        Arc::try_unwrap(server).ok().expect("released").shutdown();
    }
}

#[test]
fn malformed_head_gets_400_and_close() {
    for engine in reactor_backends() {
        let server = quick_server(vec![1.0]);
        let fe = HttpFrontend::start_with("127.0.0.1:0", Arc::clone(&server), cfg_for(engine))
            .expect("bind reactor");
        let mut s = TcpStream::connect(fe.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"GET / JUNK/9\r\n\r\n").unwrap();
        let mut all = String::new();
        s.read_to_string(&mut all).unwrap();
        assert!(all.starts_with("HTTP/1.0 400"), "{engine:?}: got: {all:?}");
        drop(s);
        assert_eq!(fe.shutdown(Duration::from_secs(10)).expect("drain"), 0);
        Arc::try_unwrap(server).ok().expect("released").shutdown();
    }
}

/// Pipelined requests on one connection are served strictly in order,
/// one PSD execution at a time (the reactor parks the connection while
/// each request waits in the dispatch queue).
#[test]
fn pipelined_requests_answered_in_order() {
    for engine in reactor_backends() {
        let server = quick_server(vec![1.0, 2.0]);
        let fe = HttpFrontend::start_with("127.0.0.1:0", Arc::clone(&server), cfg_for(engine))
            .expect("bind reactor");
        let mut s = TcpStream::connect(fe.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(
            b"GET /p1 HTTP/1.1\r\n\r\nGET /p2 HTTP/1.1\r\n\r\nGET /p3 HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        let mut all = String::new();
        s.read_to_string(&mut all).unwrap();
        let i1 = all.find("path=/p1").expect("p1 answered");
        let i2 = all.find("path=/p2").expect("p2 answered");
        let i3 = all.find("path=/p3").expect("p3 answered");
        assert!(i1 < i2 && i2 < i3, "{engine:?}: responses in request order:\n{all}");
        assert_eq!(all.matches("200 OK").count(), 3, "{engine:?}: {all}");
        drop(s);
        assert_eq!(fe.shutdown(Duration::from_secs(10)).expect("drain"), 0);
        Arc::try_unwrap(server).ok().expect("released").shutdown();
    }
}

/// All engines speak the same protocol: identical request scripts get
/// equivalent responses (modulo timing header values).
#[test]
fn engines_agree_on_the_wire_protocol() {
    for engine in all_engines() {
        let server = quick_server(vec![1.0, 2.0]);
        let fe = HttpFrontend::start_with(
            "127.0.0.1:0",
            Arc::clone(&server),
            FrontendConfig { engine, ..FrontendConfig::default() },
        )
        .expect("bind");
        let mut s = TcpStream::connect(fe.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(b"POST /a HTTP/1.1\r\nContent-Length: 5\r\nX-Class: 1\r\n\r\nhello").unwrap();
        let resp = read_response(&mut s);
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{engine:?}: {resp}");
        assert!(resp.contains("X-Class: 1"), "{engine:?}: {resp}");
        assert!(resp.contains("class=1"), "{engine:?}: {resp}");
        // HTTP/1.0 with no Connection header → close after response.
        s.write_all(b"GET /b HTTP/1.0\r\n\r\n").unwrap();
        let mut rest = String::new();
        s.read_to_string(&mut rest).unwrap();
        assert!(rest.contains("HTTP/1.0 200 OK"), "{engine:?}: {rest}");
        assert!(rest.contains("Connection: close"), "{engine:?}: {rest}");
        drop(s);
        assert_eq!(fe.shutdown(Duration::from_secs(10)).expect("drain"), 0);
        Arc::try_unwrap(server).ok().expect("released").shutdown();
    }
}

/// `?cost=inf` parses as a valid f64; it must be clamped into the
/// queue's accepted band, not allowed to trip the positivity assert —
/// on the reactor engines that panic would kill a whole event loop
/// (one remote request = total outage). Regression test for a
/// review-verified crash.
#[test]
fn non_finite_cost_is_clamped_not_fatal() {
    for engine in all_engines() {
        let server = quick_server(vec![1.0]);
        let fe = HttpFrontend::start_with(
            "127.0.0.1:0",
            Arc::clone(&server),
            FrontendConfig { engine, ..FrontendConfig::default() },
        )
        .expect("bind");
        let mut s = TcpStream::connect(fe.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for bad in ["inf", "-inf", "nan", "1e309"] {
            s.write_all(format!("GET /a?cost={bad} HTTP/1.1\r\n\r\n").as_bytes()).unwrap();
            let resp = read_response(&mut s);
            assert!(resp.starts_with("HTTP/1.1 200 OK"), "{engine:?} cost={bad}: {resp}");
        }
        // The engine survived all of them and still serves.
        s.write_all(b"GET /ok?cost=1 HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut rest = String::new();
        s.read_to_string(&mut rest).unwrap();
        assert!(rest.contains("200 OK"), "{engine:?}: engine must outlive bad costs: {rest}");
        assert_eq!(fe.shutdown(Duration::from_secs(10)).expect("drain"), 0);
        Arc::try_unwrap(server).ok().expect("released").shutdown();
    }
}

/// A client that disconnects while its request is queued (the reactor
/// parks such connections with no read interest / no read SQE) must
/// neither break the loop nor starve other connections. Regression
/// test for a review-verified busy-spin on the level-triggered hang-up
/// event.
#[test]
fn aborted_client_mid_queue_leaves_the_loop_healthy() {
    for engine in reactor_backends() {
        let server = Arc::new(PsdServer::start(ServerConfig {
            deltas: vec![1.0],
            work_unit: Duration::from_millis(1),
            ..ServerConfig::default()
        }));
        let fe = HttpFrontend::start_with("127.0.0.1:0", Arc::clone(&server), cfg_for(engine))
            .expect("bind reactor");
        // Occupy the single worker with a slow request…
        let mut slow = TcpStream::connect(fe.addr()).expect("connect");
        slow.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        slow.write_all(b"GET /slow?cost=400 HTTP/1.1\r\n\r\n").unwrap();
        // …queue a request behind it and abort the connection.
        let mut ghost = TcpStream::connect(fe.addr()).expect("connect");
        ghost.write_all(b"GET /ghost?cost=1 HTTP/1.1\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(50)); // request reaches the queue
        drop(ghost);
        // While the ghost's request is still queued, a healthy client
        // must connect and be served as soon as the worker frees up.
        let mut live = TcpStream::connect(fe.addr()).expect("connect");
        live.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        live.write_all(b"GET /live?cost=1 HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let slow_resp = read_response(&mut slow);
        assert!(slow_resp.starts_with("HTTP/1.1 200 OK"), "{engine:?}: {slow_resp}");
        let mut live_resp = String::new();
        live.read_to_string(&mut live_resp).unwrap();
        assert!(live_resp.contains("200 OK"), "{engine:?}: loop must stay healthy: {live_resp}");
        drop((slow, live));
        assert_eq!(fe.shutdown(Duration::from_secs(10)).expect("drain"), 0);
        let stats = Arc::try_unwrap(server).ok().expect("released").shutdown();
        assert_eq!(
            stats.classes[0].completed, 3,
            "{engine:?}: ghost's queued request still executes"
        );
    }
}

/// Shutdown while requests are in flight serves them out (graceful
/// drain), then releases the server for final statistics.
#[test]
fn drain_serves_in_flight_requests() {
    for engine in reactor_backends() {
        let server = Arc::new(PsdServer::start(ServerConfig {
            deltas: vec![1.0],
            // Long enough that the drain demonstrably overlaps execution.
            work_unit: Duration::from_millis(2),
            scheduler: SchedulerKind::Wfq,
            ..ServerConfig::default()
        }));
        let fe = HttpFrontend::start_with("127.0.0.1:0", Arc::clone(&server), cfg_for(engine))
            .expect("bind reactor");
        let mut s = TcpStream::connect(fe.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(b"GET /inflight?cost=25 HTTP/1.1\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(20)); // request reaches the queue
        let fe_thread = std::thread::spawn(move || fe.shutdown(Duration::from_secs(10)));
        let resp = read_response(&mut s);
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{engine:?}: in-flight served: {resp}");
        assert!(resp.contains("Connection: close"), "{engine:?}: drain must close: {resp}");
        assert_eq!(fe_thread.join().unwrap().expect("drain"), 0);
        let stats = Arc::try_unwrap(server).ok().expect("released").shutdown();
        assert_eq!(stats.classes[0].completed, 1, "{engine:?}");
    }
}
