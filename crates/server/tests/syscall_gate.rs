//! Syscall-count gate for the io_uring engine.
//!
//! The entire point of the uring backend is syscall amortization: one
//! `io_uring_enter` submits a batch of reads, writes and accepts and
//! reaps their completions, where the epoll backend pays
//! `epoll_wait` + `read` + `write` (+ `accept`) per exchange. Every
//! I/O-plane syscall either backend issues goes through the counters
//! in `polling::count`, so this test measures the steady-state
//! syscalls-per-request of both backends over the same request script
//! and pins the uring engine **strictly below** the epoll engine. A
//! perf regression that quietly reintroduces a per-request syscall
//! (dropping batching, re-arming through an extra enter, falling back
//! to eventfd round-trips) fails this gate rather than shipping.
//!
//! The counter is process-global, so everything runs inside ONE test
//! function — the harness would otherwise interleave other tests'
//! syscalls into the window.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use psd_server::{EngineKind, FrontendConfig, HttpFrontend, PsdServer, ServerConfig};

const REQUESTS: usize = 400;

fn quick_server() -> Arc<PsdServer> {
    Arc::new(PsdServer::start(ServerConfig {
        deltas: vec![1.0, 2.0],
        workers: 2,
        work_unit: Duration::from_micros(50),
        ..ServerConfig::default()
    }))
}

fn read_response(s: &mut TcpStream) -> String {
    let mut buf = [0u8; 4096];
    let mut out = String::new();
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                out.push_str(std::str::from_utf8(&buf[..n]).expect("utf8"));
                if out.contains("\r\n\r\n") && out.ends_with('\n') && !out.ends_with("\r\n\r\n") {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("read failed: {e}"),
        }
    }
    out
}

/// Serve `REQUESTS` keep-alive exchanges on `engine` and return the
/// I/O-plane syscalls spent on the steady-state portion (startup,
/// connection setup and shutdown are all excluded by a warmup request
/// before the first snapshot and by snapshotting again before drop).
fn steady_state_syscalls(engine: EngineKind) -> u64 {
    let server = quick_server();
    let fe = HttpFrontend::start_with(
        "127.0.0.1:0",
        Arc::clone(&server),
        FrontendConfig { engine, ..FrontendConfig::default() },
    )
    .expect("bind");
    assert_eq!(fe.engine(), engine, "probe passed, so no silent fallback");

    let mut s = TcpStream::connect(fe.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // Warm up: connection registered, buffers pooled, first SQEs armed.
    s.write_all(b"GET /warmup?cost=0.2 HTTP/1.1\r\n\r\n").unwrap();
    assert!(read_response(&mut s).starts_with("HTTP/1.1 200 OK"));

    let before = polling::count::total();
    for i in 0..REQUESTS {
        s.write_all(format!("GET /class{}/g?cost=0.2 HTTP/1.1\r\n\r\n", i % 2).as_bytes()).unwrap();
        let resp = read_response(&mut s);
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{engine:?} request {i}: {resp}");
    }
    let spent = polling::count::total() - before;

    drop(s);
    assert_eq!(fe.shutdown(Duration::from_secs(10)).expect("drain"), 0);
    Arc::try_unwrap(server).ok().expect("released").shutdown();
    spent
}

#[test]
fn uring_spends_strictly_fewer_syscalls_than_epoll() {
    if !psd_server::uring_available() {
        eprintln!("skipping syscall gate: io_uring unavailable on this kernel");
        return;
    }

    let epoll = steady_state_syscalls(EngineKind::Reactor);
    let uring = steady_state_syscalls(EngineKind::Uring);
    let per_req = |n: u64| n as f64 / REQUESTS as f64;
    eprintln!(
        "syscall gate: epoll {epoll} ({:.2}/req) vs uring {uring} ({:.2}/req) over {REQUESTS} requests",
        per_req(epoll),
        per_req(uring)
    );

    // Sanity: both planes actually metered through the shim. Epoll
    // spends at least wait+read+write per exchange even when perfectly
    // coalesced, so anything below 2/req means the counters came loose.
    assert!(
        per_req(epoll) >= 2.0,
        "epoll metering looks broken: {epoll} syscalls for {REQUESTS} requests"
    );
    assert!(uring > 0, "uring metering looks broken: zero syscalls recorded");

    // The gate: batching must beat readiness polling outright — not by
    // a tolerance band, strictly. One enter replaces wait+read+write,
    // so in practice the ratio is far below 1; the strict `<` keeps
    // the gate robust to scheduling noise while still catching any
    // change that makes uring pay per-request syscalls again.
    assert!(
        uring < epoll,
        "uring engine must spend strictly fewer I/O syscalls than epoll: \
         uring={uring} ({:.2}/req) epoll={epoll} ({:.2}/req)",
        per_req(uring),
        per_req(epoll)
    );
}
