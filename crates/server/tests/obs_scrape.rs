//! End-to-end observability: scrape every observability route over
//! real TCP on **all three** engines while the server is shedding
//! load, and
//! validate the bodies with the same `psd-obs` parsers offline tooling
//! uses. Also pins the satellite contract that every admin response
//! carries an explicit `Content-Type`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use psd_server::{
    ControllerKind, EngineKind, FrontendConfig, HttpFrontend, PsdServer, SchedulerKind,
    ServerConfig,
};

/// One `Connection: close` exchange on a fresh socket.
fn exchange(addr: std::net::SocketAddr, req: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(req.as_bytes()).expect("write");
    let mut all = String::new();
    s.read_to_string(&mut all).expect("read");
    all
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n"))
}

/// The value of a response header (case-insensitive lookup).
fn header(resp: &str, name: &str) -> Option<String> {
    let head = resp.split("\r\n\r\n").next()?;
    for line in head.lines().skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case(name) {
                return Some(v.trim().to_string());
            }
        }
    }
    None
}

fn body(resp: &str) -> &str {
    resp.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("")
}

/// Look up one sample by name + one label pair.
fn sample(samples: &[psd_obs::PromSample], name: &str, label: Option<(&str, &str)>) -> f64 {
    samples
        .iter()
        .find(|s| s.name == name && label.is_none_or(|(k, v)| s.label(k) == Some(v)))
        .unwrap_or_else(|| panic!("no sample {name} with label {label:?}"))
        .value
}

fn teardown(fe: HttpFrontend, server: Arc<PsdServer>) {
    assert_eq!(fe.shutdown(Duration::from_secs(10)).expect("drain"), 0);
    Arc::try_unwrap(server).ok().expect("handlers drained").shutdown();
}

/// Every engine, mid-overload: class 1 is shed at the door while
/// class 0 serves; every observability route answers 200 with a typed
/// body, the Prometheus exposition parses and reflects the shedding,
/// the span ring carries both admitted and shed spans. The uring case
/// self-skips on kernels without io_uring (the frontend would fall
/// back to epoll and the engine-token assertions below would lie).
#[test]
fn observability_routes_scrape_mid_overload() {
    for engine in [EngineKind::Threads, EngineKind::Reactor, EngineKind::Uring] {
        if engine == EngineKind::Uring && !psd_server::uring_available() {
            eprintln!("skipping uring case: io_uring unavailable on this kernel");
            continue;
        }
        let server = Arc::new(PsdServer::start(ServerConfig {
            deltas: vec![1.0, 2.0],
            work_unit: Duration::from_micros(100),
            // Keep the monitor out of the way: the published admission
            // table below stays in force for the whole test.
            control_window: Duration::from_secs(3600),
            scheduler: SchedulerKind::RatePartition,
            ..ServerConfig::default()
        }));
        let fe = HttpFrontend::start_with(
            "127.0.0.1:0",
            Arc::clone(&server),
            FrontendConfig { engine, shards: 2, ..FrontendConfig::default() },
        )
        .expect("bind");
        let addr = fe.addr();
        // Overload posture: admit all of class 0, shed all of class 1.
        server.control().publish(0, &[0.5, 0.5], Some(&[1.0, 0.0]));

        for i in 0..6 {
            let ok = get(addr, "/class0/x");
            assert!(ok.contains("200 OK"), "{engine:?} request {i}: {ok}");
        }
        for i in 0..3 {
            let shed = exchange(addr, "GET /class1/x HTTP/1.1\r\n\r\n");
            assert!(shed.starts_with("HTTP/1.1 503"), "{engine:?} shed {i}: {shed}");
            assert!(shed.contains("X-Shed: 1"), "{engine:?} shed {i}: {shed}");
        }

        // Every admin route answers 200 with an explicit Content-Type.
        for (path, want_type) in [
            ("/metrics", "application/json"),
            ("/metrics/prometheus", "text/plain; version=0.0.4"),
            ("/config", "application/json"),
            ("/healthz", "application/json"),
            ("/trace", "application/json"),
            ("/trace/control", "application/json"),
        ] {
            let resp = get(addr, path);
            assert!(resp.contains("200 OK"), "{engine:?} GET {path}: {resp}");
            let ct = header(&resp, "content-type")
                .unwrap_or_else(|| panic!("{engine:?} GET {path}: no Content-Type\n{resp}"));
            assert_eq!(ct, want_type, "{engine:?} GET {path}");
        }
        // Error responses are typed too.
        let bad = exchange(addr, "DELETE /config HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(bad.contains("405"), "{engine:?}: {bad}");
        assert_eq!(header(&bad, "content-type").as_deref(), Some("application/json"));

        let hz = get(addr, "/healthz");
        let hz_body = body(&hz);
        assert!(hz_body.contains("\"status\":\"ok\""), "{engine:?}: {hz_body}");
        let token = match engine {
            EngineKind::Threads => "\"engine\":\"threads\"",
            EngineKind::Reactor => "\"engine\":\"reactor\"",
            EngineKind::Uring => "\"engine\":\"uring\"",
        };
        assert!(hz_body.contains(token), "{engine:?}: {hz_body}");
        assert!(hz_body.contains("\"classes\":2"), "{engine:?}: {hz_body}");

        // The span ring fills asynchronously with the response write;
        // wait until all 9 spans (6 admitted + 3 shed) landed.
        let deadline = Instant::now() + Duration::from_secs(5);
        let trace = loop {
            let t = get(addr, "/trace?n=100");
            if body(&t).contains("\"recorded\":9") {
                break t;
            }
            assert!(Instant::now() < deadline, "{engine:?}: span ring never reached 9:\n{t}");
            std::thread::sleep(Duration::from_millis(10));
        };
        let trace_body = body(&trace);
        assert!(trace_body.contains("\"admitted\":false"), "{engine:?}: {trace_body}");
        assert!(trace_body.contains("\"admitted\":true"), "{engine:?}: {trace_body}");
        for stage in [
            "\"queue_us\"",
            "\"service_us\"",
            "\"stretch_us\"",
            "\"writeback_us\"",
            "\"decomposition\"",
            "\"slowdown\"",
        ] {
            assert!(trace_body.contains(stage), "{engine:?}: /trace lost {stage}:\n{trace_body}");
        }

        let prom = get(addr, "/metrics/prometheus");
        let samples = psd_obs::parse_prometheus(body(&prom))
            .unwrap_or_else(|e| panic!("{engine:?}: exposition does not parse: {e}\n{prom}"));
        let engine_token = engine.as_str();
        assert_eq!(sample(&samples, "psd_server_info", Some(("engine", engine_token))), 1.0);
        assert_eq!(
            sample(&samples, "psd_requests_completed_total", Some(("class", "0"))),
            6.0,
            "{engine:?}"
        );
        assert_eq!(
            sample(&samples, "psd_requests_shed_total", Some(("class", "1"))),
            3.0,
            "{engine:?}"
        );
        assert_eq!(sample(&samples, "psd_admission_draws_total", None), 9.0, "{engine:?}");
        assert_eq!(sample(&samples, "psd_admission_sheds_total", None), 3.0, "{engine:?}");
        assert!(sample(&samples, "psd_trace_spans_recorded_total", None) >= 9.0, "{engine:?}");
        // Sleep × RatePartition engages the timer wheel on both
        // engines: all six admitted requests crossed it.
        assert!(sample(&samples, "psd_wheel_scheduled_total", None) >= 6.0, "{engine:?}");
        // The latency histogram saw every admitted request.
        assert_eq!(
            sample(&samples, "psd_request_duration_seconds_count", Some(("class", "0"))),
            6.0,
            "{engine:?}"
        );
        let shard_metrics = samples.iter().any(|s| s.name == "psd_reactor_accepts_total");
        let uring_metrics = samples.iter().any(|s| s.name == "psd_uring_enters_total");
        match engine {
            EngineKind::Reactor | EngineKind::Uring => {
                assert!(shard_metrics, "{engine:?} must expose per-shard loop counters");
                let accepts: f64 = samples
                    .iter()
                    .filter(|s| s.name == "psd_reactor_accepts_total")
                    .map(|s| s.value)
                    .sum();
                assert!(accepts >= 9.0, "accepts across shards: {accepts}");
            }
            EngineKind::Threads => {
                assert!(!shard_metrics, "threads engine has no reactor shards");
            }
        }
        match engine {
            EngineKind::Uring => {
                assert!(uring_metrics, "uring engine must expose ring counters");
                let enters: f64 = samples
                    .iter()
                    .filter(|s| s.name == "psd_uring_enters_total")
                    .map(|s| s.value)
                    .sum();
                assert!(enters > 0.0, "uring shards must have entered the ring: {enters}");
                let sqes: f64 = samples
                    .iter()
                    .filter(|s| s.name == "psd_uring_sqes_total")
                    .map(|s| s.value)
                    .sum();
                assert!(sqes > 0.0, "uring shards must have submitted SQEs: {sqes}");
            }
            _ => assert!(!uring_metrics, "{engine:?} must not expose ring counters"),
        }
        // The process-wide I/O-plane syscall meter is always exported
        // (the syscall-count gate diffs it across engines).
        assert!(
            sample(&samples, "psd_reactor_syscalls_total", None) > 0.0,
            "{engine:?}: syscall meter must be live"
        );

        // The flight record parses (empty here: the 3600 s window never
        // elapsed — the live-capture test below covers the filling).
        let ct = get(addr, "/trace/control");
        let traces = psd_obs::parse_traces(body(&ct))
            .unwrap_or_else(|e| panic!("{engine:?}: flight record does not parse: {e}"));
        assert!(traces.is_empty(), "{engine:?}: no control window should have elapsed");

        teardown(fe, server);
    }
}

/// With a short control window the live monitor records one
/// `ControlTrace` per window into the flight recorder, and the dump
/// carries the feedback controller's internals.
#[test]
fn flight_recorder_captures_live_control_windows() {
    let server = Arc::new(PsdServer::start(ServerConfig {
        deltas: vec![1.0, 2.0],
        work_unit: Duration::from_micros(100),
        control_window: Duration::from_millis(25),
        controller: ControllerKind::Feedback,
        gain: 0.3,
        ..ServerConfig::default()
    }));
    let fe = HttpFrontend::start_with(
        "127.0.0.1:0",
        Arc::clone(&server),
        FrontendConfig { engine: EngineKind::Threads, shards: 1, ..FrontendConfig::default() },
    )
    .expect("bind");
    let addr = fe.addr();

    for _ in 0..10 {
        let ok = get(addr, "/class0/x");
        assert!(ok.contains("200 OK"), "{ok}");
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let traces = loop {
        let dump = get(addr, "/trace/control");
        let traces = psd_obs::parse_traces(body(&dump)).expect("flight record parses");
        if traces.len() >= 3 {
            break traces;
        }
        assert!(Instant::now() < deadline, "monitor never recorded 3 windows");
        std::thread::sleep(Duration::from_millis(20));
    };
    for pair in traces.windows(2) {
        assert!(
            pair[1].observation.index > pair[0].observation.index,
            "window indices must increase: {} then {}",
            pair[0].observation.index,
            pair[1].observation.index
        );
        assert!(pair[1].at_s >= pair[0].at_s, "control instants must not go back");
    }
    for t in &traces {
        assert_eq!(t.applied_rates.len(), 2, "one applied rate per class");
        assert!(
            t.internals.iter().any(|(name, vals)| name == "integral_terms" && vals.len() == 2),
            "feedback internals must carry the integral terms: {:?}",
            t.internals
        );
    }
    teardown(fe, server);
}
