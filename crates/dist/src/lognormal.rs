//! Log-normal service times — the classic fit for observed Web file
//! sizes. All moments (positive *and* negative) are finite, so the PSD
//! closed forms apply, making this the natural "beyond Bounded Pareto"
//! workload.

use crate::rng::Xoshiro256pp;
use crate::{DistError, HigherMoments, Moments, ServiceDistribution};

/// Log-normal: `ln X ~ N(μ, σ²)`.
///
/// Parameterized the way workload papers report it — by the mean and
/// squared coefficient of variation — via
/// [`LogNormal::with_mean_scv`]: `σ² = ln(1 + SCV)`,
/// `μ = ln E[X] − σ²/2`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Log-normal with the given `mean > 0` and `scv > 0`
    /// (`SCV = Var[X]/E[X]²`).
    pub fn with_mean_scv(mean: f64, scv: f64) -> Result<Self, DistError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(DistError::invalid(format!(
                "log-normal mean must be finite and > 0, got {mean}"
            )));
        }
        if !(scv.is_finite() && scv > 0.0) {
            return Err(DistError::invalid(format!(
                "log-normal SCV must be finite and > 0, got {scv}"
            )));
        }
        let sigma2 = (1.0 + scv).ln();
        Ok(Self { mu: mean.ln() - 0.5 * sigma2, sigma: sigma2.sqrt() })
    }

    /// Location parameter `μ` of `ln X`.
    pub fn location(&self) -> f64 {
        self.mu
    }

    /// Scale parameter `σ` of `ln X`.
    pub fn scale(&self) -> f64 {
        self.sigma
    }

    /// `E[X^j] = exp(jμ + j²σ²/2)` for any real `j` (moment generating
    /// identity of the normal in the exponent).
    pub fn raw_moment(&self, j: f64) -> f64 {
        (j * self.mu + 0.5 * j * j * self.sigma * self.sigma).exp()
    }
}

impl ServiceDistribution for LogNormal {
    /// Box–Muller: one standard normal per sample (two uniforms drawn,
    /// second used as the angle), then exponentiate.
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        let u1 = rng.next_open_f64();
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    fn mean(&self) -> f64 {
        self.raw_moment(1.0)
    }

    fn moments(&self) -> Moments {
        Moments {
            mean: self.raw_moment(1.0),
            second_moment: self.raw_moment(2.0),
            mean_inverse: Some(self.raw_moment(-1.0)),
        }
    }
}

impl HigherMoments for LogNormal {
    fn third_moment(&self) -> Option<f64> {
        Some(self.raw_moment(3.0))
    }

    fn mean_inverse_square(&self) -> Option<f64> {
        Some(self.raw_moment(-2.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_scv_roundtrip() {
        let (mean, scv) = (0.3, 4.0);
        let ln = LogNormal::with_mean_scv(mean, scv).unwrap();
        let m = ln.moments();
        assert!((m.mean - mean).abs() / mean < 1e-12);
        let var = m.second_moment - m.mean * m.mean;
        assert!((var / (m.mean * m.mean) - scv).abs() < 1e-10);
        // E[1/X] = exp(-mu + sigma^2/2) = (1 + scv)/mean.
        let want_inv = (1.0 + scv) / mean;
        assert!((m.mean_inverse.unwrap() - want_inv).abs() / want_inv < 1e-12);
    }

    #[test]
    fn closed_form_higher_moments() {
        let ln = LogNormal::with_mean_scv(1.0, 2.0).unwrap();
        let (mu, s2) = (ln.location(), ln.scale() * ln.scale());
        assert!((ln.third_moment().unwrap() - (3.0 * mu + 4.5 * s2).exp()).abs() < 1e-12);
        assert!((ln.mean_inverse_square().unwrap() - (-2.0 * mu + 2.0 * s2).exp()).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_matches_analytics() {
        let ln = LogNormal::with_mean_scv(0.3, 4.0).unwrap();
        let m = ln.moments();
        let mut rng = Xoshiro256pp::seed_from(314159);
        let n = 500_000;
        let (mut s1, mut sinv) = (0.0, 0.0);
        for _ in 0..n {
            let x = ln.sample(&mut rng);
            assert!(x > 0.0);
            s1 += x;
            sinv += 1.0 / x;
        }
        let nf = n as f64;
        assert!((s1 / nf - m.mean).abs() / m.mean < 0.02, "mean {}", s1 / nf);
        assert!(
            (sinv / nf - m.mean_inverse.unwrap()).abs() / m.mean_inverse.unwrap() < 0.02,
            "mean inverse {}",
            sinv / nf
        );
    }

    #[test]
    fn validation() {
        assert!(LogNormal::with_mean_scv(0.0, 1.0).is_err());
        assert!(LogNormal::with_mean_scv(1.0, 0.0).is_err());
        assert!(LogNormal::with_mean_scv(f64::NAN, 1.0).is_err());
    }
}
