//! Stochastic arrival processes feeding the simulators.
//!
//! The paper's traffic model is Poisson ([`PoissonProcess`]); the rest
//! exist to stress the load estimator beyond it: evenly spaced arrivals
//! for exact-answer tests ([`DeterministicArrivals`]), a bursty 2-state
//! Markov-modulated Poisson process ([`Mmpp2`]) and a one-shot load
//! step ([`StepPoisson`]) for controller-adaptivity experiments.

use crate::rng::Xoshiro256pp;
use crate::DistError;

/// A stream of interarrival gaps. Implementations may carry state (the
/// MMPP's modulating chain, the step process's clock), so the method
/// takes `&mut self`; all randomness comes from the caller's RNG so
/// streams stay deterministic per seed.
pub trait ArrivalProcess {
    /// Time until the next arrival, strictly positive.
    fn next_interarrival(&mut self, rng: &mut Xoshiro256pp) -> f64;
}

#[inline]
fn exp_gap(rate: f64, rng: &mut Xoshiro256pp) -> f64 {
    -rng.next_open_f64().ln() / rate
}

/// Poisson arrivals at a constant rate — i.i.d. exponential gaps.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonProcess {
    rate: f64,
}

impl PoissonProcess {
    /// Poisson process with `rate > 0` arrivals per time unit.
    pub fn new(rate: f64) -> Result<Self, DistError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(DistError::invalid(format!(
                "Poisson rate must be finite and > 0, got {rate}"
            )));
        }
        Ok(Self { rate })
    }

    /// The arrival rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ArrivalProcess for PoissonProcess {
    fn next_interarrival(&mut self, rng: &mut Xoshiro256pp) -> f64 {
        exp_gap(self.rate, rng)
    }
}

/// Evenly spaced arrivals (the `D` in D/D/1 sanity tests).
#[derive(Debug, Clone, PartialEq)]
pub struct DeterministicArrivals {
    interval: f64,
}

impl DeterministicArrivals {
    /// Arrivals every `interval > 0` time units.
    pub fn new(interval: f64) -> Result<Self, DistError> {
        if !(interval.is_finite() && interval > 0.0) {
            return Err(DistError::invalid(format!(
                "deterministic interarrival must be finite and > 0, got {interval}"
            )));
        }
        Ok(Self { interval })
    }
}

impl ArrivalProcess for DeterministicArrivals {
    fn next_interarrival(&mut self, _rng: &mut Xoshiro256pp) -> f64 {
        self.interval
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum MmppState {
    /// Burst state: Poisson at the peak rate.
    On,
    /// Silent state: no arrivals.
    Off,
}

/// Two-state Markov-modulated Poisson process in on/off form.
///
/// [`Mmpp2::bursty`] pins the parameterization used by the estimator
/// stress tests: the *on* state fires at `burstiness × mean_rate`, the
/// *off* state is silent, and the exponential sojourn times (`sojourn`
/// on, `(burstiness − 1) × sojourn` off) put the chain in the on state
/// a fraction `1/burstiness` of the time — so the long-run rate is
/// exactly `mean_rate` while arrivals cluster into bursts.
#[derive(Debug, Clone, PartialEq)]
pub struct Mmpp2 {
    peak_rate: f64,
    sojourn_on: f64,
    sojourn_off: f64,
    state: MmppState,
    /// Time left before the modulating chain switches state.
    remaining: f64,
}

impl Mmpp2 {
    /// Bursty MMPP with long-run `mean_rate > 0`, peak-to-mean ratio
    /// `burstiness ≥ 1` and mean on-state sojourn `sojourn > 0`.
    pub fn bursty(mean_rate: f64, burstiness: f64, sojourn: f64) -> Result<Self, DistError> {
        if !(mean_rate.is_finite() && mean_rate > 0.0) {
            return Err(DistError::invalid(format!(
                "MMPP mean rate must be finite and > 0, got {mean_rate}"
            )));
        }
        if !(burstiness.is_finite() && burstiness >= 1.0) {
            return Err(DistError::invalid(format!(
                "MMPP burstiness (peak/mean) must be >= 1, got {burstiness}"
            )));
        }
        if !(sojourn.is_finite() && sojourn > 0.0) {
            return Err(DistError::invalid(format!(
                "MMPP sojourn must be finite and > 0, got {sojourn}"
            )));
        }
        Ok(Self {
            peak_rate: mean_rate * burstiness,
            sojourn_on: sojourn,
            sojourn_off: sojourn * (burstiness - 1.0),
            state: MmppState::On,
            remaining: 0.0,
        })
    }

    /// The on-state (peak) arrival rate.
    pub fn peak_rate(&self) -> f64 {
        self.peak_rate
    }
}

impl ArrivalProcess for Mmpp2 {
    fn next_interarrival(&mut self, rng: &mut Xoshiro256pp) -> f64 {
        // Degenerate burstiness = 1: the off state has zero sojourn, so
        // the process is plain Poisson at the peak (= mean) rate.
        if self.sojourn_off == 0.0 {
            return exp_gap(self.peak_rate, rng);
        }
        let mut elapsed = 0.0;
        loop {
            if self.remaining <= 0.0 {
                // (Re-)enter the current state with a fresh sojourn; on
                // first use this initializes the on state.
                self.remaining = match self.state {
                    MmppState::On => exp_gap(1.0 / self.sojourn_on, rng),
                    MmppState::Off => exp_gap(1.0 / self.sojourn_off, rng),
                };
            }
            match self.state {
                MmppState::On => {
                    let gap = exp_gap(self.peak_rate, rng);
                    if gap <= self.remaining {
                        self.remaining -= gap;
                        return elapsed + gap;
                    }
                    // Burst ends before the next arrival: spend the rest
                    // of the on-sojourn, switch off.
                    elapsed += self.remaining;
                    self.remaining = 0.0;
                    self.state = MmppState::Off;
                }
                MmppState::Off => {
                    // Silent: skip the whole off-sojourn.
                    elapsed += self.remaining;
                    self.remaining = 0.0;
                    self.state = MmppState::On;
                }
            }
        }
    }
}

/// Poisson arrivals whose rate steps once, from `rate_before` to
/// `rate_after`, at absolute process time `switch_at`.
///
/// The process tracks its own clock (the cumulative sum of the gaps it
/// has produced), so callers just chain `next_interarrival` like any
/// other process.
#[derive(Debug, Clone, PartialEq)]
pub struct StepPoisson {
    rate_before: f64,
    rate_after: f64,
    switch_at: f64,
    now: f64,
}

impl StepPoisson {
    /// Step process; both rates must be positive and finite, and the
    /// switch time non-negative.
    pub fn new(rate_before: f64, rate_after: f64, switch_at: f64) -> Result<Self, DistError> {
        for (label, r) in [("before", rate_before), ("after", rate_after)] {
            if !(r.is_finite() && r > 0.0) {
                return Err(DistError::invalid(format!(
                    "step rate ({label}) must be finite and > 0, got {r}"
                )));
            }
        }
        if !(switch_at.is_finite() && switch_at >= 0.0) {
            return Err(DistError::invalid(format!(
                "step switch time must be finite and >= 0, got {switch_at}"
            )));
        }
        Ok(Self { rate_before, rate_after, switch_at, now: 0.0 })
    }
}

impl ArrivalProcess for StepPoisson {
    fn next_interarrival(&mut self, rng: &mut Xoshiro256pp) -> f64 {
        let gap = if self.now >= self.switch_at {
            exp_gap(self.rate_after, rng)
        } else {
            let g = exp_gap(self.rate_before, rng);
            if self.now + g <= self.switch_at {
                g
            } else {
                // Memorylessness: restart at the switch with the new rate.
                (self.switch_at - self.now) + exp_gap(self.rate_after, rng)
            }
        };
        self.now += gap;
        gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_rate<P: ArrivalProcess>(p: &mut P, seed: u64, n: u64) -> f64 {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let total: f64 = (0..n).map(|_| p.next_interarrival(&mut rng)).sum();
        n as f64 / total
    }

    #[test]
    fn poisson_rate_within_two_percent() {
        let mut p = PoissonProcess::new(3.0).unwrap();
        assert_eq!(p.rate(), 3.0);
        let rate = empirical_rate(&mut p, 42, 200_000);
        assert!((rate - 3.0).abs() / 3.0 < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn deterministic_gaps_exact() {
        let mut d = DeterministicArrivals::new(0.25).unwrap();
        let mut rng = Xoshiro256pp::seed_from(1);
        for _ in 0..10 {
            assert_eq!(d.next_interarrival(&mut rng), 0.25);
        }
    }

    #[test]
    fn mmpp_long_run_rate_matches_spec() {
        // The acceptance bar: empirical rate within 2% of mean_rate.
        let mut m = Mmpp2::bursty(2.0, 3.0, 50.0).unwrap();
        assert_eq!(m.peak_rate(), 6.0);
        let rate = empirical_rate(&mut m, 7, 400_000);
        assert!((rate - 2.0).abs() / 2.0 < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn mmpp_burstiness_one_is_poisson() {
        let mut m = Mmpp2::bursty(5.0, 1.0, 10.0).unwrap();
        let rate = empirical_rate(&mut m, 11, 200_000);
        assert!((rate - 5.0).abs() / 5.0 < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn mmpp_actually_bursts() {
        // Count arrivals per unit-time window; a 5x-bursty stream must
        // show both silent windows and windows far above the mean rate.
        let mut m = Mmpp2::bursty(1.0, 5.0, 20.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from(23);
        let mut t = 0.0;
        let window = 10.0;
        let mut counts = vec![0u64; 4000];
        while t < 40_000.0 {
            t += m.next_interarrival(&mut rng);
            let w = (t / window) as usize;
            if w < counts.len() {
                counts[w] += 1;
            }
        }
        let silent = counts.iter().filter(|&&c| c == 0).count();
        let hot = counts.iter().filter(|&&c| c as f64 > 3.0 * window).count();
        assert!(silent > 100, "off periods must show up ({silent} silent windows)");
        assert!(hot > 100, "bursts must show up ({hot} hot windows)");
    }

    #[test]
    fn step_poisson_rates_before_and_after() {
        let mut s = StepPoisson::new(1.0, 4.0, 5_000.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from(17);
        let (mut n_before, mut n_after) = (0u64, 0u64);
        let mut t = 0.0;
        let horizon = 25_000.0;
        while t < horizon {
            t += s.next_interarrival(&mut rng);
            if t < 5_000.0 {
                n_before += 1;
            } else if t < horizon {
                n_after += 1;
            }
        }
        let rate_before = n_before as f64 / 5_000.0;
        let rate_after = n_after as f64 / (horizon - 5_000.0);
        assert!((rate_before - 1.0).abs() < 0.02 * 1.0 + 0.03, "before {rate_before}");
        assert!((rate_after - 4.0).abs() / 4.0 < 0.02, "after {rate_after}");
    }

    #[test]
    fn step_switch_at_zero_is_after_rate_only() {
        let mut s = StepPoisson::new(100.0, 2.0, 0.0).unwrap();
        let rate = empirical_rate(&mut s, 3, 100_000);
        assert!((rate - 2.0).abs() / 2.0 < 0.02, "rate {rate}");
    }

    #[test]
    fn gaps_always_positive() {
        let mut rng = Xoshiro256pp::seed_from(2);
        let mut procs: Vec<Box<dyn ArrivalProcess>> = vec![
            Box::new(PoissonProcess::new(10.0).unwrap()),
            Box::new(DeterministicArrivals::new(1.0).unwrap()),
            Box::new(Mmpp2::bursty(1.0, 4.0, 5.0).unwrap()),
            Box::new(StepPoisson::new(2.0, 3.0, 10.0).unwrap()),
        ];
        for p in procs.iter_mut() {
            for _ in 0..10_000 {
                assert!(p.next_interarrival(&mut rng) > 0.0);
            }
        }
    }

    #[test]
    fn validation_errors() {
        assert!(PoissonProcess::new(0.0).is_err());
        assert!(DeterministicArrivals::new(-1.0).is_err());
        assert!(Mmpp2::bursty(1.0, 0.5, 1.0).is_err());
        assert!(Mmpp2::bursty(0.0, 2.0, 1.0).is_err());
        assert!(Mmpp2::bursty(1.0, 2.0, 0.0).is_err());
        assert!(StepPoisson::new(0.0, 1.0, 1.0).is_err());
        assert!(StepPoisson::new(1.0, 1.0, -1.0).is_err());
        assert!(StepPoisson::new(1.0, f64::NAN, 1.0).is_err());
    }
}
