//! # psd-dist — service distributions, moments, arrivals and PRNGs
//!
//! The statistical foundation of the PSD reproduction (Zhou/Wei/Xu,
//! *Processing Rate Allocation for Proportional Slowdown
//! Differentiation on Internet Servers*, IPDPS 2004). Everything the
//! paper's model needs lives here:
//!
//! * **Service distributions** — [`BoundedPareto`] (the paper's
//!   `BP(1.5, 0.1, 100)` workload, with *exact closed-form* moments
//!   including the `E[1/X]` that Eq. 18 hinges on), plus
//!   [`Pareto`], [`Exponential`], [`Deterministic`],
//!   [`HyperExponential`], [`UniformService`], [`LogNormal`] and
//!   trace-replay [`Empirical`], all behind [`ServiceDistribution`]
//!   and the clonable [`ServiceDist`] sum type.
//! * **Moments** — [`Moments`] carries `E[X]`, `E[X²]` and the
//!   possibly-divergent `E[1/X]`; [`HigherMoments`] adds `E[X³]` and
//!   `E[1/X²]` for the variance analysis. [`Moments::scaled_by_rate`]
//!   is Lemma 2's task-server scaling law.
//! * **Arrival processes** — [`arrival`]: Poisson, deterministic,
//!   bursty MMPP-2 and load-step streams.
//! * **Randomness** — [`rng`]: zero-dependency `xoshiro256++` +
//!   SplitMix64 seed derivation, bit-reproducible across platforms and
//!   thread counts.
//! * **Statistics** — [`stats`]: Welford accumulators and the
//!   percentile helpers behind the paper's Figures 5/6.
//!
//! ```
//! use psd_dist::{BoundedPareto, ServiceDistribution};
//!
//! let bp = BoundedPareto::paper_default();          // BP(1.5, 0.1, 100)
//! let m = bp.moments();
//! assert!((m.mean - 0.2905).abs() < 1e-3);          // E[X]
//! assert!(m.mean_inverse.is_some());                // E[1/X] exists
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
mod basic;
mod empirical;
pub mod fit;
mod lognormal;
mod pareto;
pub mod rng;
pub mod stats;

pub use basic::{Deterministic, Exponential, HyperExponential, UniformService};
pub use empirical::Empirical;
pub use lognormal::LogNormal;
pub use pareto::{BoundedPareto, Pareto};

use rng::Xoshiro256pp;
use std::fmt;

/// Why a distribution could not be constructed or fitted.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// Malformed parameters (non-positive scale, inverted support, …).
    InvalidParameter {
        /// Human-readable description.
        reason: String,
    },
}

impl DistError {
    pub(crate) fn invalid(reason: String) -> Self {
        DistError::InvalidParameter { reason }
    }
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::InvalidParameter { reason } => {
                write!(f, "invalid distribution parameter: {reason}")
            }
        }
    }
}

impl std::error::Error for DistError {}

/// The moment summary every queueing closed form consumes: `E[X]`,
/// `E[X²]`, and `E[1/X]` — the last one `None` when it diverges
/// (exponential-like densities positive at zero), which is exactly the
/// case where expected slowdown has no closed form (paper §5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// Mean service time `E[X]`.
    pub mean: f64,
    /// Second raw moment `E[X²]` (may be `+∞` for unbounded heavy
    /// tails with `α ≤ 2`).
    pub second_moment: f64,
    /// `E[1/X]`, or `None` when the integral diverges.
    pub mean_inverse: Option<f64>,
}

impl Moments {
    /// Lemma 2: the moments of `X/r` for a task server running at a
    /// fraction `r` of the machine rate — `E[X/r] = E[X]/r`,
    /// `E[(X/r)²] = E[X²]/r²`, `E[r/X] = r·E[1/X]`.
    pub fn scaled_by_rate(&self, rate: f64) -> Moments {
        Moments {
            mean: self.mean / rate,
            second_moment: self.second_moment / (rate * rate),
            mean_inverse: self.mean_inverse.map(|mi| mi * rate),
        }
    }
}

/// A service-size distribution: sampleable (for the simulators) and
/// summarizable by its [`Moments`] (for the analysis).
pub trait ServiceDistribution {
    /// Draw one service size, consuming randomness only from `rng`.
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64;

    /// Mean service size `E[X]`.
    fn mean(&self) -> f64;

    /// The moment summary used by the queueing closed forms.
    fn moments(&self) -> Moments;
}

/// Third and inverse-square moments, needed by the Takács second-moment
/// (slowdown variance) analysis. Each is `None` when the corresponding
/// integral diverges.
pub trait HigherMoments {
    /// `E[X³]`, or `None` if infinite.
    fn third_moment(&self) -> Option<f64>;

    /// `E[1/X²]`, or `None` if it diverges.
    fn mean_inverse_square(&self) -> Option<f64>;
}

/// A clonable, matchable sum of every service distribution in the
/// crate — what simulator configs embed so they stay `Clone +
/// PartialEq` and thread-shippable.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceDist {
    /// Bounded Pareto (the paper's workload).
    BoundedPareto(BoundedPareto),
    /// Unbounded Pareto (divergent `E[X²]` for `α ≤ 2`).
    Pareto(Pareto),
    /// Constant service time (M/D/1 reduction).
    Deterministic(Deterministic),
    /// Exponential (no slowdown closed form).
    Exponential(Exponential),
    /// Two-phase hyperexponential (no slowdown closed form).
    HyperExponential(HyperExponential),
    /// Uniform on a positive interval.
    Uniform(UniformService),
    /// Log-normal.
    LogNormal(LogNormal),
    /// Trace replay by uniform resampling.
    Empirical(Empirical),
}

impl ServiceDist {
    /// The paper's default workload: `BP(1.5, 0.1, 100)`.
    pub fn paper_default() -> Self {
        ServiceDist::BoundedPareto(BoundedPareto::paper_default())
    }
}

macro_rules! delegate_service_dist {
    ($self:ident, $d:ident => $expr:expr) => {
        match $self {
            ServiceDist::BoundedPareto($d) => $expr,
            ServiceDist::Pareto($d) => $expr,
            ServiceDist::Deterministic($d) => $expr,
            ServiceDist::Exponential($d) => $expr,
            ServiceDist::HyperExponential($d) => $expr,
            ServiceDist::Uniform($d) => $expr,
            ServiceDist::LogNormal($d) => $expr,
            ServiceDist::Empirical($d) => $expr,
        }
    };
}

impl ServiceDistribution for ServiceDist {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        delegate_service_dist!(self, d => d.sample(rng))
    }

    fn mean(&self) -> f64 {
        delegate_service_dist!(self, d => d.mean())
    }

    fn moments(&self) -> Moments {
        delegate_service_dist!(self, d => d.moments())
    }
}

impl HigherMoments for ServiceDist {
    fn third_moment(&self) -> Option<f64> {
        delegate_service_dist!(self, d => d.third_moment())
    }

    fn mean_inverse_square(&self) -> Option<f64> {
        delegate_service_dist!(self, d => d.mean_inverse_square())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_by_rate_is_lemma2() {
        let m = BoundedPareto::paper_default().moments();
        let s = m.scaled_by_rate(0.25);
        assert!((s.mean - m.mean / 0.25).abs() < 1e-12);
        assert!((s.second_moment - m.second_moment / 0.0625).abs() < 1e-9);
        assert!((s.mean_inverse.unwrap() - m.mean_inverse.unwrap() * 0.25).abs() < 1e-12);
        // Divergent E[1/X] stays divergent under scaling.
        let e = Exponential::new(1.0).unwrap().moments().scaled_by_rate(0.5);
        assert_eq!(e.mean_inverse, None);
    }

    #[test]
    fn paper_default_enum_matches_struct() {
        let d = ServiceDist::paper_default();
        let bp = BoundedPareto::paper_default();
        assert_eq!(d, ServiceDist::BoundedPareto(bp.clone()));
        assert_eq!(d.moments(), bp.moments());
        assert_eq!(d.mean(), bp.mean());
        assert_eq!(d.third_moment(), bp.third_moment());
        assert_eq!(d.mean_inverse_square(), bp.mean_inverse_square());
    }

    #[test]
    fn enum_sampling_delegates() {
        let mut rng_a = Xoshiro256pp::seed_from(4);
        let mut rng_b = Xoshiro256pp::seed_from(4);
        let bp = BoundedPareto::paper_default();
        let d = ServiceDist::BoundedPareto(bp.clone());
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng_a), bp.sample(&mut rng_b));
        }
    }

    #[test]
    fn every_variant_samples_positively() {
        let mut rng = Xoshiro256pp::seed_from(6);
        let dists = vec![
            ServiceDist::paper_default(),
            ServiceDist::Pareto(Pareto::new(1.5, 0.1).unwrap()),
            ServiceDist::Deterministic(Deterministic::new(1.0).unwrap()),
            ServiceDist::Exponential(Exponential::new(1.0).unwrap()),
            ServiceDist::HyperExponential(HyperExponential::h2_balanced(1.0, 4.0).unwrap()),
            ServiceDist::Uniform(UniformService::new(0.5, 1.5).unwrap()),
            ServiceDist::LogNormal(LogNormal::with_mean_scv(0.3, 4.0).unwrap()),
            ServiceDist::Empirical(Empirical::from_trace(&[1.0, 2.0]).unwrap()),
        ];
        for d in &dists {
            for _ in 0..1000 {
                assert!(d.sample(&mut rng) > 0.0, "{d:?} produced a non-positive sample");
            }
            assert!(d.mean() > 0.0);
        }
    }

    #[test]
    fn error_display() {
        let e = DistError::invalid("boom".to_string());
        assert!(e.to_string().contains("boom"));
    }
}
