//! Empirical (trace-replay) service distribution: resample an observed
//! trace uniformly with replacement and feed the PSD model with the
//! trace's own sample moments — workload characterization without
//! committing to a parametric family.

use std::sync::Arc;

use crate::rng::Xoshiro256pp;
use crate::{DistError, HigherMoments, Moments, ServiceDistribution};

/// A service distribution backed by an observed trace of sizes.
///
/// Cloning is cheap (the trace is reference-counted), so an
/// [`Empirical`] can be embedded in per-class simulator configs that
/// are cloned per replication.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    trace: Arc<Vec<f64>>,
    moments: Moments,
    third: f64,
    mean_inverse_square: f64,
}

impl Empirical {
    /// Build from a trace of observed sizes; every entry must be finite
    /// and strictly positive (a zero size would blow up `E[1/X]` and
    /// the slowdown metric itself).
    pub fn from_trace(trace: &[f64]) -> Result<Self, DistError> {
        if trace.is_empty() {
            return Err(DistError::invalid("empirical trace must be non-empty".to_string()));
        }
        let n = trace.len() as f64;
        let (mut s1, mut s2, mut s3, mut sinv, mut sinv2) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for (i, &x) in trace.iter().enumerate() {
            if !(x.is_finite() && x > 0.0) {
                return Err(DistError::invalid(format!(
                    "trace entry {i} must be finite and > 0, got {x}"
                )));
            }
            s1 += x;
            s2 += x * x;
            s3 += x * x * x;
            sinv += 1.0 / x;
            sinv2 += 1.0 / (x * x);
        }
        Ok(Self {
            trace: Arc::new(trace.to_vec()),
            moments: Moments { mean: s1 / n, second_moment: s2 / n, mean_inverse: Some(sinv / n) },
            third: s3 / n,
            mean_inverse_square: sinv2 / n,
        })
    }

    /// Number of observations in the trace.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// True when the trace is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// The backing trace.
    pub fn trace(&self) -> &[f64] {
        &self.trace
    }
}

impl ServiceDistribution for Empirical {
    /// Uniform resampling with replacement (the bootstrap view of the
    /// trace as a distribution).
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        let idx = (rng.next_f64() * self.trace.len() as f64) as usize;
        // next_f64 < 1.0 keeps idx < len; clamp defensively anyway.
        self.trace[idx.min(self.trace.len() - 1)]
    }

    fn mean(&self) -> f64 {
        self.moments.mean
    }

    fn moments(&self) -> Moments {
        self.moments
    }
}

impl HigherMoments for Empirical {
    fn third_moment(&self) -> Option<f64> {
        Some(self.third)
    }

    fn mean_inverse_square(&self) -> Option<f64> {
        Some(self.mean_inverse_square)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_moments_are_exact() {
        let e = Empirical::from_trace(&[1.0, 2.0, 4.0]).unwrap();
        let m = e.moments();
        assert!((m.mean - 7.0 / 3.0).abs() < 1e-12);
        assert!((m.second_moment - 21.0 / 3.0).abs() < 1e-12);
        assert!((m.mean_inverse.unwrap() - (1.0 + 0.5 + 0.25) / 3.0).abs() < 1e-12);
        assert!((e.third_moment().unwrap() - (1.0 + 8.0 + 64.0) / 3.0).abs() < 1e-12);
        assert!((e.mean_inverse_square().unwrap() - (1.0 + 0.25 + 0.0625) / 3.0).abs() < 1e-12);
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
        assert_eq!(e.trace(), &[1.0, 2.0, 4.0]);
    }

    #[test]
    fn resampling_only_produces_trace_values() {
        let e = Empirical::from_trace(&[0.5, 1.5]).unwrap();
        let mut rng = Xoshiro256pp::seed_from(21);
        let mut seen = [false; 2];
        for _ in 0..1000 {
            let x = e.sample(&mut rng);
            assert!(x == 0.5 || x == 1.5);
            seen[usize::from(x == 1.5)] = true;
        }
        assert!(seen[0] && seen[1], "both trace values should appear");
    }

    #[test]
    fn resampled_mean_converges_to_trace_mean() {
        let trace: Vec<f64> = (1..=100).map(|i| i as f64 / 10.0).collect();
        let e = Empirical::from_trace(&trace).unwrap();
        let mut rng = Xoshiro256pp::seed_from(8);
        let n = 200_000;
        let mean = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - e.mean()).abs() / e.mean() < 0.01);
    }

    #[test]
    fn rejects_bad_traces() {
        assert!(Empirical::from_trace(&[]).is_err());
        assert!(Empirical::from_trace(&[1.0, 0.0]).is_err());
        assert!(Empirical::from_trace(&[1.0, -2.0]).is_err());
        assert!(Empirical::from_trace(&[f64::NAN]).is_err());
        assert!(Empirical::from_trace(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn clones_share_the_trace() {
        let trace: Vec<f64> = vec![1.0; 10_000];
        let a = Empirical::from_trace(&trace).unwrap();
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.trace, &b.trace), "clone must not copy the trace");
    }
}
