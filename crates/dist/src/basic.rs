//! Light-tailed service distributions: deterministic, exponential,
//! two-phase hyperexponential and uniform.
//!
//! Deterministic service is the M/D/1 reduction of paper Eq. 15;
//! exponential and hyperexponential are the §5 counter-examples whose
//! `E[1/X]` diverges (no slowdown closed form); uniform is a
//! well-behaved alternative workload with every moment finite.

use crate::rng::Xoshiro256pp;
use crate::{DistError, HigherMoments, Moments, ServiceDistribution};

/// Constant service time `X ≡ d`.
#[derive(Debug, Clone, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Constant service time `value > 0`.
    pub fn new(value: f64) -> Result<Self, DistError> {
        if !(value.is_finite() && value > 0.0) {
            return Err(DistError::invalid(format!(
                "deterministic service time must be finite and > 0, got {value}"
            )));
        }
        Ok(Self { value })
    }

    /// The constant value `d`.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl ServiceDistribution for Deterministic {
    fn sample(&self, _rng: &mut Xoshiro256pp) -> f64 {
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn moments(&self) -> Moments {
        Moments {
            mean: self.value,
            second_moment: self.value * self.value,
            mean_inverse: Some(1.0 / self.value),
        }
    }
}

impl HigherMoments for Deterministic {
    fn third_moment(&self) -> Option<f64> {
        Some(self.value.powi(3))
    }

    fn mean_inverse_square(&self) -> Option<f64> {
        Some(1.0 / (self.value * self.value))
    }
}

/// Exponential service with **rate** `μ` (mean `1/μ`).
///
/// `E[1/X]` diverges (`∫ x^{-1} μ e^{-μx} dx` blows up at 0), so
/// [`Moments::mean_inverse`] is `None` — the paper's §5 negative
/// result, surfaced at the distribution layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Exponential with rate `rate > 0`.
    pub fn new(rate: f64) -> Result<Self, DistError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(DistError::invalid(format!(
                "exponential rate must be finite and > 0, got {rate}"
            )));
        }
        Ok(Self { rate })
    }

    /// The rate `μ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ServiceDistribution for Exponential {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        -rng.next_open_f64().ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn moments(&self) -> Moments {
        Moments {
            mean: 1.0 / self.rate,
            second_moment: 2.0 / (self.rate * self.rate),
            mean_inverse: None,
        }
    }
}

impl HigherMoments for Exponential {
    fn third_moment(&self) -> Option<f64> {
        Some(6.0 / self.rate.powi(3))
    }

    fn mean_inverse_square(&self) -> Option<f64> {
        None
    }
}

/// Two-phase hyperexponential `H2` with *balanced means*
/// (`p₁/μ₁ = p₂/μ₂`), parameterized by its mean and squared coefficient
/// of variation `SCV = Var[X]/E[X]² ≥ 1`.
///
/// Like the exponential, each phase's density is positive at 0, so
/// `E[1/X]` diverges and no slowdown closed form exists.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperExponential {
    p1: f64,
    mu1: f64,
    mu2: f64,
}

impl HyperExponential {
    /// Balanced-means `H2` with the given `mean > 0` and `scv ≥ 1`.
    pub fn h2_balanced(mean: f64, scv: f64) -> Result<Self, DistError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(DistError::invalid(format!("H2 mean must be finite and > 0, got {mean}")));
        }
        if !(scv.is_finite() && scv >= 1.0) {
            return Err(DistError::invalid(format!(
                "H2 squared coefficient of variation must be >= 1, got {scv}"
            )));
        }
        // Standard balanced-means fit (e.g. Allen, "Probability,
        // Statistics, and Queueing Theory"):
        //   p1 = (1 + sqrt((scv-1)/(scv+1)))/2, mu_i = 2 p_i / mean.
        let p1 = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
        let mu1 = 2.0 * p1 / mean;
        let mu2 = 2.0 * (1.0 - p1) / mean;
        Ok(Self { p1, mu1, mu2 })
    }

    /// Branch probability of the first phase.
    pub fn p1(&self) -> f64 {
        self.p1
    }
}

impl ServiceDistribution for HyperExponential {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        let mu = if rng.next_f64() < self.p1 { self.mu1 } else { self.mu2 };
        -rng.next_open_f64().ln() / mu
    }

    fn mean(&self) -> f64 {
        self.p1 / self.mu1 + (1.0 - self.p1) / self.mu2
    }

    fn moments(&self) -> Moments {
        let p2 = 1.0 - self.p1;
        Moments {
            mean: self.mean(),
            second_moment: 2.0 * (self.p1 / (self.mu1 * self.mu1) + p2 / (self.mu2 * self.mu2)),
            mean_inverse: None,
        }
    }
}

impl HigherMoments for HyperExponential {
    fn third_moment(&self) -> Option<f64> {
        let p2 = 1.0 - self.p1;
        Some(6.0 * (self.p1 / self.mu1.powi(3) + p2 / self.mu2.powi(3)))
    }

    fn mean_inverse_square(&self) -> Option<f64> {
        None
    }
}

/// Uniform service times on `[a, b]` with `0 < a < b`.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformService {
    a: f64,
    b: f64,
}

impl UniformService {
    /// Uniform on `[a, b]`; requires `0 < a < b < ∞` so that `E[1/X]`
    /// stays finite.
    pub fn new(a: f64, b: f64) -> Result<Self, DistError> {
        if !(a.is_finite() && b.is_finite() && 0.0 < a && a < b) {
            return Err(DistError::invalid(format!(
                "uniform service interval needs 0 < a < b < inf, got [{a}, {b}]"
            )));
        }
        Ok(Self { a, b })
    }

    /// Lower endpoint.
    pub fn lower(&self) -> f64 {
        self.a
    }

    /// Upper endpoint.
    pub fn upper(&self) -> f64 {
        self.b
    }
}

impl ServiceDistribution for UniformService {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.a + rng.next_f64() * (self.b - self.a)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.a + self.b)
    }

    fn moments(&self) -> Moments {
        let (a, b) = (self.a, self.b);
        Moments {
            mean: 0.5 * (a + b),
            second_moment: (a * a + a * b + b * b) / 3.0,
            // E[1/X] = ln(b/a) / (b - a).
            mean_inverse: Some((b / a).ln() / (b - a)),
        }
    }
}

impl HigherMoments for UniformService {
    fn third_moment(&self) -> Option<f64> {
        let (a, b) = (self.a, self.b);
        Some((a.powi(3) + a * a * b + a * b * b + b.powi(3)) / 4.0)
    }

    fn mean_inverse_square(&self) -> Option<f64> {
        Some(1.0 / (self.a * self.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_basics() {
        let d = Deterministic::new(2.0).unwrap();
        assert_eq!(d.value(), 2.0);
        let m = d.moments();
        assert_eq!(m.mean, 2.0);
        assert_eq!(m.second_moment, 4.0);
        assert_eq!(m.mean_inverse, Some(0.5));
        assert_eq!(d.third_moment(), Some(8.0));
        assert_eq!(d.mean_inverse_square(), Some(0.25));
        let mut rng = Xoshiro256pp::seed_from(1);
        assert_eq!(d.sample(&mut rng), 2.0);
        assert!(Deterministic::new(0.0).is_err());
        assert!(Deterministic::new(-1.0).is_err());
        assert!(Deterministic::new(f64::NAN).is_err());
    }

    #[test]
    fn exponential_moments_and_divergence() {
        let e = Exponential::new(2.0).unwrap();
        assert_eq!(e.rate(), 2.0);
        let m = e.moments();
        assert_eq!(m.mean, 0.5);
        assert_eq!(m.second_moment, 0.5);
        assert_eq!(m.mean_inverse, None, "E[1/X] diverges (paper section 5)");
        assert_eq!(e.mean_inverse_square(), None);
        assert_eq!(e.third_moment(), Some(6.0 / 8.0));
        assert!(Exponential::new(0.0).is_err());
    }

    #[test]
    fn exponential_sampling_mean() {
        let e = Exponential::new(4.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from(9);
        let n = 200_000;
        let mean = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() / 0.25 < 0.02, "mean {mean}");
    }

    #[test]
    fn h2_hits_requested_mean_and_scv() {
        let mean = 1.3;
        let scv = 4.0;
        let h = HyperExponential::h2_balanced(mean, scv).unwrap();
        let m = h.moments();
        assert!((m.mean - mean).abs() < 1e-12);
        let var = m.second_moment - m.mean * m.mean;
        assert!((var / (m.mean * m.mean) - scv).abs() < 1e-10, "scv {}", var / (m.mean * m.mean));
        assert_eq!(m.mean_inverse, None);
        // Balanced means: both phases contribute mean/2.
        assert!((h.p1() / 2.0 * mean / h.p1() - mean / 2.0).abs() < 1e-12);
    }

    #[test]
    fn h2_scv_one_is_exponential() {
        let h = HyperExponential::h2_balanced(2.0, 1.0).unwrap();
        let e = Exponential::new(0.5).unwrap();
        let (hm, em) = (h.moments(), e.moments());
        assert!((hm.mean - em.mean).abs() < 1e-12);
        assert!((hm.second_moment - em.second_moment).abs() < 1e-9);
        assert!(HyperExponential::h2_balanced(1.0, 0.5).is_err(), "scv < 1 impossible for H2");
    }

    #[test]
    fn h2_sampling_matches_moments() {
        let h = HyperExponential::h2_balanced(1.0, 4.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from(77);
        let n = 300_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = h.sample(&mut rng);
            s1 += x;
            s2 += x * x;
        }
        let nf = n as f64;
        let m = h.moments();
        assert!((s1 / nf - m.mean).abs() / m.mean < 0.02);
        assert!((s2 / nf - m.second_moment).abs() / m.second_moment < 0.06);
    }

    #[test]
    fn uniform_moments() {
        let u = UniformService::new(1.0, 3.0).unwrap();
        assert_eq!(u.lower(), 1.0);
        assert_eq!(u.upper(), 3.0);
        let m = u.moments();
        assert_eq!(m.mean, 2.0);
        assert!((m.second_moment - 13.0 / 3.0).abs() < 1e-12);
        assert!((m.mean_inverse.unwrap() - 3.0f64.ln() / 2.0).abs() < 1e-12);
        assert!((u.third_moment().unwrap() - (1.0 + 3.0 + 9.0 + 27.0) / 4.0).abs() < 1e-12);
        assert!((u.mean_inverse_square().unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!(UniformService::new(0.0, 1.0).is_err(), "a = 0 diverges E[1/X]");
        assert!(UniformService::new(2.0, 1.0).is_err());
    }

    #[test]
    fn uniform_sampling_in_bounds() {
        let u = UniformService::new(0.5, 1.5).unwrap();
        let mut rng = Xoshiro256pp::seed_from(13);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = u.sample(&mut rng);
            assert!((0.5..1.5).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 1.0).abs() < 0.01);
    }
}
