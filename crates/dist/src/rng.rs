//! Zero-dependency deterministic PRNGs.
//!
//! All randomness in the workspace flows from a single experiment seed:
//! [`SplitMix64::derive`] turns `(root seed, stream index)` into
//! independent child seeds (run fan-out, per-class generators), and
//! each consumer owns a [`Xoshiro256pp`] seeded from its child seed.
//! Both generators are tiny, portable and bit-reproducible across
//! platforms and thread schedules, which is what makes multi-threaded
//! [`Experiment`](https://docs.rs/psd) replications bit-identical to
//! sequential ones.

/// SplitMix64 (Steele, Lea & Flood): a 64-bit generator whose single
/// strength here is *seed derivation* — the finalizer has full
/// avalanche, so nearby `(seed, stream)` pairs yield unrelated outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derive the seed of child stream `stream` from a root seed.
    ///
    /// Deterministic, order-free and collision-resistant in practice:
    /// `derive(s, a) == derive(s, b)` only if `a == b` (up to the usual
    /// 64-bit birthday bound), so parallel workers can seed themselves
    /// by index with no shared state.
    pub fn derive(root: u64, stream: u64) -> u64 {
        let mut sm = Self::new(root.wrapping_add(stream.wrapping_mul(GOLDEN_GAMMA)) ^ stream);
        sm.next_u64()
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna): the workspace's workhorse
/// generator — 256-bit state, period `2^256 − 1`, excellent statistical
/// quality, and four shifts/rotates per output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed the full 256-bit state from one 64-bit seed by pumping a
    /// SplitMix64 stream (the initialization the xoshiro authors
    /// recommend; it also guarantees a non-zero state).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in the half-open interval `[0, 1)` (53 random bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.step() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in the *open* interval `(0, 1)` — safe under `ln` and
    /// division; used for exponential and Pareto inversion sampling.
    pub fn next_open_f64(&mut self) -> f64 {
        ((self.step() >> 12) as f64 + 0.5) * (1.0 / (1u64 << 52) as f64)
    }
}

impl rand::RngCore for Xoshiro256pp {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

/// Uniform in the open interval `(0, 1)` from any [`Xoshiro256pp`] —
/// the free-function form used throughout the simulators.
pub fn open01(rng: &mut Xoshiro256pp) -> f64 {
    rng.next_open_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    /// Known-answer vector: SplitMix64(0) seeds (published test values)
    /// and the first five xoshiro256++ outputs from that state, computed
    /// with an independent transcription of the Blackman–Vigna reference
    /// algorithm. This pins the *state-transition* scramble, not just
    /// the first output (which depends only on the initial state).
    #[test]
    fn known_answer_first_outputs() {
        let mut sm = SplitMix64::new(0);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        assert_eq!(s[0], 0xE220_A839_7B1D_CDAF);
        assert_eq!(s[1], 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(s[2], 0x06C4_5D18_8009_454F);
        assert_eq!(s[3], 0xF88B_B8A8_724C_81EC);
        let mut rng = Xoshiro256pp::seed_from(0);
        for want in [
            0x5317_5D61_490B_23DF_u64,
            0x61DA_6F3D_C380_D507,
            0x5C0F_DF91_EC9A_7BFC,
            0x02EE_BF8C_3BBE_5E1A,
            0x7ECA_04EB_AF4A_5EEA,
        ] {
            assert_eq!(rng.next_u64(), want);
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::seed_from(7);
        let mut b = Xoshiro256pp::seed_from(7);
        let mut c = Xoshiro256pp::seed_from(8);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(Xoshiro256pp::seed_from(7).next_u64(), c.next_u64());
    }

    #[test]
    fn derive_separates_streams() {
        let a = SplitMix64::derive(42, 0);
        let b = SplitMix64::derive(42, 1);
        let c = SplitMix64::derive(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, SplitMix64::derive(42, 0));
        // High bits must differ too (avalanche).
        assert_ne!(a >> 32, b >> 32);
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = Xoshiro256pp::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_open_f64();
            assert!(y > 0.0 && y < 1.0);
            assert!(open01(&mut rng) > 0.0);
        }
    }

    #[test]
    fn uniform_mean_sane() {
        let mut rng = Xoshiro256pp::seed_from(11);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "uniform mean {mean}");
    }

    #[test]
    fn fill_bytes_via_rngcore() {
        let mut rng = Xoshiro256pp::seed_from(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let _ = rng.next_u32();
    }
}
