//! Streaming and order statistics used by the metrics pipelines:
//! Welford accumulators and percentile helpers.

/// Numerically stable streaming mean/variance accumulator (Welford's
/// algorithm). `Default` is the empty accumulator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (`0.0` when empty, so snapshots of idle classes
    /// stay finite).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`0.0` with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (`0.0` with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
    }
}

/// Quantile `q ∈ [0, 1]` of an **already sorted** slice, with linear
/// interpolation between adjacent order statistics (the "type 7"
/// estimator R and NumPy default to). Returns `None` on an empty slice.
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Sort `values` in place and return the `(5th, 50th, 95th)`
/// percentiles — the triple behind the paper's Figures 5 and 6.
/// Returns `None` on an empty slice.
pub fn percentile_triple(values: &mut [f64]) -> Option<(f64, f64, f64)> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(f64::total_cmp);
    Some((
        percentile(values, 0.05).expect("non-empty"),
        percentile(values, 0.50).expect("non-empty"),
        percentile(values, 0.95).expect("non-empty"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        assert!((w.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w, Welford::default());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);
        // Merging an empty accumulator changes nothing.
        let before = a.clone();
        a.merge(&Welford::new());
        assert_eq!(a, before);
    }

    #[test]
    fn numerically_stable_around_large_offsets() {
        let mut w = Welford::new();
        for i in 0..1000 {
            w.push(1e9 + (i % 2) as f64);
        }
        assert!((w.variance() - 0.25).abs() < 1e-6, "variance {}", w.variance());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 1.0), Some(40.0));
        assert_eq!(percentile(&xs, 0.5), Some(25.0));
        assert!((percentile(&xs, 1.0 / 3.0).unwrap() - 20.0).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.95), Some(7.0));
        // Out-of-range q clamps.
        assert_eq!(percentile(&xs, 2.0), Some(40.0));
    }

    #[test]
    fn triple_sorts_and_orders() {
        let mut xs = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let (p5, p50, p95) = percentile_triple(&mut xs).unwrap();
        assert!(p5 <= p50 && p50 <= p95);
        assert_eq!(p50, 3.0);
        assert!(xs.windows(2).all(|w| w[0] <= w[1]), "sorted in place");
        assert_eq!(percentile_triple(&mut []), None);
    }
}
