//! The Bounded Pareto family — the paper's workload model — plus the
//! unbounded Pareto kept as the cautionary counter-example (its second
//! moment diverges for `α ≤ 2`, so P–K delay has no closed form).

use crate::rng::Xoshiro256pp;
use crate::{DistError, HigherMoments, Moments, ServiceDistribution};

/// Bounded Pareto `BP(α, k, p)`: density `∝ x^{−α−1}` on `[k, p]`.
///
/// The heavy-tailed-but-truncated distribution the paper uses for Web
/// request sizes (§4.1: `BP(1.5, 0.1, 100)`). Every moment is finite —
/// including the negative ones, so `E[1/X]` exists and the slowdown
/// closed forms of Lemma 1 / Theorem 1 apply.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    k: f64,
    p: f64,
    /// Cached `1 − (k/p)^α`, the truncation normalizer.
    norm: f64,
}

impl BoundedPareto {
    /// New `BP(alpha, k, p)` with shape `alpha > 0` and support
    /// `0 < k < p < ∞`.
    pub fn new(alpha: f64, k: f64, p: f64) -> Result<Self, DistError> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(DistError::invalid(format!(
                "Bounded Pareto shape must be finite and > 0, got {alpha}"
            )));
        }
        if !(k.is_finite() && p.is_finite() && 0.0 < k && k < p) {
            return Err(DistError::invalid(format!(
                "Bounded Pareto support needs 0 < k < p < inf, got k={k}, p={p}"
            )));
        }
        let norm = 1.0 - (k / p).powf(alpha);
        Ok(Self { alpha, k, p, norm })
    }

    /// The paper's default workload: `BP(1.5, 0.1, 100)`.
    pub fn paper_default() -> Self {
        Self::new(1.5, 0.1, 100.0).expect("paper parameters are valid")
    }

    /// Shape parameter `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Lower bound `k`.
    pub fn lower(&self) -> f64 {
        self.k
    }

    /// Upper bound `p`.
    pub fn upper(&self) -> f64 {
        self.p
    }

    /// Exact `E[X^j]` for any real order `j` (positive or negative),
    /// from `E[X^j] = C·∫_k^p x^{j−α−1} dx` with
    /// `C = α k^α / (1 − (k/p)^α)`:
    ///
    /// ```text
    /// E[X^j] = α k^α (p^{j−α} − k^{j−α}) / ((j−α)(1 − (k/p)^α)),  j ≠ α
    /// E[X^α] = α k^α ln(p/k) / (1 − (k/p)^α)
    /// ```
    pub fn raw_moment(&self, j: f64) -> f64 {
        let (alpha, k, p) = (self.alpha, self.k, self.p);
        let c = alpha * k.powf(alpha) / self.norm;
        if j == alpha {
            c * (p / k).ln()
        } else {
            c * (p.powf(j - alpha) - k.powf(j - alpha)) / (j - alpha)
        }
    }
}

impl ServiceDistribution for BoundedPareto {
    /// Inverse-CDF sampling: `F(x) = (1 − (k/x)^α)/(1 − (k/p)^α)`, so
    /// `x = k·(1 − u·(1 − (k/p)^α))^{−1/α}`.
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        let u = rng.next_f64();
        let x = self.k * (1.0 - u * self.norm).powf(-1.0 / self.alpha);
        // Guard the exact upper edge against round-off overshoot.
        x.min(self.p)
    }

    fn mean(&self) -> f64 {
        self.raw_moment(1.0)
    }

    fn moments(&self) -> Moments {
        Moments {
            mean: self.raw_moment(1.0),
            second_moment: self.raw_moment(2.0),
            mean_inverse: Some(self.raw_moment(-1.0)),
        }
    }
}

impl HigherMoments for BoundedPareto {
    fn third_moment(&self) -> Option<f64> {
        Some(self.raw_moment(3.0))
    }

    fn mean_inverse_square(&self) -> Option<f64> {
        Some(self.raw_moment(-2.0))
    }
}

/// Unbounded Pareto `Par(α, k)`: density `∝ x^{−α−1}` on `[k, ∞)`.
///
/// Kept as the analytical foil: for `α ≤ 2` its second moment is
/// infinite and the queueing layer must surface `InfiniteMoment`
/// instead of silently returning garbage.
#[derive(Debug, Clone, PartialEq)]
pub struct Pareto {
    alpha: f64,
    k: f64,
}

impl Pareto {
    /// New `Par(alpha, k)` with `alpha > 0` and `k > 0`.
    pub fn new(alpha: f64, k: f64) -> Result<Self, DistError> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(DistError::invalid(format!(
                "Pareto shape must be finite and > 0, got {alpha}"
            )));
        }
        if !(k.is_finite() && k > 0.0) {
            return Err(DistError::invalid(format!(
                "Pareto scale must be finite and > 0, got {k}"
            )));
        }
        Ok(Self { alpha, k })
    }

    /// `E[X^j]`, which is `+∞` when `j ≥ α` (and finite otherwise).
    fn raw_moment(&self, j: f64) -> f64 {
        if j >= self.alpha {
            f64::INFINITY
        } else {
            self.alpha * self.k.powf(j) / (self.alpha - j)
        }
    }
}

impl ServiceDistribution for Pareto {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.k * rng.next_open_f64().powf(-1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        self.raw_moment(1.0)
    }

    fn moments(&self) -> Moments {
        Moments {
            mean: self.raw_moment(1.0),
            second_moment: self.raw_moment(2.0),
            mean_inverse: Some(self.raw_moment(-1.0)),
        }
    }
}

impl HigherMoments for Pareto {
    fn third_moment(&self) -> Option<f64> {
        (self.alpha > 3.0).then(|| self.raw_moment(3.0))
    }

    fn mean_inverse_square(&self) -> Option<f64> {
        Some(self.raw_moment(-2.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_hand_formulas() {
        // Independent re-derivation of the closed forms for
        // BP(1.5, 0.1, 100): E[X^j] = C (p^{j-a} - k^{j-a})/(j-a),
        // C = a k^a / (1 - (k/p)^a).
        let (a, k, p) = (1.5f64, 0.1f64, 100.0f64);
        let c = a * k.powf(a) / (1.0 - (k / p).powf(a));
        let ex = c * (p.powf(1.0 - a) - k.powf(1.0 - a)) / (1.0 - a);
        let ex2 = c * (p.powf(2.0 - a) - k.powf(2.0 - a)) / (2.0 - a);
        let einv = c * (p.powf(-1.0 - a) - k.powf(-1.0 - a)) / (-1.0 - a);

        let bp = BoundedPareto::paper_default();
        let m = bp.moments();
        assert!((m.mean - ex).abs() / ex < 1e-12);
        assert!((m.second_moment - ex2).abs() / ex2 < 1e-12);
        assert!((m.mean_inverse.unwrap() - einv).abs() / einv < 1e-12);
        // Ballpark anchors (DESIGN/README quote E[X] ~ 0.29).
        assert!((m.mean - 0.2905).abs() < 1e-3, "E[X] = {}", m.mean);
        assert!((m.second_moment - 0.9187).abs() < 1e-3, "E[X^2] = {}", m.second_moment);
        // E[X^2] >> E[X]^2: SCV ~ 9.9, the paper's heavy-tail regime.
        let scv = m.second_moment / (m.mean * m.mean) - 1.0;
        assert!(scv > 9.0, "SCV = {scv}");
    }

    #[test]
    fn alpha_equal_moment_order_uses_log_branch() {
        // alpha == 2 makes E[X^2] hit the logarithmic case.
        let bp = BoundedPareto::new(2.0, 0.5, 50.0).unwrap();
        let (a, k, p) = (2.0f64, 0.5f64, 50.0f64);
        let c = a * k.powf(a) / (1.0 - (k / p).powf(a));
        let want = c * (p / k).ln();
        assert!((bp.raw_moment(2.0) - want).abs() / want < 1e-12);
        assert!(bp.raw_moment(2.0).is_finite());
    }

    #[test]
    fn monte_carlo_agrees_with_closed_forms() {
        let bp = BoundedPareto::paper_default();
        let m = bp.moments();
        let mut rng = Xoshiro256pp::seed_from(2024);
        let n = 400_000;
        let (mut s1, mut sinv) = (0.0, 0.0);
        for _ in 0..n {
            let x = bp.sample(&mut rng);
            assert!((0.1..=100.0).contains(&x), "sample {x} escaped the support");
            s1 += x;
            sinv += 1.0 / x;
        }
        let nf = n as f64;
        // E[X] has modest variance; E[1/X] is bounded by 1/k = 10.
        assert!((s1 / nf - m.mean).abs() / m.mean < 0.02);
        assert!((sinv / nf - m.mean_inverse.unwrap()).abs() / m.mean_inverse.unwrap() < 0.01);
    }

    #[test]
    fn bounded_pareto_validation() {
        assert!(BoundedPareto::new(0.0, 0.1, 100.0).is_err());
        assert!(BoundedPareto::new(1.5, 0.0, 100.0).is_err());
        assert!(BoundedPareto::new(1.5, 1.0, 1.0).is_err());
        assert!(BoundedPareto::new(1.5, 2.0, 1.0).is_err());
        assert!(BoundedPareto::new(f64::NAN, 0.1, 1.0).is_err());
        assert!(BoundedPareto::new(1.5, 0.1, f64::INFINITY).is_err());
    }

    #[test]
    fn accessors() {
        let bp = BoundedPareto::paper_default();
        assert_eq!(bp.alpha(), 1.5);
        assert_eq!(bp.lower(), 0.1);
        assert_eq!(bp.upper(), 100.0);
    }

    #[test]
    fn unbounded_pareto_divergent_moments() {
        let p = Pareto::new(1.5, 0.1).unwrap();
        let m = p.moments();
        assert!(m.mean.is_finite());
        assert!(m.second_moment.is_infinite());
        assert!(m.mean_inverse.unwrap().is_finite());
        assert_eq!(p.third_moment(), None);
        // E[1/X] = a / ((a+1) k).
        assert!((m.mean_inverse.unwrap() - 1.5 / (2.5 * 0.1)).abs() < 1e-12);
        // Mean: a k / (a - 1) = 1.5*0.1/0.5 = 0.3.
        assert!((m.mean - 0.3).abs() < 1e-12);
    }

    #[test]
    fn unbounded_pareto_sampling_above_scale() {
        let p = Pareto::new(2.5, 1.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from(5);
        let n = 50_000;
        let mean = (0..n).map(|_| p.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - p.mean()).abs() / p.mean() < 0.05, "mean {mean} vs {}", p.mean());
    }

    #[test]
    fn truncation_tightens_the_tail() {
        // Larger p => larger E[X^2]; the fig12 monotonicity at dist level.
        let small = BoundedPareto::new(1.5, 0.1, 100.0).unwrap().moments();
        let big = BoundedPareto::new(1.5, 0.1, 10_000.0).unwrap().moments();
        assert!(big.second_moment > small.second_moment * 5.0);
    }
}
