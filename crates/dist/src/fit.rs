//! Workload characterization: maximum-likelihood fitting of the
//! Bounded Pareto shape parameter from an observed trace.
//!
//! The paper assumes the server *knows* its service distribution; a
//! real deployment has to estimate it. Given the support `[k, p]`
//! (usually known from minimum/maximum observable request sizes), the
//! log-likelihood of `BP(α, k, p)` over a trace `x₁..x_n` is
//!
//! ```text
//! ℓ(α) = n ln α + n α ln k − (α+1) Σ ln xᵢ − n ln(1 − (k/p)^α)
//! ```
//!
//! and `ℓ'(α) = 0` reduces to a strictly decreasing scalar equation,
//! solved here by bisection (robust; no derivatives of the truncation
//! term needed).

use crate::pareto::BoundedPareto;
use crate::DistError;

/// Fit `α` of `BP(α, k, p)` by MLE, with the support `[k, p]` given.
///
/// Errors on an empty trace, on observations outside `(0, ∞)`, or when
/// the likelihood equation has no root in the search bracket
/// `α ∈ [1e-3, 64]` (degenerate traces, e.g. all observations equal to
/// `k`).
pub fn fit_bounded_pareto_alpha(trace: &[f64], k: f64, p: f64) -> Result<BoundedPareto, DistError> {
    if trace.is_empty() {
        return Err(DistError::invalid("cannot fit an empty trace".to_string()));
    }
    if !(k.is_finite() && p.is_finite() && 0.0 < k && k < p) {
        return Err(DistError::invalid(format!(
            "fit support needs 0 < k < p < inf, got k={k}, p={p}"
        )));
    }
    let n = trace.len() as f64;
    let mut sum_ln = 0.0;
    for (i, &x) in trace.iter().enumerate() {
        if !(x.is_finite() && x > 0.0) {
            return Err(DistError::invalid(format!(
                "trace entry {i} must be finite and > 0, got {x}"
            )));
        }
        sum_ln += x.ln();
    }

    // Score function ℓ'(α)/1: n/α + n ln k − Σ ln xᵢ + n L r^α/(1 − r^α)
    // with r = k/p, L = ln r < 0. Strictly decreasing in α; +∞ at 0⁺ and
    // → n ln k − Σ ln xᵢ < 0 as α → ∞ whenever the trace is not glued
    // to k.
    let r = k / p;
    let ell = r.ln();
    let score = |alpha: f64| -> f64 {
        let ra = r.powf(alpha);
        n / alpha + n * k.ln() - sum_ln + n * ell * ra / (1.0 - ra)
    };

    let (mut lo, mut hi) = (1e-3, 64.0);
    if score(lo) <= 0.0 || score(hi) >= 0.0 {
        return Err(DistError::invalid(
            "likelihood equation has no root in [1e-3, 64]; trace incompatible with the support"
                .to_string(),
        ));
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if score(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    BoundedPareto::new(0.5 * (lo + hi), k, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;
    use crate::ServiceDistribution;

    #[test]
    fn recovers_known_alpha() {
        let truth = BoundedPareto::new(1.5, 0.1, 100.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from(99);
        let trace: Vec<f64> = (0..80_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = fit_bounded_pareto_alpha(&trace, 0.1, 100.0).unwrap();
        assert!(
            (fitted.alpha() - 1.5).abs() < 0.03,
            "fitted alpha {} should be near 1.5",
            fitted.alpha()
        );
    }

    #[test]
    fn recovers_other_shapes() {
        for &alpha in &[0.9, 1.2, 2.2] {
            let truth = BoundedPareto::new(alpha, 0.05, 500.0).unwrap();
            let mut rng = Xoshiro256pp::seed_from(1000 + (alpha * 10.0) as u64);
            let trace: Vec<f64> = (0..60_000).map(|_| truth.sample(&mut rng)).collect();
            let fitted = fit_bounded_pareto_alpha(&trace, 0.05, 500.0).unwrap();
            assert!(
                (fitted.alpha() - alpha).abs() / alpha < 0.05,
                "alpha {alpha}: fitted {}",
                fitted.alpha()
            );
        }
    }

    #[test]
    fn fitted_moments_close_to_truth() {
        let truth = BoundedPareto::paper_default();
        let mut rng = Xoshiro256pp::seed_from(55);
        let trace: Vec<f64> = (0..60_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = fit_bounded_pareto_alpha(&trace, 0.1, 100.0).unwrap();
        let (mt, mf) = (truth.moments(), fitted.moments());
        assert!((mt.mean - mf.mean).abs() / mt.mean < 0.05);
        assert!(
            (mt.mean_inverse.unwrap() - mf.mean_inverse.unwrap()).abs() / mt.mean_inverse.unwrap()
                < 0.05
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(fit_bounded_pareto_alpha(&[], 0.1, 100.0).is_err());
        assert!(fit_bounded_pareto_alpha(&[1.0], 1.0, 0.5).is_err());
        assert!(fit_bounded_pareto_alpha(&[0.0], 0.1, 100.0).is_err());
        // All mass at k: score stays positive, no interior root.
        assert!(fit_bounded_pareto_alpha(&[0.1; 100], 0.1, 100.0).is_err());
    }
}
