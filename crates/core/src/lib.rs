//! # psd-core — proportional slowdown differentiation (PSD)
//!
//! The primary contribution of Zhou/Wei/Xu (IPDPS 2004), *"Processing
//! Rate Allocation for Proportional Slowdown Differentiation on
//! Internet Servers"*, implemented as a library:
//!
//! * [`allocation`] — the processing-rate allocation strategy (paper
//!   Eq. 17): each class receives its raw processing requirement
//!   `ρ_i = λ_i·E[X]` plus a share of the residual capacity
//!   proportional to `λ_i/δ_i`.
//! * [`model`] — the PSD model itself (paper Eqs. 16/18): the expected
//!   per-class slowdown under the allocation, its predictability /
//!   controllability properties, and feasibility checks.
//! * [`estimator`] — the windowed load estimator (paper §4.1: the load
//!   for the next window is the average over the past five windows).
//! * [`control`] — the unified control plane: the shared
//!   [`control::RateController`] contract (re-exported from
//!   `psd-control`), the open-loop [`PsdController`], the
//!   slowdown-feedback extension, admission shedding and the
//!   hot-reconfigurable [`control::SharedControl`] runtime surface —
//!   the same objects drive the desim engine and the live
//!   `psd-server` monitor.
//! * [`baselines`] — comparison allocators: static-equal,
//!   load-proportional, a backlog-proportional PDD-style allocator, and
//!   strict priority. None of them achieves PSD; the benches show it.
//! * [`config`] / [`simulation`] / [`experiment`] — the façade used by
//!   examples, tests and the figure harness: declare classes (δ, load),
//!   run `n` replications (optionally across threads, deterministically
//!   seeded), and collect slowdowns / ratios / percentiles.
//!
//! ## Quickstart
//!
//! ```
//! use psd_core::config::PsdConfig;
//! use psd_core::experiment::Experiment;
//!
//! // Two classes, δ = (1, 2), equal shares of a 60%-loaded server.
//! let cfg = PsdConfig::equal_load(&[1.0, 2.0], 0.6)
//!     .with_horizon(6_000.0, 1_000.0); // short run for the doctest
//! let report = Experiment::new(cfg).runs(2).base_seed(7).run();
//! let s = report.mean_slowdowns();
//! // Class 1 experiences roughly twice class 0's slowdown.
//! assert!(s[1] > s[0]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod allocation;
pub mod baselines;
pub mod config;
pub mod control;
pub mod estimator;
pub mod experiment;
pub mod model;
pub mod report;
pub mod simulation;

// Compatibility aliases for the pre-`control` module layout: the
// controller stack now lives under [`control`], but the old paths
// (`psd_core::controller`, `psd_core::feedback`, `psd_core::admission`)
// keep resolving.
pub use control::admission;
pub use control::feedback;
pub use control::open as controller;

pub use allocation::{psd_rates, psd_rates_heterogeneous, AllocationError};
pub use config::{ClassConfig, PsdConfig};
pub use control::{FeedbackPsdController, PsdController};
pub use estimator::LoadEstimator;
pub use model::PsdModel;
pub use report::{ClassReport, PsdReport};
