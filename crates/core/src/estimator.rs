//! The windowed load estimator (paper §4.1).
//!
//! "The load estimator measured the arrival rate and the incurred load
//! for every class. … the load for the next thousand time units was the
//! average load in the past five thousand time units." — i.e. the
//! estimate is a moving average over the last `history` windows of the
//! per-window measured arrival rates.

/// Moving-average estimator of per-class arrival rates.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadEstimator {
    n_classes: usize,
    history: usize,
    /// Ring buffer of the last `history` per-class rate observations.
    window_rates: std::collections::VecDeque<Vec<f64>>,
}

impl LoadEstimator {
    /// `history` = number of windows averaged (paper: 5).
    pub fn new(n_classes: usize, history: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        assert!(history > 0, "history must be at least one window");
        Self { n_classes, history, window_rates: std::collections::VecDeque::new() }
    }

    /// Number of windows currently held.
    pub fn windows_seen(&self) -> usize {
        self.window_rates.len()
    }

    /// Record the rates observed in the window that just closed.
    pub fn observe(&mut self, rates: &[f64]) {
        assert_eq!(rates.len(), self.n_classes, "class count mismatch");
        if self.window_rates.len() == self.history {
            self.window_rates.pop_front();
        }
        self.window_rates.push_back(rates.to_vec());
    }

    /// Current estimate: the average over held windows, or `None` before
    /// any window has been observed.
    pub fn estimate(&self) -> Option<Vec<f64>> {
        if self.window_rates.is_empty() {
            return None;
        }
        let mut acc = vec![0.0; self.n_classes];
        for w in &self.window_rates {
            for (a, &r) in acc.iter_mut().zip(w) {
                *a += r;
            }
        }
        let k = self.window_rates.len() as f64;
        for a in &mut acc {
            *a /= k;
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimator_has_no_estimate() {
        let e = LoadEstimator::new(2, 5);
        assert!(e.estimate().is_none());
        assert_eq!(e.windows_seen(), 0);
    }

    #[test]
    fn single_window_passthrough() {
        let mut e = LoadEstimator::new(2, 5);
        e.observe(&[1.0, 2.0]);
        assert_eq!(e.estimate(), Some(vec![1.0, 2.0]));
    }

    #[test]
    fn averages_over_history() {
        let mut e = LoadEstimator::new(1, 5);
        for r in [1.0, 2.0, 3.0, 4.0, 5.0] {
            e.observe(&[r]);
        }
        assert_eq!(e.estimate(), Some(vec![3.0]));
        assert_eq!(e.windows_seen(), 5);
    }

    #[test]
    fn old_windows_evicted() {
        let mut e = LoadEstimator::new(1, 3);
        for r in [10.0, 1.0, 1.0, 1.0] {
            e.observe(&[r]);
        }
        // The 10.0 fell out of the 3-window history.
        assert_eq!(e.estimate(), Some(vec![1.0]));
    }

    #[test]
    fn smooths_a_spike() {
        let mut e = LoadEstimator::new(1, 5);
        for _ in 0..4 {
            e.observe(&[1.0]);
        }
        e.observe(&[6.0]); // transient burst
        let est = e.estimate().unwrap()[0];
        assert!((est - 2.0).abs() < 1e-12, "burst averaged down to {est}");
    }

    #[test]
    #[should_panic(expected = "class count mismatch")]
    fn class_count_checked() {
        LoadEstimator::new(2, 5).observe(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "history")]
    fn zero_history_rejected() {
        LoadEstimator::new(1, 0);
    }
}
