//! Multi-run experiment driver: replications, deterministic seed
//! fan-out across threads, and the aggregate statistics the paper's
//! figures are built from.
//!
//! The paper reports every point as "an average of 100 runs"; the
//! driver reproduces that (with a configurable run count) and also
//! pools per-window slowdown ratios across runs for the percentile
//! plots (Figs 5/6).

use std::thread;

use psd_dist::rng::SplitMix64;
use psd_dist::stats::percentile;

use crate::config::PsdConfig;
use crate::report::PsdReport;
use crate::simulation::run_once;

/// A replicated experiment over one [`PsdConfig`].
#[derive(Debug, Clone)]
pub struct Experiment {
    config: PsdConfig,
    runs: u64,
    base_seed: u64,
    threads: usize,
}

impl Experiment {
    /// New experiment with defaults: 10 runs, seed 0, hardware threads.
    pub fn new(config: PsdConfig) -> Self {
        let threads = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { config, runs: 10, base_seed: 0, threads }
    }

    /// Number of replications (the paper uses 100).
    pub fn runs(mut self, runs: u64) -> Self {
        assert!(runs > 0, "at least one run");
        self.runs = runs;
        self
    }

    /// Root seed; run `k` uses `SplitMix64::derive(base_seed, k)`, so
    /// results are identical regardless of thread count.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Cap the worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0);
        self.threads = threads;
        self
    }

    /// Execute all runs and aggregate.
    pub fn run(self) -> ExperimentReport {
        let n_threads = self.threads.min(self.runs as usize).max(1);
        let cfg = &self.config;
        let base = self.base_seed;
        let runs = self.runs;

        let mut reports: Vec<Option<PsdReport>> = (0..runs).map(|_| None).collect();
        if n_threads == 1 {
            for (k, slot) in reports.iter_mut().enumerate() {
                *slot = Some(run_once(cfg, SplitMix64::derive(base, k as u64)));
            }
        } else {
            // Split the report slots into contiguous chunks, one batch of
            // run indices per worker; seeds depend only on the run index.
            let chunk = reports.len().div_ceil(n_threads);
            let mut slices: Vec<(usize, &mut [Option<PsdReport>])> = Vec::new();
            let mut rest = reports.as_mut_slice();
            let mut offset = 0;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                slices.push((offset, head));
                offset += take;
                rest = tail;
            }
            thread::scope(|scope| {
                for (offset, slice) in slices {
                    scope.spawn(move || {
                        for (i, slot) in slice.iter_mut().enumerate() {
                            let k = (offset + i) as u64;
                            *slot = Some(run_once(cfg, SplitMix64::derive(base, k)));
                        }
                    });
                }
            });
        }

        let runs: Vec<PsdReport> =
            reports.into_iter().map(|r| r.expect("all runs filled")).collect();
        ExperimentReport { config: self.config, runs }
    }
}

/// Aggregated results of the replications.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// The configuration that produced this report.
    pub config: PsdConfig,
    /// One report per run, in run-index order.
    pub runs: Vec<PsdReport>,
}

impl ExperimentReport {
    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.config.classes.len()
    }

    /// Per-class mean slowdown, averaged over runs (runs where a class
    /// had no measured departures are skipped for that class).
    pub fn mean_slowdowns(&self) -> Vec<f64> {
        (0..self.num_classes())
            .map(|i| {
                let vals: Vec<f64> =
                    self.runs.iter().filter_map(|r| r.classes[i].mean_slowdown).collect();
                vals.iter().sum::<f64>() / vals.len().max(1) as f64
            })
            .collect()
    }

    /// Eq. 18 predictions for the nominal loads (None if the model is
    /// inapplicable).
    pub fn expected_slowdowns(&self) -> Option<Vec<f64>> {
        self.config.expected_slowdowns().ok()
    }

    /// System slowdown averaged over runs.
    pub fn system_slowdown(&self) -> f64 {
        let vals: Vec<f64> = self.runs.iter().filter_map(|r| r.system_slowdown).collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }

    /// Mean achieved slowdown ratio of class `i` vs class 0, averaged
    /// over runs (paper Figs 9/10).
    pub fn mean_ratio_vs_class0(&self, i: usize) -> f64 {
        let vals: Vec<f64> = self.runs.iter().filter_map(|r| r.mean_ratio_vs_class0(i)).collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }

    /// Percentiles `(p5, p50, p95)` of the per-window slowdown ratio of
    /// class `i` vs class 0, pooled across runs (paper Figs 5/6).
    pub fn ratio_percentiles_vs_class0(&self, i: usize) -> Option<(f64, f64, f64)> {
        let mut pooled: Vec<f64> =
            self.runs.iter().flat_map(|r| r.window_ratios_vs_class0[i].iter().copied()).collect();
        if pooled.is_empty() {
            return None;
        }
        pooled.sort_by(|a, b| a.partial_cmp(b).expect("no NaN ratios"));
        Some((
            percentile(&pooled, 0.05).expect("non-empty"),
            percentile(&pooled, 0.50).expect("non-empty"),
            percentile(&pooled, 0.95).expect("non-empty"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PsdConfig {
        PsdConfig::equal_load(&[1.0, 2.0], 0.5).with_horizon(6_000.0, 1_000.0)
    }

    #[test]
    fn thread_fanout_matches_sequential() {
        let a = Experiment::new(cfg()).runs(4).base_seed(11).threads(1).run();
        let b = Experiment::new(cfg()).runs(4).base_seed(11).threads(4).run();
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_eq!(ra, rb, "parallel fan-out must not change results");
        }
    }

    #[test]
    fn aggregates_have_sane_shapes() {
        let rep = Experiment::new(cfg()).runs(3).base_seed(5).run();
        assert_eq!(rep.runs.len(), 3);
        let s = rep.mean_slowdowns();
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|x| x.is_finite() && *x >= 0.0));
        assert!(rep.system_slowdown() > 0.0);
        assert!(rep.expected_slowdowns().is_some());
        let (p5, p50, p95) = rep.ratio_percentiles_vs_class0(1).unwrap();
        assert!(p5 <= p50 && p50 <= p95);
    }

    #[test]
    fn ratio_tracks_delta_with_enough_runs() {
        // Per-run ratios of heavy-tailed means are noisy on short runs,
        // so compare run-averaged class means (the Fig. 2 view) rather
        // than the mean of per-run ratios.
        let rep = Experiment::new(cfg()).runs(12).base_seed(1).run();
        let s = rep.mean_slowdowns();
        let ratio = s[1] / s[0];
        assert!(
            (1.2..4.0).contains(&ratio),
            "δ2/δ1 = 2 should push the averaged ratio toward 2, got {ratio}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        Experiment::new(cfg()).runs(0);
    }
}
