//! Single-run façade: configure, simulate, report.

use psd_desim::{RateController, SimOutput, Simulation};

use crate::config::PsdConfig;
use crate::report::{ClassReport, PsdReport};

/// Run one simulation of `cfg` with the PSD controller and seed `seed`.
pub fn run_once(cfg: &PsdConfig, seed: u64) -> PsdReport {
    let controller = Box::new(cfg.controller());
    run_with_controller(cfg, seed, controller)
}

/// Run one simulation of `cfg` under an arbitrary controller (used by
/// the baseline comparisons and ablations).
pub fn run_with_controller(
    cfg: &PsdConfig,
    seed: u64,
    controller: Box<dyn RateController>,
) -> PsdReport {
    let out = Simulation::new(cfg.sim_config(seed), controller).run();
    summarize(cfg, seed, out)
}

fn summarize(cfg: &PsdConfig, seed: u64, out: SimOutput) -> PsdReport {
    let expected = cfg.expected_slowdowns().ok();
    let n = cfg.classes.len();
    let classes = (0..n)
        .map(|i| ClassReport {
            delta: cfg.classes[i].delta,
            load: cfg.classes[i].load,
            mean_slowdown: out.mean_slowdown(i),
            expected_slowdown: expected.as_ref().map(|e| e[i]),
            mean_delay: out.per_class[i].mean_delay(),
            completed: out.per_class[i].completed,
        })
        .collect();
    let window_ratios_vs_class0 =
        (0..n).map(|i| if i == 0 { Vec::new() } else { out.window_ratios(i, 0) }).collect();
    PsdReport {
        seed,
        classes,
        system_slowdown: out.system_slowdown(),
        window_ratios_vs_class0,
        trace: out.trace.iter().map(|t| (t.class, t.departure, t.slowdown)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::EqualShare;
    use crate::config::PsdConfig;

    fn short_cfg() -> PsdConfig {
        PsdConfig::equal_load(&[1.0, 2.0], 0.6).with_horizon(8_000.0, 1_000.0)
    }

    #[test]
    fn psd_run_produces_full_report() {
        let r = run_once(&short_cfg(), 42);
        assert_eq!(r.classes.len(), 2);
        assert!(r.classes.iter().all(|c| c.completed > 100));
        assert!(r.classes.iter().all(|c| c.mean_slowdown.is_some()));
        assert!(r.classes.iter().all(|c| c.expected_slowdown.is_some()));
        assert!(r.system_slowdown.is_some());
        assert!(!r.window_ratios_vs_class0[1].is_empty());
        assert!(r.window_ratios_vs_class0[0].is_empty());
    }

    #[test]
    fn psd_differentiates_in_the_right_direction() {
        // One short run is noisy; average a few seeds.
        let cfg = short_cfg();
        let (mut s0, mut s1) = (0.0, 0.0);
        let runs = 8;
        for seed in 0..runs {
            let r = run_once(&cfg, seed);
            s0 += r.classes[0].mean_slowdown.unwrap();
            s1 += r.classes[1].mean_slowdown.unwrap();
        }
        assert!(s1 > 1.3 * s0, "class 1 (δ=2) should see distinctly higher slowdown: {s0} vs {s1}");
    }

    #[test]
    fn equal_share_does_not_differentiate() {
        let cfg = short_cfg();
        let (mut s0, mut s1) = (0.0, 0.0);
        // Heavy-tailed per-run means are noisy on the short horizon, so
        // average enough seeds for the ratio to concentrate.
        for seed in 0..24 {
            let r = run_with_controller(&cfg, seed, Box::new(EqualShare));
            s0 += r.classes[0].mean_slowdown.unwrap();
            s1 += r.classes[1].mean_slowdown.unwrap();
        }
        let ratio = s1 / s0;
        assert!(
            (0.6..1.6).contains(&ratio),
            "equal classes under equal shares should be similar, ratio {ratio}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = short_cfg();
        let a = run_once(&cfg, 7);
        let b = run_once(&cfg, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn trace_collection_plumbs_through() {
        let cfg = PsdConfig::equal_load(&[1.0, 2.0], 0.5)
            .with_horizon(4_000.0, 500.0)
            .with_trace(3_000.0, 4_000.0);
        let r = run_once(&cfg, 3);
        assert!(!r.trace.is_empty());
        let ex = psd_dist::ServiceDistribution::mean(&cfg.service);
        for &(class, t, s) in &r.trace {
            assert!(class < 2);
            assert!(t >= 3_000.0 * ex && t < 4_000.0 * ex);
            assert!(s >= 0.0);
        }
    }
}
