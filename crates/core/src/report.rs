//! Serializable result types for single runs and experiments — the
//! machine-readable artifacts behind `EXPERIMENTS.md`.

use serde::Serialize;

/// Per-class outcome of a single simulation run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClassReport {
    /// Differentiation parameter δ.
    pub delta: f64,
    /// Nominal offered load of the class.
    pub load: f64,
    /// Measured mean slowdown (None if no departures were measured).
    pub mean_slowdown: Option<f64>,
    /// Model prediction (paper Eq. 18) for the nominal load.
    pub expected_slowdown: Option<f64>,
    /// Measured mean queueing delay.
    pub mean_delay: Option<f64>,
    /// Departures counted in the measurement period.
    pub completed: u64,
}

/// Outcome of a single simulation run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PsdReport {
    /// Seed used for this run.
    pub seed: u64,
    /// Per-class results.
    pub classes: Vec<ClassReport>,
    /// Departure-weighted system slowdown.
    pub system_slowdown: Option<f64>,
    /// Per-window slowdown ratios of each class vs class 0
    /// (`window_ratios[i]` is empty for `i = 0`).
    pub window_ratios_vs_class0: Vec<Vec<f64>>,
    /// Trace records, when the run was configured to collect them:
    /// `(class, departure_time, slowdown)` triples.
    pub trace: Vec<(usize, f64, f64)>,
}

impl PsdReport {
    /// Measured mean-slowdown ratio of class `i` to class 0.
    pub fn mean_ratio_vs_class0(&self, i: usize) -> Option<f64> {
        let s0 = self.classes[0].mean_slowdown?;
        let si = self.classes[i].mean_slowdown?;
        (s0 > 0.0).then(|| si / s0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PsdReport {
        PsdReport {
            seed: 1,
            classes: vec![
                ClassReport {
                    delta: 1.0,
                    load: 0.3,
                    mean_slowdown: Some(2.0),
                    expected_slowdown: Some(2.1),
                    mean_delay: Some(0.5),
                    completed: 100,
                },
                ClassReport {
                    delta: 2.0,
                    load: 0.3,
                    mean_slowdown: Some(4.0),
                    expected_slowdown: Some(4.2),
                    mean_delay: Some(1.0),
                    completed: 90,
                },
            ],
            system_slowdown: Some(2.9),
            window_ratios_vs_class0: vec![vec![], vec![2.0, 1.9]],
            trace: vec![],
        }
    }

    #[test]
    fn ratio_helper() {
        assert_eq!(report().mean_ratio_vs_class0(1), Some(2.0));
        assert_eq!(report().mean_ratio_vs_class0(0), Some(1.0));
    }

    #[test]
    fn serializes_to_json() {
        let json = serde_json::to_string(&report()).unwrap();
        assert!(json.contains("\"delta\":1.0"));
        assert!(json.contains("window_ratios_vs_class0"));
    }
}
