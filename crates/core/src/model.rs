//! The PSD model (paper Eqs. 16 & 18) and its predictability /
//! controllability properties.
//!
//! Under the Eq. 17 allocation the expected slowdown of class `i` is
//!
//! ```text
//! E[S_i] = δ_i · Λ · E[X²]·E[1/X] / (2(1 − ρ)),    Λ = Σ_j λ_j/δ_j
//! ```
//!
//! so the ratio between any two classes is exactly `δ_i/δ_j` (Eq. 16),
//! independent of the class loads. The paper derives three properties
//! from this form (§3); each is verified by a test below:
//!
//! 1. a class's slowdown increases with its own arrival rate;
//! 2. increasing `δ_i` raises class `i`'s slowdown and lowers everyone
//!    else's;
//! 3. extra load on a *higher* class (smaller δ) hurts every class more
//!    than the same extra load on a lower class.

use crate::allocation::{psd_rates, AllocationError};
use psd_dist::Moments;
use psd_queueing::AnalysisError;

/// The PSD model for a fixed set of classes.
#[derive(Debug, Clone, PartialEq)]
pub struct PsdModel {
    deltas: Vec<f64>,
    moments: Moments,
}

/// Errors from model evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Propagated allocation failure.
    Allocation(AllocationError),
    /// Propagated queueing-analysis failure (e.g. `E[1/X]` divergent).
    Analysis(AnalysisError),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Allocation(e) => write!(f, "{e}"),
            ModelError::Analysis(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<AllocationError> for ModelError {
    fn from(e: AllocationError) -> Self {
        ModelError::Allocation(e)
    }
}

impl From<AnalysisError> for ModelError {
    fn from(e: AnalysisError) -> Self {
        ModelError::Analysis(e)
    }
}

impl PsdModel {
    /// Build a model from differentiation parameters and full-rate
    /// service moments.
    ///
    /// Fails when `E[1/X]` diverges ([`AnalysisError::SlowdownUndefined`]) or
    /// `E[X²]` is infinite — the closed form then does not exist.
    pub fn new(deltas: &[f64], moments: Moments) -> Result<Self, ModelError> {
        if deltas.is_empty() {
            return Err(ModelError::Allocation(AllocationError::InvalidInput {
                reason: "at least one class required".into(),
            }));
        }
        for (i, &d) in deltas.iter().enumerate() {
            if !(d.is_finite() && d > 0.0) {
                return Err(ModelError::Allocation(AllocationError::InvalidInput {
                    reason: format!("delta of class {i} must be finite and > 0, got {d}"),
                }));
            }
        }
        if moments.mean_inverse.is_none() {
            return Err(ModelError::Analysis(AnalysisError::SlowdownUndefined));
        }
        if moments.second_moment.is_infinite() {
            return Err(ModelError::Analysis(AnalysisError::InfiniteMoment { which: "E[X^2]" }));
        }
        Ok(Self { deltas: deltas.to_vec(), moments })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.deltas.len()
    }

    /// Differentiation parameters.
    pub fn deltas(&self) -> &[f64] {
        &self.deltas
    }

    /// Service-time moments at full machine rate.
    pub fn moments(&self) -> &Moments {
        &self.moments
    }

    /// The Eq. 17 rate vector for the given arrival rates.
    pub fn rates(&self, lambdas: &[f64]) -> Result<Vec<f64>, ModelError> {
        Ok(psd_rates(lambdas, &self.deltas, self.moments.mean)?)
    }

    /// Expected per-class slowdowns under the allocation (paper Eq. 18).
    pub fn expected_slowdowns(&self, lambdas: &[f64]) -> Result<Vec<f64>, ModelError> {
        if lambdas.len() != self.deltas.len() {
            return Err(ModelError::Allocation(AllocationError::InvalidInput {
                reason: format!("{} lambdas for {} classes", lambdas.len(), self.deltas.len()),
            }));
        }
        let rho: f64 = lambdas.iter().map(|l| l * self.moments.mean).sum();
        if rho >= 1.0 {
            return Err(ModelError::Allocation(AllocationError::Infeasible { total_load: rho }));
        }
        let big_lambda: f64 = lambdas.iter().zip(&self.deltas).map(|(l, d)| l / d).sum();
        let mi = self.moments.mean_inverse.expect("checked in new()");
        let base = big_lambda * self.moments.second_moment * mi / (2.0 * (1.0 - rho));
        Ok(self.deltas.iter().map(|d| d * base).collect())
    }

    /// Eq. 16 check: the model-predicted slowdown ratio of class `i` to
    /// class `j` (always exactly `δ_i/δ_j`).
    pub fn expected_ratio(&self, i: usize, j: usize) -> f64 {
        self.deltas[i] / self.deltas[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_dist::{BoundedPareto, Deterministic, Exponential, Pareto, ServiceDistribution};
    use psd_queueing::TaskServerQueue;

    fn bp_model(deltas: &[f64]) -> PsdModel {
        PsdModel::new(deltas, BoundedPareto::paper_default().moments()).unwrap()
    }

    fn equal_lambdas(model: &PsdModel, total_load: f64) -> Vec<f64> {
        let n = model.num_classes() as f64;
        vec![total_load / (n * model.moments().mean); model.num_classes()]
    }

    #[test]
    fn ratios_equal_delta_ratios() {
        let m = bp_model(&[1.0, 2.0, 3.0]);
        let l = equal_lambdas(&m, 0.7);
        let s = m.expected_slowdowns(&l).unwrap();
        assert!((s[1] / s[0] - 2.0).abs() < 1e-12);
        assert!((s[2] / s[0] - 3.0).abs() < 1e-12);
        assert_eq!(m.expected_ratio(2, 0), 3.0);
    }

    /// Eq. 18 must agree with pushing the Eq. 17 rates through the
    /// Theorem 1 per-task-server analysis — the model is self-consistent.
    #[test]
    fn eq18_consistent_with_theorem1() {
        let m = bp_model(&[1.0, 4.0]);
        let lambdas = equal_lambdas(&m, 0.6);
        let rates = m.rates(&lambdas).unwrap();
        let s_model = m.expected_slowdowns(&lambdas).unwrap();
        for i in 0..2 {
            let s_q = TaskServerQueue::new(lambdas[i], rates[i], *m.moments())
                .unwrap()
                .expected_slowdown()
                .unwrap();
            assert!(
                (s_model[i] - s_q).abs() / s_q < 1e-10,
                "class {i}: Eq18 {} vs Thm1 {s_q}",
                s_model[i]
            );
        }
    }

    /// Paper property 1: slowdown increases with the class arrival rate.
    #[test]
    fn property1_monotone_in_own_load() {
        let m = bp_model(&[1.0, 2.0]);
        let ex = m.moments().mean;
        let s_low = m.expected_slowdowns(&[0.2 / ex, 0.2 / ex]).unwrap();
        let s_high = m.expected_slowdowns(&[0.3 / ex, 0.2 / ex]).unwrap();
        assert!(s_high[0] > s_low[0]);
        assert!(s_high[1] > s_low[1], "everyone shares the pain");
    }

    /// Paper property 2: raising δ_i raises E[S_i] and lowers E[S_j].
    #[test]
    fn property2_delta_controllability() {
        let moments = BoundedPareto::paper_default().moments();
        let ex = moments.mean;
        let lambdas = [0.3 / ex, 0.3 / ex];
        let before =
            PsdModel::new(&[1.0, 2.0], moments).unwrap().expected_slowdowns(&lambdas).unwrap();
        let after =
            PsdModel::new(&[1.0, 4.0], moments).unwrap().expected_slowdowns(&lambdas).unwrap();
        assert!(after[1] > before[1], "its own slowdown increases");
        assert!(after[0] < before[0], "the other class improves");
    }

    /// Paper property 3: extra load on the higher class (smaller δ)
    /// raises slowdowns more than the same extra load on a lower class.
    #[test]
    fn property3_higher_class_load_hurts_more() {
        let m = bp_model(&[1.0, 2.0]);
        let ex = m.moments().mean;
        let base = [0.2 / ex, 0.2 / ex];
        let bump = 0.1 / ex;
        let s_hi = m.expected_slowdowns(&[base[0] + bump, base[1]]).unwrap();
        let s_lo = m.expected_slowdowns(&[base[0], base[1] + bump]).unwrap();
        // Compare the impact on class 0 (and by proportionality, on all).
        assert!(
            s_hi[0] > s_lo[0],
            "load on class 1 (δ=1) should hurt more: {} vs {}",
            s_hi[0],
            s_lo[0]
        );
    }

    #[test]
    fn md1_model_reduction() {
        // Deterministic service: E[X²]·E[1/X] = d²·(1/d) = d, so
        // E[S_i] = δ_i·Λ·d/(2(1−ρ)).
        let d = Deterministic::new(2.0).unwrap();
        let m = PsdModel::new(&[1.0, 2.0], d.moments()).unwrap();
        let lambdas = [0.1, 0.1];
        let s = m.expected_slowdowns(&lambdas).unwrap();
        let big_lambda = 0.1 / 1.0 + 0.1 / 2.0;
        let rho = 0.4;
        let want0 = 1.0 * big_lambda * 2.0 / (2.0 * (1.0 - rho));
        assert!((s[0] - want0).abs() < 1e-12);
        assert!((s[1] - 2.0 * want0).abs() < 1e-12);
    }

    #[test]
    fn exponential_service_rejected() {
        let e = Exponential::new(1.0).unwrap();
        let err = PsdModel::new(&[1.0, 2.0], e.moments()).unwrap_err();
        assert!(matches!(err, ModelError::Analysis(AnalysisError::SlowdownUndefined)));
    }

    #[test]
    fn unbounded_pareto_rejected() {
        let p = Pareto::new(1.5, 0.1).unwrap(); // E[X²] = ∞
        let err = PsdModel::new(&[1.0], p.moments()).unwrap_err();
        assert!(matches!(err, ModelError::Analysis(AnalysisError::InfiniteMoment { .. })));
    }

    #[test]
    fn overload_rejected() {
        let m = bp_model(&[1.0, 2.0]);
        let l = equal_lambdas(&m, 1.1);
        assert!(matches!(
            m.expected_slowdowns(&l),
            Err(ModelError::Allocation(AllocationError::Infeasible { .. }))
        ));
    }

    #[test]
    fn bad_inputs_rejected() {
        let moments = BoundedPareto::paper_default().moments();
        assert!(PsdModel::new(&[], moments).is_err());
        assert!(PsdModel::new(&[0.0], moments).is_err());
        assert!(PsdModel::new(&[-1.0], moments).is_err());
        let m = PsdModel::new(&[1.0, 2.0], moments).unwrap();
        assert!(m.expected_slowdowns(&[0.1]).is_err(), "length mismatch");
    }
}
