//! Baseline allocators the paper argues against (§5) — none of them
//! achieves proportional *slowdown* differentiation. They plug into the
//! same simulator so the benches can show the contrast.

use psd_control::{RateController, WindowObservation};

use crate::estimator::LoadEstimator;

/// Fixed even split: `r_i = 1/N` forever. No differentiation at all —
/// the "no QoS" reference point.
#[derive(Debug, Clone, Default)]
pub struct EqualShare;

impl RateController for EqualShare {
    fn initial_rates(&mut self, n_classes: usize) -> Vec<f64> {
        vec![1.0 / n_classes as f64; n_classes]
    }

    fn reallocate(&mut self, _now: f64, _w: &WindowObservation) -> Option<Vec<f64>> {
        None
    }
}

/// Rates proportional to each class's estimated offered load
/// (`r_i ∝ λ̂_i`). Every task server then sees the same utilization, so
/// every class gets (roughly) the same slowdown — proportional *fair*
/// sharing, but zero differentiation.
#[derive(Debug, Clone)]
pub struct LoadProportional {
    estimator: LoadEstimator,
    history: usize,
    started: bool,
}

impl LoadProportional {
    /// `history` = estimator window count (use the same as PSD for fair
    /// comparisons).
    pub fn new(history: usize) -> Self {
        Self { estimator: LoadEstimator::new(1, 1), history, started: false }
    }
}

impl RateController for LoadProportional {
    fn initial_rates(&mut self, n_classes: usize) -> Vec<f64> {
        self.estimator = LoadEstimator::new(n_classes, self.history);
        self.started = true;
        vec![1.0 / n_classes as f64; n_classes]
    }

    fn reallocate(&mut self, _now: f64, w: &WindowObservation) -> Option<Vec<f64>> {
        assert!(self.started, "initial_rates not called");
        self.estimator.observe(&w.arrival_rates());
        let est = self.estimator.estimate().expect("just observed");
        let total: f64 = est.iter().sum();
        let n = est.len();
        if total == 0.0 {
            return Some(vec![1.0 / n as f64; n]);
        }
        Some(est.iter().map(|l| l / total).collect())
    }
}

/// Backlog-proportional rates scaled by the differentiation parameter
/// (`r_i ∝ B_i/δ_i`) — a server-side transplant of the BPR family of
/// rate-based PDD packet schedulers (Dovrolis et al.). It differentiates
/// *queueing delay*, approximately, but not slowdown: it is blind to
/// service times, the paper's §1/§5 argument.
#[derive(Debug, Clone)]
pub struct BacklogProportional {
    deltas: Vec<f64>,
    /// Floor so no class ever fully starves.
    min_rate: f64,
}

impl BacklogProportional {
    /// Build with the PDD differentiation parameters.
    pub fn new(deltas: Vec<f64>, min_rate: f64) -> Self {
        assert!(!deltas.is_empty());
        assert!(deltas.iter().all(|&d| d > 0.0), "deltas must be positive");
        assert!(min_rate >= 0.0 && min_rate * deltas.len() as f64 <= 1.0);
        Self { deltas, min_rate }
    }
}

impl RateController for BacklogProportional {
    fn initial_rates(&mut self, n_classes: usize) -> Vec<f64> {
        assert_eq!(n_classes, self.deltas.len(), "class count mismatch");
        vec![1.0 / n_classes as f64; n_classes]
    }

    fn reallocate(&mut self, _now: f64, w: &WindowObservation) -> Option<Vec<f64>> {
        let weights: Vec<f64> =
            w.backlog.iter().zip(&self.deltas).map(|(&b, d)| b as f64 / d).collect();
        let total: f64 = weights.iter().sum();
        let n = weights.len();
        let mut rates: Vec<f64> = if total == 0.0 {
            vec![1.0 / n as f64; n]
        } else {
            weights.iter().map(|x| x / total).collect()
        };
        // Apply the floor and renormalize.
        for r in &mut rates {
            *r = r.max(self.min_rate);
        }
        let sum: f64 = rates.iter().sum();
        for r in &mut rates {
            *r /= sum;
        }
        Some(rates)
    }
}

/// Strict priority as a rate allocation: every class gets its estimated
/// raw requirement; *all* residual capacity goes to the highest class
/// (class 0). Reproduces the behaviour of priority scheduling studies
/// (§5): differentiation happens, but quality spacing is uncontrollable.
#[derive(Debug, Clone)]
pub struct StrictPriority {
    mean_service: f64,
    estimator: LoadEstimator,
    history: usize,
    started: bool,
}

impl StrictPriority {
    /// `mean_service` = `E[X]` of the workload; `history` as elsewhere.
    pub fn new(mean_service: f64, history: usize) -> Self {
        assert!(mean_service > 0.0);
        Self { mean_service, estimator: LoadEstimator::new(1, 1), history, started: false }
    }
}

impl RateController for StrictPriority {
    fn initial_rates(&mut self, n_classes: usize) -> Vec<f64> {
        self.estimator = LoadEstimator::new(n_classes, self.history);
        self.started = true;
        vec![1.0 / n_classes as f64; n_classes]
    }

    fn reallocate(&mut self, _now: f64, w: &WindowObservation) -> Option<Vec<f64>> {
        assert!(self.started, "initial_rates not called");
        self.estimator.observe(&w.arrival_rates());
        let est = self.estimator.estimate().expect("just observed");
        let n = est.len();
        let mut rates: Vec<f64> = est.iter().map(|l| l * self.mean_service).collect();
        let rho: f64 = rates.iter().sum();
        if rho >= 1.0 {
            // Overloaded: everything to class 0 first, then down the line.
            let mut remaining = 1.0;
            for r in &mut rates {
                let take = r.min(remaining);
                *r = take;
                remaining -= take;
            }
        } else {
            rates[0] += 1.0 - rho;
        }
        let _ = n;
        Some(rates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(arrivals: Vec<u64>, backlog: Vec<u64>) -> WindowObservation {
        let n = arrivals.len();
        WindowObservation {
            index: 0,
            start: 0.0,
            end: 1000.0,
            arrivals,
            arrived_work: vec![0.0; n],
            shed_work: vec![0.0; n],
            completions: vec![0; n],
            backlog,
            slowdown_sums: vec![0.0; n],
        }
    }

    #[test]
    fn equal_share_never_moves() {
        let mut c = EqualShare;
        assert_eq!(c.initial_rates(4), vec![0.25; 4]);
        assert!(c.reallocate(1.0, &window(vec![9, 0, 0, 0], vec![9, 0, 0, 0])).is_none());
    }

    #[test]
    fn load_proportional_tracks_load() {
        let mut c = LoadProportional::new(1);
        c.initial_rates(2);
        let r = c.reallocate(1.0, &window(vec![300, 100], vec![0, 0])).unwrap();
        assert!((r[0] - 0.75).abs() < 1e-12);
        assert!((r[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn load_proportional_idle_is_even() {
        let mut c = LoadProportional::new(1);
        c.initial_rates(3);
        let r = c.reallocate(1.0, &window(vec![0, 0, 0], vec![0, 0, 0])).unwrap();
        assert_eq!(r, vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn backlog_proportional_weights_by_delta() {
        let mut c = BacklogProportional::new(vec![1.0, 2.0], 0.0);
        c.initial_rates(2);
        // Equal backlogs, δ = (1,2) ⇒ weights (B, B/2) ⇒ (2/3, 1/3).
        let r = c.reallocate(1.0, &window(vec![0, 0], vec![10, 10])).unwrap();
        assert!((r[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn backlog_floor_applies() {
        let mut c = BacklogProportional::new(vec![1.0, 2.0], 0.05);
        c.initial_rates(2);
        let r = c.reallocate(1.0, &window(vec![0, 0], vec![10, 0])).unwrap();
        assert!(r[1] > 0.0);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn strict_priority_residual_to_class0() {
        let mut c = StrictPriority::new(0.5, 1);
        c.initial_rates(2);
        // λ = (0.4, 0.4), E[X] = 0.5 ⇒ ρ_i = 0.2 each, residual 0.6 → class 0.
        let r = c.reallocate(1.0, &window(vec![400, 400], vec![0, 0])).unwrap();
        assert!((r[0] - 0.8).abs() < 1e-12);
        assert!((r[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn strict_priority_overload_serves_top_first() {
        let mut c = StrictPriority::new(0.5, 1);
        c.initial_rates(2);
        // ρ_i = 0.75 each (total 1.5): class 0 gets 0.75, class 1 gets 0.25.
        let r = c.reallocate(1.0, &window(vec![1500, 1500], vec![0, 0])).unwrap();
        assert!((r[0] - 0.75).abs() < 1e-12);
        assert!((r[1] - 0.25).abs() < 1e-12);
    }
}
