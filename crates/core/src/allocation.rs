//! The processing-rate allocation strategy — paper Eq. 17.
//!
//! Solving the PSD constraint `E[S_i]/E[S_j] = δ_i/δ_j` (Eq. 16)
//! together with `Σ r_i = 1` under the Theorem 1 slowdown form yields
//!
//! ```text
//! r_i = ρ_i + (1 − ρ) · (λ_i/δ_i) / Λ,
//!       ρ_i = λ_i·E[X],   ρ = Σ ρ_j,   Λ = Σ_j λ_j/δ_j
//! ```
//!
//! — "the remaining capacity of the server is fairly allocated to
//! different classes according to their scaled arrival rates with
//! respect to their differentiation parameters."

use std::fmt;

/// Why rate allocation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocationError {
    /// Offered load `ρ = Σ λ_i·E[X] ≥ 1`: no feasible allocation exists.
    Infeasible {
        /// The total offered load.
        total_load: f64,
    },
    /// Malformed inputs (mismatched lengths, non-positive δ, …).
    InvalidInput {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::Infeasible { total_load } => {
                write!(f, "no feasible allocation: total offered load {total_load} >= 1")
            }
            AllocationError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl std::error::Error for AllocationError {}

fn validate(lambdas: &[f64], deltas: &[f64], mean_service: f64) -> Result<(), AllocationError> {
    if lambdas.is_empty() || lambdas.len() != deltas.len() {
        return Err(AllocationError::InvalidInput {
            reason: format!(
                "need equal, non-zero class counts (got {} lambdas, {} deltas)",
                lambdas.len(),
                deltas.len()
            ),
        });
    }
    if !(mean_service.is_finite() && mean_service > 0.0) {
        return Err(AllocationError::InvalidInput {
            reason: format!("mean service time must be finite and > 0, got {mean_service}"),
        });
    }
    for (i, &l) in lambdas.iter().enumerate() {
        if !(l.is_finite() && l >= 0.0) {
            return Err(AllocationError::InvalidInput {
                reason: format!("arrival rate of class {i} must be finite and >= 0, got {l}"),
            });
        }
    }
    for (i, &d) in deltas.iter().enumerate() {
        if !(d.is_finite() && d > 0.0) {
            return Err(AllocationError::InvalidInput {
                reason: format!(
                    "differentiation parameter of class {i} must be finite and > 0, got {d}"
                ),
            });
        }
    }
    Ok(())
}

/// Compute the PSD rate vector (paper Eq. 17).
///
/// * `lambdas` — per-class arrival rates `λ_i` (may be estimates).
/// * `deltas` — differentiation parameters `δ_i` (class 0 is the
///   highest class by convention: `δ_1 ≤ δ_2 ≤ …`, but the formula does
///   not require an ordering).
/// * `mean_service` — `E[X]` at full machine rate.
///
/// Returns rates summing to exactly 1 when at least one class has
/// traffic; all-idle classes yield an even split of the capacity.
pub fn psd_rates(
    lambdas: &[f64],
    deltas: &[f64],
    mean_service: f64,
) -> Result<Vec<f64>, AllocationError> {
    validate(lambdas, deltas, mean_service)?;
    let n = lambdas.len();
    let rho: f64 = lambdas.iter().map(|l| l * mean_service).sum();
    if rho >= 1.0 {
        return Err(AllocationError::Infeasible { total_load: rho });
    }
    let scaled: Vec<f64> = lambdas.iter().zip(deltas).map(|(l, d)| l / d).collect();
    let big_lambda: f64 = scaled.iter().sum();
    if big_lambda == 0.0 {
        // No traffic anywhere: any split works; pick the even one.
        return Ok(vec![1.0 / n as f64; n]);
    }
    let residual = 1.0 - rho;
    Ok(lambdas
        .iter()
        .zip(&scaled)
        .map(|(l, s)| l * mean_service + residual * s / big_lambda)
        .collect())
}

/// Like [`psd_rates`], but degrades gracefully instead of erroring:
///
/// * under overload (`ρ ≥ 1 − margin`) it falls back to shares
///   proportional to each class's offered load (every task server is
///   then equally over-driven — the least-bad work-conserving choice);
/// * each class with traffic is guaranteed at least `min_rate` (and the
///   vector is renormalized), so a class whose *estimated* load
///   transiently hits zero is not starved.
///
/// This is the production path used by [`crate::PsdController`].
pub fn psd_rates_clamped(
    lambdas: &[f64],
    deltas: &[f64],
    mean_service: f64,
    min_rate: f64,
    overload_margin: f64,
) -> Result<Vec<f64>, AllocationError> {
    validate(lambdas, deltas, mean_service)?;
    if !(0.0..1.0).contains(&overload_margin) {
        return Err(AllocationError::InvalidInput {
            reason: format!("overload margin must be in [0,1), got {overload_margin}"),
        });
    }
    let n = lambdas.len();
    if !(min_rate >= 0.0 && min_rate * n as f64 <= 1.0) {
        return Err(AllocationError::InvalidInput {
            reason: format!("min_rate {min_rate} x {n} classes exceeds capacity"),
        });
    }
    let rho: f64 = lambdas.iter().map(|l| l * mean_service).sum();
    let mut rates = if rho >= 1.0 - overload_margin {
        // Overload fallback: load-proportional shares.
        if rho == 0.0 {
            vec![1.0 / n as f64; n]
        } else {
            lambdas.iter().map(|l| l * mean_service / rho).collect()
        }
    } else {
        psd_rates(lambdas, deltas, mean_service)?
    };
    // Enforce the floor by waterfilling: floored classes are pinned at
    // exactly `min_rate`; the rest share the remaining capacity in
    // proportion to their unclamped rates. Iterate because the rescale
    // can push further classes below the floor.
    if min_rate > 0.0 {
        let mut floored = vec![false; n];
        loop {
            let mut changed = false;
            for (r, f) in rates.iter().zip(&mut floored) {
                if !*f && *r < min_rate {
                    *f = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            let n_floored = floored.iter().filter(|&&f| f).count();
            let remaining = 1.0 - n_floored as f64 * min_rate;
            let free_sum: f64 =
                rates.iter().zip(&floored).filter(|(_, &f)| !f).map(|(r, _)| *r).sum();
            for (r, &f) in rates.iter_mut().zip(&floored) {
                if f {
                    *r = min_rate;
                } else if free_sum > 0.0 {
                    *r = *r * remaining / free_sum;
                } else {
                    *r = remaining / (n - n_floored).max(1) as f64;
                }
            }
        }
    }
    Ok(rates)
}

/// Heterogeneous-distribution PSD allocation — an extension beyond the
/// paper, which assumes every class draws from the *same* Bounded
/// Pareto. When class `i` has its own service moments, Theorem 1 gives
/// `E[S_i] = λ_i·E[X_i²]·E[1/X_i] / (2(r_i − λ_i·E[X_i]))`, and solving
/// `E[S_i]/δ_i = const` with `Σr_i = 1` yields
///
/// ```text
/// r_i = ρ_i + (1 − ρ) · w_i / Σ_j w_j,
///       w_i = λ_i·E[X_i²]·E[1/X_i] / δ_i,   ρ_i = λ_i·E[X_i]
/// ```
///
/// which reduces to [`psd_rates`] when all classes share one
/// distribution. Classes with divergent `E[1/X]` are rejected.
pub fn psd_rates_heterogeneous(
    lambdas: &[f64],
    deltas: &[f64],
    moments: &[psd_dist::Moments],
) -> Result<Vec<f64>, AllocationError> {
    if lambdas.is_empty() || lambdas.len() != deltas.len() || lambdas.len() != moments.len() {
        return Err(AllocationError::InvalidInput {
            reason: format!(
                "need equal non-zero class counts ({} lambdas, {} deltas, {} moment sets)",
                lambdas.len(),
                deltas.len(),
                moments.len()
            ),
        });
    }
    for (i, &l) in lambdas.iter().enumerate() {
        if !(l.is_finite() && l >= 0.0) {
            return Err(AllocationError::InvalidInput {
                reason: format!("arrival rate of class {i} must be finite and >= 0, got {l}"),
            });
        }
    }
    for (i, &d) in deltas.iter().enumerate() {
        if !(d.is_finite() && d > 0.0) {
            return Err(AllocationError::InvalidInput {
                reason: format!("delta of class {i} must be finite and > 0, got {d}"),
            });
        }
    }
    let mut weights = Vec::with_capacity(lambdas.len());
    let mut rho = 0.0;
    for (i, ((&l, &d), m)) in lambdas.iter().zip(deltas).zip(moments).enumerate() {
        if !(m.mean.is_finite() && m.mean > 0.0) {
            return Err(AllocationError::InvalidInput {
                reason: format!("class {i} mean service time must be finite and > 0"),
            });
        }
        let mi = m.mean_inverse.ok_or_else(|| AllocationError::InvalidInput {
            reason: format!("class {i} has divergent E[1/X]; slowdown model does not apply"),
        })?;
        if m.second_moment.is_infinite() {
            return Err(AllocationError::InvalidInput {
                reason: format!("class {i} has infinite E[X^2]"),
            });
        }
        rho += l * m.mean;
        weights.push(l * m.second_moment * mi / d);
    }
    if rho >= 1.0 {
        return Err(AllocationError::Infeasible { total_load: rho });
    }
    let wsum: f64 = weights.iter().sum();
    let n = lambdas.len();
    if wsum == 0.0 {
        return Ok(vec![1.0 / n as f64; n]);
    }
    let residual = 1.0 - rho;
    Ok(lambdas
        .iter()
        .zip(moments)
        .zip(&weights)
        .map(|((l, m), w)| l * m.mean + residual * w / wsum)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_dist::{BoundedPareto, Deterministic, ServiceDistribution};

    const EX: f64 = 0.5; // a convenient mean service time for hand math

    #[test]
    fn rates_sum_to_one() {
        let lambdas = [0.4, 0.8, 0.2];
        let deltas = [1.0, 2.0, 3.0];
        let r = psd_rates(&lambdas, &deltas, EX).unwrap();
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum {sum}");
        assert!(r.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn hand_computed_two_classes() {
        // λ = (1, 1), δ = (1, 2), E[X] = 0.25 ⇒ ρ_i = 0.25, ρ = 0.5,
        // Λ = 1 + 0.5 = 1.5; r_1 = 0.25 + 0.5·(1/1.5) = 0.5833…,
        // r_2 = 0.25 + 0.5·(0.5/1.5) = 0.4166…
        let r = psd_rates(&[1.0, 1.0], &[1.0, 2.0], 0.25).unwrap();
        assert!((r[0] - (0.25 + 0.5 / 1.5)).abs() < 1e-12);
        assert!((r[1] - (0.25 + 0.25 / 1.5)).abs() < 1e-12);
    }

    #[test]
    fn higher_class_gets_more_rate_at_equal_load() {
        let r = psd_rates(&[1.0, 1.0], &[1.0, 4.0], 0.3).unwrap();
        assert!(r[0] > r[1], "smaller δ ⇒ more capacity: {r:?}");
    }

    #[test]
    fn equal_deltas_equal_loads_even_split() {
        let r = psd_rates(&[0.5, 0.5], &[2.0, 2.0], 0.4).unwrap();
        assert!((r[0] - r[1]).abs() < 1e-12);
        assert!((r[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn infeasible_load_rejected() {
        let err = psd_rates(&[2.0, 2.0], &[1.0, 2.0], 0.3).unwrap_err();
        assert!(
            matches!(err, AllocationError::Infeasible { total_load } if (total_load - 1.2).abs() < 1e-12)
        );
    }

    #[test]
    fn zero_traffic_even_split() {
        let r = psd_rates(&[0.0, 0.0, 0.0], &[1.0, 2.0, 3.0], 0.5).unwrap();
        assert_eq!(r, vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn idle_class_gets_zero_rate_unclamped() {
        let r = psd_rates(&[1.0, 0.0], &[1.0, 2.0], 0.3).unwrap();
        assert_eq!(r[1], 0.0);
        assert!((r[0] - 1.0).abs() < 1e-12, "all capacity to the only active class");
    }

    #[test]
    fn clamped_protects_idle_class() {
        let r = psd_rates_clamped(&[1.0, 0.0], &[1.0, 2.0], 0.3, 0.01, 0.02).unwrap();
        assert!(r[1] >= 0.009, "min-rate floor applies: {r:?}");
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clamped_overload_fallback_is_load_proportional() {
        // ρ = 1.2 ⇒ fallback shares λ_i·E[X]/ρ.
        let r = psd_rates_clamped(&[2.0, 2.0], &[1.0, 8.0], 0.3, 0.0, 0.02).unwrap();
        assert!((r[0] - 0.5).abs() < 1e-12);
        assert!((r[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        assert!(psd_rates(&[], &[], 1.0).is_err());
        assert!(psd_rates(&[1.0], &[1.0, 2.0], 1.0).is_err());
        assert!(psd_rates(&[1.0], &[0.0], 1.0).is_err());
        assert!(psd_rates(&[-1.0], &[1.0], 1.0).is_err());
        assert!(psd_rates(&[1.0], &[1.0], 0.0).is_err());
        assert!(
            psd_rates_clamped(&[1.0, 1.0], &[1.0, 2.0], 0.1, 0.6, 0.02).is_err(),
            "min_rate too big"
        );
        assert!(psd_rates_clamped(&[1.0], &[1.0], 0.1, 0.0, 1.0).is_err(), "bad margin");
    }

    /// Paper property 1 precursor: each r_i exceeds the class's raw
    /// requirement ρ_i, so every task server is locally stable.
    #[test]
    fn local_stability_guaranteed() {
        let bp = BoundedPareto::paper_default();
        let ex = bp.mean();
        let lambdas = [0.3 / ex, 0.2 / ex, 0.4 / ex]; // ρ = 0.9
        let deltas = [1.0, 2.0, 3.0];
        let r = psd_rates(&lambdas, &deltas, ex).unwrap();
        for (i, (&rate, &l)) in r.iter().zip(&lambdas).enumerate() {
            assert!(rate > l * ex, "class {i}: rate {rate} <= requirement {}", l * ex);
        }
    }

    /// The heterogeneous allocator reduces to Eq. 17 when every class
    /// shares the same distribution.
    #[test]
    fn heterogeneous_reduces_to_eq17() {
        let m = BoundedPareto::paper_default().moments();
        let lambdas = [0.4, 0.8, 0.2];
        let deltas = [1.0, 2.0, 3.0];
        let homo = psd_rates(&lambdas, &deltas, m.mean).unwrap();
        let hetero = psd_rates_heterogeneous(&lambdas, &deltas, &[m, m, m]).unwrap();
        for (a, b) in homo.iter().zip(&hetero) {
            assert!((a - b).abs() < 1e-12, "{homo:?} vs {hetero:?}");
        }
    }

    /// With per-class distributions, the heterogeneous rates equalize
    /// the normalized slowdowns exactly (verified through Theorem 1).
    #[test]
    fn heterogeneous_achieves_exact_ratios() {
        use psd_queueing::TaskServerQueue;
        let m0 = Deterministic::new(0.8).unwrap().moments(); // checkout
        let m1 = BoundedPareto::paper_default().moments(); // browse
        let m2 = BoundedPareto::new(1.2, 0.5, 50.0).unwrap().moments(); // search
        let lambdas = [0.2, 0.6, 0.1];
        let deltas = [1.0, 2.0, 3.0];
        let moments = [m0, m1, m2];
        let rates = psd_rates_heterogeneous(&lambdas, &deltas, &moments).unwrap();
        assert!((rates.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let slowdowns: Vec<f64> = (0..3)
            .map(|i| {
                TaskServerQueue::new(lambdas[i], rates[i], moments[i])
                    .unwrap()
                    .expected_slowdown()
                    .unwrap()
            })
            .collect();
        assert!((slowdowns[1] / slowdowns[0] - 2.0).abs() < 1e-9, "{slowdowns:?}");
        assert!((slowdowns[2] / slowdowns[0] - 3.0).abs() < 1e-9, "{slowdowns:?}");
    }

    #[test]
    fn heterogeneous_rejects_divergent_class() {
        let good = BoundedPareto::paper_default().moments();
        let bad = psd_dist::Exponential::new(1.0).unwrap().moments();
        let err = psd_rates_heterogeneous(&[0.1, 0.1], &[1.0, 2.0], &[good, bad]).unwrap_err();
        assert!(matches!(err, AllocationError::InvalidInput { .. }));
    }

    /// Residual capacity splits ∝ λ_i/δ_i (the paper's reading of Eq. 17).
    #[test]
    fn residual_split_is_scaled_proportional() {
        let lambdas = [0.6, 0.9, 0.3];
        let deltas = [1.0, 3.0, 2.0];
        let ex = 0.4;
        let r = psd_rates(&lambdas, &deltas, ex).unwrap();
        let resid: Vec<f64> = r.iter().zip(&lambdas).map(|(rate, l)| rate - l * ex).collect();
        // resid_i / resid_j == (λ_i/δ_i)/(λ_j/δ_j)
        let want01 = (lambdas[0] / deltas[0]) / (lambdas[1] / deltas[1]);
        assert!((resid[0] / resid[1] - want01).abs() < 1e-12);
        let want02 = (lambdas[0] / deltas[0]) / (lambdas[2] / deltas[2]);
        assert!((resid[0] / resid[2] - want02).abs() < 1e-12);
    }
}
