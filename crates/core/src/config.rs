//! Experiment configuration façade: declare classes by `(δ, load)` and
//! get simulator configs, controllers and model predictions that are
//! guaranteed to be mutually consistent.

use psd_desim::{ClassSpec, ServiceMode, SimConfig};
use psd_dist::{ServiceDist, ServiceDistribution};

use crate::controller::{ControllerParams, PsdController};
use crate::model::{ModelError, PsdModel};

/// One service class: differentiation parameter and offered load.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassConfig {
    /// Differentiation parameter `δ_i` (smaller = higher class).
    pub delta: f64,
    /// Offered load `ρ_i = λ_i·E[X]` as a fraction of machine capacity.
    pub load: f64,
}

/// Declarative PSD experiment configuration with the paper's defaults:
/// `BP(1.5, 0.1, 100)` service, warm-up 10 000 time units, measurement
/// to 60 000, 1000-unit control/measurement windows, estimator history
/// of 5 windows. One *time unit* equals the mean full-rate service time
/// only if you normalize the service distribution; with the default BP
/// the absolute scale is `E[X] ≈ 0.29` and windows are scaled
/// accordingly by [`PsdConfig::paper_scaled`] — see DESIGN.md.
#[derive(Debug, Clone, PartialEq)]
pub struct PsdConfig {
    /// The classes, ordered highest (smallest δ) first by convention.
    pub classes: Vec<ClassConfig>,
    /// Service-size distribution at full machine rate.
    pub service: ServiceDist,
    /// Simulation end (in simulator time).
    pub end_time: f64,
    /// Warm-up cutoff.
    pub warmup: f64,
    /// Control (and measurement) window length.
    pub control_period: f64,
    /// Online-controller tuning.
    pub controller_params: ControllerParams,
    /// Start the controller from the nominal loads instead of an even
    /// split (the paper's simulator knows the offered loads).
    pub warm_start: bool,
    /// Fluid or pinned-rate task servers.
    pub service_mode: ServiceMode,
    /// Optional per-request trace window (paper Figs 7/8).
    pub trace_range: Option<(f64, f64)>,
}

impl PsdConfig {
    /// Construct with explicit classes and the paper-default horizon.
    ///
    /// The time axis follows the paper: a *time unit* is the processing
    /// time of an average-size request, i.e. every duration below is in
    /// units of `E[X]` and converted to simulator time internally.
    pub fn new(classes: Vec<ClassConfig>, service: ServiceDist) -> Self {
        assert!(!classes.is_empty(), "at least one class");
        let ex = service.mean();
        Self {
            classes,
            service,
            end_time: 61_000.0 * ex,
            warmup: 10_000.0 * ex,
            control_period: 1_000.0 * ex,
            controller_params: ControllerParams::default(),
            warm_start: true,
            service_mode: ServiceMode::Fluid,
            trace_range: None,
        }
    }

    /// The paper's standard setup: `n = deltas.len()` classes with equal
    /// shares of `total_load`, Bounded-Pareto `BP(1.5, 0.1, 100)` sizes.
    pub fn equal_load(deltas: &[f64], total_load: f64) -> Self {
        assert!(!deltas.is_empty());
        assert!((0.0..1.0).contains(&total_load), "total load must be in [0,1)");
        let per = total_load / deltas.len() as f64;
        let classes = deltas.iter().map(|&delta| ClassConfig { delta, load: per }).collect();
        Self::new(classes, ServiceDist::paper_default())
    }

    /// Override the horizon: `end` and `warmup` in *time units* (they
    /// are converted with `E[X]` like the defaults).
    pub fn with_horizon(mut self, end_tu: f64, warmup_tu: f64) -> Self {
        let ex = self.service.mean();
        assert!(end_tu > warmup_tu && warmup_tu >= 0.0);
        self.end_time = end_tu * ex;
        self.warmup = warmup_tu * ex;
        self
    }

    /// Override the control window (in time units).
    pub fn with_control_period(mut self, period_tu: f64) -> Self {
        assert!(period_tu > 0.0);
        self.control_period = period_tu * self.service.mean();
        self
    }

    /// Request a per-request departure trace over `[from, to)` time
    /// units (paper Figs 7/8 use 60 000–61 000).
    pub fn with_trace(mut self, from_tu: f64, to_tu: f64) -> Self {
        let ex = self.service.mean();
        self.trace_range = Some((from_tu * ex, to_tu * ex));
        self
    }

    /// Differentiation parameters in class order.
    pub fn deltas(&self) -> Vec<f64> {
        self.classes.iter().map(|c| c.delta).collect()
    }

    /// Per-class arrival rates `λ_i = load_i / E[X]`.
    pub fn lambdas(&self) -> Vec<f64> {
        let ex = self.service.mean();
        self.classes.iter().map(|c| c.load / ex).collect()
    }

    /// Total offered load `ρ`.
    pub fn total_load(&self) -> f64 {
        self.classes.iter().map(|c| c.load).sum()
    }

    /// The analytical PSD model for this configuration.
    pub fn model(&self) -> Result<PsdModel, ModelError> {
        PsdModel::new(&self.deltas(), self.service.moments())
    }

    /// Eq. 18 predictions for the nominal loads.
    pub fn expected_slowdowns(&self) -> Result<Vec<f64>, ModelError> {
        self.model()?.expected_slowdowns(&self.lambdas())
    }

    /// Materialize the simulator configuration for one run.
    pub fn sim_config(&self, seed: u64) -> SimConfig {
        let lambdas = self.lambdas();
        SimConfig {
            classes: self
                .classes
                .iter()
                .zip(&lambdas)
                .map(|(_, &l)| ClassSpec::poisson(l, self.service.clone()))
                .collect(),
            end_time: self.end_time,
            warmup: self.warmup,
            control_period: self.control_period,
            metrics_window: None,
            seed,
            service_mode: self.service_mode,
            trace_range: self.trace_range,
            ..SimConfig::default()
        }
    }

    /// Build the online PSD controller for this configuration.
    pub fn controller(&self) -> PsdController {
        let c =
            PsdController::new(self.deltas(), self.service.mean(), self.controller_params.clone());
        if self.warm_start {
            c.with_nominal_lambdas(self.lambdas())
        } else {
            c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_load_splits_evenly() {
        let cfg = PsdConfig::equal_load(&[1.0, 2.0, 3.0], 0.6);
        assert_eq!(cfg.classes.len(), 3);
        for c in &cfg.classes {
            assert!((c.load - 0.2).abs() < 1e-12);
        }
        assert!((cfg.total_load() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn lambdas_scale_with_mean_service() {
        let cfg = PsdConfig::equal_load(&[1.0, 2.0], 0.5);
        let ex = cfg.service.mean();
        let l = cfg.lambdas();
        assert!((l[0] - 0.25 / ex).abs() < 1e-12);
    }

    #[test]
    fn horizon_in_time_units() {
        let cfg = PsdConfig::equal_load(&[1.0], 0.3).with_horizon(5_000.0, 500.0);
        let ex = cfg.service.mean();
        assert!((cfg.end_time - 5_000.0 * ex).abs() < 1e-9);
        assert!((cfg.warmup - 500.0 * ex).abs() < 1e-9);
    }

    #[test]
    fn expected_slowdowns_proportional() {
        let cfg = PsdConfig::equal_load(&[1.0, 4.0], 0.5);
        let s = cfg.expected_slowdowns().unwrap();
        assert!((s[1] / s[0] - 4.0).abs() < 1e-10);
    }

    #[test]
    fn sim_config_consistent() {
        let cfg = PsdConfig::equal_load(&[1.0, 2.0], 0.4);
        let sc = cfg.sim_config(9);
        assert_eq!(sc.classes.len(), 2);
        assert_eq!(sc.seed, 9);
        assert_eq!(sc.end_time, cfg.end_time);
    }

    #[test]
    #[should_panic(expected = "total load")]
    fn overload_config_rejected() {
        PsdConfig::equal_load(&[1.0, 2.0], 1.2);
    }
}
