//! [`SharedControl`] — the runtime surface of the control plane: the
//! piece the server's monitor thread, its submit paths and its admin
//! endpoints all share.
//!
//! Three access patterns, three costs:
//!
//! * **submit path** (hottest, every request): one relaxed atomic load
//!   of the class's admission probability — and only when a class is
//!   actually being shed, a counter-based deterministic uniform draw.
//! * **monitor** (once per control window): reads the epoch-stamped
//!   [`ClassTable`], rebuilds its controller when the epoch moved, and
//!   [`SharedControl::publish`]es the directive's rates and admission
//!   probabilities as raw `f64` bit patterns in `AtomicU64`s.
//! * **admin surface** (rare): [`SharedControl::update`] mutates the
//!   class table under its mutex and bumps the epoch.
//!
//! # Epoch ordering (hot reconfiguration)
//!
//! [`SharedControl::update`] bumps [`SharedControl::epoch`]
//! *immediately* (so `GET /config` reflects the accepted change), but
//! the change only *takes effect* at the next control-window boundary:
//! the monitor compares `epoch()` against its last-seen value, rebuilds
//! the controller stack from [`SharedControl::table`] (estimator
//! history restarts — a reconfigured controller is a new controller),
//! and its next [`SharedControl::publish`] stamps
//! [`SharedControl::applied_epoch`]. Until that publish, requests keep
//! being admitted and scheduled under the previous epoch's tables —
//! there is never a torn state where new δ's run against old admission
//! probabilities.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::control::kind::ControllerKind;

/// The epoch-stamped, hot-swappable configuration of the control plane.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassTable {
    /// Differentiation parameters, one per class (class 0 highest). The
    /// class *count* is fixed at construction; only the values swap.
    pub deltas: Vec<f64>,
    /// Integral gain of the feedback controller (ignored by `open`).
    pub gain: f64,
    /// Target admitted utilization, `None` = no admission control.
    pub admission_cap: Option<f64>,
    /// Which controller family drives the rates.
    pub controller: ControllerKind,
    /// Monotonic epoch: 0 at start, +1 per accepted [`SharedControl::update`].
    pub epoch: u64,
}

impl ClassTable {
    fn validate(&self, n: usize) -> Result<(), String> {
        if self.deltas.len() != n {
            return Err(format!("expected {n} deltas, got {}", self.deltas.len()));
        }
        if !self.deltas.iter().all(|d| d.is_finite() && *d > 0.0) {
            return Err("deltas must be positive and finite".into());
        }
        if !(self.gain.is_finite() && self.gain >= 0.0) {
            return Err("gain must be finite and >= 0".into());
        }
        if let Some(cap) = self.admission_cap {
            if !(cap > 0.0 && cap < 1.0) {
                return Err(format!("admission cap must be in (0,1), got {cap}"));
            }
        }
        Ok(())
    }
}

const ONE_BITS: u64 = 0x3FF0_0000_0000_0000; // 1.0f64.to_bits()

/// SplitMix64 finalizer mapped to `[0, 1)` — the admission draw.
fn splitmix_unit(mut z: u64) -> f64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// See the module docs.
#[derive(Debug)]
pub struct SharedControl {
    table: Mutex<ClassTable>,
    epoch: AtomicU64,
    applied_epoch: AtomicU64,
    /// Published per-class rates, as `f64` bit patterns.
    rates: Vec<AtomicU64>,
    /// Published per-class admission probabilities, as `f64` bits.
    admit: Vec<AtomicU64>,
    /// Draw counter feeding the SplitMix64 admission stream.
    seq: AtomicU64,
}

impl SharedControl {
    /// A control surface for `table.deltas.len()` classes; rates start
    /// at an even split and every class fully admitted. `table.epoch`
    /// is forced to 0.
    pub fn new(mut table: ClassTable) -> Self {
        let n = table.deltas.len();
        assert!(n > 0, "at least one class");
        table.epoch = 0;
        table.validate(n).expect("initial class table must be valid");
        let even = (1.0 / n as f64).to_bits();
        Self {
            table: Mutex::new(table),
            epoch: AtomicU64::new(0),
            applied_epoch: AtomicU64::new(0),
            rates: (0..n).map(|_| AtomicU64::new(even)).collect(),
            admit: (0..n).map(|_| AtomicU64::new(ONE_BITS)).collect(),
            seq: AtomicU64::new(0),
        }
    }

    /// Number of classes (fixed for the lifetime of the surface).
    pub fn n_classes(&self) -> usize {
        self.rates.len()
    }

    /// Snapshot of the current class table.
    pub fn table(&self) -> ClassTable {
        self.table.lock().expect("table lock").clone()
    }

    /// Latest *requested* configuration epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Latest epoch the monitor has *applied* (published under).
    pub fn applied_epoch(&self) -> u64 {
        self.applied_epoch.load(Ordering::Acquire)
    }

    /// Mutate the class table: `f` edits a copy, which is validated and
    /// committed with a bumped epoch. Returns the new epoch, or the
    /// validation error (table unchanged).
    pub fn update(&self, f: impl FnOnce(&mut ClassTable)) -> Result<u64, String> {
        let mut g = self.table.lock().expect("table lock");
        let mut next = g.clone();
        f(&mut next);
        next.validate(self.rates.len())?;
        next.epoch = g.epoch + 1;
        let epoch = next.epoch;
        *g = next;
        self.epoch.store(epoch, Ordering::Release);
        Ok(epoch)
    }

    /// Publish a control decision: the rates in force and the admission
    /// probabilities (`None` = admit everything), stamped with the
    /// table epoch the deciding controller was built from.
    pub fn publish(&self, epoch: u64, rates: &[f64], admit: Option<&[f64]>) {
        assert_eq!(rates.len(), self.rates.len(), "class count mismatch");
        for (slot, &r) in self.rates.iter().zip(rates) {
            slot.store(r.to_bits(), Ordering::Relaxed);
        }
        match admit {
            None => {
                for slot in &self.admit {
                    slot.store(ONE_BITS, Ordering::Relaxed);
                }
            }
            Some(p) => {
                assert_eq!(p.len(), self.admit.len(), "class count mismatch");
                for (slot, &pi) in self.admit.iter().zip(p) {
                    slot.store(pi.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
                }
            }
        }
        self.applied_epoch.store(epoch, Ordering::Release);
    }

    /// The rates most recently published by the monitor.
    pub fn rates(&self) -> Vec<f64> {
        self.rates.iter().map(|r| f64::from_bits(r.load(Ordering::Relaxed))).collect()
    }

    /// The admission probabilities currently in force.
    pub fn admit_probabilities(&self) -> Vec<f64> {
        self.admit.iter().map(|p| f64::from_bits(p.load(Ordering::Relaxed))).collect()
    }

    /// One admission decision for a class-`class` request: `true` to
    /// serve, `false` to shed. Fully-admitted classes cost a single
    /// relaxed load; shedding classes add one counter increment and a
    /// SplitMix64 draw (no locks anywhere).
    pub fn admit(&self, class: usize) -> bool {
        let class = class.min(self.admit.len() - 1);
        let bits = self.admit[class].load(Ordering::Relaxed);
        if bits == ONE_BITS {
            return true;
        }
        let p = f64::from_bits(bits);
        if p <= 0.0 {
            return false;
        }
        splitmix_unit(self.seq.fetch_add(1, Ordering::Relaxed)) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(deltas: Vec<f64>) -> ClassTable {
        ClassTable {
            deltas,
            gain: 0.3,
            admission_cap: None,
            controller: ControllerKind::Open,
            epoch: 0,
        }
    }

    #[test]
    fn starts_even_and_fully_admitting() {
        let c = SharedControl::new(table(vec![1.0, 2.0]));
        assert_eq!(c.n_classes(), 2);
        assert_eq!(c.rates(), vec![0.5, 0.5]);
        assert_eq!(c.admit_probabilities(), vec![1.0, 1.0]);
        assert!(c.admit(0) && c.admit(1));
        assert_eq!(c.epoch(), 0);
        assert_eq!(c.applied_epoch(), 0);
    }

    #[test]
    fn update_bumps_epoch_and_validates() {
        let c = SharedControl::new(table(vec![1.0, 2.0]));
        let e = c.update(|t| t.deltas = vec![2.0, 1.0]).expect("valid swap");
        assert_eq!(e, 1);
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.table().deltas, vec![2.0, 1.0]);
        assert_eq!(c.applied_epoch(), 0, "not applied until the monitor publishes");

        let err = c.update(|t| t.deltas = vec![1.0]).unwrap_err();
        assert!(err.contains("expected 2 deltas"), "{err}");
        assert_eq!(c.epoch(), 1, "rejected update leaves the epoch alone");
        let err = c.update(|t| t.admission_cap = Some(1.5)).unwrap_err();
        assert!(err.contains("admission cap"), "{err}");
        let err = c.update(|t| t.gain = -1.0).unwrap_err();
        assert!(err.contains("gain"), "{err}");
    }

    #[test]
    fn publish_stamps_applied_epoch() {
        let c = SharedControl::new(table(vec![1.0, 2.0]));
        c.update(|t| t.gain = 0.5).unwrap();
        c.publish(1, &[0.7, 0.3], Some(&[1.0, 0.25]));
        assert_eq!(c.applied_epoch(), 1);
        assert_eq!(c.rates(), vec![0.7, 0.3]);
        assert_eq!(c.admit_probabilities(), vec![1.0, 0.25]);
        // Publishing `None` restores full admission.
        c.publish(1, &[0.7, 0.3], None);
        assert_eq!(c.admit_probabilities(), vec![1.0, 1.0]);
    }

    #[test]
    fn admission_draw_tracks_probability() {
        let c = SharedControl::new(table(vec![1.0, 2.0]));
        c.publish(0, &[0.5, 0.5], Some(&[1.0, 0.25]));
        let admitted = (0..40_000).filter(|_| c.admit(1)).count() as f64 / 40_000.0;
        assert!((admitted - 0.25).abs() < 0.02, "admitted fraction {admitted}");
        assert!((0..100).all(|_| c.admit(0)), "protected class never sheds");
        c.publish(0, &[0.5, 0.5], Some(&[1.0, 0.0]));
        assert!((0..100).all(|_| !c.admit(1)), "p = 0 sheds everything");
    }

    #[test]
    fn out_of_range_class_clamps_like_the_submit_path() {
        let c = SharedControl::new(table(vec![1.0, 2.0]));
        c.publish(0, &[0.5, 0.5], Some(&[1.0, 0.0]));
        assert!(!c.admit(99), "clamped to the last (shedding) class");
    }
}
