//! The unified PSD control plane — **the single home of every rate
//! decision in the workspace**.
//!
//! The contract ([`RateController`], [`WindowObservation`],
//! [`ControlDirective`]) lives in the dependency-free `psd-control`
//! crate and is re-exported here; this module adds every concrete
//! controller and the composition/runtime machinery, so the exact same
//! stack drives the discrete-event simulator (`psd-desim`) *and* the
//! live server (`psd-server`):
//!
//! * [`open`] — the paper's open-loop Eq. 17 allocator behind a
//!   windowed load estimator ([`PsdController`], plus the
//!   heterogeneous-moments variant).
//! * [`feedback`] — the closed-loop extension (§6 future work): an
//!   integral controller on measured per-class slowdowns;
//!   `gain = 0` reduces *exactly* to the open loop.
//! * [`admission`] — utilization-capped admission probabilities,
//!   shedding the lowest classes first.
//! * [`Admitting`] — composes admission with **any** controller by
//!   overriding [`RateController::control`] to attach
//!   `admit_probability` to the directive.
//! * [`ControllerKind`] / [`build_controller`] — the one factory every
//!   CLI and the server monitor use (`--controller {open,feedback}`,
//!   `--gain`, `--admission-cap`).
//! * [`SharedControl`] — the lock-light runtime surface between the
//!   monitor, the submit path and the admin endpoints: atomic
//!   f64-bit rate/admission tables plus an epoch-stamped class table
//!   for hot reconfiguration without restart.
//!
//! The Eq. 17 allocation primitive itself
//! ([`crate::allocation::psd_rates_clamped`]) is only ever *called*
//! from inside this module — everything outside (server monitor, desim
//! engine, load drivers) goes through a [`RateController`].

pub mod admission;
mod admit;
pub mod feedback;
mod kind;
pub mod open;
mod shared;

pub use admission::{admission_probabilities, AdmissionDecision};
pub use admit::Admitting;
pub use feedback::{FeedbackParams, FeedbackPsdController};
pub use kind::{build_controller, ControllerKind};
pub use open::{ControllerParams, HeterogeneousPsdController, PsdController};
pub use psd_control::{ControlDirective, RateController, StaticRates, WindowObservation};
pub use shared::{ClassTable, SharedControl};
