//! Feedback-augmented PSD controller — the paper's stated future work
//! (§6: "improving the performance of the rate-allocation strategy in
//! providing short-timescale differentiation predictability").
//!
//! The plain Eq. 17 controller is open loop: it acts "according to the
//! macro-behavior (class load) of a class rather than its
//! micro-behavior, such as experienced slowdowns of individual
//! requests" (§4.3). This extension closes the loop: each window's
//! *measured* per-class slowdowns are compared against the PSD target
//! (all `S_i/δ_i` equal), and an integral correction tilts the residual
//! capacity split toward classes running above target.
//!
//! Design:
//!
//! * base allocation: `r_i = ρ̂_i + residual · w_i / Σw_j` with
//!   `w_i = (λ̂_i/δ_i)·exp(g·I_i)` where `I_i` is the anti-windup-clamped
//!   integral of class `i`'s normalized-slowdown error;
//! * error of a window: `e_i = (S_i/δ_i) / mean_j(S_j/δ_j) − 1`,
//!   skipping classes with no departures;
//! * `g = 0` reduces *exactly* to the open-loop Eq. 17 controller.

use psd_control::{RateController, WindowObservation};

use crate::control::open::ControllerParams;
use crate::estimator::LoadEstimator;

/// Tuning for the feedback extension.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackParams {
    /// Open-loop (estimator/allocator) parameters.
    pub base: ControllerParams,
    /// Integral gain `g ≥ 0`; 0 disables the feedback path.
    pub gain: f64,
    /// Clamp on the integral term (anti-windup), in natural-log units of
    /// residual-share tilt.
    pub integral_clamp: f64,
}

impl Default for FeedbackParams {
    fn default() -> Self {
        Self { base: ControllerParams::default(), gain: 0.3, integral_clamp: 1.5 }
    }
}

/// The closed-loop controller.
#[derive(Debug, Clone)]
pub struct FeedbackPsdController {
    deltas: Vec<f64>,
    mean_service: f64,
    params: FeedbackParams,
    estimator: LoadEstimator,
    /// Integral of the normalized slowdown error per class.
    integral: Vec<f64>,
    nominal_lambdas: Option<Vec<f64>>,
}

impl FeedbackPsdController {
    /// Build the controller.
    pub fn new(deltas: Vec<f64>, mean_service: f64, params: FeedbackParams) -> Self {
        assert!(!deltas.is_empty(), "at least one class");
        assert!(deltas.iter().all(|&d| d.is_finite() && d > 0.0), "deltas must be positive");
        assert!(mean_service.is_finite() && mean_service > 0.0, "bad mean service time");
        assert!(params.gain >= 0.0 && params.gain.is_finite(), "gain must be >= 0");
        assert!(params.integral_clamp > 0.0, "clamp must be positive");
        let n = deltas.len();
        let estimator = LoadEstimator::new(n, params.base.estimator_history);
        Self {
            deltas,
            mean_service,
            params,
            estimator,
            integral: vec![0.0; n],
            nominal_lambdas: None,
        }
    }

    /// Warm-start with nominal arrival rates (like the base controller).
    pub fn with_nominal_lambdas(mut self, lambdas: Vec<f64>) -> Self {
        assert_eq!(lambdas.len(), self.deltas.len(), "class count mismatch");
        self.nominal_lambdas = Some(lambdas);
        self
    }

    /// Current integral terms (for tests and monitoring).
    pub fn integral_terms(&self) -> &[f64] {
        &self.integral
    }

    fn update_integral(&mut self, window: &WindowObservation) {
        let means = window.mean_slowdowns();
        // Normalized slowdowns x_i = S_i/δ_i for classes with data.
        let xs: Vec<Option<f64>> =
            means.iter().zip(&self.deltas).map(|(m, d)| m.map(|s| s / d)).collect();
        let present: Vec<f64> = xs.iter().filter_map(|x| *x).collect();
        if present.len() < 2 {
            return; // no cross-class information in this window
        }
        let mean_x = present.iter().sum::<f64>() / present.len() as f64;
        if mean_x <= 0.0 {
            return;
        }
        let clamp = self.params.integral_clamp;
        for (i, x) in xs.iter().enumerate() {
            if let Some(x) = x {
                let err = x / mean_x - 1.0;
                // err > 0: class i is running slower than its entitlement
                // ⇒ positive integral ⇒ more residual share.
                self.integral[i] = (self.integral[i] + self.params.gain * err).clamp(-clamp, clamp);
            }
        }
    }

    fn allocate(&self, lambdas: &[f64]) -> Vec<f64> {
        let n = self.deltas.len();
        let rho: f64 = lambdas.iter().map(|l| l * self.mean_service).sum();
        if rho >= 1.0 - self.params.base.overload_margin {
            // Same overload fallback as the open-loop controller.
            if rho == 0.0 {
                return vec![1.0 / n as f64; n];
            }
            return lambdas.iter().map(|l| l * self.mean_service / rho).collect();
        }
        let weights: Vec<f64> = lambdas
            .iter()
            .zip(&self.deltas)
            .zip(&self.integral)
            .map(|((l, d), i)| l / d * i.exp())
            .collect();
        let wsum: f64 = weights.iter().sum();
        let residual = 1.0 - rho;
        let mut rates: Vec<f64> = if wsum == 0.0 {
            vec![1.0 / n as f64; n]
        } else {
            lambdas
                .iter()
                .zip(&weights)
                .map(|(l, w)| l * self.mean_service + residual * w / wsum)
                .collect()
        };
        // Floor + renormalize (same contract as psd_rates_clamped).
        let min_rate = self.params.base.min_rate;
        if min_rate > 0.0 {
            let mut sum = 0.0;
            for r in &mut rates {
                *r = r.max(min_rate);
                sum += *r;
            }
            for r in &mut rates {
                *r /= sum;
            }
        }
        rates
    }
}

impl RateController for FeedbackPsdController {
    fn initial_rates(&mut self, n_classes: usize) -> Vec<f64> {
        assert_eq!(n_classes, self.deltas.len(), "class count mismatch");
        match &self.nominal_lambdas {
            Some(l) => {
                let l = l.clone();
                self.allocate(&l)
            }
            None => vec![1.0 / n_classes as f64; n_classes],
        }
    }

    fn reallocate(&mut self, _now: f64, window: &WindowObservation) -> Option<Vec<f64>> {
        self.update_integral(window);
        self.estimator.observe(&window.arrival_rates());
        let est = self.estimator.estimate().expect("just observed a window");
        Some(self.allocate(&est))
    }

    fn internals(&self) -> Vec<(String, Vec<f64>)> {
        vec![("integral_terms".to_string(), self.integral.clone())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::psd_rates_clamped;

    fn window_with_slowdowns(arrivals: Vec<u64>, slowdowns: Vec<Option<f64>>) -> WindowObservation {
        let n = arrivals.len();
        let completions: Vec<u64> =
            slowdowns.iter().map(|s| if s.is_some() { 10 } else { 0 }).collect();
        let slowdown_sums: Vec<f64> =
            slowdowns.iter().map(|s| s.map_or(0.0, |x| x * 10.0)).collect();
        WindowObservation {
            index: 0,
            start: 0.0,
            end: 1000.0,
            arrivals,
            arrived_work: vec![0.0; n],
            shed_work: vec![0.0; n],
            completions,
            backlog: vec![0; n],
            slowdown_sums,
        }
    }

    #[test]
    fn zero_gain_reduces_to_open_loop() {
        let ex = 0.29;
        let params = FeedbackParams { gain: 0.0, ..Default::default() };
        let mut fb = FeedbackPsdController::new(vec![1.0, 2.0], ex, params);
        fb.initial_rates(2);
        // Window where class 1 is far above its entitlement — must be
        // ignored at gain 0.
        let w = window_with_slowdowns(vec![500, 500], vec![Some(1.0), Some(9.0)]);
        let got = fb.reallocate(1000.0, &w).unwrap();
        let want = psd_rates_clamped(&[0.5, 0.5], &[1.0, 2.0], ex, 1e-4, 0.02).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "gain 0 must match Eq.17: {got:?} vs {want:?}");
        }
        assert!(fb.integral_terms().iter().all(|&i| i == 0.0));
    }

    #[test]
    fn lagging_class_gains_share() {
        let ex = 0.29;
        let mut fb = FeedbackPsdController::new(vec![1.0, 2.0], ex, FeedbackParams::default());
        fb.initial_rates(2);
        // Class 1's normalized slowdown (9/2 = 4.5) far exceeds class
        // 0's (1.0): the controller should raise class 1's share
        // relative to the open-loop split.
        let w = window_with_slowdowns(vec![500, 500], vec![Some(1.0), Some(9.0)]);
        let got = fb.reallocate(1000.0, &w).unwrap();
        let open = psd_rates_clamped(&[0.5, 0.5], &[1.0, 2.0], ex, 1e-4, 0.02).unwrap();
        assert!(got[1] > open[1], "feedback must boost the lagging class: {got:?} vs {open:?}");
        assert!(fb.integral_terms()[1] > 0.0);
        assert!(fb.integral_terms()[0] < 0.0);
    }

    #[test]
    fn integral_clamped() {
        let ex = 0.29;
        let params = FeedbackParams { gain: 10.0, integral_clamp: 0.5, ..Default::default() };
        let mut fb = FeedbackPsdController::new(vec![1.0, 2.0], ex, params);
        fb.initial_rates(2);
        for _ in 0..50 {
            let w = window_with_slowdowns(vec![500, 500], vec![Some(1.0), Some(99.0)]);
            fb.reallocate(1000.0, &w);
        }
        assert!(fb.integral_terms()[1] <= 0.5 + 1e-12, "anti-windup clamp");
        assert!(fb.integral_terms()[0] >= -0.5 - 1e-12);
    }

    #[test]
    fn empty_window_leaves_integral_untouched() {
        let ex = 0.29;
        let mut fb = FeedbackPsdController::new(vec![1.0, 2.0], ex, FeedbackParams::default());
        fb.initial_rates(2);
        let w = window_with_slowdowns(vec![0, 500], vec![None, Some(3.0)]);
        fb.reallocate(1000.0, &w);
        assert_eq!(fb.integral_terms(), &[0.0, 0.0], "needs two classes with data");
    }

    #[test]
    fn rates_always_sum_to_one() {
        let ex = 0.29;
        let mut fb = FeedbackPsdController::new(vec![1.0, 2.0, 3.0], ex, FeedbackParams::default());
        fb.initial_rates(3);
        for round in 0..20 {
            let w = window_with_slowdowns(
                vec![300 + round * 10, 200, 100],
                vec![Some(1.0 + round as f64), Some(2.0), Some(7.0)],
            );
            let r = fb.reallocate(1000.0, &w).unwrap();
            let sum: f64 = r.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "round {round}: sum {sum}");
            assert!(r.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn overload_fallback_engages() {
        let ex = 0.5;
        let mut fb = FeedbackPsdController::new(vec![1.0, 2.0], ex, FeedbackParams::default());
        fb.initial_rates(2);
        let w = window_with_slowdowns(vec![3000, 3000], vec![Some(5.0), Some(10.0)]);
        let r = fb.reallocate(1000.0, &w).unwrap();
        assert!((r[0] - 0.5).abs() < 1e-9, "load-proportional under overload: {r:?}");
    }
}
