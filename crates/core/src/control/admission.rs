//! Utilization-capped admission control — the complementary mechanism
//! the related work (§5: Abdelzaher et al., Lee et al.) combines with
//! scheduling. Eq. 17 has no feasible solution when `ρ ≥ 1`; an
//! admission controller restores feasibility by shedding load,
//! preferring to drop from the *lowest* classes first so the premium
//! classes keep their PSD guarantees under overload.

/// Per-class admission probabilities that bring total utilization under
/// a cap.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionDecision {
    /// Probability of admitting a class-`i` request, in `[0, 1]`.
    pub admit_probability: Vec<f64>,
    /// Utilization after shedding.
    pub admitted_load: f64,
    /// Utilization before shedding.
    pub offered_load: f64,
}

impl AdmissionDecision {
    /// True if any class is being shed.
    pub fn is_shedding(&self) -> bool {
        self.admit_probability.iter().any(|&p| p < 1.0)
    }
}

/// Compute admission probabilities.
///
/// * `loads` — per-class offered loads `ρ_i = λ_i·E[X]`, class 0 first
///   (highest class; shed last).
/// * `cap` — target maximum total utilization, `0 < cap < 1`.
///
/// Strategy: walk classes from the lowest (end of the slice) upward,
/// shedding each class as much as needed (possibly fully) until the
/// admitted load fits under the cap. Higher classes are only touched
/// once every lower class is fully shed.
pub fn admission_probabilities(loads: &[f64], cap: f64) -> AdmissionDecision {
    assert!(!loads.is_empty(), "at least one class");
    assert!(cap > 0.0 && cap < 1.0, "cap must be in (0,1), got {cap}");
    assert!(
        loads.iter().all(|&l| l.is_finite() && l >= 0.0),
        "loads must be finite and non-negative"
    );
    let offered: f64 = loads.iter().sum();
    let mut admit = vec![1.0; loads.len()];
    let mut excess = offered - cap;
    if excess > 0.0 {
        for (i, &load) in loads.iter().enumerate().rev() {
            if excess <= 0.0 {
                break;
            }
            if load <= 0.0 {
                continue;
            }
            let shed = excess.min(load);
            admit[i] = 1.0 - shed / load;
            excess -= shed;
        }
        // If even full shedding cannot fit (cap < highest class's load),
        // the highest class keeps whatever fraction fits.
    }
    let admitted: f64 = loads.iter().zip(&admit).map(|(l, p)| l * p).sum();
    AdmissionDecision { admit_probability: admit, admitted_load: admitted, offered_load: offered }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_cap_admits_everything() {
        let d = admission_probabilities(&[0.3, 0.3], 0.9);
        assert_eq!(d.admit_probability, vec![1.0, 1.0]);
        assert!(!d.is_shedding());
        assert!((d.admitted_load - 0.6).abs() < 1e-12);
    }

    #[test]
    fn sheds_lowest_class_first() {
        // Offered 1.2, cap 0.9: shed 0.3, all from class 2.
        let d = admission_probabilities(&[0.4, 0.4, 0.4], 0.9);
        assert_eq!(d.admit_probability[0], 1.0);
        assert_eq!(d.admit_probability[1], 1.0);
        assert!((d.admit_probability[2] - 0.25).abs() < 1e-12);
        assert!((d.admitted_load - 0.9).abs() < 1e-12);
        assert!(d.is_shedding());
    }

    #[test]
    fn cascades_to_middle_class() {
        // Offered 1.5, cap 0.7: shed 0.8 = all of class 2 (0.5) + 0.3 of
        // class 1.
        let d = admission_probabilities(&[0.5, 0.5, 0.5], 0.7);
        assert_eq!(d.admit_probability[0], 1.0);
        assert!((d.admit_probability[1] - 0.4).abs() < 1e-12);
        assert!((d.admit_probability[2] - 0.0).abs() < 1e-12);
        assert!((d.admitted_load - 0.7).abs() < 1e-12);
    }

    #[test]
    fn extreme_overload_trims_top_class_too() {
        let d = admission_probabilities(&[0.8, 0.8], 0.6);
        assert_eq!(d.admit_probability[1], 0.0);
        assert!((d.admit_probability[0] - 0.75).abs() < 1e-12);
        assert!((d.admitted_load - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_load_classes_skipped() {
        let d = admission_probabilities(&[0.5, 0.0, 0.6], 0.8);
        assert_eq!(d.admit_probability[1], 1.0, "nothing to shed");
        assert!((d.admitted_load - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cap must be in (0,1)")]
    fn cap_validated() {
        admission_probabilities(&[0.5], 1.0);
    }
}
