//! [`ControllerKind`] and [`build_controller`] — the one factory the
//! server monitor, `psd_httpd`, `psd_loadtest` and the tests all use to
//! construct a controller stack, so "which controller runs" is a value
//! (`--controller {open,feedback}`) instead of hard-wired code.

use psd_control::RateController;

use crate::control::admit::Admitting;
use crate::control::feedback::{FeedbackParams, FeedbackPsdController};
use crate::control::open::{ControllerParams, PsdController};

/// Which rate-controller family drives the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerKind {
    /// The paper's open-loop Eq. 17 allocator (load estimator only).
    Open,
    /// The slowdown-feedback extension; with `gain = 0` it is
    /// *bit-identical* to [`ControllerKind::Open`].
    Feedback,
}

impl ControllerKind {
    /// Parse a CLI token (`open` | `feedback`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "open" => Some(ControllerKind::Open),
            "feedback" => Some(ControllerKind::Feedback),
            _ => None,
        }
    }

    /// The CLI token for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ControllerKind::Open => "open",
            ControllerKind::Feedback => "feedback",
        }
    }
}

/// Build the controller stack for `kind`: the base controller, wrapped
/// in [`Admitting`] when `admission_cap` is set. `gain` only affects
/// [`ControllerKind::Feedback`]; `estimator_history` is the paper's
/// 5-window moving average by default.
pub fn build_controller(
    kind: ControllerKind,
    deltas: &[f64],
    mean_service: f64,
    gain: f64,
    estimator_history: usize,
    admission_cap: Option<f64>,
) -> Box<dyn RateController + Send> {
    let params = ControllerParams { estimator_history, ..ControllerParams::default() };
    let base: Box<dyn RateController + Send> = match kind {
        ControllerKind::Open => Box::new(PsdController::new(deltas.to_vec(), mean_service, params)),
        ControllerKind::Feedback => Box::new(FeedbackPsdController::new(
            deltas.to_vec(),
            mean_service,
            FeedbackParams { base: params, gain, ..FeedbackParams::default() },
        )),
    };
    match admission_cap {
        None => base,
        Some(cap) => Box::new(Admitting::new(base, cap, estimator_history)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_control::WindowObservation;

    #[test]
    fn parse_roundtrips() {
        for kind in [ControllerKind::Open, ControllerKind::Feedback] {
            assert_eq!(ControllerKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(ControllerKind::parse("closed"), None);
    }

    #[test]
    fn factory_builds_every_combination() {
        let w = WindowObservation {
            index: 0,
            start: 0.0,
            end: 1.0,
            arrivals: vec![100, 100],
            arrived_work: vec![0.3, 0.3],
            shed_work: vec![0.0; 2],
            completions: vec![90, 90],
            backlog: vec![1, 1],
            slowdown_sums: vec![90.0, 180.0],
        };
        for kind in [ControllerKind::Open, ControllerKind::Feedback] {
            for cap in [None, Some(0.9)] {
                let mut c = build_controller(kind, &[1.0, 2.0], 0.002, 0.3, 5, cap);
                let init = c.initial_rates(2);
                assert!((init.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                let d = c.control(1.0, &w);
                let rates = d.rates.expect("both families re-allocate every window");
                assert!((rates.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                assert_eq!(d.admit_probability, None, "load 0.6 is under every cap here");
            }
        }
    }

    #[test]
    fn factory_cap_sheds_under_overload() {
        let w = WindowObservation {
            index: 0,
            start: 0.0,
            end: 1.0,
            arrivals: vec![600, 600],
            arrived_work: vec![0.7, 0.7],
            shed_work: vec![0.0; 2],
            completions: vec![90, 90],
            backlog: vec![50, 80],
            slowdown_sums: vec![900.0, 1800.0],
        };
        let mut c = build_controller(ControllerKind::Open, &[1.0, 2.0], 0.001, 0.0, 5, Some(0.9));
        c.initial_rates(2);
        let d = c.control(1.0, &w);
        let p = d.admit_probability.expect("offered 1.4 > cap 0.9");
        assert_eq!(p[0], 1.0, "highest class protected");
        assert!(p[1] < 1.0, "lowest class sheds: {p:?}");
    }
}
