//! [`Admitting`] — admission control composed over any rate
//! controller.
//!
//! Eq. 17 has no feasible solution at ρ ≥ 1; the paper's related work
//! (§5) restores feasibility by shedding load at the door. This wrapper
//! makes that composition explicit: it forwards rate decisions to the
//! inner controller untouched, and attaches per-class admission
//! probabilities (from [`crate::control::admission`]) computed on the
//! estimator-smoothed *offered loads* of the observation windows —
//! shedding the lowest classes first so the premium classes keep their
//! PSD guarantees under overload.

use psd_control::{ControlDirective, RateController, WindowObservation};

use crate::control::admission::admission_probabilities;
use crate::estimator::LoadEstimator;

/// Admission control over an inner [`RateController`]. The outermost
/// wrapper owns the directive's `admit_probability` field (a nested
/// admission wrapper would be overwritten — don't nest them).
#[derive(Debug, Clone)]
pub struct Admitting<C> {
    inner: C,
    cap: f64,
    loads: Option<LoadEstimator>,
    history: usize,
}

impl<C: RateController> Admitting<C> {
    /// Wrap `inner`, targeting a total admitted utilization of `cap`
    /// (must be in `(0, 1)`). Offered loads are smoothed over
    /// `history` windows, like the paper's load estimator.
    pub fn new(inner: C, cap: f64, history: usize) -> Self {
        assert!(cap > 0.0 && cap < 1.0, "admission cap must be in (0,1), got {cap}");
        assert!(history > 0, "history must be at least one window");
        Self { inner, cap, loads: None, history }
    }

    /// The inner controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: RateController> RateController for Admitting<C> {
    fn initial_rates(&mut self, n_classes: usize) -> Vec<f64> {
        self.loads = Some(LoadEstimator::new(n_classes, self.history));
        self.inner.initial_rates(n_classes)
    }

    fn reallocate(&mut self, now: f64, window: &WindowObservation) -> Option<Vec<f64>> {
        self.inner.reallocate(now, window)
    }

    fn control(&mut self, now: f64, window: &WindowObservation) -> ControlDirective {
        let directive = self.inner.control(now, window);
        let loads = self
            .loads
            .get_or_insert_with(|| LoadEstimator::new(window.arrivals.len(), self.history));
        loads.observe(&window.offered_loads());
        let est = loads.estimate().expect("just observed a window");
        let decision = admission_probabilities(&est, self.cap);
        ControlDirective {
            rates: directive.rates,
            // `None` (admit everything) when under the cap, so hosts
            // can skip the per-request admission draw entirely.
            admit_probability: decision.is_shedding().then_some(decision.admit_probability),
        }
    }

    fn internals(&self) -> Vec<(String, Vec<f64>)> {
        let mut inner = self.inner.internals();
        if let Some(est) = self.loads.as_ref().and_then(|l| l.estimate()) {
            inner.push(("admission_offered_loads".to_string(), est));
        }
        inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_control::StaticRates;

    fn window(arrived_work: Vec<f64>) -> WindowObservation {
        let n = arrived_work.len();
        WindowObservation {
            index: 0,
            start: 0.0,
            end: 1.0,
            arrivals: vec![10; n],
            arrived_work,
            shed_work: vec![0.0; n],
            completions: vec![0; n],
            backlog: vec![0; n],
            slowdown_sums: vec![0.0; n],
        }
    }

    #[test]
    fn under_cap_admits_everything() {
        let mut a = Admitting::new(StaticRates::even(2), 0.9, 1);
        a.initial_rates(2);
        let d = a.control(1.0, &window(vec![0.3, 0.3]));
        assert_eq!(d.admit_probability, None, "under the cap: no admission table at all");
    }

    #[test]
    fn overload_sheds_lowest_class_first() {
        let mut a = Admitting::new(StaticRates::even(3), 0.9, 1);
        a.initial_rates(3);
        let d = a.control(1.0, &window(vec![0.4, 0.4, 0.4]));
        let p = d.admit_probability.expect("offered 1.2 > cap 0.9 must shed");
        assert_eq!(p[0], 1.0);
        assert_eq!(p[1], 1.0);
        assert!((p[2] - 0.25).abs() < 1e-12, "class 2 sheds the 0.3 excess: {p:?}");
    }

    #[test]
    fn smoothing_averages_offered_loads() {
        let mut a = Admitting::new(StaticRates::even(2), 0.9, 2);
        a.initial_rates(2);
        // One overloaded window followed by an idle one: the 2-window
        // average (0.6, 0.3) fits under the cap again.
        let d1 = a.control(1.0, &window(vec![1.2, 0.6]));
        assert!(d1.admit_probability.is_some());
        let d2 = a.control(2.0, &window(vec![0.0, 0.0]));
        assert_eq!(d2.admit_probability, None, "smoothed loads are under the cap");
    }

    #[test]
    fn rates_pass_through_unchanged() {
        let mut a = Admitting::new(StaticRates::even(2), 0.5, 1);
        let init = a.initial_rates(2);
        assert_eq!(init, vec![0.5, 0.5]);
        let d = a.control(1.0, &window(vec![0.9, 0.9]));
        assert_eq!(d.rates, None, "StaticRates never re-allocates");
        assert!(d.admit_probability.is_some());
    }

    #[test]
    #[should_panic(expected = "admission cap")]
    fn cap_validated() {
        Admitting::new(StaticRates::even(1), 1.0, 1);
    }
}
