//! [`PsdController`] — the paper's **open-loop** online rate allocator:
//! a [`LoadEstimator`] feeding [`crate::allocation::psd_rates_clamped`],
//! re-run at every control tick of whichever host drives it (the desim
//! engine or the live server monitor).

use crate::allocation::psd_rates_clamped;
use crate::estimator::LoadEstimator;
use psd_control::{RateController, WindowObservation};

/// Tuning knobs for the online controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerParams {
    /// Windows averaged by the load estimator (paper: 5).
    pub estimator_history: usize,
    /// Minimum rate guaranteed to every class (guards against transient
    /// zero-load estimates starving a class).
    pub min_rate: f64,
    /// Treat estimated total load above `1 − overload_margin` as
    /// overload and fall back to load-proportional shares.
    pub overload_margin: f64,
}

impl Default for ControllerParams {
    fn default() -> Self {
        Self { estimator_history: 5, min_rate: 1e-4, overload_margin: 0.02 }
    }
}

/// The paper's rate allocator as a plug-in simulator controller.
#[derive(Debug, Clone)]
pub struct PsdController {
    deltas: Vec<f64>,
    mean_service: f64,
    /// Nominal arrival rates used for the initial allocation, before any
    /// window has been observed (`None` ⇒ even initial split).
    nominal_lambdas: Option<Vec<f64>>,
    params: ControllerParams,
    estimator: LoadEstimator,
}

impl PsdController {
    /// Build a controller for classes with parameters `deltas`, serving
    /// a workload with full-rate mean service time `mean_service`.
    pub fn new(deltas: Vec<f64>, mean_service: f64, params: ControllerParams) -> Self {
        assert!(!deltas.is_empty(), "at least one class");
        assert!(deltas.iter().all(|&d| d.is_finite() && d > 0.0), "deltas must be positive");
        assert!(mean_service.is_finite() && mean_service > 0.0, "bad mean service time");
        let estimator = LoadEstimator::new(deltas.len(), params.estimator_history);
        Self { deltas, mean_service, nominal_lambdas: None, params, estimator }
    }

    /// Provide nominal arrival rates for a warm start (the paper's
    /// simulations know the offered load a priori; the estimator takes
    /// over as soon as the first window closes).
    pub fn with_nominal_lambdas(mut self, lambdas: Vec<f64>) -> Self {
        assert_eq!(lambdas.len(), self.deltas.len(), "class count mismatch");
        self.nominal_lambdas = Some(lambdas);
        self
    }

    fn allocate(&self, lambdas: &[f64]) -> Vec<f64> {
        psd_rates_clamped(
            lambdas,
            &self.deltas,
            self.mean_service,
            self.params.min_rate,
            self.params.overload_margin,
        )
        .expect("inputs validated at construction; clamped allocation is total")
    }
}

impl RateController for PsdController {
    fn initial_rates(&mut self, n_classes: usize) -> Vec<f64> {
        assert_eq!(n_classes, self.deltas.len(), "class count mismatch");
        match &self.nominal_lambdas {
            Some(l) => {
                let l = l.clone();
                self.allocate(&l)
            }
            None => vec![1.0 / n_classes as f64; n_classes],
        }
    }

    fn reallocate(&mut self, _now: f64, window: &WindowObservation) -> Option<Vec<f64>> {
        self.estimator.observe(&window.arrival_rates());
        let est = self.estimator.estimate().expect("just observed a window");
        Some(self.allocate(&est))
    }
}

/// Online controller for classes with **per-class service
/// distributions** (the heterogeneous extension of Eq. 17 — see
/// [`crate::allocation::psd_rates_heterogeneous`]). The paper's setting
/// (one shared Bounded Pareto) is the special case of identical moment
/// sets; session-style workloads where "checkout" and "search" requests
/// differ need this variant.
#[derive(Debug, Clone)]
pub struct HeterogeneousPsdController {
    deltas: Vec<f64>,
    moments: Vec<psd_dist::Moments>,
    params: ControllerParams,
    estimator: LoadEstimator,
}

impl HeterogeneousPsdController {
    /// Build from per-class differentiation parameters and service
    /// moments (each class must have finite `E[X²]` and `E[1/X]`).
    pub fn new(
        deltas: Vec<f64>,
        moments: Vec<psd_dist::Moments>,
        params: ControllerParams,
    ) -> Self {
        assert!(!deltas.is_empty(), "at least one class");
        assert_eq!(deltas.len(), moments.len(), "class count mismatch");
        assert!(deltas.iter().all(|&d| d.is_finite() && d > 0.0), "deltas must be positive");
        for (i, m) in moments.iter().enumerate() {
            assert!(m.mean.is_finite() && m.mean > 0.0, "class {i} bad mean");
            assert!(m.mean_inverse.is_some(), "class {i} has divergent E[1/X]");
            assert!(m.second_moment.is_finite(), "class {i} infinite E[X^2]");
        }
        let estimator = LoadEstimator::new(deltas.len(), params.estimator_history);
        Self { deltas, moments, params, estimator }
    }

    fn allocate(&self, lambdas: &[f64]) -> Vec<f64> {
        use crate::allocation::psd_rates_heterogeneous;
        let n = self.deltas.len();
        let rho: f64 = lambdas.iter().zip(&self.moments).map(|(l, m)| l * m.mean).sum();
        let mut rates = if rho >= 1.0 - self.params.overload_margin {
            // Overload: shares proportional to each class's offered load.
            if rho == 0.0 {
                vec![1.0 / n as f64; n]
            } else {
                lambdas.iter().zip(&self.moments).map(|(l, m)| l * m.mean / rho).collect()
            }
        } else {
            psd_rates_heterogeneous(lambdas, &self.deltas, &self.moments)
                .expect("moments validated at construction; load checked above")
        };
        let min_rate = self.params.min_rate;
        if min_rate > 0.0 {
            let mut sum = 0.0;
            for r in &mut rates {
                *r = r.max(min_rate);
                sum += *r;
            }
            for r in &mut rates {
                *r /= sum;
            }
        }
        rates
    }
}

impl RateController for HeterogeneousPsdController {
    fn initial_rates(&mut self, n_classes: usize) -> Vec<f64> {
        assert_eq!(n_classes, self.deltas.len(), "class count mismatch");
        vec![1.0 / n_classes as f64; n_classes]
    }

    fn reallocate(&mut self, _now: f64, window: &WindowObservation) -> Option<Vec<f64>> {
        self.estimator.observe(&window.arrival_rates());
        let est = self.estimator.estimate().expect("just observed a window");
        Some(self.allocate(&est))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_dist::{BoundedPareto, ServiceDistribution};

    fn window(arrivals: Vec<u64>, dur: f64) -> WindowObservation {
        let n = arrivals.len();
        WindowObservation {
            index: 0,
            start: 0.0,
            end: dur,
            arrivals,
            arrived_work: vec![0.0; n],
            shed_work: vec![0.0; n],
            completions: vec![0; n],
            backlog: vec![0; n],
            slowdown_sums: vec![0.0; n],
        }
    }

    #[test]
    fn initial_even_split_without_nominal() {
        let mut c = PsdController::new(vec![1.0, 2.0], 0.29, ControllerParams::default());
        assert_eq!(c.initial_rates(2), vec![0.5, 0.5]);
    }

    #[test]
    fn initial_warm_start_with_nominal() {
        let ex = BoundedPareto::paper_default().mean();
        let lambdas = vec![0.3 / ex, 0.3 / ex];
        let mut c = PsdController::new(vec![1.0, 2.0], ex, ControllerParams::default())
            .with_nominal_lambdas(lambdas.clone());
        let r = c.initial_rates(2);
        // Must match the clamped Eq.17 allocation.
        let want = psd_rates_clamped(&lambdas, &[1.0, 2.0], ex, 1e-4, 0.02).unwrap();
        assert_eq!(r, want);
        assert!(r[0] > r[1]);
    }

    #[test]
    fn reallocation_tracks_observed_rates() {
        let ex = 0.5;
        let mut c = PsdController::new(vec![1.0, 2.0], ex, ControllerParams::default());
        c.initial_rates(2);
        // 1000 time units, 600 arrivals class 0, 300 class 1.
        let r = c.reallocate(1000.0, &window(vec![600, 300], 1000.0)).unwrap();
        let want = psd_rates_clamped(&[0.6, 0.3], &[1.0, 2.0], ex, 1e-4, 0.02).unwrap();
        for (a, b) in r.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn estimator_smooths_across_windows() {
        let ex = 0.5;
        let mut c = PsdController::new(
            vec![1.0, 1.0],
            ex,
            ControllerParams { estimator_history: 2, ..Default::default() },
        );
        c.initial_rates(2);
        let r1 = c.reallocate(1.0, &window(vec![100, 100], 1000.0)).unwrap();
        // A burst in class 0; with history 2 the estimate is the mean of
        // (0.1, 0.5) = 0.3 vs class 1's 0.1.
        let r2 = c.reallocate(2.0, &window(vec![500, 100], 1000.0)).unwrap();
        assert!(r2[0] > r1[0], "rates shift toward the bursting class");
        let want = psd_rates_clamped(&[0.3, 0.1], &[1.0, 1.0], ex, 1e-4, 0.02).unwrap();
        assert!((r2[0] - want[0]).abs() < 1e-12);
    }

    #[test]
    fn overload_does_not_panic() {
        let mut c = PsdController::new(vec![1.0, 2.0], 0.5, ControllerParams::default());
        c.initial_rates(2);
        // Estimated ρ = (3+3)·0.5 = 3 ⇒ fallback path.
        let r = c.reallocate(1.0, &window(vec![3000, 3000], 1000.0)).unwrap();
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((r[0] - 0.5).abs() < 1e-9, "load-proportional fallback");
    }

    #[test]
    fn min_rate_floor_respected() {
        let mut c = PsdController::new(
            vec![1.0, 2.0],
            0.5,
            ControllerParams { min_rate: 0.05, ..Default::default() },
        );
        c.initial_rates(2);
        let r = c.reallocate(1.0, &window(vec![1000, 0], 1000.0)).unwrap();
        assert!(r[1] >= 0.049, "idle class keeps a floor rate: {r:?}");
    }

    #[test]
    #[should_panic(expected = "class count mismatch")]
    fn nominal_length_checked() {
        PsdController::new(vec![1.0, 2.0], 0.5, ControllerParams::default())
            .with_nominal_lambdas(vec![1.0]);
    }

    #[test]
    fn heterogeneous_controller_allocates_per_class_moments() {
        use psd_dist::Deterministic;
        let m_fast = Deterministic::new(0.2).unwrap().moments();
        let m_slow = Deterministic::new(2.0).unwrap().moments();
        let mut c = HeterogeneousPsdController::new(
            vec![1.0, 1.0],
            vec![m_fast, m_slow],
            ControllerParams::default(),
        );
        c.initial_rates(2);
        // Equal arrival *rates*, but class 1's jobs are 10x larger: its
        // raw requirement (and thus its rate) must dominate.
        let r = c.reallocate(1000.0, &window(vec![200, 200], 1000.0)).unwrap();
        assert!(r[1] > r[0], "bigger jobs need more capacity: {r:?}");
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Cross-check against the pure allocation.
        let want =
            crate::allocation::psd_rates_heterogeneous(&[0.2, 0.2], &[1.0, 1.0], &[m_fast, m_slow])
                .unwrap();
        for (a, b) in r.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "divergent E[1/X]")]
    fn heterogeneous_rejects_exponential_class() {
        let good = BoundedPareto::paper_default().moments();
        let bad = psd_dist::Exponential::new(1.0).unwrap().moments();
        HeterogeneousPsdController::new(
            vec![1.0, 2.0],
            vec![good, bad],
            ControllerParams::default(),
        );
    }
}
