//! Controller adaptivity under non-stationary traffic: load steps and
//! the closed-loop (feedback) extension.

use psd_core::config::PsdConfig;
use psd_core::controller::ControllerParams;
use psd_core::feedback::{FeedbackParams, FeedbackPsdController};
use psd_core::simulation::run_with_controller;
use psd_core::PsdController;
use psd_desim::{ArrivalSpec, ClassSpec, SimConfig, Simulation};
use psd_dist::{ServiceDist, ServiceDistribution};

/// After a 4x load step in class 0, the controller must shift capacity
/// toward it within a few estimator windows.
#[test]
fn controller_tracks_load_step() {
    let service = ServiceDist::paper_default();
    let ex = service.mean();
    let window = 1_000.0 * ex;
    let switch_at = 30.0 * window;
    let cfg = SimConfig {
        classes: vec![
            ClassSpec {
                arrival: ArrivalSpec::Step {
                    rate_before: 0.1 / ex,
                    rate_after: 0.4 / ex,
                    switch_at,
                },
                service: service.clone(),
            },
            ClassSpec { arrival: ArrivalSpec::Poisson { rate: 0.2 / ex }, service },
        ],
        end_time: 60.0 * window,
        warmup: 5.0 * window,
        control_period: window,
        seed: 2024,
        ..SimConfig::default()
    };
    let controller = PsdController::new(vec![1.0, 2.0], ex, ControllerParams::default())
        .with_nominal_lambdas(vec![0.1 / ex, 0.2 / ex]);
    let out = Simulation::new(cfg, Box::new(controller)).run();

    // Average class-0 rate in the stationary band before the step vs
    // well after it (allow 6 windows of estimator lag).
    let mean_rate0 = |from: f64, to: f64| {
        let vals: Vec<f64> = out
            .rate_history
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, r)| r[0])
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let before = mean_rate0(10.0 * window, switch_at);
    let after = mean_rate0(switch_at + 6.0 * window, 60.0 * window);
    assert!(
        after > before + 0.15,
        "class-0 share must grow after its load quadruples: {before:.3} -> {after:.3}"
    );
    // Conservation still holds at every reallocation.
    for (_, rates) in &out.rate_history {
        let sum: f64 = rates.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }
}

/// The closed-loop controller stays stable and achieves a ratio at
/// least as close to the target as the open-loop one on the same seeds.
#[test]
fn feedback_controller_end_to_end() {
    let cfg = PsdConfig::equal_load(&[1.0, 2.0], 0.7).with_horizon(30_000.0, 4_000.0);
    let ex = cfg.service.mean();
    let runs = 10u64;

    let ratio_with = |mk: &dyn Fn() -> Box<dyn psd_desim::RateController>| {
        let (mut s0, mut s1) = (0.0, 0.0);
        for seed in 0..runs {
            let r = run_with_controller(&cfg, 5_000 + seed, mk());
            s0 += r.classes[0].mean_slowdown.unwrap();
            s1 += r.classes[1].mean_slowdown.unwrap();
        }
        s1 / s0
    };

    let lambdas = cfg.lambdas();
    let open = ratio_with(&|| {
        Box::new(
            PsdController::new(vec![1.0, 2.0], ex, ControllerParams::default())
                .with_nominal_lambdas(lambdas.clone()),
        )
    });
    let closed = ratio_with(&|| {
        Box::new(
            FeedbackPsdController::new(vec![1.0, 2.0], ex, FeedbackParams::default())
                .with_nominal_lambdas(lambdas.clone()),
        )
    });

    // Both must differentiate in the right direction...
    assert!(open > 1.2, "open-loop ratio {open}");
    assert!(closed > 1.2, "closed-loop ratio {closed}");
    // ...and the feedback path must not blow the target out by more
    // than the open loop does (it corrects toward the target).
    let err_open = (open - 2.0).abs();
    let err_closed = (closed - 2.0).abs();
    assert!(
        err_closed < err_open + 0.5,
        "feedback should not be much worse: open err {err_open:.2}, closed err {err_closed:.2}"
    );
}

/// Gain 0 feedback equals the open-loop controller *exactly* on the
/// same simulation (bit-for-bit rate histories).
#[test]
fn zero_gain_feedback_is_open_loop() {
    let cfg = PsdConfig::equal_load(&[1.0, 2.0], 0.5).with_horizon(8_000.0, 1_000.0);
    let ex = cfg.service.mean();
    let lambdas = cfg.lambdas();
    let a = run_with_controller(
        &cfg,
        42,
        Box::new(
            PsdController::new(vec![1.0, 2.0], ex, ControllerParams::default())
                .with_nominal_lambdas(lambdas.clone()),
        ),
    );
    let b = run_with_controller(
        &cfg,
        42,
        Box::new(
            FeedbackPsdController::new(
                vec![1.0, 2.0],
                ex,
                psd_core::feedback::FeedbackParams { gain: 0.0, ..Default::default() },
            )
            .with_nominal_lambdas(lambdas),
        ),
    );
    assert_eq!(a, b, "gain-0 feedback must be indistinguishable from Eq.17");
}
