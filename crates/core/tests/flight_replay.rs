//! Flight-recorder replay: a control trace captured during a
//! simulation, serialized to the same JSON document the live server's
//! `GET /trace/control` serves, parses back and replays through a
//! *freshly constructed* identical controller with zero divergence —
//! the offline-debugging loop the observability layer promises
//! (record live, replay in the simulator, diff the decisions).

use psd_core::config::PsdConfig;
use psd_desim::{RateController, Simulation};
use psd_obs::{max_divergence, parse_traces, replay};

fn short_cfg() -> PsdConfig {
    PsdConfig::equal_load(&[1.0, 2.0], 0.6).with_horizon(8_000.0, 1_000.0)
}

/// Capture → JSON → parse → replay, end to end: the replayed
/// controller must reproduce every recorded directive exactly.
#[test]
fn sim_control_trace_replays_with_zero_divergence() {
    let cfg = short_cfg();
    let out = Simulation::new(cfg.sim_config(42), Box::new(cfg.controller())).run();
    assert!(!out.control_trace.is_empty(), "the sim must flight-record its control windows");
    assert_eq!(
        out.control_trace.len(),
        out.rate_history.len() - 1,
        "one trace per control window (rate_history also holds the initial allocation)"
    );

    let json = out.control_trace_json();
    let traces = parse_traces(&json).expect("the dump parses back");
    assert_eq!(traces.len(), out.control_trace.len());
    for (parsed, orig) in traces.iter().zip(&out.control_trace) {
        assert_eq!(parsed, orig, "JSON round-trip must be lossless");
    }

    // A fresh controller built the same way the sim's was: replay must
    // mirror the sim's startup sequence (initial_rates precedes the
    // first window) for the internal state to evolve identically.
    let mut fresh = cfg.controller();
    fresh.initial_rates(cfg.classes.len());
    let diffs = replay(&mut fresh, &traces);
    assert_eq!(diffs.len(), traces.len());
    let div = max_divergence(&diffs);
    assert!(div < 1e-12, "replayed decisions diverged by {div}");
}

/// Replaying through a *differently* tuned controller diverges — the
/// diff is a real comparison, not a tautology.
#[test]
fn replay_detects_a_mistuned_controller() {
    let cfg = short_cfg();
    let out = Simulation::new(cfg.sim_config(7), Box::new(cfg.controller())).run();
    let traces = parse_traces(&out.control_trace_json()).expect("parses");

    let mistuned = PsdConfig::equal_load(&[1.0, 4.0], 0.6).with_horizon(8_000.0, 1_000.0);
    let mut other = mistuned.controller();
    other.initial_rates(cfg.classes.len());
    let div = max_divergence(&replay(&mut other, &traces));
    assert!(div > 1e-6, "a δ = (1,4) controller should not reproduce the δ = (1,2) run");
}

/// Disabling the recorder (`flight_capacity = 0`) leaves the output
/// empty and the dump parseable.
#[test]
fn flight_capacity_zero_disables_recording() {
    let cfg = short_cfg();
    let mut sim_cfg = cfg.sim_config(42);
    sim_cfg.flight_capacity = 0;
    let out = Simulation::new(sim_cfg, Box::new(cfg.controller())).run();
    assert!(out.control_trace.is_empty());
    let traces = parse_traces(&out.control_trace_json()).expect("empty dump still parses");
    assert!(traces.is_empty());
}
