//! Property-based tests of the PSD allocation and model: Eq. 17's
//! invariants over randomized class counts, loads and differentiation
//! parameters.

use proptest::prelude::*;
use psd_core::allocation::{psd_rates, psd_rates_clamped, AllocationError};
use psd_core::estimator::LoadEstimator;
use psd_core::model::PsdModel;
use psd_dist::{BoundedPareto, ServiceDistribution};

/// Random class systems: (deltas, per-class loads) with total load < 1.
fn class_system() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (2usize..6).prop_flat_map(|n| {
        (proptest::collection::vec(0.2f64..16.0, n), proptest::collection::vec(0.01f64..1.0, n))
            .prop_map(|(deltas, raw)| {
                let total: f64 = raw.iter().sum();
                // Normalize to a random total load in (0.05, 0.95).
                let target = 0.05 + 0.9 * (total - total.floor()).abs().min(0.9);
                let loads: Vec<f64> = raw.iter().map(|r| r / total * target).collect();
                (deltas, loads)
            })
    })
}

fn moments() -> psd_dist::Moments {
    BoundedPareto::paper_default().moments()
}

proptest! {
    /// Eq. 17 rates always sum to exactly 1 and exceed each class's raw
    /// requirement (local stability).
    #[test]
    fn rates_partition_capacity((deltas, loads) in class_system()) {
        let m = moments();
        let lambdas: Vec<f64> = loads.iter().map(|l| l / m.mean).collect();
        let rates = psd_rates(&lambdas, &deltas, m.mean).unwrap();
        let sum: f64 = rates.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        for ((&r, &l), &load) in rates.iter().zip(&lambdas).zip(&loads) {
            prop_assert!(r > l * m.mean - 1e-12, "rate {r} below requirement {load}");
        }
    }

    /// The achieved model ratios are exactly the delta ratios, for any
    /// loads (the defining Eq. 16 property — *load independence*).
    #[test]
    fn ratios_are_load_independent((deltas, loads) in class_system()) {
        let m = moments();
        let lambdas: Vec<f64> = loads.iter().map(|l| l / m.mean).collect();
        let model = PsdModel::new(&deltas, m).unwrap();
        let s = model.expected_slowdowns(&lambdas).unwrap();
        for i in 1..deltas.len() {
            let want = deltas[i] / deltas[0];
            let got = s[i] / s[0];
            prop_assert!((got - want).abs() < 1e-9 * want.max(1.0), "class {i}: {got} vs {want}");
        }
    }

    /// Scaling every delta by a constant changes nothing (only ratios
    /// matter — the paper's controllability knob is relative).
    #[test]
    fn delta_scale_invariance((deltas, loads) in class_system(), scale in 0.1f64..10.0) {
        let m = moments();
        let lambdas: Vec<f64> = loads.iter().map(|l| l / m.mean).collect();
        let r1 = psd_rates(&lambdas, &deltas, m.mean).unwrap();
        let scaled: Vec<f64> = deltas.iter().map(|d| d * scale).collect();
        let r2 = psd_rates(&lambdas, &scaled, m.mean).unwrap();
        for (a, b) in r1.iter().zip(&r2) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Clamped allocation is total (never errors) for any non-negative
    /// load level, sums to 1, and respects the floor.
    #[test]
    fn clamped_allocation_is_total(
        (deltas, loads) in class_system(),
        overload_factor in 0.1f64..3.0,
        min_rate in 0.0f64..0.01,
    ) {
        let m = moments();
        let lambdas: Vec<f64> = loads.iter().map(|l| l * overload_factor / m.mean).collect();
        let rates = psd_rates_clamped(&lambdas, &deltas, m.mean, min_rate, 0.02).unwrap();
        let sum: f64 = rates.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        for &r in &rates {
            prop_assert!(r >= min_rate - 1e-12, "floor violated: {r} < {min_rate}");
        }
    }

    /// Infeasible loads are rejected by the strict allocator with the
    /// correct total in the error.
    #[test]
    fn infeasible_detected((deltas, loads) in class_system(), excess in 1.0f64..3.0) {
        let m = moments();
        let total: f64 = loads.iter().sum();
        let factor = excess / total; // pushes ρ to exactly `excess` ≥ 1
        let lambdas: Vec<f64> = loads.iter().map(|l| l * factor / m.mean).collect();
        match psd_rates(&lambdas, &deltas, m.mean) {
            Err(AllocationError::Infeasible { total_load }) => {
                prop_assert!((total_load - excess).abs() < 1e-6);
            }
            other => prop_assert!(false, "expected Infeasible, got {other:?}"),
        }
    }

    /// Property 2 (controllability), model-wide: raising one δ lowers
    /// every *other* class's expected slowdown.
    #[test]
    fn raising_delta_helps_others((deltas, loads) in class_system(), victim in 0usize..6, bump in 1.1f64..4.0) {
        let m = moments();
        let victim = victim % deltas.len();
        let lambdas: Vec<f64> = loads.iter().map(|l| l / m.mean).collect();
        let before = PsdModel::new(&deltas, m).unwrap().expected_slowdowns(&lambdas).unwrap();
        let mut bumped = deltas.clone();
        bumped[victim] *= bump;
        let after = PsdModel::new(&bumped, m).unwrap().expected_slowdowns(&lambdas).unwrap();
        for i in 0..deltas.len() {
            if i == victim {
                prop_assert!(after[i] > before[i] - 1e-12, "victim's slowdown rises");
            } else {
                prop_assert!(after[i] < before[i] + 1e-12, "others improve: {} -> {}", before[i], after[i]);
            }
        }
    }

    /// The estimator output is always inside the min/max envelope of its
    /// history window (it is a mean).
    #[test]
    fn estimator_within_envelope(
        windows in proptest::collection::vec(proptest::collection::vec(0.0f64..100.0, 3), 1..12),
        history in 1usize..8,
    ) {
        let mut e = LoadEstimator::new(3, history);
        for w in &windows {
            e.observe(w);
        }
        let est = e.estimate().unwrap();
        let held = &windows[windows.len().saturating_sub(history)..];
        for c in 0..3 {
            let min = held.iter().map(|w| w[c]).fold(f64::INFINITY, f64::min);
            let max = held.iter().map(|w| w[c]).fold(0.0f64, f64::max);
            prop_assert!(est[c] >= min - 1e-9 && est[c] <= max + 1e-9);
        }
    }
}
