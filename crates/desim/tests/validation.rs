//! Validation of the simulator against closed-form queueing theory.
//!
//! These are the "is the substrate trustworthy?" tests: the simulated
//! M/G/1 FCFS queues must match the Pollaczek–Khinchin delay and the
//! paper's Lemma 1 slowdown within sampling tolerance. If these fail,
//! nothing downstream (figures, allocation validation) means anything.

use psd_desim::{ClassSpec, SimConfig, Simulation, StaticRates};
use psd_dist::{BoundedPareto, Deterministic, ServiceDist, ServiceDistribution};
use psd_queueing::{Mg1Fcfs, TaskServerQueue};

fn run_single_class(
    service: ServiceDist,
    lambda: f64,
    rate: f64,
    seed: u64,
    end: f64,
) -> psd_desim::SimOutput {
    let cfg = SimConfig {
        classes: vec![ClassSpec::poisson(lambda, service)],
        end_time: end,
        warmup: end * 0.2,
        control_period: 1000.0,
        seed,
        ..SimConfig::default()
    };
    Simulation::new(cfg, Box::new(StaticRates::new(vec![rate]))).run()
}

/// Average a statistic over several independent replications.
fn replicate<F: Fn(u64) -> f64>(runs: u64, f: F) -> f64 {
    (0..runs).map(&f).sum::<f64>() / runs as f64
}

#[test]
fn md1_delay_matches_pollaczek_khinchin() {
    // M/D/1 at ρ = 0.5: E[W] = ρ·d/(2(1−ρ)) = 0.5.
    let d = Deterministic::new(1.0).unwrap();
    let analytic = Mg1Fcfs::new(0.5, d.moments()).unwrap().expected_delay().unwrap();
    let measured = replicate(5, |s| {
        run_single_class(ServiceDist::Deterministic(d.clone()), 0.5, 1.0, 1000 + s, 40_000.0)
            .per_class[0]
            .delay
            .mean()
    });
    let rel = (measured - analytic).abs() / analytic;
    assert!(rel < 0.05, "M/D/1 delay: simulated {measured} vs P-K {analytic}");
}

#[test]
fn md1_slowdown_matches_eq15() {
    // ρ = 0.7: E[S] = ρ/(2(1−ρ)) = 7/6.
    let d = Deterministic::new(1.0).unwrap();
    let analytic = 0.7 / (2.0 * 0.3);
    let measured = replicate(5, |s| {
        run_single_class(ServiceDist::Deterministic(d.clone()), 0.7, 1.0, 2000 + s, 40_000.0)
            .mean_slowdown(0)
            .unwrap()
    });
    let rel = (measured - analytic).abs() / analytic;
    assert!(rel < 0.05, "M/D/1 slowdown: simulated {measured} vs Eq.15 {analytic}");
}

#[test]
fn mgb1_slowdown_matches_lemma1() {
    // The paper's central closed form, at moderate load where sampling
    // noise of the heavy-tailed E[X²] is manageable.
    let bp = BoundedPareto::paper_default();
    let m = bp.moments();
    let load = 0.5;
    let lambda = load / m.mean;
    let analytic = Mg1Fcfs::new(lambda, m).unwrap().expected_slowdown().unwrap();
    let measured = replicate(16, |s| {
        run_single_class(ServiceDist::BoundedPareto(bp.clone()), lambda, 1.0, 3000 + s, 61_000.0)
            .mean_slowdown(0)
            .unwrap()
    });
    let rel = (measured - analytic).abs() / analytic;
    assert!(
        rel < 0.15,
        "M/G_B/1 slowdown at load {load}: simulated {measured} vs Lemma 1 {analytic} (rel {rel:.3})"
    );
}

#[test]
fn task_server_scaling_matches_theorem1() {
    // A half-rate task server fed at 20% machine load must match
    // Theorem 1's E[S_i] = λ·E[X²]·E[1/X]/(2(r − λE[X])).
    let bp = BoundedPareto::paper_default();
    let m = bp.moments();
    let lambda = 0.2 / m.mean;
    let rate = 0.5;
    let analytic = TaskServerQueue::new(lambda, rate, m).unwrap().expected_slowdown().unwrap();
    let measured = replicate(16, |s| {
        run_single_class(ServiceDist::BoundedPareto(bp.clone()), lambda, rate, 4000 + s, 61_000.0)
            .mean_slowdown(0)
            .unwrap()
    });
    let rel = (measured - analytic).abs() / analytic;
    assert!(
        rel < 0.15,
        "task-server slowdown: simulated {measured} vs Theorem 1 {analytic} (rel {rel:.3})"
    );
}

#[test]
fn utilization_conservation() {
    // Completed work per time ≈ offered load when stable.
    let bp = BoundedPareto::paper_default();
    let m = bp.moments();
    let load = 0.6;
    let lambda = load / m.mean;
    let out = run_single_class(ServiceDist::BoundedPareto(bp), lambda, 1.0, 7, 61_000.0);
    let mc = &out.per_class[0];
    // Mean service duration at full rate equals E[X] within tolerance.
    let rel = (mc.service.mean() - m.mean).abs() / m.mean;
    assert!(rel < 0.1, "mean service {} vs E[X] {}", mc.service.mean(), m.mean);
    // Arrival count consistent with λ·T.
    let expect = lambda * out.end_time;
    let got = mc.total_arrivals as f64;
    assert!((got - expect).abs() / expect < 0.05, "arrivals {got} vs {expect}");
}
