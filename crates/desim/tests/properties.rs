//! Property-based tests of the discrete-event engine: conservation,
//! FCFS ordering, causality and work accounting over randomized
//! configurations.

use proptest::prelude::*;
use psd_desim::{ArrivalSpec, ClassSpec, SimConfig, Simulation, StaticRates};
use psd_dist::{BoundedPareto, Deterministic, ServiceDist, UniformService};

fn service_dist() -> impl Strategy<Value = ServiceDist> {
    prop_oneof![
        (0.05f64..2.0).prop_map(|v| ServiceDist::Deterministic(Deterministic::new(v).unwrap())),
        (1.0f64..2.2, 0.01f64..0.5).prop_map(|(a, k)| ServiceDist::BoundedPareto(
            BoundedPareto::new(a, k, k * 500.0).unwrap()
        )),
        (0.05f64..1.0, 2.0f64..5.0)
            .prop_map(|(a, f)| ServiceDist::Uniform(UniformService::new(a, a * f).unwrap())),
    ]
}

fn two_class_config() -> impl Strategy<Value = SimConfig> {
    (
        service_dist(),
        service_dist(),
        0.05f64..2.0, // class-0 arrival rate
        0.05f64..2.0, // class-1 arrival rate
        any::<u64>(),
    )
        .prop_map(|(s0, s1, l0, l1, seed)| SimConfig {
            classes: vec![
                ClassSpec { arrival: ArrivalSpec::Poisson { rate: l0 }, service: s0 },
                ClassSpec { arrival: ArrivalSpec::Poisson { rate: l1 }, service: s1 },
            ],
            end_time: 500.0,
            warmup: 0.0,
            control_period: 50.0,
            seed,
            ..SimConfig::default()
        })
}

fn rates() -> impl Strategy<Value = Vec<f64>> {
    (0.05f64..0.95).prop_map(|r| vec![r, 1.0 - r])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: completions never exceed arrivals; delays and
    /// slowdowns are non-negative; busy time is within the horizon.
    #[test]
    fn conservation_and_causality(cfg in two_class_config(), r in rates()) {
        let end = cfg.end_time;
        let out = Simulation::new(cfg, Box::new(StaticRates::new(r))).run();
        for (c, m) in out.per_class.iter().enumerate() {
            prop_assert!(m.completed <= m.total_arrivals, "class {c} completed > arrived");
            if m.completed > 0 {
                prop_assert!(m.mean_delay().unwrap() >= 0.0);
                prop_assert!(m.mean_slowdown().unwrap() >= 0.0);
            }
            let busy = out.busy_time[c];
            prop_assert!(busy >= -1e-9 && busy <= end + 1e-6, "class {c} busy {busy} vs horizon {end}");
        }
    }

    /// The trace (when requested) is sorted by departure, within range,
    /// and FCFS within each class: departures of a class happen in
    /// arrival (id) order.
    #[test]
    fn trace_is_causal_and_fcfs(cfg in two_class_config(), r in rates()) {
        let mut cfg = cfg;
        cfg.trace_range = Some((0.0, cfg.end_time));
        let out = Simulation::new(cfg, Box::new(StaticRates::new(r))).run();
        let mut prev_depart = 0.0;
        let mut prev_id = [None::<u64>; 2];
        for t in &out.trace {
            prop_assert!(t.departure >= prev_depart - 1e-12, "departures out of order");
            prev_depart = t.departure;
            prop_assert!(t.departure >= t.arrival, "departed before arriving");
            prop_assert!(t.slowdown >= 0.0);
            if let Some(p) = prev_id[t.class] {
                prop_assert!(t.id > p, "class {} violated FCFS: id {} after {}", t.class, t.id, p);
            }
            prev_id[t.class] = Some(t.id);
        }
    }

    /// Determinism: identical configs and controllers give bit-identical
    /// outputs.
    #[test]
    fn engine_determinism(cfg in two_class_config(), r in rates()) {
        let a = Simulation::new(cfg.clone(), Box::new(StaticRates::new(r.clone()))).run();
        let b = Simulation::new(cfg, Box::new(StaticRates::new(r))).run();
        prop_assert_eq!(a.per_class[0].completed, b.per_class[0].completed);
        prop_assert_eq!(a.per_class[1].completed, b.per_class[1].completed);
        prop_assert_eq!(a.mean_slowdown(0), b.mean_slowdown(0));
        prop_assert_eq!(a.mean_slowdown(1), b.mean_slowdown(1));
        prop_assert_eq!(a.busy_time, b.busy_time);
    }

    /// Giving a class a larger static rate can only improve (or tie) its
    /// own completions.
    #[test]
    fn more_rate_no_fewer_completions(cfg in two_class_config(), r1 in 0.1f64..0.45) {
        let small = Simulation::new(cfg.clone(), Box::new(StaticRates::new(vec![r1, 1.0 - r1]))).run();
        let big_rate = r1 + 0.5;
        let big = Simulation::new(cfg, Box::new(StaticRates::new(vec![big_rate, 1.0 - big_rate]))).run();
        // Same arrival stream (same seed): the faster server finishes at
        // least as many class-0 requests.
        prop_assert!(
            big.per_class[0].completed + 1 >= small.per_class[0].completed,
            "{} vs {}",
            big.per_class[0].completed,
            small.per_class[0].completed
        );
    }

    /// Windows partition the measurement period: window counts sum to
    /// the total completions.
    #[test]
    fn windows_partition_completions(cfg in two_class_config(), r in rates()) {
        let out = Simulation::new(cfg, Box::new(StaticRates::new(r))).run();
        for m in &out.per_class {
            let window_sum: u64 = m.windows.iter().map(|w| w.count).sum();
            prop_assert_eq!(window_sum, m.completed);
        }
    }
}
