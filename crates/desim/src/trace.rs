//! Optional per-request tracing inside a time range — the data behind
//! the paper's short-timescale plots (Figs 7 and 8: slowdowns of
//! individual requests between t = 60 000 and t = 61 000).

use crate::request::CompletedRequest;

/// A traced departure.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Class index.
    pub class: usize,
    /// Request id.
    pub id: u64,
    /// Arrival time.
    pub arrival: f64,
    /// Departure time.
    pub departure: f64,
    /// Measured slowdown.
    pub slowdown: f64,
}

/// Records departures whose departure time falls in `[from, to)`.
#[derive(Debug)]
pub struct Tracer {
    from: f64,
    to: f64,
    records: Vec<TraceRecord>,
}

impl Tracer {
    /// Trace departures in `[from, to)`.
    pub fn new(from: f64, to: f64) -> Self {
        assert!(to > from, "empty trace range");
        Self { from, to, records: Vec::new() }
    }

    /// Offer a departure to the tracer.
    pub fn offer(&mut self, done: &CompletedRequest) {
        if done.departure >= self.from && done.departure < self.to {
            self.records.push(TraceRecord {
                class: done.request.class,
                id: done.request.id,
                arrival: done.request.arrival,
                departure: done.departure,
                slowdown: done.slowdown(),
            });
        }
    }

    /// Consume the tracer, returning records in departure order.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    fn done(depart: f64) -> CompletedRequest {
        CompletedRequest {
            request: Request { id: 9, class: 1, size: 1.0, arrival: depart - 3.0 },
            service_start: depart - 1.0,
            departure: depart,
        }
    }

    #[test]
    fn range_filtering() {
        let mut t = Tracer::new(10.0, 20.0);
        t.offer(&done(5.0));
        t.offer(&done(10.0));
        t.offer(&done(19.999));
        t.offer(&done(20.0));
        let r = t.into_records();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].departure, 10.0);
        assert_eq!(r[0].slowdown, 2.0);
        assert_eq!(r[0].class, 1);
    }

    #[test]
    #[should_panic(expected = "empty trace range")]
    fn rejects_empty_range() {
        Tracer::new(5.0, 5.0);
    }
}
