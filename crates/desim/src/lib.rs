//! # psd-desim — discrete-event simulation of a PSD Internet server
//!
//! An event-driven reproduction of the paper's simulation model
//! (Fig. 1): per-class request generators feed per-class FCFS waiting
//! queues; one **task server** per class drains its queue at a
//! processing rate `r_i` assigned by a pluggable [`RateController`]
//! (the paper's "rate allocator"), re-invoked every control window with
//! that window's observations (the paper's "load estimator" inputs).
//!
//! Key modelling choices (documented in `DESIGN.md`):
//!
//! * **Normalized capacity** — the machine rate is 1.0 and task-server
//!   rates are fractions summing to ≤ 1.
//! * **Fluid task servers** — each server tracks the *remaining work* of
//!   the request in service; a rate change mid-service rescales the
//!   completion time (work-conserving, like the GPS abstraction the
//!   paper assumes). [`ServiceMode::PinnedRate`] freezes the rate at
//!   service start instead (used by the ablation benches).
//! * **Determinism** — all randomness flows from one experiment seed via
//!   SplitMix64-derived child streams.
//!
//! ```
//! use psd_desim::{ClassSpec, SimConfig, Simulation, StaticRates};
//! use psd_dist::ServiceDist;
//!
//! let cfg = SimConfig {
//!     classes: vec![
//!         ClassSpec::poisson(0.8, ServiceDist::paper_default()),
//!         ClassSpec::poisson(0.8, ServiceDist::paper_default()),
//!     ],
//!     end_time: 2_000.0,
//!     warmup: 200.0,
//!     control_period: 100.0,
//!     seed: 1,
//!     ..SimConfig::default()
//! };
//! let out = Simulation::new(cfg, Box::new(StaticRates::even(2))).run();
//! assert!(out.per_class[0].completed > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod controller;
mod engine;
mod events;
mod generator;
mod metrics;
mod request;
mod server;
pub mod session;
mod trace;

pub use controller::{ControlDirective, RateController, StaticRates, WindowObservation};
pub use engine::{ClassSpec, SimConfig, Simulation};
pub use generator::ArrivalSpec;
pub use metrics::{ClassMetrics, SimOutput, WindowStat};
pub use request::{CompletedRequest, Request};
pub use server::ServiceMode;
pub use session::{run_sessions, SessionConfig, SessionState};
pub use trace::TraceRecord;
