//! Closed-loop, session-based workload simulation (paper §2.2).
//!
//! "A session is a sequence of requests of different types made by a
//! single customer during a single visit to a site." The paper
//! motivates the M/D/1 reduction with session states (home entry,
//! register, …) whose requests take near-constant time. This module
//! simulates that structure *closed-loop*: a fixed population of users
//! cycles through a Markov chain of session states, thinks between
//! requests, and each state's requests are dispatched to the state's
//! service class — the PSD task servers and rate controller are the
//! same ones the open-loop engine uses.
//!
//! The closed loop matters: arrival rates now *respond* to the
//! allocation (slow service ⇒ users stuck waiting ⇒ fewer arrivals), a
//! regime the paper's open-loop analysis does not cover — this module
//! is how we probe it.

use std::collections::VecDeque;

use psd_dist::rng::{open01, SplitMix64, Xoshiro256pp};
use psd_dist::{ServiceDist, ServiceDistribution};

use crate::controller::{RateController, WindowObservation};
use crate::events::EventQueue;
use crate::metrics::{MetricsCollector, SimOutput};
use crate::request::{CompletedRequest, Request};
use crate::server::{ServiceMode, TaskServer};

/// One session state (e.g. "browse", "checkout").
#[derive(Debug, Clone)]
pub struct SessionState {
    /// Service class whose task server handles this state's requests.
    pub class: usize,
    /// Request size distribution in this state.
    pub service: ServiceDist,
    /// Mean think time before the user issues this state's request
    /// (exponentially distributed).
    pub mean_think: f64,
    /// Transition probabilities to each state after this request
    /// completes (row of the session Markov chain; must sum to 1).
    pub next: Vec<f64>,
}

/// Session-model simulation configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Session states (their `next` rows must index into this vec).
    pub states: Vec<SessionState>,
    /// Index of the state every (re-)started session begins in.
    pub initial_state: usize,
    /// Number of service classes (task servers).
    pub n_classes: usize,
    /// Concurrent user population (sessions restart on completion, so
    /// the population is constant — a TPC-W-style closed system).
    pub n_users: usize,
    /// Simulation horizon.
    pub end_time: f64,
    /// Warm-up cutoff for metrics.
    pub warmup: f64,
    /// Controller window.
    pub control_period: f64,
    /// Experiment seed.
    pub seed: u64,
}

impl SessionConfig {
    fn validate(&self) {
        assert!(!self.states.is_empty(), "need at least one session state");
        assert!(self.n_users > 0, "need at least one user");
        assert!(self.n_classes > 0, "need at least one class");
        assert!(self.initial_state < self.states.len(), "initial state out of range");
        assert!(self.end_time > self.warmup && self.warmup >= 0.0, "bad horizon");
        assert!(self.control_period > 0.0, "bad control period");
        for (i, s) in self.states.iter().enumerate() {
            assert!(
                s.class < self.n_classes,
                "state {i} routes to class {} >= {}",
                s.class,
                self.n_classes
            );
            assert!(s.mean_think >= 0.0 && s.mean_think.is_finite(), "state {i} bad think time");
            assert_eq!(s.next.len(), self.states.len(), "state {i} transition row length");
            let sum: f64 = s.next.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "state {i} transition row sums to {sum}");
            assert!(s.next.iter().all(|&p| p >= 0.0), "state {i} negative transition");
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum SessionEvent {
    /// User's think time ended; they issue their current state's request.
    Wake { user: usize },
    /// Task-server completion (same epoch protocol as the open engine).
    Completion { class: usize, epoch: u64 },
    /// Controller tick.
    Control,
}

struct UserState {
    state: usize,
}

/// Run a closed-loop session simulation under the given controller.
pub fn run_sessions(cfg: SessionConfig, mut controller: Box<dyn RateController>) -> SimOutput {
    cfg.validate();
    let n = cfg.n_classes;
    let initial_rates = controller.initial_rates(n);

    let mut rng = Xoshiro256pp::seed_from(SplitMix64::derive(cfg.seed, 0xC105ED));
    let mut servers: Vec<TaskServer> =
        initial_rates.iter().map(|&r| TaskServer::new(r, ServiceMode::Fluid)).collect();
    let mut queues: Vec<VecDeque<Request>> = (0..n).map(|_| VecDeque::new()).collect();
    // Which user each queued/in-service request belongs to.
    let mut owner: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut users: Vec<UserState> =
        (0..cfg.n_users).map(|_| UserState { state: cfg.initial_state }).collect();

    let mut metrics = MetricsCollector::new(n, cfg.warmup, cfg.control_period);
    let mut rate_history = vec![(0.0, initial_rates)];

    let mut events: EventQueue<SessionEvent> = EventQueue::new();

    // Initial think times stagger the users.
    for user in 0..cfg.n_users {
        let think = cfg.states[cfg.initial_state].mean_think;
        let t = if think > 0.0 { -open01(&mut rng).ln() * think } else { 0.0 };
        events.schedule(t, SessionEvent::Wake { user });
    }
    events.schedule(cfg.control_period, SessionEvent::Control);

    let mut window_index = 0u64;
    let mut window_start = 0.0;
    let mut win_arrivals = vec![0u64; n];
    let mut win_work = vec![0.0f64; n];
    let mut win_completions = vec![0u64; n];
    let mut win_slowdown_sums = vec![0.0f64; n];
    let mut next_id = 0u64;

    while let Some((now, event)) = events.pop() {
        if now > cfg.end_time {
            break;
        }
        match event {
            SessionEvent::Wake { user } => {
                // A user wakes and issues the request of their state.
                let state = users[user].state;
                let class = cfg.states[state].class;
                let size = cfg.states[state].service.sample(&mut rng);
                let req = Request { id: next_id, class, size, arrival: now };
                owner.insert(next_id, user);
                next_id += 1;
                metrics.on_arrival(class);
                win_arrivals[class] += 1;
                win_work[class] += size;
                if servers[class].is_busy() {
                    queues[class].push_back(req);
                } else if let Some((t, epoch)) = servers[class].start_service(req, now) {
                    events.schedule(t, SessionEvent::Completion { class, epoch });
                }
            }
            SessionEvent::Completion { class, epoch } => {
                if let Some(in_service) = servers[class].complete(now, epoch) {
                    let req_id = in_service.request.id;
                    let done = CompletedRequest {
                        request: in_service.request,
                        service_start: in_service.service_start,
                        departure: now,
                    };
                    metrics.on_departure(&done);
                    win_completions[class] += 1;
                    win_slowdown_sums[class] += done.slowdown();
                    // The owning user transitions and schedules their
                    // next request after a think time.
                    let user = owner.remove(&req_id).expect("owner tracked");
                    let state = users[user].state;
                    let u = open01(&mut rng);
                    let mut acc = 0.0;
                    let mut next_state = cfg.states.len() - 1;
                    for (j, &p) in cfg.states[state].next.iter().enumerate() {
                        acc += p;
                        if u < acc {
                            next_state = j;
                            break;
                        }
                    }
                    users[user].state = next_state;
                    let think = cfg.states[next_state].mean_think;
                    let gap = if think > 0.0 { -open01(&mut rng).ln() * think } else { 0.0 };
                    events.schedule(now + gap, SessionEvent::Wake { user });
                    // Start the next queued request of this class.
                    if let Some(next_req) = queues[class].pop_front() {
                        if let Some((t, epoch)) = servers[class].start_service(next_req, now) {
                            events.schedule(t, SessionEvent::Completion { class, epoch });
                        }
                    }
                }
            }
            SessionEvent::Control => {
                let obs = WindowObservation {
                    index: window_index,
                    start: window_start,
                    end: now,
                    arrivals: std::mem::take(&mut win_arrivals),
                    arrived_work: std::mem::take(&mut win_work),
                    shed_work: vec![0.0; n],
                    completions: std::mem::take(&mut win_completions),
                    backlog: (0..n)
                        .map(|c| queues[c].len() as u64 + u64::from(servers[c].is_busy()))
                        .collect(),
                    slowdown_sums: std::mem::take(&mut win_slowdown_sums),
                };
                win_arrivals = vec![0; n];
                win_work = vec![0.0; n];
                win_completions = vec![0; n];
                win_slowdown_sums = vec![0.0; n];
                window_index += 1;
                window_start = now;
                if let Some(rates) = controller.reallocate(now, &obs) {
                    assert_eq!(rates.len(), n);
                    let sum: f64 = rates.iter().sum();
                    assert!(sum <= 1.0 + 1e-6, "controller oversubscribed: {sum}");
                    for (c, server) in servers.iter_mut().enumerate() {
                        if let Some((t, epoch)) = server.set_rate(rates[c], now) {
                            events.schedule(t, SessionEvent::Completion { class: c, epoch });
                        }
                    }
                    rate_history.push((now, rates));
                }
                events.schedule(now + cfg.control_period, SessionEvent::Control);
            }
        }
    }

    let mut out = metrics.finish(cfg.end_time, rate_history);
    out.busy_time = servers.iter().map(|s| s.busy_time_as_of(cfg.end_time)).collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::StaticRates;
    use psd_dist::Deterministic;

    fn det(v: f64) -> ServiceDist {
        ServiceDist::Deterministic(Deterministic::new(v).unwrap())
    }

    /// Two-state store: browse (class 1) -> checkout (class 0) -> browse.
    fn two_state_cfg(n_users: usize, seed: u64) -> SessionConfig {
        SessionConfig {
            states: vec![
                SessionState {
                    class: 1,
                    service: det(0.5),
                    mean_think: 2.0,
                    next: vec![0.3, 0.7], // mostly keep browsing
                },
                SessionState {
                    class: 0,
                    service: det(1.0),
                    mean_think: 1.0,
                    next: vec![1.0, 0.0], // back to browsing
                },
            ],
            initial_state: 0,
            n_classes: 2,
            n_users,
            end_time: 5_000.0,
            warmup: 500.0,
            control_period: 100.0,
            seed,
        }
    }

    #[test]
    fn sessions_run_and_complete() {
        let out = run_sessions(two_state_cfg(20, 1), Box::new(StaticRates::even(2)));
        let total: u64 = out.per_class.iter().map(|m| m.completed).sum();
        assert!(total > 500, "closed loop must keep producing work, got {total}");
        assert!(out.per_class[0].completed > 0 && out.per_class[1].completed > 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = run_sessions(two_state_cfg(10, 7), Box::new(StaticRates::even(2)));
        let b = run_sessions(two_state_cfg(10, 7), Box::new(StaticRates::even(2)));
        assert_eq!(a.per_class[0].completed, b.per_class[0].completed);
        assert_eq!(a.mean_slowdown(1), b.mean_slowdown(1));
    }

    #[test]
    fn closed_loop_self_limits() {
        // Growing the population 100x grows throughput far less than
        // 100x once the server saturates (the defining closed-loop
        // property: arrivals throttle themselves).
        let small = run_sessions(two_state_cfg(2, 3), Box::new(StaticRates::even(2)));
        let big = run_sessions(two_state_cfg(200, 3), Box::new(StaticRates::even(2)));
        let tp = |o: &SimOutput| o.per_class.iter().map(|m| m.completed).sum::<u64>() as f64;
        assert!(tp(&big) > tp(&small), "more users, more throughput");
        assert!(
            tp(&big) < 50.0 * tp(&small),
            "but sub-linear at saturation: {} vs {}",
            tp(&big),
            tp(&small)
        );
    }

    #[test]
    fn user_population_conserved() {
        // Every user has at most one request in flight, so (with no
        // warm-up exclusion) arrivals can exceed completions only by
        // the population size.
        let mut cfg = two_state_cfg(8, 11);
        cfg.warmup = 0.0;
        let out = run_sessions(cfg, Box::new(StaticRates::even(2)));
        let arr: u64 = out.per_class.iter().map(|m| m.total_arrivals).sum();
        let done: u64 = out.per_class.iter().map(|m| m.completed).sum();
        assert!(arr >= done, "cannot finish what never arrived");
        assert!(arr <= done + 8, "at most population-many in flight: arr {arr} done {done}");
    }

    #[test]
    #[should_panic(expected = "transition row sums")]
    fn bad_transition_row_rejected() {
        let mut cfg = two_state_cfg(1, 1);
        cfg.states[0].next = vec![0.5, 0.2];
        run_sessions(cfg, Box::new(StaticRates::even(2)));
    }
}
