//! The simulation engine: wires generators, FCFS waiting queues, fluid
//! task servers, the rate controller and the metrics collector into the
//! structure of the paper's Figure 1.

use std::collections::VecDeque;

use psd_dist::rng::SplitMix64;
use psd_dist::ServiceDist;
use psd_obs::{ControlTrace, FlightRecorder};

use crate::controller::{RateController, WindowObservation};
use crate::events::{Event, EventQueue};
use crate::generator::{ArrivalSpec, Generator};
use crate::metrics::{MetricsCollector, SimOutput};
use crate::request::{CompletedRequest, Request};
use crate::server::{ServiceMode, TaskServer};
use crate::trace::Tracer;

/// Per-class workload specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Arrival process of the class.
    pub arrival: ArrivalSpec,
    /// Service-size distribution (full-rate work amounts).
    pub service: ServiceDist,
}

impl ClassSpec {
    /// Poisson arrivals at `rate` with the given service distribution —
    /// the paper's traffic model.
    pub fn poisson(rate: f64, service: ServiceDist) -> Self {
        Self { arrival: ArrivalSpec::Poisson { rate }, service }
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// One spec per class; class 0 is the highest class.
    pub classes: Vec<ClassSpec>,
    /// Absolute end of the simulation.
    pub end_time: f64,
    /// Departures before this instant are not measured (paper: 10 000).
    pub warmup: f64,
    /// Controller / estimator window (paper: 1000 time units).
    pub control_period: f64,
    /// Metrics window length; `None` uses `control_period` (the paper
    /// measures on the same 1000-unit grid it controls on).
    pub metrics_window: Option<f64>,
    /// Experiment seed; all class streams derive from it.
    pub seed: u64,
    /// Fluid (default) or pinned-rate task servers.
    pub service_mode: ServiceMode,
    /// If set, record every departure in `[from, to)` (paper Figs 7/8).
    pub trace_range: Option<(f64, f64)>,
    /// Control-decision flight-recorder depth: the last this many
    /// control windows (observation + directive + controller internals)
    /// are kept in [`SimOutput::control_trace`]. 0 disables recording.
    pub flight_capacity: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            classes: Vec::new(),
            end_time: 61_000.0,
            warmup: 10_000.0,
            control_period: 1_000.0,
            metrics_window: None,
            seed: 0,
            service_mode: ServiceMode::Fluid,
            trace_range: None,
            flight_capacity: 256,
        }
    }
}

impl SimConfig {
    fn validate(&self) {
        assert!(!self.classes.is_empty(), "at least one class required");
        assert!(self.end_time > 0.0 && self.end_time.is_finite(), "bad end_time");
        assert!(self.warmup >= 0.0 && self.warmup < self.end_time, "warmup must precede end_time");
        assert!(self.control_period > 0.0, "control period must be positive");
        for c in &self.classes {
            assert!(c.arrival.mean_rate() > 0.0, "class arrival rate must be positive");
        }
    }
}

struct ClassState {
    generator: Generator,
    queue: VecDeque<Request>,
    server: TaskServer,
}

/// One simulation run.
pub struct Simulation {
    config: SimConfig,
    controller: Box<dyn RateController>,
}

impl Simulation {
    /// Build a simulation from a config and a rate controller.
    pub fn new(config: SimConfig, controller: Box<dyn RateController>) -> Self {
        config.validate();
        Self { config, controller }
    }

    /// Execute the run to completion and return the report.
    pub fn run(mut self) -> SimOutput {
        let cfg = &self.config;
        let n = cfg.classes.len();
        let metrics_window = cfg.metrics_window.unwrap_or(cfg.control_period);

        let initial_rates = self.controller.initial_rates(n);
        validate_rates(&initial_rates, n);

        let mut classes: Vec<ClassState> = cfg
            .classes
            .iter()
            .enumerate()
            .map(|(i, spec)| ClassState {
                generator: Generator::new(
                    i,
                    &spec.arrival,
                    spec.service.clone(),
                    SplitMix64::derive(cfg.seed, i as u64 + 1),
                ),
                queue: VecDeque::new(),
                server: TaskServer::new(initial_rates[i], cfg.service_mode),
            })
            .collect();

        let mut metrics = MetricsCollector::new(n, cfg.warmup, metrics_window);
        let mut tracer = cfg.trace_range.map(|(a, b)| Tracer::new(a, b));
        let mut events = EventQueue::new();
        let mut rate_history = vec![(0.0, initial_rates)];
        let flight = (cfg.flight_capacity > 0).then(|| FlightRecorder::new(cfg.flight_capacity));

        for (i, c) in classes.iter().enumerate() {
            events.schedule(c.generator.next_arrival_time(), Event::Arrival { class: i });
        }
        events.schedule(cfg.control_period, Event::Control);

        // Window accounting for the controller's observations.
        let mut window_index: u64 = 0;
        let mut window_start = 0.0;
        let mut win_arrivals = vec![0u64; n];
        let mut win_work = vec![0.0f64; n];
        let mut win_completions = vec![0u64; n];
        let mut win_slowdown_sums = vec![0.0f64; n];

        let mut next_id: u64 = 0;
        let end = cfg.end_time;

        while let Some((now, event)) = events.pop() {
            if now > end {
                break;
            }
            match event {
                Event::Arrival { class } => {
                    let req = classes[class].generator.emit(next_id);
                    next_id += 1;
                    metrics.on_arrival(class);
                    win_arrivals[class] += 1;
                    win_work[class] += req.size;
                    let state = &mut classes[class];
                    if state.server.is_busy() {
                        state.queue.push_back(req);
                    } else {
                        debug_assert!(state.queue.is_empty(), "idle server with backlog");
                        if let Some((t, epoch)) = state.server.start_service(req, now) {
                            events.schedule(t, Event::Completion { class, epoch });
                        }
                    }
                    events.schedule(state.generator.next_arrival_time(), Event::Arrival { class });
                }
                Event::Completion { class, epoch } => {
                    let state = &mut classes[class];
                    if let Some(in_service) = state.server.complete(now, epoch) {
                        let done = CompletedRequest {
                            request: in_service.request,
                            service_start: in_service.service_start,
                            departure: now,
                        };
                        metrics.on_departure(&done);
                        if let Some(t) = tracer.as_mut() {
                            t.offer(&done);
                        }
                        win_completions[class] += 1;
                        win_slowdown_sums[class] += done.slowdown();
                        if let Some(next) = state.queue.pop_front() {
                            if let Some((t, epoch)) = state.server.start_service(next, now) {
                                events.schedule(t, Event::Completion { class, epoch });
                            }
                        }
                    }
                }
                Event::Control => {
                    let obs = WindowObservation {
                        index: window_index,
                        start: window_start,
                        end: now,
                        arrivals: std::mem::take(&mut win_arrivals),
                        arrived_work: std::mem::take(&mut win_work),
                        shed_work: vec![0.0; n],
                        completions: std::mem::take(&mut win_completions),
                        slowdown_sums: std::mem::take(&mut win_slowdown_sums),
                        backlog: classes
                            .iter()
                            .map(|c| c.queue.len() as u64 + u64::from(c.server.is_busy()))
                            .collect(),
                    };
                    win_arrivals = vec![0; n];
                    win_work = vec![0.0; n];
                    win_completions = vec![0; n];
                    win_slowdown_sums = vec![0.0; n];
                    window_index += 1;
                    window_start = now;

                    // The unified control entry point — the same call
                    // the live server's monitor makes. The simulator
                    // has no admission path, so a directive's
                    // `admit_probability` is ignored here (shedding is
                    // exercised end-to-end by `psd-server`/`psd-loadgen`).
                    let directive = self.controller.control(now, &obs);
                    if let Some(rates) = &directive.rates {
                        validate_rates(rates, n);
                        for (i, state) in classes.iter_mut().enumerate() {
                            if let Some((t, epoch)) = state.server.set_rate(rates[i], now) {
                                events.schedule(t, Event::Completion { class: i, epoch });
                            }
                        }
                        rate_history.push((now, rates.clone()));
                    }
                    // Flight-record the decision exactly as the live
                    // server's monitor does, so a simulated run and a
                    // live trace are diffable window by window.
                    if let Some(f) = &flight {
                        f.record(ControlTrace {
                            at_s: now,
                            epoch: obs.index,
                            applied_rates: rate_history
                                .last()
                                .map(|(_, r)| r.clone())
                                .unwrap_or_default(),
                            internals: self.controller.internals(),
                            observation: obs,
                            directive,
                        });
                    }
                    events.schedule(now + cfg.control_period, Event::Control);
                }
            }
        }

        let mut out = metrics.finish(end, rate_history);
        if let Some(t) = tracer {
            out.trace = t.into_records();
        }
        if let Some(f) = flight {
            out.control_trace = f.snapshot();
        }
        out.busy_time = classes.iter().map(|c| c.server.busy_time_as_of(end)).collect();
        out
    }
}

fn validate_rates(rates: &[f64], n: usize) {
    assert_eq!(rates.len(), n, "controller returned {} rates for {} classes", rates.len(), n);
    let mut sum = 0.0;
    for &r in rates {
        assert!(r.is_finite() && r >= 0.0, "controller produced invalid rate {r}");
        sum += r;
    }
    assert!(sum <= 1.0 + 1e-6, "controller oversubscribed the server: Σr = {sum}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::StaticRates;
    use psd_dist::{Deterministic, ServiceDist};

    fn det_service(v: f64) -> ServiceDist {
        ServiceDist::Deterministic(Deterministic::new(v).unwrap())
    }

    /// D/D/1 below saturation: every request finds an empty system, so
    /// every slowdown is exactly zero.
    #[test]
    fn dd1_below_saturation_zero_slowdown() {
        let cfg = SimConfig {
            classes: vec![ClassSpec {
                arrival: ArrivalSpec::Deterministic { interval: 2.0 },
                service: det_service(0.5),
            }],
            end_time: 1000.0,
            warmup: 0.0,
            control_period: 100.0,
            seed: 1,
            ..SimConfig::default()
        };
        let out = Simulation::new(cfg, Box::new(StaticRates::new(vec![1.0]))).run();
        let m = &out.per_class[0];
        assert!(m.completed > 400);
        assert_eq!(m.mean_slowdown(), Some(0.0));
        assert_eq!(m.mean_delay(), Some(0.0));
    }

    /// Deterministic arrivals faster than the service rate: the backlog
    /// grows and delays rise linearly.
    #[test]
    fn overloaded_queue_builds_backlog() {
        let cfg = SimConfig {
            classes: vec![ClassSpec {
                arrival: ArrivalSpec::Deterministic { interval: 1.0 },
                service: det_service(2.0), // ρ = 2
            }],
            end_time: 500.0,
            warmup: 0.0,
            control_period: 100.0,
            seed: 1,
            ..SimConfig::default()
        };
        let out = Simulation::new(cfg, Box::new(StaticRates::new(vec![1.0]))).run();
        let m = &out.per_class[0];
        // Served one per 2 time units: ~250 completions of ~500 arrivals.
        assert!(m.completed <= 250);
        assert!(m.total_arrivals >= 499);
        // Later windows have longer delays than earlier ones.
        let w = &m.windows;
        let first = w.iter().find_map(|x| x.mean_delay).unwrap();
        let last = w.iter().rev().find_map(|x| x.mean_delay).unwrap();
        assert!(last > first * 2.0, "delay should grow under overload: {first} -> {last}");
    }

    /// Two identical classes under a 50/50 static split behave like two
    /// independent half-rate queues.
    #[test]
    fn even_split_symmetric_classes() {
        let cfg = SimConfig {
            classes: vec![
                ClassSpec {
                    arrival: ArrivalSpec::Deterministic { interval: 4.0 },
                    service: det_service(1.0),
                },
                ClassSpec {
                    arrival: ArrivalSpec::Deterministic { interval: 4.0 },
                    service: det_service(1.0),
                },
            ],
            end_time: 4000.0,
            warmup: 100.0,
            control_period: 100.0,
            seed: 3,
            ..SimConfig::default()
        };
        let out = Simulation::new(cfg, Box::new(StaticRates::even(2))).run();
        // Each class: service takes 1/0.5 = 2 < interarrival 4 ⇒ no queueing.
        for m in &out.per_class {
            assert_eq!(m.mean_slowdown(), Some(0.0));
            // Service duration = size/rate = 2.
            assert!((m.service.mean() - 2.0).abs() < 1e-9);
        }
    }

    /// The same seed reproduces the identical output.
    #[test]
    fn determinism() {
        let mk = || SimConfig {
            classes: vec![
                ClassSpec::poisson(0.8, ServiceDist::paper_default()),
                ClassSpec::poisson(0.8, ServiceDist::paper_default()),
            ],
            end_time: 3000.0,
            warmup: 500.0,
            control_period: 250.0,
            seed: 99,
            ..SimConfig::default()
        };
        let a = Simulation::new(mk(), Box::new(StaticRates::even(2))).run();
        let b = Simulation::new(mk(), Box::new(StaticRates::even(2))).run();
        assert_eq!(a.per_class[0].completed, b.per_class[0].completed);
        assert_eq!(a.mean_slowdown(0), b.mean_slowdown(0));
        assert_eq!(a.mean_slowdown(1), b.mean_slowdown(1));
    }

    /// Traced departures land inside the requested range.
    #[test]
    fn trace_range_respected() {
        let cfg = SimConfig {
            classes: vec![ClassSpec::poisson(1.0, det_service(0.3))],
            end_time: 2000.0,
            warmup: 0.0,
            control_period: 100.0,
            seed: 5,
            trace_range: Some((500.0, 600.0)),
            ..SimConfig::default()
        };
        let out = Simulation::new(cfg, Box::new(StaticRates::new(vec![1.0]))).run();
        assert!(!out.trace.is_empty());
        assert!(out.trace.iter().all(|t| (500.0..600.0).contains(&t.departure)));
    }

    /// A controller that changes rates mid-run: halving the rate of a
    /// saturating class must slow its departures.
    #[test]
    fn rate_changes_take_effect() {
        struct Throttle;
        impl RateController for Throttle {
            fn initial_rates(&mut self, _n: usize) -> Vec<f64> {
                vec![1.0]
            }
            fn reallocate(&mut self, now: f64, _w: &WindowObservation) -> Option<Vec<f64>> {
                (now >= 500.0).then(|| vec![0.25])
            }
        }
        let cfg = SimConfig {
            classes: vec![ClassSpec {
                arrival: ArrivalSpec::Deterministic { interval: 2.0 },
                service: det_service(1.0),
            }],
            end_time: 1000.0,
            warmup: 0.0,
            control_period: 100.0,
            seed: 1,
            ..SimConfig::default()
        };
        let out = Simulation::new(cfg, Box::new(Throttle)).run();
        // After t=500 service takes 4 > interarrival 2 ⇒ overload, rising delay.
        let m = &out.per_class[0];
        let early = m.windows[1].mean_delay.unwrap();
        let late = m.windows.last().unwrap().mean_delay.unwrap_or(f64::INFINITY);
        assert_eq!(early, 0.0);
        assert!(late > 1.0, "late mean delay {late}");
        assert!(out.rate_history.len() >= 2);
    }

    #[test]
    #[should_panic(expected = "oversubscribed")]
    fn oversubscribing_controller_caught() {
        struct Bad;
        impl RateController for Bad {
            fn initial_rates(&mut self, n: usize) -> Vec<f64> {
                vec![0.9; n]
            }
            fn reallocate(&mut self, _: f64, _: &WindowObservation) -> Option<Vec<f64>> {
                None
            }
        }
        let cfg = SimConfig {
            classes: vec![
                ClassSpec::poisson(0.1, det_service(1.0)),
                ClassSpec::poisson(0.1, det_service(1.0)),
            ],
            end_time: 100.0,
            warmup: 0.0,
            control_period: 10.0,
            seed: 1,
            ..SimConfig::default()
        };
        Simulation::new(cfg, Box::new(Bad)).run();
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_config_rejected() {
        Simulation::new(SimConfig::default(), Box::new(StaticRates::even(1)));
    }
}
