//! The fluid-rate task server: one per class, FCFS, processing at the
//! rate currently allocated by the controller.

use crate::request::Request;

/// How a task server reacts to a rate change while a request is in
/// service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceMode {
    /// Work-conserving fluid model: remaining work is carried over and
    /// the completion time is recomputed at the new rate. This is the
    /// faithful GPS-style abstraction and the default.
    #[default]
    Fluid,
    /// The rate in force when service *started* applies for the whole
    /// request; rate changes only affect subsequent requests. Used by
    /// the `ablation_fluid` bench.
    PinnedRate,
}

/// A request currently occupying the task server.
#[derive(Debug, Clone)]
pub struct InService {
    /// The request being served.
    pub request: Request,
    /// Instant service began.
    pub service_start: f64,
    /// Full-rate work still to do (fluid mode) as of `last_touch`.
    pub remaining: f64,
    /// Last instant `remaining` was synchronized to.
    pub last_touch: f64,
    /// Rate pinned at service start (used in [`ServiceMode::PinnedRate`]).
    pub pinned_rate: f64,
}

/// Per-class task server state.
#[derive(Debug)]
pub struct TaskServer {
    rate: f64,
    mode: ServiceMode,
    busy: Option<InService>,
    /// Bumped on every (re)scheduling decision; completion events carry
    /// the epoch they were scheduled under and are ignored if stale.
    epoch: u64,
    /// Integral of busy time (for utilization reporting).
    busy_time: f64,
}

impl TaskServer {
    /// New idle server at the given initial rate.
    pub fn new(rate: f64, mode: ServiceMode) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be finite and >= 0");
        Self { rate, mode, busy: None, epoch: 0, busy_time: 0.0 }
    }

    /// Current allocated rate.
    #[cfg_attr(not(test), allow(dead_code))] // introspection used by tests
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Current scheduling epoch.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Is a request in service?
    pub fn is_busy(&self) -> bool {
        self.busy.is_some()
    }

    /// Accumulated busy time (as of the last synchronization point).
    #[cfg_attr(not(test), allow(dead_code))] // precise form used by tests
    pub fn busy_time(&self) -> f64 {
        self.busy_time
    }

    /// Busy time including the currently-running request up to `now`.
    pub fn busy_time_as_of(&self, now: f64) -> f64 {
        self.busy_time + self.busy.as_ref().map_or(0.0, |b| (now - b.last_touch).max(0.0))
    }

    /// The effective processing rate for the request currently in
    /// service (honours [`ServiceMode::PinnedRate`]).
    fn effective_rate(&self) -> f64 {
        match (self.mode, &self.busy) {
            (ServiceMode::PinnedRate, Some(b)) => b.pinned_rate,
            _ => self.rate,
        }
    }

    /// Begin serving `request` at `now`. Returns the scheduled
    /// completion time and the epoch to stamp on the completion event,
    /// or `None` if the current rate is zero (the request parks in
    /// service until a positive rate arrives).
    ///
    /// # Panics
    /// Panics if the server is already busy.
    pub fn start_service(&mut self, request: Request, now: f64) -> Option<(f64, u64)> {
        assert!(self.busy.is_none(), "start_service on a busy task server");
        let size = request.size;
        self.busy = Some(InService {
            request,
            service_start: now,
            remaining: size,
            last_touch: now,
            pinned_rate: self.rate,
        });
        self.epoch += 1;
        let r = self.effective_rate();
        if r > 0.0 {
            Some((now + size / r, self.epoch))
        } else {
            None
        }
    }

    /// Complete the in-service request at `now` if `epoch` is current.
    /// Returns the finished [`InService`] record, or `None` for a stale
    /// completion event.
    pub fn complete(&mut self, now: f64, epoch: u64) -> Option<InService> {
        if epoch != self.epoch || self.busy.is_none() {
            return None;
        }
        let mut b = self.busy.take().expect("checked above");
        let r = match self.mode {
            ServiceMode::PinnedRate => b.pinned_rate,
            ServiceMode::Fluid => self.rate,
        };
        self.busy_time += now - b.last_touch.min(now);
        b.remaining = (b.remaining - (now - b.last_touch) * r).max(0.0);
        debug_assert!(
            b.remaining < 1e-6 * b.request.size.max(1.0),
            "completion fired with {} work left",
            b.remaining
        );
        b.last_touch = now;
        self.epoch += 1; // invalidate anything else in flight
        Some(b)
    }

    /// Change the allocated rate at `now`.
    ///
    /// In fluid mode the in-service request's remaining work is synced
    /// at the old rate and its completion rescheduled at the new one;
    /// the returned value is the new completion `(time, epoch)` to
    /// schedule (`None` if idle, if the new rate is zero, or if the mode
    /// pins rates so the old completion event remains valid).
    pub fn set_rate(&mut self, new_rate: f64, now: f64) -> Option<(f64, u64)> {
        assert!(new_rate.is_finite() && new_rate >= 0.0, "rate must be finite and >= 0");
        let old_rate = self.effective_rate();
        if self.mode == ServiceMode::PinnedRate {
            // In-flight request keeps its pinned rate; nothing to redo.
            self.rate = new_rate;
            return None;
        }
        self.rate = new_rate;
        let epoch = &mut self.epoch;
        if let Some(b) = &mut self.busy {
            // Sync remaining work at the old rate.
            let elapsed = now - b.last_touch;
            self.busy_time += elapsed;
            b.remaining = (b.remaining - elapsed * old_rate).max(0.0);
            b.last_touch = now;
            *epoch += 1;
            if new_rate > 0.0 {
                return Some((now + b.remaining / new_rate, *epoch));
            }
            // Starved: no completion until the next positive rate.
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(size: f64) -> Request {
        Request { id: 1, class: 0, size, arrival: 0.0 }
    }

    #[test]
    fn full_rate_service_time_equals_size() {
        let mut s = TaskServer::new(1.0, ServiceMode::Fluid);
        let (t, e) = s.start_service(req(2.5), 10.0).unwrap();
        assert_eq!(t, 12.5);
        let done = s.complete(12.5, e).unwrap();
        assert_eq!(done.service_start, 10.0);
        assert!((s.busy_time() - 2.5).abs() < 1e-12);
        assert!(!s.is_busy());
    }

    #[test]
    fn half_rate_doubles_service_time() {
        let mut s = TaskServer::new(0.5, ServiceMode::Fluid);
        let (t, _) = s.start_service(req(1.0), 0.0).unwrap();
        assert_eq!(t, 2.0);
    }

    #[test]
    fn fluid_rate_change_rescales_completion() {
        let mut s = TaskServer::new(1.0, ServiceMode::Fluid);
        let (_, e0) = s.start_service(req(4.0), 0.0).unwrap();
        // At t=1, 3 units of work remain; halving the rate pushes
        // completion to 1 + 3/0.5 = 7.
        let (t, e1) = s.set_rate(0.5, 1.0).unwrap();
        assert_eq!(t, 7.0);
        assert!(e1 > e0);
        // The stale completion is ignored.
        assert!(s.complete(4.0, e0).is_none());
        let done = s.complete(7.0, e1).unwrap();
        assert_eq!(done.service_start, 0.0);
    }

    #[test]
    fn pinned_mode_ignores_mid_service_change() {
        let mut s = TaskServer::new(1.0, ServiceMode::PinnedRate);
        let (t, e) = s.start_service(req(4.0), 0.0).unwrap();
        assert_eq!(t, 4.0);
        assert!(s.set_rate(0.25, 1.0).is_none(), "old completion stays valid");
        assert!(s.complete(4.0, e).is_some());
        // Next request sees the new rate.
        let (t2, _) = s.start_service(req(1.0), 4.0).unwrap();
        assert_eq!(t2, 8.0);
    }

    #[test]
    fn zero_rate_starves_then_resumes() {
        let mut s = TaskServer::new(0.0, ServiceMode::Fluid);
        assert!(s.start_service(req(1.0), 0.0).is_none(), "no completion at rate 0");
        assert!(s.is_busy());
        let (t, e) = s.set_rate(2.0, 5.0).unwrap();
        assert_eq!(t, 5.5);
        assert!(s.complete(5.5, e).is_some());
    }

    #[test]
    fn multiple_rate_changes_accumulate_work_correctly() {
        let mut s = TaskServer::new(1.0, ServiceMode::Fluid);
        s.start_service(req(10.0), 0.0).unwrap();
        s.set_rate(2.0, 2.0); // 8 work left, now at rate 2
        let (t, e) = s.set_rate(0.5, 4.0).unwrap(); // 8-4=4 left at 0.5
        assert_eq!(t, 4.0 + 8.0);
        assert!(s.complete(t, e).is_some());
        // Busy integral: whole 12 time units busy.
        assert!((s.busy_time() - 12.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "busy task server")]
    fn double_start_panics() {
        let mut s = TaskServer::new(1.0, ServiceMode::Fluid);
        s.start_service(req(1.0), 0.0);
        s.start_service(req(1.0), 0.1);
    }

    #[test]
    fn stale_epoch_completion_ignored_when_idle() {
        let mut s = TaskServer::new(1.0, ServiceMode::Fluid);
        assert!(s.complete(1.0, 0).is_none());
    }

    #[test]
    fn introspection_accessors_track_state() {
        let mut s = TaskServer::new(0.75, ServiceMode::Fluid);
        assert_eq!(s.rate(), 0.75);
        let e0 = s.epoch();
        s.start_service(req(1.0), 0.0);
        assert_eq!(s.epoch(), e0 + 1, "starting service bumps the epoch");
        s.set_rate(0.5, 0.5);
        assert_eq!(s.rate(), 0.5);
        assert_eq!(s.epoch(), e0 + 2, "rescheduling bumps the epoch");
    }
}
