//! Request records flowing through the simulated server.

/// A request waiting in, or being served by, the simulated server.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Globally unique, monotonically increasing id (arrival order).
    pub id: u64,
    /// Class index, `0 ..` (class 0 is the *highest* priority class —
    /// smallest differentiation parameter — by the paper's convention).
    pub class: usize,
    /// Work amount at full machine rate (drawn from the class service
    /// distribution). Serving at rate `r` takes `size / r` time.
    pub size: f64,
    /// Arrival instant.
    pub arrival: f64,
}

/// A request that has fully departed, with its measured timings.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedRequest {
    /// The original request.
    pub request: Request,
    /// Instant service began (head of queue reached the task server).
    pub service_start: f64,
    /// Departure instant.
    pub departure: f64,
}

impl CompletedRequest {
    /// Queueing delay `W = service_start − arrival`.
    pub fn delay(&self) -> f64 {
        self.service_start - self.request.arrival
    }

    /// Actual service duration on the (possibly rate-varying) task
    /// server.
    pub fn service_duration(&self) -> f64 {
        self.departure - self.service_start
    }

    /// Slowdown `S = W / service_duration` — the paper's per-request
    /// metric (queueing delay over service time).
    pub fn slowdown(&self) -> f64 {
        self.delay() / self.service_duration()
    }

    /// Response (sojourn) time.
    pub fn response(&self) -> f64 {
        self.departure - self.request.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done(arrival: f64, start: f64, depart: f64) -> CompletedRequest {
        CompletedRequest {
            request: Request { id: 0, class: 0, size: 1.0, arrival },
            service_start: start,
            departure: depart,
        }
    }

    #[test]
    fn timing_identities() {
        let c = done(10.0, 12.0, 16.0);
        assert_eq!(c.delay(), 2.0);
        assert_eq!(c.service_duration(), 4.0);
        assert_eq!(c.slowdown(), 0.5);
        assert_eq!(c.response(), 6.0);
    }

    #[test]
    fn zero_delay_zero_slowdown() {
        let c = done(5.0, 5.0, 7.5);
        assert_eq!(c.slowdown(), 0.0);
    }
}
