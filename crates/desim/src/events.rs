//! The event heap: a binary min-heap on `(time, sequence)` so that
//! simultaneous events fire in a deterministic (insertion) order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulator event kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Next arrival of the given class is due.
    Arrival {
        /// Class index.
        class: usize,
    },
    /// The request in service at the given class's task server finishes —
    /// valid only if the server's completion epoch still equals `epoch`
    /// (rate changes bump the epoch, invalidating stale completions).
    Completion {
        /// Class index.
        class: usize,
        /// Epoch stamp at scheduling time.
        epoch: u64,
    },
    /// Periodic control tick: close the observation window, run the rate
    /// controller, re-arm.
    Control,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: f64,
    seq: u64,
    event: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; tie-break on sequence for determinism.
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic future-event list over any event payload type.
#[derive(Debug)]
pub struct EventQueue<T = Event> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<T> EventQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `time`.
    pub fn schedule(&mut self, time: f64, event: T) {
        debug_assert!(time.is_finite(), "event scheduled at non-finite time {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest pending event.
    #[cfg_attr(not(test), allow(dead_code))] // introspection used by tests
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, Event::Control);
        q.schedule(1.0, Event::Arrival { class: 0 });
        q.schedule(2.0, Event::Arrival { class: 1 });
        assert_eq!(q.pop().unwrap().0, 1.0);
        assert_eq!(q.pop().unwrap().0, 2.0);
        assert_eq!(q.pop().unwrap().0, 3.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, Event::Arrival { class: 7 });
        q.schedule(5.0, Event::Arrival { class: 8 });
        q.schedule(5.0, Event::Control);
        match q.pop().unwrap().1 {
            Event::Arrival { class } => assert_eq!(class, 7),
            other => panic!("unexpected {other:?}"),
        }
        match q.pop().unwrap().1 {
            Event::Arrival { class } => assert_eq!(class, 8),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(q.pop().unwrap().1, Event::Control);
    }

    #[test]
    fn peek_does_not_pop() {
        let mut q = EventQueue::new();
        q.schedule(1.5, Event::Control);
        assert_eq!(q.peek_time(), Some(1.5));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
