//! Measurement: per-class windowed slowdown statistics, overall
//! accumulators, and the final [`SimOutput`] report.
//!
//! The paper measures "the slowdown of a class ... for every thousand
//! time units" after a warm-up period; Figures 5/6 then take percentiles
//! of the *per-window slowdown ratios*. We therefore keep, per class,
//! the exact sequence of window means alongside whole-run accumulators.

use crate::request::CompletedRequest;
use crate::trace::TraceRecord;
use psd_dist::stats::Welford;
use psd_obs::{traces_to_json, ControlTrace};

/// Mean slowdown of one class over one measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStat {
    /// Window index (0-based over the *measurement* period).
    pub index: u64,
    /// Number of departures in the window.
    pub count: u64,
    /// Mean slowdown of those departures (`None` if no departures).
    pub mean_slowdown: Option<f64>,
    /// Mean queueing delay of those departures.
    pub mean_delay: Option<f64>,
}

/// Whole-run metrics for one class.
#[derive(Debug, Clone)]
pub struct ClassMetrics {
    /// Departures counted (after warm-up).
    pub completed: u64,
    /// Slowdown accumulator over all counted departures.
    pub slowdown: Welford,
    /// Queueing-delay accumulator.
    pub delay: Welford,
    /// Service-duration accumulator (actual time on the task server).
    pub service: Welford,
    /// Per-window mean slowdowns (measurement period only).
    pub windows: Vec<WindowStat>,
    /// Total arrivals seen (including warm-up), for rate sanity checks.
    pub total_arrivals: u64,
}

impl ClassMetrics {
    fn new() -> Self {
        Self {
            completed: 0,
            slowdown: Welford::new(),
            delay: Welford::new(),
            service: Welford::new(),
            windows: Vec::new(),
            total_arrivals: 0,
        }
    }

    /// Mean slowdown over the whole measurement period.
    pub fn mean_slowdown(&self) -> Option<f64> {
        (self.completed > 0).then(|| self.slowdown.mean())
    }

    /// Mean queueing delay over the measurement period.
    pub fn mean_delay(&self) -> Option<f64> {
        (self.completed > 0).then(|| self.delay.mean())
    }
}

/// Collects departures into windows and accumulators.
#[derive(Debug)]
pub struct MetricsCollector {
    warmup: f64,
    window_len: f64,
    per_class: Vec<ClassMetrics>,
    // In-progress window accumulators.
    current_window: u64,
    win_slowdown: Vec<Welford>,
    win_delay: Vec<Welford>,
}

impl MetricsCollector {
    /// `window_len` is the measurement window (the paper's 1000 time
    /// units); windows are counted from `warmup` onward.
    pub fn new(n_classes: usize, warmup: f64, window_len: f64) -> Self {
        assert!(window_len > 0.0, "window length must be positive");
        Self {
            warmup,
            window_len,
            per_class: (0..n_classes).map(|_| ClassMetrics::new()).collect(),
            current_window: 0,
            win_slowdown: (0..n_classes).map(|_| Welford::new()).collect(),
            win_delay: (0..n_classes).map(|_| Welford::new()).collect(),
        }
    }

    /// Record an arrival (any time, incl. warm-up).
    pub fn on_arrival(&mut self, class: usize) {
        self.per_class[class].total_arrivals += 1;
    }

    /// Record a departure; ignores departures during warm-up.
    pub fn on_departure(&mut self, done: &CompletedRequest) {
        if done.departure < self.warmup {
            return;
        }
        let w = ((done.departure - self.warmup) / self.window_len) as u64;
        while w > self.current_window {
            self.flush_window();
        }
        let class = done.request.class;
        let s = done.slowdown();
        let d = done.delay();
        let m = &mut self.per_class[class];
        m.completed += 1;
        m.slowdown.push(s);
        m.delay.push(d);
        m.service.push(done.service_duration());
        self.win_slowdown[class].push(s);
        self.win_delay[class].push(d);
    }

    fn flush_window(&mut self) {
        for (class, m) in self.per_class.iter_mut().enumerate() {
            let ws = &self.win_slowdown[class];
            let wd = &self.win_delay[class];
            m.windows.push(WindowStat {
                index: self.current_window,
                count: ws.count(),
                mean_slowdown: (ws.count() > 0).then(|| ws.mean()),
                mean_delay: (wd.count() > 0).then(|| wd.mean()),
            });
            self.win_slowdown[class] = Welford::new();
            self.win_delay[class] = Welford::new();
        }
        self.current_window += 1;
    }

    /// Close the final partial window and emit the report.
    pub fn finish(mut self, end_time: f64, rate_history: Vec<(f64, Vec<f64>)>) -> SimOutput {
        self.flush_window();
        SimOutput {
            per_class: self.per_class,
            end_time,
            rate_history,
            trace: Vec::new(),
            busy_time: Vec::new(),
            control_trace: Vec::new(),
        }
    }
}

/// Final simulation report.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// Per-class metrics, indexed by class.
    pub per_class: Vec<ClassMetrics>,
    /// Simulation end time.
    pub end_time: f64,
    /// `(time, rates)` at every (re-)allocation, for controller audits.
    pub rate_history: Vec<(f64, Vec<f64>)>,
    /// Per-request trace records (populated when the config requested a
    /// trace range; see [`crate::SimConfig::trace_range`]).
    pub trace: Vec<TraceRecord>,
    /// Per-class task-server busy time over the whole run (set by the
    /// engine; empty in unit-constructed outputs).
    pub busy_time: Vec<f64>,
    /// The control-decision flight record: one [`ControlTrace`] per
    /// control window (bounded by `SimConfig::flight_capacity`),
    /// exactly the shape the live server's `GET /trace/control` dumps —
    /// so a live recording replays through the simulator's controller
    /// and diffs (see [`psd_obs::replay`]).
    pub control_trace: Vec<ControlTrace>,
}

impl SimOutput {
    /// Mean slowdown of class `i` over the measurement period.
    pub fn mean_slowdown(&self, class: usize) -> Option<f64> {
        self.per_class[class].mean_slowdown()
    }

    /// The flight record as the same JSON document the live server's
    /// `GET /trace/control` serves — round-trips through
    /// [`psd_obs::parse_traces`] for offline replay.
    pub fn control_trace_json(&self) -> String {
        traces_to_json(&self.control_trace, self.control_trace.len(), {
            self.control_trace.len() as u64
        })
    }

    /// Fraction of the run the class's task server spent busy (whole
    /// run, warm-up included). `None` when busy-time accounting is
    /// absent (unit-constructed outputs).
    pub fn utilization(&self, class: usize) -> Option<f64> {
        let b = *self.busy_time.get(class)?;
        (self.end_time > 0.0).then(|| b / self.end_time)
    }

    /// The system slowdown: departure-weighted mean over classes (the
    /// "achieved system slowdowns" curve of paper Fig. 2).
    pub fn system_slowdown(&self) -> Option<f64> {
        let total: u64 = self.per_class.iter().map(|m| m.completed).sum();
        if total == 0 {
            return None;
        }
        let weighted: f64 = self
            .per_class
            .iter()
            .filter_map(|m| m.mean_slowdown().map(|s| s * m.completed as f64))
            .sum();
        Some(weighted / total as f64)
    }

    /// Ratio of mean slowdowns `class_a / class_b` (paper Figs 9/10).
    pub fn slowdown_ratio(&self, class_a: usize, class_b: usize) -> Option<f64> {
        let a = self.mean_slowdown(class_a)?;
        let b = self.mean_slowdown(class_b)?;
        (b > 0.0).then(|| a / b)
    }

    /// Per-window slowdown ratios `class_a / class_b`, skipping windows
    /// where either class is empty or the denominator is zero (the
    /// sample behind the percentile plots of paper Figs 5/6).
    pub fn window_ratios(&self, class_a: usize, class_b: usize) -> Vec<f64> {
        let wa = &self.per_class[class_a].windows;
        let wb = &self.per_class[class_b].windows;
        wa.iter()
            .zip(wb)
            .filter_map(|(a, b)| match (a.mean_slowdown, b.mean_slowdown) {
                (Some(x), Some(y)) if y > 0.0 => Some(x / y),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    fn done(class: usize, arrival: f64, start: f64, depart: f64) -> CompletedRequest {
        CompletedRequest {
            request: Request { id: 0, class, size: 1.0, arrival },
            service_start: start,
            departure: depart,
        }
    }

    #[test]
    fn warmup_departures_ignored() {
        let mut m = MetricsCollector::new(1, 100.0, 50.0);
        m.on_departure(&done(0, 0.0, 10.0, 99.0));
        let out = m.finish(200.0, vec![]);
        assert_eq!(out.per_class[0].completed, 0);
        assert!(out.mean_slowdown(0).is_none());
    }

    #[test]
    fn windows_partition_departures() {
        let mut m = MetricsCollector::new(1, 0.0, 10.0);
        // Window 0: slowdowns 1.0 and 3.0; window 2: slowdown 5.0.
        m.on_departure(&done(0, 0.0, 1.0, 2.0)); // W=1, svc=1 => s=1
        m.on_departure(&done(0, 0.0, 6.0, 8.0)); // W=6, svc=2 => s=3
        m.on_departure(&done(0, 20.0, 25.0, 26.0)); // s=5, window 2
        let out = m.finish(30.0, vec![]);
        let w = &out.per_class[0].windows;
        assert_eq!(w[0].count, 2);
        assert_eq!(w[0].mean_slowdown, Some(2.0));
        assert_eq!(w[1].count, 0);
        assert_eq!(w[1].mean_slowdown, None);
        assert_eq!(w[2].mean_slowdown, Some(5.0));
        assert_eq!(out.mean_slowdown(0), Some(3.0));
    }

    #[test]
    fn system_slowdown_weights_by_departures() {
        let mut m = MetricsCollector::new(2, 0.0, 100.0);
        // Class 0: two requests with slowdown 1; class 1: one with 4.
        m.on_departure(&done(0, 0.0, 1.0, 2.0));
        m.on_departure(&done(0, 0.0, 2.0, 4.0)); // W=2 svc=2 s=1
        m.on_departure(&done(1, 0.0, 4.0, 5.0)); // s=4
        let out = m.finish(100.0, vec![]);
        assert_eq!(out.system_slowdown(), Some((1.0 * 2.0 + 4.0) / 3.0));
    }

    #[test]
    fn ratio_helpers() {
        let mut m = MetricsCollector::new(2, 0.0, 10.0);
        m.on_departure(&done(0, 0.0, 1.0, 2.0)); // s=1, win 0
        m.on_departure(&done(1, 0.0, 2.0, 3.0)); // s=2, win 0
        m.on_departure(&done(0, 10.0, 11.0, 12.0)); // s=1, win 1
                                                    // class 1 empty in win 1 -> skipped
        let out = m.finish(20.0, vec![]);
        assert_eq!(out.slowdown_ratio(1, 0), Some(2.0));
        assert_eq!(out.window_ratios(1, 0), vec![2.0]);
    }

    #[test]
    fn empty_run_is_well_behaved() {
        let m = MetricsCollector::new(2, 0.0, 10.0);
        let out = m.finish(0.0, vec![]);
        assert!(out.system_slowdown().is_none());
        assert!(out.slowdown_ratio(0, 1).is_none());
        assert!(out.window_ratios(0, 1).is_empty());
    }
}
