//! The rate-controller interface between the simulator and the PSD
//! allocation strategy (implemented in `psd-core`).
//!
//! Every control period the engine closes an observation window and
//! hands it to the controller, which may return a fresh rate vector.
//! This mirrors the paper's split between the *load estimator* (inputs)
//! and the *rate allocator* (Eq. 17), re-run every 1000 time units.

/// What the load estimator gets to see about the window just ended.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowObservation {
    /// Index of the window (0-based since simulation start).
    pub index: u64,
    /// Window start time.
    pub start: f64,
    /// Window end time (the control instant).
    pub end: f64,
    /// Per-class arrival counts inside the window.
    pub arrivals: Vec<u64>,
    /// Per-class sum of arrived work (full-rate sizes) inside the window.
    pub arrived_work: Vec<f64>,
    /// Per-class completions inside the window.
    pub completions: Vec<u64>,
    /// Per-class backlog (queued + in service) at the control instant.
    pub backlog: Vec<u64>,
    /// Per-class sum of slowdowns of this window's departures (divide by
    /// `completions` for the mean — see [`Self::mean_slowdowns`]).
    pub slowdown_sums: Vec<f64>,
}

impl WindowObservation {
    /// Observed per-class arrival rate over this window.
    pub fn arrival_rates(&self) -> Vec<f64> {
        let dur = (self.end - self.start).max(f64::MIN_POSITIVE);
        self.arrivals.iter().map(|&a| a as f64 / dur).collect()
    }

    /// Observed per-class offered load (work per time) over this window.
    pub fn offered_loads(&self) -> Vec<f64> {
        let dur = (self.end - self.start).max(f64::MIN_POSITIVE);
        self.arrived_work.iter().map(|&w| w / dur).collect()
    }

    /// Mean slowdown of each class's departures in this window (`None`
    /// for classes with no departures).
    pub fn mean_slowdowns(&self) -> Vec<Option<f64>> {
        self.slowdown_sums
            .iter()
            .zip(&self.completions)
            .map(|(&s, &c)| (c > 0).then(|| s / c as f64))
            .collect()
    }
}

/// A strategy that assigns processing rates to the task servers.
pub trait RateController {
    /// Rates to use from time 0 until the first control tick. Must have
    /// length `n_classes`; entries must be ≥ 0 and sum to ≤ 1 + ε.
    fn initial_rates(&mut self, n_classes: usize) -> Vec<f64>;

    /// Called at every control tick with the window just observed.
    /// Return `Some(rates)` to re-allocate or `None` to keep the current
    /// assignment.
    fn reallocate(&mut self, now: f64, window: &WindowObservation) -> Option<Vec<f64>>;
}

/// A controller that never re-allocates: fixed rates for the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticRates {
    rates: Vec<f64>,
}

impl StaticRates {
    /// Fixed rate vector (must be non-empty, entries ≥ 0, sum ≤ 1 + ε).
    pub fn new(rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty(), "StaticRates needs at least one class");
        let sum: f64 = rates.iter().sum();
        assert!(rates.iter().all(|&r| r >= 0.0), "rates must be non-negative");
        assert!(sum <= 1.0 + 1e-9, "rates sum to {sum} > 1");
        Self { rates }
    }

    /// Capacity split evenly over `n` classes.
    pub fn even(n: usize) -> Self {
        assert!(n > 0);
        Self { rates: vec![1.0 / n as f64; n] }
    }
}

impl RateController for StaticRates {
    fn initial_rates(&mut self, n_classes: usize) -> Vec<f64> {
        assert_eq!(n_classes, self.rates.len(), "class count mismatch");
        self.rates.clone()
    }

    fn reallocate(&mut self, _now: f64, _window: &WindowObservation) -> Option<Vec<f64>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_rates() {
        let w = WindowObservation {
            index: 3,
            start: 3000.0,
            end: 4000.0,
            arrivals: vec![500, 1000],
            arrived_work: vec![150.0, 290.0],
            completions: vec![498, 1001],
            backlog: vec![2, 0],
            slowdown_sums: vec![996.0, 500.5],
        };
        let r = w.arrival_rates();
        assert!((r[0] - 0.5).abs() < 1e-12);
        assert!((r[1] - 1.0).abs() < 1e-12);
        let l = w.offered_loads();
        assert!((l[0] - 0.15).abs() < 1e-12);
        let s = w.mean_slowdowns();
        assert!((s[0].unwrap() - 2.0).abs() < 1e-12);
        assert!((s[1].unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_slowdowns_none_for_empty_class() {
        let w = WindowObservation {
            index: 0,
            start: 0.0,
            end: 1.0,
            arrivals: vec![0, 5],
            arrived_work: vec![0.0, 2.0],
            completions: vec![0, 4],
            backlog: vec![0, 1],
            slowdown_sums: vec![0.0, 6.0],
        };
        let s = w.mean_slowdowns();
        assert_eq!(s[0], None);
        assert_eq!(s[1], Some(1.5));
    }

    #[test]
    fn static_rates_basics() {
        let mut c = StaticRates::even(4);
        let r = c.initial_rates(4);
        assert_eq!(r, vec![0.25; 4]);
        let w = WindowObservation {
            index: 0,
            start: 0.0,
            end: 1.0,
            arrivals: vec![0; 4],
            arrived_work: vec![0.0; 4],
            completions: vec![0; 4],
            backlog: vec![0; 4],
            slowdown_sums: vec![0.0; 4],
        };
        assert!(c.reallocate(1.0, &w).is_none());
    }

    #[test]
    #[should_panic(expected = "sum")]
    fn static_rates_rejects_oversubscription() {
        StaticRates::new(vec![0.7, 0.7]);
    }

    #[test]
    #[should_panic(expected = "class count mismatch")]
    fn static_rates_class_count_checked() {
        StaticRates::even(2).initial_rates(3);
    }
}
