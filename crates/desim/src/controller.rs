//! The rate-controller interface between the simulator and the PSD
//! allocation strategy.
//!
//! The contract itself ([`RateController`], [`WindowObservation`],
//! [`ControlDirective`], [`StaticRates`]) was extracted into the
//! dependency-free `psd-control` crate so the exact same controller
//! objects drive this simulator *and* the live `psd-server` monitor;
//! this module re-exports it unchanged for backwards compatibility.
//! The concrete controllers (open-loop Eq. 17, slowdown feedback,
//! admission composition) live in `psd_core::control`.

pub use psd_control::{ControlDirective, RateController, StaticRates, WindowObservation};
