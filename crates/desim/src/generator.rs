//! Open-loop request generators: one per class, pairing an arrival
//! process with a service-size distribution.

use psd_dist::arrival::{
    ArrivalProcess, DeterministicArrivals, Mmpp2, PoissonProcess, StepPoisson,
};
use psd_dist::rng::Xoshiro256pp;
use psd_dist::{ServiceDist, ServiceDistribution};

use crate::request::Request;

/// Declarative arrival-process choice for a class (kept as a spec so
/// simulation configs are clonable and serializable upstream).
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// Poisson arrivals at the given rate — the paper's traffic model.
    Poisson {
        /// Arrival rate (requests per time unit).
        rate: f64,
    },
    /// Evenly spaced arrivals (for exact-answer tests).
    Deterministic {
        /// Gap between consecutive arrivals.
        interval: f64,
    },
    /// Bursty 2-state MMPP (estimator stress tests).
    Bursty {
        /// Long-run mean arrival rate.
        mean_rate: f64,
        /// Peak-to-mean rate ratio, ≥ 1.
        burstiness: f64,
        /// Mean sojourn time per modulating state.
        sojourn: f64,
    },
    /// A load step: Poisson at `rate_before` until `switch_at`, then at
    /// `rate_after` (controller-adaptivity experiments).
    Step {
        /// Arrival rate before the step.
        rate_before: f64,
        /// Arrival rate after the step.
        rate_after: f64,
        /// Absolute simulation time of the step.
        switch_at: f64,
    },
}

impl ArrivalSpec {
    /// Long-run mean arrival rate of the spec.
    pub fn mean_rate(&self) -> f64 {
        match self {
            ArrivalSpec::Poisson { rate } => *rate,
            ArrivalSpec::Deterministic { interval } => 1.0 / interval,
            ArrivalSpec::Bursty { mean_rate, .. } => *mean_rate,
            ArrivalSpec::Step { rate_after, .. } => *rate_after,
        }
    }

    fn build(&self) -> Box<dyn ArrivalProcess> {
        match self {
            ArrivalSpec::Poisson { rate } => {
                Box::new(PoissonProcess::new(*rate).expect("validated by SimConfig"))
            }
            ArrivalSpec::Deterministic { interval } => {
                Box::new(DeterministicArrivals::new(*interval).expect("validated by SimConfig"))
            }
            ArrivalSpec::Bursty { mean_rate, burstiness, sojourn } => Box::new(
                Mmpp2::bursty(*mean_rate, *burstiness, *sojourn).expect("validated by SimConfig"),
            ),
            ArrivalSpec::Step { rate_before, rate_after, switch_at } => Box::new(
                StepPoisson::new(*rate_before, *rate_after, *switch_at)
                    .expect("validated by SimConfig"),
            ),
        }
    }
}

/// Stateful per-class generator: produces the class's request stream.
pub struct Generator {
    class: usize,
    arrivals: Box<dyn ArrivalProcess>,
    service: ServiceDist,
    rng: Xoshiro256pp,
    next_time: f64,
}

impl Generator {
    /// Build a generator for `class` seeded with `seed`.
    pub fn new(class: usize, spec: &ArrivalSpec, service: ServiceDist, seed: u64) -> Self {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let mut arrivals = spec.build();
        let first = arrivals.next_interarrival(&mut rng);
        Self { class, arrivals, service, rng, next_time: first }
    }

    /// Time of the next arrival.
    pub fn next_arrival_time(&self) -> f64 {
        self.next_time
    }

    /// Emit the arrival due now (caller guarantees the clock equals
    /// [`Self::next_arrival_time`]) and advance the stream. `id` is the
    /// global request id to assign.
    pub fn emit(&mut self, id: u64) -> Request {
        let arrival = self.next_time;
        let size = self.service.sample(&mut self.rng);
        self.next_time += self.arrivals.next_interarrival(&mut self.rng);
        Request { id, class: self.class, size, arrival }
    }
}

impl std::fmt::Debug for Generator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Generator")
            .field("class", &self.class)
            .field("next_time", &self.next_time)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let spec = ArrivalSpec::Deterministic { interval: 2.0 };
        let service = ServiceDist::paper_default();
        let mut g = Generator::new(0, &spec, service, 42);
        assert_eq!(g.next_arrival_time(), 2.0);
        let r = g.emit(0);
        assert_eq!(r.arrival, 2.0);
        assert_eq!(g.next_arrival_time(), 4.0);
        let r = g.emit(1);
        assert_eq!(r.arrival, 4.0);
        assert_eq!(r.id, 1);
    }

    #[test]
    fn poisson_rate_empirical() {
        let spec = ArrivalSpec::Poisson { rate: 5.0 };
        let mut g = Generator::new(0, &spec, ServiceDist::paper_default(), 7);
        let mut last = 0.0;
        let n = 100_000;
        for i in 0..n {
            let r = g.emit(i);
            assert!(r.arrival > last);
            last = r.arrival;
        }
        let rate = n as f64 / last;
        assert!((rate - 5.0).abs() / 5.0 < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn same_seed_same_stream() {
        let spec = ArrivalSpec::Poisson { rate: 1.0 };
        let mut a = Generator::new(0, &spec, ServiceDist::paper_default(), 13);
        let mut b = Generator::new(0, &spec, ServiceDist::paper_default(), 13);
        for i in 0..100 {
            let (ra, rb) = (a.emit(i), b.emit(i));
            assert_eq!(ra.arrival, rb.arrival);
            assert_eq!(ra.size, rb.size);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = ArrivalSpec::Poisson { rate: 1.0 };
        let mut a = Generator::new(0, &spec, ServiceDist::paper_default(), 13);
        let mut b = Generator::new(0, &spec, ServiceDist::paper_default(), 14);
        assert_ne!(a.emit(0).arrival, b.emit(0).arrival);
    }

    #[test]
    fn spec_mean_rates() {
        assert_eq!(ArrivalSpec::Poisson { rate: 2.0 }.mean_rate(), 2.0);
        assert_eq!(ArrivalSpec::Deterministic { interval: 0.5 }.mean_rate(), 2.0);
        assert_eq!(
            ArrivalSpec::Bursty { mean_rate: 3.0, burstiness: 2.0, sojourn: 10.0 }.mean_rate(),
            3.0
        );
    }
}
