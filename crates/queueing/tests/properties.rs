//! Property-based tests of the queueing analysis: the closed forms must
//! be internally consistent and monotone over the whole parameter space.

use proptest::prelude::*;
use psd_dist::{BoundedPareto, Deterministic, HigherMoments, ServiceDistribution};
use psd_queueing::{md1, mm1, pk, variance, AnalysisError, Mg1Fcfs, PriorityMg1, TaskServerQueue};

fn bp() -> impl Strategy<Value = BoundedPareto> {
    (0.8f64..2.5, 0.01f64..1.0, 1.5f64..4.5)
        .prop_map(|(a, k, span)| BoundedPareto::new(a, k, k * 10f64.powf(span)).unwrap())
}

proptest! {
    /// P–K delay is finite, positive and increasing in λ below saturation.
    #[test]
    fn pk_monotone_in_lambda(d in bp(), load1 in 0.01f64..0.99, load2 in 0.01f64..0.99) {
        let m = d.moments();
        let (lo, hi) = if load1 <= load2 { (load1, load2) } else { (load2, load1) };
        prop_assume!(hi - lo > 1e-6);
        let w_lo = pk::expected_delay(lo / m.mean, &m).unwrap();
        let w_hi = pk::expected_delay(hi / m.mean, &m).unwrap();
        prop_assert!(w_lo >= 0.0);
        prop_assert!(w_hi > w_lo, "delay must increase with load: {w_lo} -> {w_hi}");
    }

    /// The queue is declared unstable exactly when ρ ≥ 1.
    #[test]
    fn stability_boundary(d in bp(), load in 0.5f64..2.0) {
        let m = d.moments();
        let q = Mg1Fcfs::new(load / m.mean, m).unwrap();
        if load < 1.0 {
            prop_assert!(q.is_stable());
            prop_assert!(q.expected_delay().is_ok());
        } else {
            prop_assert!(!q.is_stable());
            let unstable = matches!(q.expected_delay(), Err(AnalysisError::Unstable { .. }));
            prop_assert!(unstable);
        }
    }

    /// Lemma 1 factorization: E[S] = E[W] · E[1/X].
    #[test]
    fn slowdown_factorizes(d in bp(), load in 0.01f64..0.98) {
        let m = d.moments();
        let q = Mg1Fcfs::new(load / m.mean, m).unwrap();
        let s = q.expected_slowdown().unwrap();
        let w = q.expected_delay().unwrap();
        let mi = m.mean_inverse.unwrap();
        prop_assert!((s - w * mi).abs() <= 1e-9 * s.abs().max(1e-12));
    }

    /// Theorem 1 equals Lemma 1 applied to the Lemma 2-scaled queue, for
    /// every rate and load with a stable task server.
    #[test]
    fn theorem1_equals_scaled_lemma1(d in bp(), rate in 0.05f64..1.0, util in 0.01f64..0.95) {
        let m = d.moments();
        // Choose λ so the task-server utilization is `util`.
        let lambda = util * rate / m.mean;
        let ts = TaskServerQueue::new(lambda, rate, m).unwrap();
        let direct = ts.expected_slowdown_direct().unwrap();
        let scaled = ts.expected_slowdown().unwrap();
        prop_assert!((direct - scaled).abs() <= 1e-8 * direct.abs().max(1e-12));
    }

    /// Task-server slowdown is decreasing in the allocated rate.
    #[test]
    fn slowdown_decreasing_in_rate(d in bp(), load in 0.01f64..0.5, r1 in 0.51f64..1.0, r2 in 0.51f64..1.0) {
        let m = d.moments();
        let lambda = load / m.mean;
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assume!(hi - lo > 1e-6);
        let s_lo_rate = TaskServerQueue::new(lambda, lo, m).unwrap().expected_slowdown().unwrap();
        let s_hi_rate = TaskServerQueue::new(lambda, hi, m).unwrap().expected_slowdown().unwrap();
        prop_assert!(s_lo_rate > s_hi_rate, "more capacity must lower slowdown");
    }

    /// The M/D/1 fast path agrees with the generic analysis everywhere.
    #[test]
    fn md1_fast_path_consistent(dval in 0.05f64..10.0, rate in 0.05f64..1.0, util in 0.01f64..0.95) {
        let lambda = util * rate / dval;
        let fast = md1::expected_slowdown(lambda, dval, rate).unwrap();
        let det = Deterministic::new(dval).unwrap();
        let generic = TaskServerQueue::new(lambda, rate, det.moments())
            .unwrap()
            .expected_slowdown()
            .unwrap();
        prop_assert!((fast - generic).abs() <= 1e-9 * fast.abs().max(1e-12));
        // And Eq. 15's explicit form.
        let u = lambda * dval / rate;
        prop_assert!((fast - u / (2.0 * (1.0 - u))).abs() < 1e-9);
    }

    /// M/M/1 delay matches the P–K formula with exponential moments, and
    /// its slowdown is always undefined.
    #[test]
    fn mm1_consistency(mu in 0.1f64..10.0, util in 0.01f64..0.95) {
        let lambda = util * mu;
        let w = mm1::expected_delay(lambda, mu).unwrap();
        let exp = psd_dist::Exponential::new(mu).unwrap();
        let w_pk = pk::expected_delay(lambda, &exp.moments()).unwrap();
        prop_assert!((w - w_pk).abs() <= 1e-9 * w.abs().max(1e-12));
        prop_assert_eq!(mm1::expected_slowdown(lambda, mu).unwrap_err(), AnalysisError::SlowdownUndefined);
    }

    /// Little's law identity within the analysis: E[N_q] = λ·E[W].
    #[test]
    fn littles_law(d in bp(), load in 0.01f64..0.95) {
        let m = d.moments();
        let lambda = load / m.mean;
        let nq = pk::expected_queue_length(lambda, &m).unwrap();
        let w = pk::expected_delay(lambda, &m).unwrap();
        prop_assert!((nq - lambda * w).abs() <= 1e-9 * nq.abs().max(1e-12));
    }

    /// Kleinrock's conservation law: Σ ρ_i·E[W_i] under non-preemptive
    /// priority equals ρ·E[W_FCFS], for any class count and load split.
    #[test]
    fn priority_conservation_law(
        d in bp(),
        splits in proptest::collection::vec(0.05f64..1.0, 2..5),
        total_load in 0.05f64..0.9,
    ) {
        let m = d.moments();
        let split_sum: f64 = splits.iter().sum();
        let lambdas: Vec<f64> =
            splits.iter().map(|s| s / split_sum * total_load / m.mean).collect();
        let p = PriorityMg1::homogeneous(lambdas.clone(), m).unwrap();
        let lhs: f64 = (0..lambdas.len())
            .map(|i| lambdas[i] * m.mean * p.expected_delay(i).unwrap())
            .sum();
        let fcfs = Mg1Fcfs::new(total_load / m.mean, m).unwrap().expected_delay().unwrap();
        let rhs = total_load * fcfs;
        prop_assert!((lhs - rhs).abs() <= 1e-6 * rhs.abs().max(1e-12), "{lhs} vs {rhs}");
    }

    /// Priority delays are monotone in class index (lower priority waits
    /// at least as long).
    #[test]
    fn priority_delays_monotone(
        d in bp(),
        splits in proptest::collection::vec(0.05f64..1.0, 2..5),
        total_load in 0.05f64..0.9,
    ) {
        let m = d.moments();
        let split_sum: f64 = splits.iter().sum();
        let lambdas: Vec<f64> =
            splits.iter().map(|s| s / split_sum * total_load / m.mean).collect();
        let n = lambdas.len();
        let p = PriorityMg1::homogeneous(lambdas, m).unwrap();
        let mut prev = 0.0;
        for i in 0..n {
            let w = p.expected_delay(i).unwrap();
            prop_assert!(w >= prev - 1e-12, "class {i} waits less than class {}", i.max(1) - 1);
            prev = w;
        }
    }

    /// Slowdown variance is non-negative and increasing in load, for any
    /// Bounded Pareto.
    #[test]
    fn slowdown_variance_monotone(d in bp(), l1 in 0.05f64..0.9, l2 in 0.05f64..0.9) {
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        prop_assume!(hi - lo > 1e-3);
        let v_lo = variance::slowdown_variance_of(lo / d.mean(), &d).unwrap();
        let v_hi = variance::slowdown_variance_of(hi / d.mean(), &d).unwrap();
        prop_assert!(v_lo >= 0.0);
        prop_assert!(v_hi > v_lo, "variance must grow with load: {v_lo} -> {v_hi}");
    }

    /// Cantelli bound is monotone: smaller tail probability ⇒ larger
    /// bound, and the bound is never below the mean.
    #[test]
    fn cantelli_monotone(mean in 0.0f64..100.0, var in 0.0f64..1e4, p1 in 0.01f64..0.5, p2 in 0.01f64..0.5) {
        let (tight, loose) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let b_tight = variance::cantelli_upper_bound(mean, var, tight);
        let b_loose = variance::cantelli_upper_bound(mean, var, loose);
        prop_assert!(b_tight >= b_loose - 1e-12);
        prop_assert!(b_loose >= mean - 1e-12);
    }

    /// E[W²] ≥ E[W]² always (Jensen), via the Takács second moment.
    #[test]
    fn delay_second_moment_jensen(d in bp(), load in 0.05f64..0.9) {
        let m = d.moments();
        let lambda = load / m.mean;
        let third = d.third_moment().unwrap();
        let w = pk::expected_delay(lambda, &m).unwrap();
        let w2 = variance::delay_second_moment(lambda, &m, third).unwrap();
        prop_assert!(w2 >= w * w - 1e-9, "E[W²] {w2} < E[W]² {}", w * w);
    }
}
