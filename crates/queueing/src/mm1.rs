//! M/M/1 FCFS analysis — the paper's §5 counter-example.
//!
//! Delay and response time have textbook closed forms, but the expected
//! slowdown `E[W]·E[1/X]` does **not** exist because the exponential's
//! `E[1/X]` diverges. [`expected_slowdown`] therefore always returns
//! [`AnalysisError::SlowdownUndefined`]; it exists so callers hit a
//! typed, documented error rather than a silent `NaN`.

use crate::AnalysisError;

/// Mean queueing delay of M/M/1 FCFS: `E[W] = ρ/(μ − λ)`.
pub fn expected_delay(lambda: f64, mu: f64) -> Result<f64, AnalysisError> {
    if !(lambda.is_finite() && lambda >= 0.0) {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("arrival rate must be finite and >= 0, got {lambda}"),
        });
    }
    if !(mu.is_finite() && mu > 0.0) {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("service rate must be finite and > 0, got {mu}"),
        });
    }
    let rho = lambda / mu;
    if rho >= 1.0 {
        return Err(AnalysisError::Unstable { utilization: rho });
    }
    Ok(rho / (mu - lambda))
}

/// Mean response time `E[T] = 1/(μ − λ)`.
pub fn expected_response(lambda: f64, mu: f64) -> Result<f64, AnalysisError> {
    expected_delay(lambda, mu).map(|w| w + 1.0 / mu)
}

/// Expected slowdown of M/M/1 FCFS — **always undefined** (paper §5).
pub fn expected_slowdown(_lambda: f64, _mu: f64) -> Result<f64, AnalysisError> {
    Err(AnalysisError::SlowdownUndefined)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_delay() {
        // λ=0.5, μ=1: E[W] = 0.5/0.5 = 1.
        assert!((expected_delay(0.5, 1.0).unwrap() - 1.0).abs() < 1e-12);
        // E[T] = 1/(μ−λ) = 2.
        assert!((expected_response(0.5, 1.0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unstable() {
        assert!(matches!(expected_delay(1.0, 1.0), Err(AnalysisError::Unstable { .. })));
    }

    #[test]
    fn slowdown_always_undefined() {
        assert_eq!(expected_slowdown(0.1, 1.0).unwrap_err(), AnalysisError::SlowdownUndefined);
        assert_eq!(expected_slowdown(0.9, 1.0).unwrap_err(), AnalysisError::SlowdownUndefined);
    }

    #[test]
    fn parameter_validation() {
        assert!(expected_delay(-0.1, 1.0).is_err());
        assert!(expected_delay(0.1, 0.0).is_err());
    }
}
