//! # psd-queueing — M/G/1 FCFS analysis for slowdown differentiation
//!
//! Closed-form queueing results underpinning the PSD paper
//! (Zhou/Wei/Xu, IPDPS 2004):
//!
//! * [`pk`] — the Pollaczek–Khinchin mean-delay formula for M/G/1 FCFS.
//! * [`mg1`] — full M/G/1 FCFS analysis including **expected slowdown**
//!   `E[S] = E[W]·E[1/X]` (paper Lemma 1), valid whenever the service
//!   distribution has finite `E[1/X]` (it does for Bounded Pareto; it
//!   does **not** for exponential — that case surfaces
//!   [`AnalysisError::SlowdownUndefined`], reproducing the paper's §5
//!   observation).
//! * [`task_server`] — Lemma 2 / Theorem 1: the same analysis on a task
//!   server running at a fraction `r` of the full machine, using the
//!   exact scaling laws `E[(X/r)^j] = E[X^j]/r^j`, `E[r/X] = r·E[1/X]`.
//! * [`md1`] — the M/D/1 reduction (paper Eq. 15) for deterministic
//!   session-step service times.
//! * [`mm1`] — M/M/1 delay analysis, kept as the counter-example whose
//!   slowdown has no closed form.
//!
//! ```
//! use psd_dist::{BoundedPareto, ServiceDistribution};
//! use psd_queueing::mg1::Mg1Fcfs;
//!
//! let bp = BoundedPareto::paper_default();          // BP(1.5, 0.1, 100)
//! let lam = 0.5 / bp.mean();                        // 50% load
//! let q = Mg1Fcfs::new(lam, bp.moments()).unwrap();
//! let s = q.expected_slowdown().unwrap();
//! assert!(s > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod md1;
pub mod mg1;
pub mod mm1;
pub mod pk;
pub mod priority;
pub mod task_server;
pub mod variance;

pub use error::AnalysisError;
pub use mg1::Mg1Fcfs;
pub use priority::PriorityMg1;
pub use task_server::TaskServerQueue;
