//! Second-moment analysis: the Takács formula for `E[W²]` and the
//! resulting slowdown variance — the analytical backdrop for the
//! paper's §4.3 observation that per-window slowdown ratios are wildly
//! skewed ("caused by the heavy-tail property of the Bounded Pareto").
//!
//! For M/G/1 FCFS (Takács recurrence, second moment):
//!
//! ```text
//! E[W²] = 2·E[W]² + λ·E[X³] / (3(1 − ρ))
//! ```
//!
//! and since a request's delay is independent of its own service time,
//!
//! ```text
//! E[S²]  = E[W²]·E[1/X²]
//! Var[S] = E[S²] − E[S]²
//! ```

use crate::{pk, AnalysisError};
use psd_dist::{HigherMoments, Moments};

/// Second moment of the FCFS queueing delay, `E[W²]` (Takács).
///
/// Needs `E[X³]`; heavy-tailed distributions with `α ≤ 3` (unbounded)
/// have no finite third moment — Bounded Pareto always does.
pub fn delay_second_moment(
    lambda: f64,
    m: &Moments,
    third_moment: f64,
) -> Result<f64, AnalysisError> {
    if !(third_moment.is_finite() && third_moment >= 0.0) {
        return Err(AnalysisError::InfiniteMoment { which: "E[X^3]" });
    }
    let w = pk::expected_delay(lambda, m)?;
    let rho = pk::utilization(lambda, m);
    Ok(2.0 * w * w + lambda * third_moment / (3.0 * (1.0 - rho)))
}

/// Variance of the FCFS queueing delay.
pub fn delay_variance(lambda: f64, m: &Moments, third_moment: f64) -> Result<f64, AnalysisError> {
    let w = pk::expected_delay(lambda, m)?;
    Ok((delay_second_moment(lambda, m, third_moment)? - w * w).max(0.0))
}

/// Variance of the slowdown `S = W/X` in M/G/1 FCFS.
///
/// Requires both `E[X³]` (for `E[W²]`) and `E[1/X²]`.
pub fn slowdown_variance(
    lambda: f64,
    m: &Moments,
    third_moment: f64,
    mean_inverse_square: f64,
) -> Result<f64, AnalysisError> {
    let mi = m.mean_inverse.ok_or(AnalysisError::SlowdownUndefined)?;
    if !(mean_inverse_square.is_finite() && mean_inverse_square >= 0.0) {
        return Err(AnalysisError::InfiniteMoment { which: "E[1/X^2]" });
    }
    let w = pk::expected_delay(lambda, m)?;
    let w2 = delay_second_moment(lambda, m, third_moment)?;
    let s = w * mi;
    Ok((w2 * mean_inverse_square - s * s).max(0.0))
}

/// Convenience wrapper extracting the higher moments from a
/// distribution that provides them (e.g. [`psd_dist::BoundedPareto`]).
pub fn slowdown_variance_of<D>(lambda: f64, dist: &D) -> Result<f64, AnalysisError>
where
    D: psd_dist::ServiceDistribution + HigherMoments,
{
    let m = dist.moments();
    let third = dist.third_moment().ok_or(AnalysisError::InfiniteMoment { which: "E[X^3]" })?;
    let mis =
        dist.mean_inverse_square().ok_or(AnalysisError::InfiniteMoment { which: "E[1/X^2]" })?;
    slowdown_variance(lambda, &m, third, mis)
}

/// One-sided Chebyshev (Cantelli) upper bound: the smallest `v` such
/// that `P(S ≥ v) ≤ prob` given only mean and variance.
pub fn cantelli_upper_bound(mean: f64, variance: f64, prob: f64) -> f64 {
    assert!(prob > 0.0 && prob < 1.0, "probability must be in (0,1)");
    assert!(variance >= 0.0);
    mean + (variance * (1.0 - prob) / prob).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_dist::{BoundedPareto, Deterministic, ServiceDistribution};

    #[test]
    fn md1_delay_second_moment_exact() {
        // M/D/1, d = 1, ρ = 0.5: E[W] = 0.5, E[W²] = 2·0.25 + 0.5·1/(3·0.5)
        // = 0.5 + 1/3.
        let d = Deterministic::new(1.0).unwrap();
        let w2 = delay_second_moment(0.5, &d.moments(), 1.0).unwrap();
        assert!((w2 - (0.5 + 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn variance_nonnegative_across_loads() {
        let bp = BoundedPareto::paper_default();
        for &load in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let v = slowdown_variance_of(load / bp.mean(), &bp).unwrap();
            assert!(v >= 0.0, "variance at load {load}: {v}");
        }
    }

    #[test]
    fn variance_grows_with_load() {
        let bp = BoundedPareto::paper_default();
        let v1 = slowdown_variance_of(0.3 / bp.mean(), &bp).unwrap();
        let v2 = slowdown_variance_of(0.8 / bp.mean(), &bp).unwrap();
        assert!(v2 > v1);
    }

    #[test]
    fn heavier_tail_more_variance() {
        // Larger upper bound ⇒ bigger E[X³] ⇒ bigger slowdown variance.
        let small = BoundedPareto::new(1.5, 0.1, 100.0).unwrap();
        let big = BoundedPareto::new(1.5, 0.1, 10_000.0).unwrap();
        let load = 0.5;
        let vs = slowdown_variance_of(load / small.mean(), &small).unwrap();
        let vb = slowdown_variance_of(load / big.mean(), &big).unwrap();
        assert!(vb > 10.0 * vs, "p=1e4 should dwarf p=100: {vb} vs {vs}");
    }

    #[test]
    fn cantelli_sane() {
        // Zero variance: the bound collapses to the mean.
        assert_eq!(cantelli_upper_bound(5.0, 0.0, 0.05), 5.0);
        // Tighter probability ⇒ larger bound.
        let loose = cantelli_upper_bound(1.0, 4.0, 0.5);
        let tight = cantelli_upper_bound(1.0, 4.0, 0.05);
        assert!(tight > loose);
    }

    #[test]
    fn divergent_moments_rejected() {
        let d = Deterministic::new(1.0).unwrap();
        assert!(matches!(
            delay_second_moment(0.5, &d.moments(), f64::INFINITY),
            Err(AnalysisError::InfiniteMoment { which: "E[X^3]" })
        ));
        let e = psd_dist::Exponential::new(1.0).unwrap();
        assert!(matches!(
            slowdown_variance_of(0.5, &e),
            Err(AnalysisError::InfiniteMoment { which: "E[1/X^2]" })
        ));
    }

    #[test]
    fn unstable_propagates() {
        let d = Deterministic::new(1.0).unwrap();
        assert!(matches!(
            delay_second_moment(1.5, &d.moments(), 1.0),
            Err(AnalysisError::Unstable { .. })
        ));
    }
}
