//! The M/D/1 reduction (paper Eq. 15).
//!
//! When every request in a class takes the same time `d` (session states
//! like "home entry" or "register" in an e-commerce workload, §2.2), the
//! `M/G_B/1` queue degenerates to `M/D/1` and the class slowdown on a
//! task server of rate `r` is simply
//!
//! ```text
//! E[S] = u / (2(1 − u)),     u = λ·d / r
//! ```

use crate::AnalysisError;

/// Expected slowdown of an M/D/1 FCFS queue with arrival rate `lambda`,
/// constant full-rate service time `d`, on a task server of rate `rate`.
pub fn expected_slowdown(lambda: f64, d: f64, rate: f64) -> Result<f64, AnalysisError> {
    if !(lambda.is_finite() && lambda >= 0.0) {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("arrival rate must be finite and >= 0, got {lambda}"),
        });
    }
    if !(d.is_finite() && d > 0.0) {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("service time must be finite and > 0, got {d}"),
        });
    }
    if !(rate.is_finite() && rate > 0.0) {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("rate must be finite and > 0, got {rate}"),
        });
    }
    let u = lambda * d / rate;
    if u >= 1.0 {
        return Err(AnalysisError::Unstable { utilization: u });
    }
    Ok(u / (2.0 * (1.0 - u)))
}

/// Expected queueing delay of the same queue: `E[W] = E[S]·(d/r)`
/// (deterministic service makes the slowdown exactly `W/(d/r)`).
pub fn expected_delay(lambda: f64, d: f64, rate: f64) -> Result<f64, AnalysisError> {
    Ok(expected_slowdown(lambda, d, rate)? * d / rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskServerQueue;
    use psd_dist::{Deterministic, ServiceDistribution};

    #[test]
    fn matches_generic_task_server_analysis() {
        let d = 0.8;
        let det = Deterministic::new(d).unwrap();
        for &(lambda, rate) in &[(0.2, 0.5), (0.5, 0.9), (0.05, 0.1)] {
            let fast = expected_slowdown(lambda, d, rate).unwrap();
            let generic = TaskServerQueue::new(lambda, rate, det.moments())
                .unwrap()
                .expected_slowdown()
                .unwrap();
            assert!((fast - generic).abs() < 1e-12, "λ={lambda} r={rate}");
        }
    }

    #[test]
    fn half_load_slowdown_is_half() {
        // u = 0.5 ⇒ E[S] = 0.5/(2·0.5) = 0.5.
        let s = expected_slowdown(0.5, 1.0, 1.0).unwrap();
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unstable_rejected() {
        assert!(matches!(expected_slowdown(1.0, 1.0, 1.0), Err(AnalysisError::Unstable { .. })));
        assert!(matches!(expected_slowdown(0.6, 1.0, 0.5), Err(AnalysisError::Unstable { .. })));
    }

    #[test]
    fn delay_slowdown_consistency() {
        let (lambda, d, rate) = (0.25, 2.0, 0.8);
        let s = expected_slowdown(lambda, d, rate).unwrap();
        let w = expected_delay(lambda, d, rate).unwrap();
        assert!((w - s * d / rate).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters() {
        assert!(expected_slowdown(-1.0, 1.0, 1.0).is_err());
        assert!(expected_slowdown(0.5, 0.0, 1.0).is_err());
        assert!(expected_slowdown(0.5, 1.0, 0.0).is_err());
    }
}
