//! Task-server queueing analysis (paper Lemma 2 and Theorem 1).
//!
//! A *task server* is the processing unit serving one request class in
//! FCFS order at a fraction `r` of the full machine rate (a child
//! process / thread under proportional-share scheduling). Service times
//! on it are `X/r` where `X` is the full-rate service time, so by the
//! scaling laws of Lemma 2:
//!
//! ```text
//! E[X_i]   = E[X]/r        E[X_i²] = E[X²]/r²       E[1/X_i] = r·E[1/X]
//! ```
//!
//! and Theorem 1 gives the class slowdown
//!
//! ```text
//! E[S_i] = λ_i·E[X_i²]·E[1/X_i] / (2(1 − λ_i·E[X_i]))
//!        = λ_i·E[X²]·E[1/X]     / (2(r − λ_i·E[X]))
//! ```

use crate::{mg1::Mg1Fcfs, AnalysisError};
use psd_dist::Moments;

/// An M/G/1 FCFS queue on a task server with normalized processing rate
/// `rate ∈ (0, 1]`, fed by class arrival rate `lambda`, where `base`
/// holds the service-time moments at full machine rate.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskServerQueue {
    lambda: f64,
    rate: f64,
    base: Moments,
    scaled: Mg1Fcfs,
}

impl TaskServerQueue {
    /// Construct the task-server analysis.
    pub fn new(lambda: f64, rate: f64, base: Moments) -> Result<Self, AnalysisError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(AnalysisError::InvalidParameter {
                reason: format!("task server rate must be finite and > 0, got {rate}"),
            });
        }
        let scaled = Mg1Fcfs::new(lambda, base.scaled_by_rate(rate))?;
        Ok(Self { lambda, rate, base, scaled })
    }

    /// The class arrival rate `λ_i`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The task-server processing rate `r_i`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Moments of the *scaled* service time `X/r` (Lemma 2).
    pub fn scaled_moments(&self) -> &Moments {
        self.scaled.moments()
    }

    /// Local utilization `u_i = λ_i·E[X]/r_i`.
    pub fn utilization(&self) -> f64 {
        self.scaled.utilization()
    }

    /// Is this task server stable?
    pub fn is_stable(&self) -> bool {
        self.scaled.is_stable()
    }

    /// Mean queueing delay on the task server.
    pub fn expected_delay(&self) -> Result<f64, AnalysisError> {
        self.scaled.expected_delay()
    }

    /// Expected class slowdown (Theorem 1 / Eq. 14).
    pub fn expected_slowdown(&self) -> Result<f64, AnalysisError> {
        self.scaled.expected_slowdown()
    }

    /// Expected slowdown via the *unscaled* closed form
    /// `λ·E[X²]·E[1/X] / (2(r − λ·E[X]))` — algebraically identical to
    /// [`Self::expected_slowdown`]; exposed for tests and documentation.
    pub fn expected_slowdown_direct(&self) -> Result<f64, AnalysisError> {
        let mi = self.base.mean_inverse.ok_or(AnalysisError::SlowdownUndefined)?;
        if self.base.second_moment.is_infinite() {
            return Err(AnalysisError::InfiniteMoment { which: "E[X^2]" });
        }
        let slack = self.rate - self.lambda * self.base.mean;
        if slack <= 0.0 {
            return Err(AnalysisError::Unstable { utilization: self.utilization() });
        }
        if self.lambda == 0.0 {
            return Ok(0.0);
        }
        Ok(self.lambda * self.base.second_moment * mi / (2.0 * slack))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_dist::{BoundedPareto, Deterministic, ServiceDistribution};

    fn base() -> Moments {
        BoundedPareto::paper_default().moments()
    }

    #[test]
    fn scaled_and_direct_forms_agree() {
        let m = base();
        for &(lam_load, rate) in &[(0.1, 0.5), (0.3, 0.6), (0.45, 0.5), (0.2, 0.25)] {
            let lambda = lam_load / m.mean;
            let q = TaskServerQueue::new(lambda, rate, m).unwrap();
            let a = q.expected_slowdown().unwrap();
            let b = q.expected_slowdown_direct().unwrap();
            assert!((a - b).abs() / a < 1e-10, "load {lam_load} rate {rate}: {a} vs {b}");
        }
    }

    #[test]
    fn lemma2_scaling_laws() {
        let m = base();
        let q = TaskServerQueue::new(0.1, 0.4, m).unwrap();
        let s = q.scaled_moments();
        assert!((s.mean - m.mean / 0.4).abs() / s.mean < 1e-12);
        assert!((s.second_moment - m.second_moment / 0.16).abs() / s.second_moment < 1e-12);
        assert!(
            (s.mean_inverse.unwrap() - m.mean_inverse.unwrap() * 0.4).abs()
                / s.mean_inverse.unwrap()
                < 1e-12
        );
    }

    #[test]
    fn full_rate_task_server_is_plain_mg1() {
        let m = base();
        let lambda = 0.5 / m.mean;
        let ts = TaskServerQueue::new(lambda, 1.0, m).unwrap();
        let q = Mg1Fcfs::new(lambda, m).unwrap();
        assert!((ts.expected_slowdown().unwrap() - q.expected_slowdown().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn slowing_the_server_raises_slowdown() {
        let m = base();
        let lambda = 0.2 / m.mean;
        let fast = TaskServerQueue::new(lambda, 0.9, m).unwrap().expected_slowdown().unwrap();
        let slow = TaskServerQueue::new(lambda, 0.4, m).unwrap().expected_slowdown().unwrap();
        assert!(slow > fast);
    }

    #[test]
    fn local_stability_boundary() {
        let m = base();
        // Load 0.5 of full machine on a task server of rate 0.5 ⇒ u = 1.
        let lambda = 0.5 / m.mean;
        let q = TaskServerQueue::new(lambda, 0.5, m).unwrap();
        assert!(!q.is_stable());
        assert!(matches!(q.expected_slowdown(), Err(AnalysisError::Unstable { .. })));
        assert!(matches!(q.expected_slowdown_direct(), Err(AnalysisError::Unstable { .. })));
    }

    #[test]
    fn md1_task_server_matches_eq15() {
        // Paper Eq. 15: E[S_i] = u_i / (2(1 − u_i)) with u_i = λ_i d/r_i.
        let d = Deterministic::new(1.0).unwrap();
        let lambda = 0.3;
        let rate = 0.6;
        let u = lambda * 1.0 / rate;
        let q = TaskServerQueue::new(lambda, rate, d.moments()).unwrap();
        let s = q.expected_slowdown().unwrap();
        assert!((s - u / (2.0 * (1.0 - u))).abs() < 1e-12);
    }

    #[test]
    fn zero_lambda_zero_slowdown() {
        let q = TaskServerQueue::new(0.0, 0.5, base()).unwrap();
        assert_eq!(q.expected_slowdown().unwrap(), 0.0);
        assert_eq!(q.expected_slowdown_direct().unwrap(), 0.0);
    }

    #[test]
    fn invalid_rate_rejected() {
        assert!(TaskServerQueue::new(0.1, 0.0, base()).is_err());
        assert!(TaskServerQueue::new(0.1, -0.5, base()).is_err());
        assert!(TaskServerQueue::new(0.1, f64::NAN, base()).is_err());
    }
}
