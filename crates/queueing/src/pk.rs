//! The Pollaczek–Khinchin mean-value formula (Kleinrock Vol. II), the
//! root of every closed form in the paper:
//!
//! ```text
//! E[W] = λ·E[X²] / (2·(1 − ρ)),    ρ = λ·E[X] < 1
//! ```

use crate::AnalysisError;
use psd_dist::Moments;

/// Utilization `ρ = λ·E[X]` of an M/G/1 queue.
pub fn utilization(lambda: f64, m: &Moments) -> f64 {
    lambda * m.mean
}

/// Mean FCFS queueing delay `E[W]` by the P–K formula.
///
/// Errors with [`AnalysisError::Unstable`] when `ρ ≥ 1` and
/// [`AnalysisError::InfiniteMoment`] when `E[X²] = ∞`.
pub fn expected_delay(lambda: f64, m: &Moments) -> Result<f64, AnalysisError> {
    if !(lambda.is_finite() && lambda >= 0.0) {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("arrival rate must be finite and >= 0, got {lambda}"),
        });
    }
    if lambda == 0.0 {
        return Ok(0.0);
    }
    if m.second_moment.is_infinite() {
        return Err(AnalysisError::InfiniteMoment { which: "E[X^2]" });
    }
    let rho = utilization(lambda, m);
    if rho >= 1.0 {
        return Err(AnalysisError::Unstable { utilization: rho });
    }
    Ok(lambda * m.second_moment / (2.0 * (1.0 - rho)))
}

/// Mean number of requests *waiting* (not in service), by Little's law:
/// `E[N_q] = λ·E[W]`.
pub fn expected_queue_length(lambda: f64, m: &Moments) -> Result<f64, AnalysisError> {
    Ok(lambda * expected_delay(lambda, m)?)
}

/// Mean response (sojourn) time `E[T] = E[W] + E[X]`.
pub fn expected_response(lambda: f64, m: &Moments) -> Result<f64, AnalysisError> {
    Ok(expected_delay(lambda, m)? + m.mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_dist::{BoundedPareto, Deterministic, Exponential, Pareto, ServiceDistribution};

    #[test]
    fn md1_closed_form() {
        // M/D/1: E[W] = ρ·d / (2(1−ρ)).
        let d = Deterministic::new(1.0).unwrap();
        let lambda = 0.5;
        let w = expected_delay(lambda, &d.moments()).unwrap();
        assert!((w - 0.5 / (2.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn mm1_closed_form() {
        // M/M/1: E[W] = ρ/(μ−λ). With μ = 1, λ = 0.8: E[W] = 0.8/0.2 = 4.
        let d = Exponential::new(1.0).unwrap();
        let w = expected_delay(0.8, &d.moments()).unwrap();
        assert!((w - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_arrivals_no_delay() {
        let d = BoundedPareto::paper_default();
        assert_eq!(expected_delay(0.0, &d.moments()).unwrap(), 0.0);
    }

    #[test]
    fn unstable_detected() {
        let d = Deterministic::new(1.0).unwrap();
        let err = expected_delay(1.0, &d.moments()).unwrap_err();
        assert!(matches!(err, AnalysisError::Unstable { .. }));
        let err = expected_delay(2.0, &d.moments()).unwrap_err();
        assert!(matches!(err, AnalysisError::Unstable { utilization } if utilization == 2.0));
    }

    #[test]
    fn infinite_second_moment_detected() {
        let d = Pareto::new(1.5, 0.1).unwrap(); // E[X²] = ∞
        let err = expected_delay(0.1, &d.moments()).unwrap_err();
        assert!(matches!(err, AnalysisError::InfiniteMoment { which: "E[X^2]" }));
    }

    #[test]
    fn negative_lambda_rejected() {
        let d = Deterministic::new(1.0).unwrap();
        assert!(matches!(
            expected_delay(-0.5, &d.moments()),
            Err(AnalysisError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn littles_law_and_response() {
        let d = Deterministic::new(2.0).unwrap();
        let lambda = 0.25; // ρ = 0.5
        let w = expected_delay(lambda, &d.moments()).unwrap();
        let nq = expected_queue_length(lambda, &d.moments()).unwrap();
        assert!((nq - lambda * w).abs() < 1e-12);
        let t = expected_response(lambda, &d.moments()).unwrap();
        assert!((t - (w + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn delay_monotone_in_load() {
        let d = BoundedPareto::paper_default();
        let m = d.moments();
        let mut prev = 0.0;
        for i in 1..10 {
            let rho = i as f64 * 0.1;
            let w = expected_delay(rho / m.mean, &m).unwrap();
            assert!(w > prev, "delay must grow with load");
            prev = w;
        }
    }
}
