//! Non-preemptive (head-of-line) priority M/G/1 — the analytical model
//! of the **strict priority** scheduling that the paper's related work
//! (§5, Almeida et al.) showed "cannot guarantee the quality spacings
//! among different classes".
//!
//! Classic closed form (Cobham / Kleinrock): with classes indexed from
//! 0 (highest priority), residual work `R = Σ_j λ_j·E[X_j²]/2` and
//! cumulative utilizations `σ_i = Σ_{j ≤ i} ρ_j`,
//!
//! ```text
//! E[W_i] = R / ((1 − σ_{i−1})(1 − σ_i))
//! ```
//!
//! The waiting time of a job is independent of its own service time
//! (the discipline is non-preemptive and blind to size within a class),
//! so class slowdowns again factorize: `E[S_i] = E[W_i]·E[1/X_i]`.
//!
//! The point of keeping this module: under strict priority the
//! slowdown *ratio* between classes moves with the load mix — exactly
//! why the paper needs Eq. 17 instead. `examples/priority_vs_psd.rs`
//! plots the drift.

use crate::AnalysisError;
use psd_dist::Moments;

/// Analysis of a non-preemptive priority M/G/1 with per-class arrival
/// rates and service moments. Index 0 is the highest priority.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorityMg1 {
    lambdas: Vec<f64>,
    moments: Vec<Moments>,
}

impl PriorityMg1 {
    /// Build the analysis; classes share the single full-rate server.
    pub fn new(lambdas: Vec<f64>, moments: Vec<Moments>) -> Result<Self, AnalysisError> {
        if lambdas.is_empty() || lambdas.len() != moments.len() {
            return Err(AnalysisError::InvalidParameter {
                reason: format!(
                    "need equal non-zero class counts ({} lambdas, {} moment sets)",
                    lambdas.len(),
                    moments.len()
                ),
            });
        }
        for (i, &l) in lambdas.iter().enumerate() {
            if !(l.is_finite() && l >= 0.0) {
                return Err(AnalysisError::InvalidParameter {
                    reason: format!("arrival rate of class {i} must be finite and >= 0, got {l}"),
                });
            }
        }
        for (i, m) in moments.iter().enumerate() {
            if !(m.mean.is_finite() && m.mean > 0.0) {
                return Err(AnalysisError::InvalidParameter {
                    reason: format!("class {i} mean service time must be finite and > 0"),
                });
            }
        }
        Ok(Self { lambdas, moments })
    }

    /// Same service distribution for every class (the paper's setup).
    pub fn homogeneous(lambdas: Vec<f64>, moments: Moments) -> Result<Self, AnalysisError> {
        let n = lambdas.len();
        Self::new(lambdas, vec![moments; n])
    }

    /// Total utilization `ρ`.
    pub fn total_utilization(&self) -> f64 {
        self.lambdas.iter().zip(&self.moments).map(|(l, m)| l * m.mean).sum()
    }

    /// Mean residual work `R = Σ λ_j E[X_j²]/2`.
    pub fn residual_work(&self) -> Result<f64, AnalysisError> {
        let mut r = 0.0;
        for (l, m) in self.lambdas.iter().zip(&self.moments) {
            if m.second_moment.is_infinite() {
                return Err(AnalysisError::InfiniteMoment { which: "E[X^2]" });
            }
            r += l * m.second_moment / 2.0;
        }
        Ok(r)
    }

    /// Mean queueing delay of class `i` (Cobham's formula).
    pub fn expected_delay(&self, class: usize) -> Result<f64, AnalysisError> {
        let rho = self.total_utilization();
        if rho >= 1.0 {
            // Classes above the saturation boundary still have finite
            // delay in theory, but we keep the conservative whole-system
            // stability requirement the rest of the workspace uses.
            return Err(AnalysisError::Unstable { utilization: rho });
        }
        let r = self.residual_work()?;
        let sigma_before: f64 =
            self.lambdas[..class].iter().zip(&self.moments[..class]).map(|(l, m)| l * m.mean).sum();
        let sigma_incl = sigma_before + self.lambdas[class] * self.moments[class].mean;
        Ok(r / ((1.0 - sigma_before) * (1.0 - sigma_incl)))
    }

    /// Mean slowdown of class `i`: `E[W_i]·E[1/X_i]`.
    pub fn expected_slowdown(&self, class: usize) -> Result<f64, AnalysisError> {
        let mi = self.moments[class].mean_inverse.ok_or(AnalysisError::SlowdownUndefined)?;
        Ok(self.expected_delay(class)? * mi)
    }

    /// Achieved slowdown ratio of class `i` over class `j`.
    pub fn slowdown_ratio(&self, i: usize, j: usize) -> Result<f64, AnalysisError> {
        Ok(self.expected_slowdown(i)? / self.expected_slowdown(j)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mg1Fcfs;
    use psd_dist::{BoundedPareto, Deterministic, ServiceDistribution};

    fn bp() -> Moments {
        BoundedPareto::paper_default().moments()
    }

    #[test]
    fn single_class_reduces_to_fcfs() {
        let m = bp();
        let lambda = 0.6 / m.mean;
        let p = PriorityMg1::homogeneous(vec![lambda], m).unwrap();
        let fcfs = Mg1Fcfs::new(lambda, m).unwrap();
        assert!((p.expected_delay(0).unwrap() - fcfs.expected_delay().unwrap()).abs() < 1e-12);
        assert!(
            (p.expected_slowdown(0).unwrap() - fcfs.expected_slowdown().unwrap()).abs() < 1e-12
        );
    }

    #[test]
    fn higher_priority_waits_less() {
        let m = bp();
        let lambda = 0.3 / m.mean;
        let p = PriorityMg1::homogeneous(vec![lambda, lambda, lambda], m).unwrap();
        let w0 = p.expected_delay(0).unwrap();
        let w1 = p.expected_delay(1).unwrap();
        let w2 = p.expected_delay(2).unwrap();
        assert!(w0 < w1 && w1 < w2);
    }

    #[test]
    fn conservation_law() {
        // Kleinrock's conservation: Σ ρ_i·E[W_i] is the same as under
        // FCFS (any non-preemptive work-conserving discipline).
        let m = bp();
        let l = 0.25 / m.mean;
        let p = PriorityMg1::homogeneous(vec![l, l, l], m).unwrap();
        let lhs: f64 = (0..3).map(|i| l * m.mean * p.expected_delay(i).unwrap()).sum();
        let fcfs = Mg1Fcfs::new(3.0 * l, m).unwrap().expected_delay().unwrap();
        let rhs = 0.75 * fcfs;
        assert!((lhs - rhs).abs() / rhs < 1e-9, "{lhs} vs {rhs}");
    }

    /// The §5 point, analytically: the priority slowdown ratio *moves
    /// with the load*, unlike PSD's pinned δ ratio.
    #[test]
    fn priority_ratio_drifts_with_load() {
        let m = bp();
        let ratio_at = |load: f64| {
            let l = load / 2.0 / m.mean;
            PriorityMg1::homogeneous(vec![l, l], m).unwrap().slowdown_ratio(1, 0).unwrap()
        };
        let r_low = ratio_at(0.2);
        let r_high = ratio_at(0.9);
        assert!(
            (r_high - r_low).abs() > 0.5,
            "priority spacing should drift strongly: {r_low} -> {r_high}"
        );
        assert!(r_high > r_low, "higher load widens the priority gap");
    }

    #[test]
    fn md1_two_class_hand_check() {
        // d = 1, λ = (0.25, 0.25): R = (0.25 + 0.25)/2 = 0.25,
        // σ₀ = 0.25, σ₁ = 0.5.
        let m = Deterministic::new(1.0).unwrap().moments();
        let p = PriorityMg1::homogeneous(vec![0.25, 0.25], m).unwrap();
        let w0 = p.expected_delay(0).unwrap();
        let w1 = p.expected_delay(1).unwrap();
        assert!((w0 - 0.25 / 0.75).abs() < 1e-12);
        assert!((w1 - 0.25 / (0.75 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn error_paths() {
        let m = bp();
        assert!(PriorityMg1::new(vec![], vec![]).is_err());
        assert!(PriorityMg1::new(vec![1.0], vec![m, m]).is_err());
        let p = PriorityMg1::homogeneous(vec![5.0 / m.mean], m).unwrap();
        assert!(matches!(p.expected_delay(0), Err(AnalysisError::Unstable { .. })));
        let e = psd_dist::Exponential::new(1.0).unwrap();
        let pe = PriorityMg1::homogeneous(vec![0.5], psd_dist::ServiceDistribution::moments(&e))
            .unwrap();
        assert!(pe.expected_delay(0).is_ok());
        assert_eq!(pe.expected_slowdown(0).unwrap_err(), AnalysisError::SlowdownUndefined);
    }
}
