//! Typed errors for the queueing analysis.

use std::fmt;

/// Why a closed-form queueing quantity cannot be produced.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The queue is not stable: utilization `ρ ≥ 1`.
    Unstable {
        /// The offending utilization.
        utilization: f64,
    },
    /// The service distribution has divergent `E[1/X]`, so expected
    /// slowdown does not exist (e.g. exponential service; paper §5).
    SlowdownUndefined,
    /// A required moment is infinite (e.g. `E[X²]` of an unbounded
    /// Pareto with `α ≤ 2`), so the P–K delay is infinite.
    InfiniteMoment {
        /// Which moment diverged, e.g. `"E[X^2]"`.
        which: &'static str,
    },
    /// Invalid caller-supplied parameter (negative arrival rate, etc.).
    InvalidParameter {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Unstable { utilization } => {
                write!(f, "queue unstable: utilization {utilization} >= 1")
            }
            AnalysisError::SlowdownUndefined => {
                write!(
                    f,
                    "expected slowdown undefined: E[1/X] diverges for this service distribution"
                )
            }
            AnalysisError::InfiniteMoment { which } => {
                write!(f, "required moment {which} is infinite")
            }
            AnalysisError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AnalysisError::Unstable { utilization: 1.2 };
        assert!(e.to_string().contains("1.2"));
        assert!(AnalysisError::SlowdownUndefined.to_string().contains("E[1/X]"));
        let e = AnalysisError::InfiniteMoment { which: "E[X^2]" };
        assert!(e.to_string().contains("E[X^2]"));
    }
}
