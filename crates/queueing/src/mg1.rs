//! M/G/1 FCFS analysis with slowdown (paper Lemma 1).
//!
//! In a FCFS queue an arriving job's waiting time `W` is independent of
//! its *own* service time `X`, so
//!
//! ```text
//! E[S] = E[W/X] = E[W]·E[1/X] = λ·E[X²]·E[1/X] / (2(1 − ρ))
//! ```
//!
//! whenever `E[1/X]` is finite.

use crate::{pk, AnalysisError};
use psd_dist::Moments;

/// Analysis handle for an M/G/1 FCFS queue with arrival rate `λ` and a
/// service distribution summarized by its [`Moments`].
#[derive(Debug, Clone, PartialEq)]
pub struct Mg1Fcfs {
    lambda: f64,
    moments: Moments,
}

impl Mg1Fcfs {
    /// Construct the analysis. Fails on invalid `λ` or non-positive mean
    /// service time; stability is checked lazily by each query so that
    /// an unstable configuration can still report its utilization.
    pub fn new(lambda: f64, moments: Moments) -> Result<Self, AnalysisError> {
        if !(lambda.is_finite() && lambda >= 0.0) {
            return Err(AnalysisError::InvalidParameter {
                reason: format!("arrival rate must be finite and >= 0, got {lambda}"),
            });
        }
        if !(moments.mean.is_finite() && moments.mean > 0.0) {
            return Err(AnalysisError::InvalidParameter {
                reason: format!("mean service time must be finite and > 0, got {}", moments.mean),
            });
        }
        Ok(Self { lambda, moments })
    }

    /// Arrival rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Service-time moments.
    pub fn moments(&self) -> &Moments {
        &self.moments
    }

    /// Utilization `ρ = λ·E[X]`.
    pub fn utilization(&self) -> f64 {
        pk::utilization(self.lambda, &self.moments)
    }

    /// Is the queue stable (`ρ < 1`)?
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Mean queueing delay `E[W]` (P–K).
    pub fn expected_delay(&self) -> Result<f64, AnalysisError> {
        pk::expected_delay(self.lambda, &self.moments)
    }

    /// Mean slowdown `E[S] = E[W]·E[1/X]` (paper Lemma 1 / Eq. 6).
    ///
    /// [`AnalysisError::SlowdownUndefined`] when `E[1/X]` diverges.
    pub fn expected_slowdown(&self) -> Result<f64, AnalysisError> {
        let mean_inverse = self.moments.mean_inverse.ok_or(AnalysisError::SlowdownUndefined)?;
        Ok(self.expected_delay()? * mean_inverse)
    }

    /// Mean response time `E[T] = E[W] + E[X]`.
    pub fn expected_response(&self) -> Result<f64, AnalysisError> {
        pk::expected_response(self.lambda, &self.moments)
    }

    /// Mean number waiting, `λ·E[W]` (Little).
    pub fn expected_queue_length(&self) -> Result<f64, AnalysisError> {
        pk::expected_queue_length(self.lambda, &self.moments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_dist::{
        BoundedPareto, Deterministic, Exponential, HyperExponential, ServiceDistribution,
    };

    fn bp_queue(load: f64) -> Mg1Fcfs {
        let d = BoundedPareto::paper_default();
        let m = d.moments();
        Mg1Fcfs::new(load / m.mean, m).unwrap()
    }

    #[test]
    fn slowdown_formula_direct() {
        // E[S] = λ·E[X²]·E[1/X] / (2(1−ρ)), cross-checked by parts.
        let q = bp_queue(0.6);
        let m = *q.moments();
        let s = q.expected_slowdown().unwrap();
        let manual = q.lambda() * m.second_moment * m.mean_inverse.unwrap() / (2.0 * (1.0 - 0.6));
        assert!((s - manual).abs() / manual < 1e-12);
    }

    #[test]
    fn slowdown_undefined_for_exponential() {
        let d = Exponential::new(1.0).unwrap();
        let q = Mg1Fcfs::new(0.5, d.moments()).unwrap();
        assert!(q.expected_delay().is_ok(), "delay still has a closed form");
        assert_eq!(q.expected_slowdown().unwrap_err(), AnalysisError::SlowdownUndefined);
    }

    #[test]
    fn slowdown_undefined_for_hyperexponential() {
        let d = HyperExponential::h2_balanced(1.0, 4.0).unwrap();
        let q = Mg1Fcfs::new(0.3, d.moments()).unwrap();
        assert_eq!(q.expected_slowdown().unwrap_err(), AnalysisError::SlowdownUndefined);
    }

    #[test]
    fn md1_slowdown_reduction() {
        // Deterministic d: E[S] = ρ/(2(1−ρ)) — paper Eq. 15 at full rate.
        let d = Deterministic::new(2.0).unwrap();
        for &rho in &[0.1, 0.5, 0.9] {
            let q = Mg1Fcfs::new(rho / 2.0, d.moments()).unwrap();
            let s = q.expected_slowdown().unwrap();
            let expect = rho / (2.0 * (1.0 - rho));
            assert!((s - expect).abs() < 1e-12, "rho={rho}: {s} vs {expect}");
        }
    }

    #[test]
    fn stability_flags() {
        assert!(bp_queue(0.95).is_stable());
        assert!(!bp_queue(1.0).is_stable());
        assert!(matches!(bp_queue(1.1).expected_delay(), Err(AnalysisError::Unstable { .. })));
    }

    #[test]
    fn slowdown_blows_up_near_saturation() {
        let s50 = bp_queue(0.5).expected_slowdown().unwrap();
        let s90 = bp_queue(0.9).expected_slowdown().unwrap();
        let s99 = bp_queue(0.99).expected_slowdown().unwrap();
        assert!(s50 < s90 && s90 < s99);
        assert!(s99 / s50 > 10.0, "1/(1−ρ) growth");
    }

    #[test]
    fn invalid_parameters_rejected() {
        let d = BoundedPareto::paper_default();
        assert!(Mg1Fcfs::new(f64::NAN, d.moments()).is_err());
        assert!(Mg1Fcfs::new(-1.0, d.moments()).is_err());
        let bad = psd_dist::Moments { mean: 0.0, second_moment: 1.0, mean_inverse: Some(1.0) };
        assert!(Mg1Fcfs::new(1.0, bad).is_err());
    }

    #[test]
    fn response_exceeds_delay_by_mean_service() {
        let q = bp_queue(0.7);
        let w = q.expected_delay().unwrap();
        let t = q.expected_response().unwrap();
        assert!((t - w - q.moments().mean).abs() < 1e-12);
    }
}
