//! The common scheduler interface.

/// A unit of work to dispatch (a request, a quantum, a packet).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkItem {
    /// Caller-assigned identifier.
    pub id: u64,
    /// Work amount (service time at unit rate). Must be positive.
    pub cost: f64,
}

/// A weighted scheduler over a fixed set of classes: work enqueued per
/// class, dispatched one item at a time such that long-run dispatched
/// *work* is proportional to class weights while classes stay
/// backlogged.
pub trait ProportionalScheduler {
    /// Number of classes the scheduler was built with.
    fn num_classes(&self) -> usize;

    /// Replace the weight of `class` (takes effect on future decisions).
    ///
    /// # Panics
    /// Panics if `class` is out of range or `weight` is not positive.
    fn set_weight(&mut self, class: usize, weight: f64);

    /// Current weight of `class`.
    fn weight(&self, class: usize) -> f64;

    /// Append an item to `class`'s FIFO backlog.
    fn enqueue(&mut self, class: usize, item: WorkItem);

    /// Pick the next item to serve (run-to-completion), or `None` if
    /// every class is empty.
    fn dequeue(&mut self) -> Option<(usize, WorkItem)>;

    /// Items waiting in `class`'s backlog.
    fn backlog(&self, class: usize) -> usize;

    /// True when no class has pending work.
    fn is_empty(&self) -> bool {
        (0..self.num_classes()).all(|c| self.backlog(c) == 0)
    }
}

pub(crate) fn check_weights(weights: &[f64]) {
    assert!(!weights.is_empty(), "need at least one class");
    for (i, &w) in weights.iter().enumerate() {
        assert!(w.is_finite() && w > 0.0, "weight of class {i} must be finite and > 0, got {w}");
    }
}

pub(crate) fn check_item(item: &WorkItem) {
    assert!(
        item.cost.is_finite() && item.cost > 0.0,
        "work item cost must be finite and > 0, got {}",
        item.cost
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_validation() {
        check_weights(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_weights_panic() {
        check_weights(&[]);
    }

    #[test]
    #[should_panic(expected = "must be finite and > 0")]
    fn zero_weight_panics() {
        check_weights(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "cost must be finite and > 0")]
    fn bad_item_panics() {
        check_item(&WorkItem { id: 0, cost: 0.0 });
    }
}
