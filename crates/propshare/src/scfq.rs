//! Self-clocked fair queueing (SCFQ, Golestani 1994): the *finish-tag*
//! sibling of SFQ. Virtual time is the finish tag of the item in
//! service; dispatch order is ascending finish tag. Slightly different
//! delay bounds than start-tag SFQ (SCFQ can delay a newly busy class
//! by one item more), same long-run weighted shares — having both lets
//! the fairness suite cross-validate the two classic virtual-time
//! constructions.

use std::collections::VecDeque;

use crate::scheduler::{check_item, check_weights, ProportionalScheduler, WorkItem};

#[derive(Debug, Clone, Copy)]
struct Tagged {
    item: WorkItem,
    finish: f64,
}

/// Self-clocked fair queueing scheduler.
#[derive(Debug, Clone)]
pub struct Scfq {
    weights: Vec<f64>,
    queues: Vec<VecDeque<Tagged>>,
    /// Virtual time = finish tag of the most recently dispatched item.
    vtime: f64,
    last_finish: Vec<f64>,
}

impl Scfq {
    /// Build with per-class weights.
    pub fn new(weights: Vec<f64>) -> Self {
        check_weights(&weights);
        let n = weights.len();
        Self {
            weights,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            vtime: 0.0,
            last_finish: vec![0.0; n],
        }
    }
}

impl ProportionalScheduler for Scfq {
    fn num_classes(&self) -> usize {
        self.weights.len()
    }

    fn set_weight(&mut self, class: usize, weight: f64) {
        assert!(weight.is_finite() && weight > 0.0, "weight must be finite and > 0");
        self.weights[class] = weight;
    }

    fn weight(&self, class: usize) -> f64 {
        self.weights[class]
    }

    fn enqueue(&mut self, class: usize, item: WorkItem) {
        check_item(&item);
        // SCFQ tag rule: F = max(V, F_prev(class)) + cost/weight.
        let start = self.vtime.max(self.last_finish[class]);
        let finish = start + item.cost / self.weights[class];
        self.last_finish[class] = finish;
        self.queues[class].push_back(Tagged { item, finish });
    }

    fn dequeue(&mut self) -> Option<(usize, WorkItem)> {
        let mut best: Option<(usize, f64)> = None;
        for (class, q) in self.queues.iter().enumerate() {
            if let Some(head) = q.front() {
                match best {
                    Some((_, f)) if head.finish >= f => {}
                    _ => best = Some((class, head.finish)),
                }
            }
        }
        let (class, _) = best?;
        let tagged = self.queues[class].pop_front().expect("head checked");
        self.vtime = tagged.finish;
        Some((class, tagged.item))
    }

    fn backlog(&self, class: usize) -> usize {
        self.queues[class].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_class() {
        let mut s = Scfq::new(vec![1.0]);
        for id in 0..5 {
            s.enqueue(0, WorkItem { id, cost: 1.0 });
        }
        for id in 0..5 {
            assert_eq!(s.dequeue().unwrap().1.id, id);
        }
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn weighted_interleave() {
        let mut s = Scfq::new(vec![3.0, 1.0]);
        for id in 0..40 {
            s.enqueue(0, WorkItem { id, cost: 1.0 });
            s.enqueue(1, WorkItem { id: 100 + id, cost: 1.0 });
        }
        let mut counts = [0usize; 2];
        for _ in 0..20 {
            counts[s.dequeue().unwrap().0] += 1;
        }
        assert!(counts[0] >= 14 && counts[0] <= 16, "3:1 prefix shares, got {counts:?}");
    }

    #[test]
    fn long_run_work_fairness() {
        // Cross-validation against the same invariant WFQ satisfies.
        let mut s = Scfq::new(vec![1.0, 2.0]);
        let mut work = [0.0f64; 2];
        let mut id = 0u64;
        for c in 0..2 {
            for _ in 0..3 {
                s.enqueue(c, WorkItem { id, cost: 1.0 + (id % 5) as f64 * 0.4 });
                id += 1;
            }
        }
        for _ in 0..30_000 {
            let (c, item) = s.dequeue().unwrap();
            work[c] += item.cost;
            s.enqueue(c, WorkItem { id, cost: 1.0 + (id % 5) as f64 * 0.4 });
            id += 1;
        }
        let frac0 = work[0] / (work[0] + work[1]);
        assert!((frac0 - 1.0 / 3.0).abs() < 0.01, "weight-1 share {frac0}");
    }

    #[test]
    fn vtime_prevents_idle_credit() {
        let mut s = Scfq::new(vec![1.0, 1.0]);
        // Class 1 alone advances virtual time far ahead.
        for id in 0..20 {
            s.enqueue(1, WorkItem { id, cost: 5.0 });
        }
        for _ in 0..20 {
            s.dequeue().unwrap();
        }
        // Class 0 joins late; its first finish tag is anchored at the
        // current virtual time, so it cannot monopolize to "catch up".
        for id in 100..110 {
            s.enqueue(0, WorkItem { id, cost: 1.0 });
            s.enqueue(1, WorkItem { id: 200 + id, cost: 1.0 });
        }
        let mut first_six = [0usize; 2];
        for _ in 0..6 {
            first_six[s.dequeue().unwrap().0] += 1;
        }
        assert!(first_six[0] <= 4, "no banked credit: {first_six:?}");
    }
}
