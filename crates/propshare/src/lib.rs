//! # psd-propshare — proportional-share scheduling substrate
//!
//! The PSD paper *assumes* "that the processing rate of an Internet
//! server can be proportionally allocated to a number of task servers",
//! citing GPS, PGPS and Lottery scheduling as the base (§1, §2.2). This
//! crate provides that base, implemented from scratch:
//!
//! * [`GpsFluid`] — the idealized Generalized Processor Sharing fluid
//!   reference (continuous, infinitely divisible service). Used as the
//!   ground truth that packetized schedulers are tested against.
//! * [`Wfq`] — start-time fair queueing, the practical packet-by-packet
//!   approximation of GPS (the PGPS family); serves whole requests in
//!   ascending virtual start-tag order.
//! * [`Lottery`] — Waldspurger/Weihl lottery scheduling: probabilistic
//!   shares via weighted random ticket draws.
//! * [`Stride`] — the deterministic counterpart of lottery scheduling
//!   (inverse-weight strides, minimum-pass selection).
//! * [`Drr`] — deficit round robin with weight-proportional quanta.
//!
//! All schedulers implement [`ProportionalScheduler`] and are exercised
//! by the same fairness test-suite: with all classes continuously
//! backlogged, the long-run fraction of *work* dispatched for class `i`
//! converges to `w_i / Σw_j`.
//!
//! ```
//! use psd_propshare::{ProportionalScheduler, Wfq, WorkItem};
//!
//! let mut s = Wfq::new(vec![2.0, 1.0]); // class 0 gets 2/3 of the work
//! s.enqueue(0, WorkItem { id: 1, cost: 1.0 });
//! s.enqueue(1, WorkItem { id: 2, cost: 1.0 });
//! s.enqueue(0, WorkItem { id: 3, cost: 1.0 });
//! let (class, item) = s.dequeue().unwrap();
//! assert_eq!((class, item.id), (0, 1));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod drr;
mod gps;
mod lottery;
mod scfq;
mod scheduler;
mod stride;
mod wfq;

pub use drr::Drr;
pub use gps::GpsFluid;
pub use lottery::Lottery;
pub use scfq::Scfq;
pub use scheduler::{ProportionalScheduler, WorkItem};
pub use stride::Stride;
pub use wfq::Wfq;

#[cfg(test)]
mod fairness_tests {
    //! The cross-scheduler fairness suite: every packetized scheduler
    //! must track the GPS fluid shares when all classes stay backlogged.

    use super::*;
    use psd_dist::rng::Xoshiro256pp;
    use rand::RngCore;

    /// Keep every class backlogged, dispatch `total` work items with
    /// random costs, and return per-class dispatched work fractions.
    fn dispatch_fractions<S: ProportionalScheduler>(mut s: S, items: usize, seed: u64) -> Vec<f64> {
        let n = s.num_classes();
        let mut rng = Xoshiro256pp::seed_from(seed);
        let mut next_id = 0u64;
        let mut work = vec![0.0f64; n];
        // Prime each class with a few items.
        for class in 0..n {
            for _ in 0..4 {
                let cost = 0.5 + (rng.next_u64() % 100) as f64 / 50.0;
                s.enqueue(class, WorkItem { id: next_id, cost });
                next_id += 1;
            }
        }
        for _ in 0..items {
            let (class, item) = s.dequeue().expect("kept backlogged");
            work[class] += item.cost;
            // Refill the class we just drained to keep it backlogged.
            let cost = 0.5 + (rng.next_u64() % 100) as f64 / 50.0;
            s.enqueue(class, WorkItem { id: next_id, cost });
            next_id += 1;
        }
        let total: f64 = work.iter().sum();
        work.iter().map(|w| w / total).collect()
    }

    fn assert_tracks_weights(fractions: &[f64], weights: &[f64], tol: f64, label: &str) {
        let wsum: f64 = weights.iter().sum();
        for (i, (&f, &w)) in fractions.iter().zip(weights).enumerate() {
            let want = w / wsum;
            assert!(
                (f - want).abs() < tol,
                "{label}: class {i} got fraction {f:.4}, want {want:.4}"
            );
        }
    }

    #[test]
    fn wfq_tracks_weights() {
        let w = vec![1.0, 2.0, 4.0];
        let f = dispatch_fractions(Wfq::new(w.clone()), 30_000, 1);
        assert_tracks_weights(&f, &w, 0.01, "wfq");
    }

    #[test]
    fn stride_tracks_weights() {
        let w = vec![5.0, 3.0, 2.0];
        let f = dispatch_fractions(Stride::new(w.clone()), 30_000, 2);
        assert_tracks_weights(&f, &w, 0.01, "stride");
    }

    #[test]
    fn drr_tracks_weights() {
        let w = vec![1.0, 1.0, 3.0];
        let f = dispatch_fractions(Drr::new(w.clone(), 2.0), 30_000, 3);
        assert_tracks_weights(&f, &w, 0.02, "drr");
    }

    #[test]
    fn lottery_tracks_weights_statistically() {
        let w = vec![1.0, 3.0];
        let f = dispatch_fractions(Lottery::new(w.clone(), 7), 60_000, 4);
        // Probabilistic: looser tolerance.
        assert_tracks_weights(&f, &w, 0.02, "lottery");
    }

    #[test]
    fn scfq_tracks_weights() {
        let w = vec![2.0, 1.0, 1.0];
        let f = dispatch_fractions(Scfq::new(w.clone()), 30_000, 9);
        assert_tracks_weights(&f, &w, 0.01, "scfq");
    }

    #[test]
    fn skewed_weights_still_fair() {
        let w = vec![1.0, 10.0, 100.0];
        let f = dispatch_fractions(Wfq::new(w.clone()), 60_000, 5);
        assert_tracks_weights(&f, &w, 0.01, "wfq skewed");
        let f = dispatch_fractions(Stride::new(w.clone()), 60_000, 6);
        assert_tracks_weights(&f, &w, 0.01, "stride skewed");
    }
}
