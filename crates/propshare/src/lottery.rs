//! Lottery scheduling (Waldspurger & Weihl, OSDI '94): each backlogged
//! class holds tickets proportional to its weight; each dispatch draws
//! a uniformly random ticket. Shares are probabilistic — exact in
//! expectation, with O(√n) deviation over n draws.
//!
//! One refinement from the original paper is included: *cost-aware
//! compensation*. Because we dispatch whole requests of uneven cost, a
//! pure ticket draw would give a class with expensive requests more
//! than its share of **work**. Each class therefore carries a
//! compensation factor `expected_cost / mean_class_cost` so long-run
//! dispatched work (not dispatch count) tracks the weights.

use std::collections::VecDeque;

use psd_dist::rng::Xoshiro256pp;

use crate::scheduler::{check_item, check_weights, ProportionalScheduler, WorkItem};

/// Lottery scheduler with deterministic seeding.
#[derive(Debug, Clone)]
pub struct Lottery {
    weights: Vec<f64>,
    queues: Vec<VecDeque<WorkItem>>,
    rng: Xoshiro256pp,
    /// Running mean cost per class (for compensation), Welford-style.
    mean_cost: Vec<f64>,
    cost_count: Vec<u64>,
}

impl Lottery {
    /// Build with per-class weights and an RNG seed.
    pub fn new(weights: Vec<f64>, seed: u64) -> Self {
        check_weights(&weights);
        let n = weights.len();
        Self {
            weights,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            rng: Xoshiro256pp::seed_from(seed),
            mean_cost: vec![0.0; n],
            cost_count: vec![0; n],
        }
    }

    fn effective_tickets(&self, class: usize) -> f64 {
        // Compensate for per-class cost differences so *work* tracks
        // weights: classes with cheaper items draw proportionally more.
        let mc = self.mean_cost[class];
        if mc > 0.0 {
            self.weights[class] / mc
        } else {
            self.weights[class]
        }
    }
}

impl ProportionalScheduler for Lottery {
    fn num_classes(&self) -> usize {
        self.weights.len()
    }

    fn set_weight(&mut self, class: usize, weight: f64) {
        assert!(weight.is_finite() && weight > 0.0, "weight must be finite and > 0");
        self.weights[class] = weight;
    }

    fn weight(&self, class: usize) -> f64 {
        self.weights[class]
    }

    fn enqueue(&mut self, class: usize, item: WorkItem) {
        check_item(&item);
        // Update the running mean cost of the class.
        self.cost_count[class] += 1;
        let k = self.cost_count[class] as f64;
        self.mean_cost[class] += (item.cost - self.mean_cost[class]) / k;
        self.queues[class].push_back(item);
    }

    fn dequeue(&mut self) -> Option<(usize, WorkItem)> {
        let backlogged: Vec<usize> =
            (0..self.weights.len()).filter(|&c| !self.queues[c].is_empty()).collect();
        if backlogged.is_empty() {
            return None;
        }
        let total: f64 = backlogged.iter().map(|&c| self.effective_tickets(c)).sum();
        let draw = self.rng.next_f64() * total;
        let mut acc = 0.0;
        let mut winner = *backlogged.last().expect("non-empty");
        for &c in &backlogged {
            acc += self.effective_tickets(c);
            if draw < acc {
                winner = c;
                break;
            }
        }
        let item = self.queues[winner].pop_front().expect("backlogged");
        Some((winner, item))
    }

    fn backlog(&self, class: usize) -> usize {
        self.queues[class].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_class_serves_fifo() {
        let mut s = Lottery::new(vec![1.0], 1);
        for id in 0..3 {
            s.enqueue(0, WorkItem { id, cost: 1.0 });
        }
        assert_eq!(s.dequeue().unwrap().1.id, 0);
        assert_eq!(s.dequeue().unwrap().1.id, 1);
        assert_eq!(s.dequeue().unwrap().1.id, 2);
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn draw_proportions_follow_tickets() {
        let mut s = Lottery::new(vec![1.0, 9.0], 7);
        let mut counts = [0usize; 2];
        for round in 0..20_000u64 {
            s.enqueue(0, WorkItem { id: round * 2, cost: 1.0 });
            s.enqueue(1, WorkItem { id: round * 2 + 1, cost: 1.0 });
            let (c, _) = s.dequeue().unwrap();
            counts[c] += 1;
        }
        let frac1 = counts[1] as f64 / (counts[0] + counts[1]) as f64;
        assert!((frac1 - 0.9).abs() < 0.02, "class 1 drew {frac1}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut s = Lottery::new(vec![1.0, 1.0], seed);
            let mut order = Vec::new();
            for id in 0..50 {
                s.enqueue(0, WorkItem { id, cost: 1.0 });
                s.enqueue(1, WorkItem { id: 100 + id, cost: 1.0 });
            }
            while let Some((c, _)) = s.dequeue() {
                order.push(c);
            }
            order
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn only_backlogged_classes_win() {
        let mut s = Lottery::new(vec![1.0, 1000.0], 5);
        s.enqueue(0, WorkItem { id: 1, cost: 1.0 });
        // Class 1 holds almost all tickets but is empty.
        let (c, _) = s.dequeue().unwrap();
        assert_eq!(c, 0);
    }

    #[test]
    fn cost_compensation_balances_work() {
        // Equal weights, class 0 items cost 4x: per-work fairness
        // requires class 1 to be drawn ~4x as often.
        let mut s = Lottery::new(vec![1.0, 1.0], 11);
        let mut work = [0.0f64; 2];
        for round in 0..40_000u64 {
            if s.backlog(0) == 0 {
                s.enqueue(0, WorkItem { id: round * 2, cost: 4.0 });
            }
            if s.backlog(1) == 0 {
                s.enqueue(1, WorkItem { id: round * 2 + 1, cost: 1.0 });
            }
            let (c, item) = s.dequeue().unwrap();
            work[c] += item.cost;
        }
        let frac0 = work[0] / (work[0] + work[1]);
        assert!((frac0 - 0.5).abs() < 0.03, "work fraction of class 0: {frac0}");
    }
}
