//! Deficit round robin (Shreedhar & Varghese): O(1) weighted fair
//! queueing. Each class has a quantum proportional to its weight; a
//! round visits backlogged classes in order, adding the quantum to the
//! class's deficit counter and dispatching head-of-line items while the
//! deficit covers their cost.

use std::collections::VecDeque;

use crate::scheduler::{check_item, check_weights, ProportionalScheduler, WorkItem};

/// Deficit round robin scheduler.
#[derive(Debug, Clone)]
pub struct Drr {
    weights: Vec<f64>,
    /// Quantum per unit weight.
    base_quantum: f64,
    queues: Vec<VecDeque<WorkItem>>,
    deficit: Vec<f64>,
    /// Next class index to visit.
    cursor: usize,
    /// Whether the class at `cursor` already received its quantum for
    /// the current visit (prevents re-granting while we keep serving it).
    granted: bool,
}

impl Drr {
    /// `base_quantum` is the per-round credit of a weight-1.0 class; it
    /// should be at least the typical item cost to keep rounds short.
    pub fn new(weights: Vec<f64>, base_quantum: f64) -> Self {
        check_weights(&weights);
        assert!(base_quantum.is_finite() && base_quantum > 0.0, "quantum must be positive");
        let n = weights.len();
        Self {
            weights,
            base_quantum,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            deficit: vec![0.0; n],
            cursor: 0,
            granted: false,
        }
    }
}

impl ProportionalScheduler for Drr {
    fn num_classes(&self) -> usize {
        self.weights.len()
    }

    fn set_weight(&mut self, class: usize, weight: f64) {
        assert!(weight.is_finite() && weight > 0.0, "weight must be finite and > 0");
        self.weights[class] = weight;
    }

    fn weight(&self, class: usize) -> f64 {
        self.weights[class]
    }

    fn enqueue(&mut self, class: usize, item: WorkItem) {
        check_item(&item);
        self.queues[class].push_back(item);
    }

    fn dequeue(&mut self) -> Option<(usize, WorkItem)> {
        if self.is_empty() {
            return None;
        }
        let n = self.weights.len();
        // Each full round adds one quantum to every backlogged class, so
        // after ceil(max_cost / min_quantum) rounds some head becomes
        // servable; the loop is finite. Bound it generously anyway.
        let min_quantum =
            self.weights.iter().cloned().fold(f64::INFINITY, f64::min) * self.base_quantum;
        let max_cost =
            (0..n).filter_map(|c| self.queues[c].front().map(|i| i.cost)).fold(0.0f64, f64::max);
        let bound = ((max_cost / min_quantum).ceil() as usize + 2) * n + 2;
        for _ in 0..bound {
            let class = self.cursor;
            if let Some(head) = self.queues[class].front() {
                if !self.granted {
                    self.deficit[class] += self.base_quantum * self.weights[class];
                    self.granted = true;
                }
                if self.deficit[class] >= head.cost {
                    self.deficit[class] -= head.cost;
                    let item = self.queues[class].pop_front().expect("head checked");
                    if self.queues[class].is_empty() {
                        // Idle classes bank nothing (standard DRR rule).
                        self.deficit[class] = 0.0;
                        self.cursor = (class + 1) % n;
                        self.granted = false;
                    } else if self.deficit[class]
                        < self.queues[class].front().expect("non-empty").cost
                    {
                        // Deficit exhausted for this visit: next class.
                        self.cursor = (class + 1) % n;
                        self.granted = false;
                    }
                    // Otherwise stay on this class (deficit still covers
                    // its next head) without re-granting.
                    return Some((class, item));
                }
            } else {
                self.deficit[class] = 0.0;
            }
            self.cursor = (class + 1) % n;
            self.granted = false;
        }
        unreachable!("DRR failed to dispatch within {bound} visits");
    }

    fn backlog(&self, class: usize) -> usize {
        self.queues[class].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_equal_weights() {
        let mut s = Drr::new(vec![1.0, 1.0], 1.0);
        for id in 0..10 {
            s.enqueue(0, WorkItem { id, cost: 1.0 });
            s.enqueue(1, WorkItem { id: 100 + id, cost: 1.0 });
        }
        let mut counts = [0usize; 2];
        for _ in 0..10 {
            counts[s.dequeue().unwrap().0] += 1;
        }
        assert_eq!(counts, [5, 5]);
    }

    #[test]
    fn weight_three_gets_three_per_round() {
        let mut s = Drr::new(vec![3.0, 1.0], 1.0);
        for id in 0..40 {
            s.enqueue(0, WorkItem { id, cost: 1.0 });
            s.enqueue(1, WorkItem { id: 100 + id, cost: 1.0 });
        }
        let mut counts = [0usize; 2];
        for _ in 0..20 {
            counts[s.dequeue().unwrap().0] += 1;
        }
        assert_eq!(counts, [15, 5]);
    }

    #[test]
    fn oversized_items_eventually_serve() {
        let mut s = Drr::new(vec![1.0, 1.0], 1.0);
        s.enqueue(0, WorkItem { id: 1, cost: 50.0 }); // far above quantum
        s.enqueue(1, WorkItem { id: 2, cost: 1.0 });
        let mut got = Vec::new();
        while let Some((_, item)) = s.dequeue() {
            got.push(item.id);
        }
        assert_eq!(got.len(), 2);
        assert!(got.contains(&1), "the oversized item must not be starved");
    }

    #[test]
    fn idle_class_banks_nothing() {
        let mut s = Drr::new(vec![1.0, 1.0], 1.0);
        s.enqueue(0, WorkItem { id: 1, cost: 1.0 });
        assert_eq!(s.dequeue().unwrap().1.id, 1);
        // Class 0 sat idle; when both classes refill, it has no stored
        // advantage.
        for id in 0..10 {
            s.enqueue(0, WorkItem { id: 10 + id, cost: 1.0 });
            s.enqueue(1, WorkItem { id: 100 + id, cost: 1.0 });
        }
        let mut counts = [0usize; 2];
        for _ in 0..10 {
            counts[s.dequeue().unwrap().0] += 1;
        }
        assert!((counts[0] as i64 - counts[1] as i64).abs() <= 2, "{counts:?}");
    }

    #[test]
    fn empty_returns_none() {
        let mut s = Drr::new(vec![1.0], 1.0);
        assert!(s.dequeue().is_none());
    }
}
