//! Stride scheduling — the deterministic analogue of lottery
//! scheduling (Waldspurger & Weihl). Each class has a stride inversely
//! proportional to its weight; the scheduler always serves the
//! backlogged class with the minimum *pass* value and advances its pass
//! by `stride × cost`, so dispatched work tracks weights with O(1)
//! deviation instead of lottery's O(√n).

use std::collections::VecDeque;

use crate::scheduler::{check_item, check_weights, ProportionalScheduler, WorkItem};

const STRIDE_SCALE: f64 = 1.0;

/// Stride scheduler.
#[derive(Debug, Clone)]
pub struct Stride {
    weights: Vec<f64>,
    queues: Vec<VecDeque<WorkItem>>,
    pass: Vec<f64>,
    global_pass: f64,
}

impl Stride {
    /// Build with per-class weights.
    pub fn new(weights: Vec<f64>) -> Self {
        check_weights(&weights);
        let n = weights.len();
        Self {
            weights,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            pass: vec![0.0; n],
            global_pass: 0.0,
        }
    }

    fn stride(&self, class: usize) -> f64 {
        STRIDE_SCALE / self.weights[class]
    }
}

impl ProportionalScheduler for Stride {
    fn num_classes(&self) -> usize {
        self.weights.len()
    }

    fn set_weight(&mut self, class: usize, weight: f64) {
        assert!(weight.is_finite() && weight > 0.0, "weight must be finite and > 0");
        self.weights[class] = weight;
    }

    fn weight(&self, class: usize) -> f64 {
        self.weights[class]
    }

    fn enqueue(&mut self, class: usize, item: WorkItem) {
        check_item(&item);
        if self.queues[class].is_empty() {
            // A class re-joining the competition must not have banked
            // credit from its idle period: jump its pass to the global
            // pass (the standard stride "exhausted client" rule).
            self.pass[class] = self.pass[class].max(self.global_pass);
        }
        self.queues[class].push_back(item);
    }

    fn dequeue(&mut self) -> Option<(usize, WorkItem)> {
        let winner = (0..self.weights.len())
            .filter(|&c| !self.queues[c].is_empty())
            .min_by(|&a, &b| self.pass[a].total_cmp(&self.pass[b]))?;
        let item = self.queues[winner].pop_front().expect("backlogged");
        self.global_pass = self.pass[winner];
        self.pass[winner] += self.stride(winner) * item.cost;
        Some((winner, item))
    }

    fn backlog(&self, class: usize) -> usize {
        self.queues[class].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_to_one_pattern() {
        // Weights 2:1, unit costs ⇒ dispatch pattern of period 3 with
        // two class-0 dispatches per period.
        let mut s = Stride::new(vec![2.0, 1.0]);
        for id in 0..30 {
            s.enqueue(0, WorkItem { id, cost: 1.0 });
            s.enqueue(1, WorkItem { id: 100 + id, cost: 1.0 });
        }
        let mut counts = [0usize; 2];
        for _ in 0..15 {
            counts[s.dequeue().unwrap().0] += 1;
        }
        assert_eq!(counts[0], 10);
        assert_eq!(counts[1], 5);
    }

    #[test]
    fn cost_weighted_passes() {
        // Equal weights but class 0's items are twice the cost: class 1
        // should be dispatched about twice as often.
        let mut s = Stride::new(vec![1.0, 1.0]);
        let mut counts = [0usize; 2];
        for round in 0..3000u64 {
            if s.backlog(0) < 2 {
                s.enqueue(0, WorkItem { id: round * 2, cost: 2.0 });
            }
            if s.backlog(1) < 2 {
                s.enqueue(1, WorkItem { id: round * 2 + 1, cost: 1.0 });
            }
            counts[s.dequeue().unwrap().0] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 2.0).abs() < 0.1, "dispatch ratio {ratio}");
    }

    #[test]
    fn rejoining_class_gets_no_banked_credit() {
        let mut s = Stride::new(vec![1.0, 1.0]);
        // Only class 1 active for a while.
        for id in 0..10 {
            s.enqueue(1, WorkItem { id, cost: 1.0 });
        }
        for _ in 0..10 {
            s.dequeue().unwrap();
        }
        // Class 0 joins; without the pass-forwarding rule it would now
        // monopolize for 10 dispatches.
        for id in 0..10 {
            s.enqueue(0, WorkItem { id: 100 + id, cost: 1.0 });
            s.enqueue(1, WorkItem { id: 200 + id, cost: 1.0 });
        }
        let mut first_eight = [0usize; 2];
        for _ in 0..8 {
            first_eight[s.dequeue().unwrap().0] += 1;
        }
        assert!(first_eight[0] <= 5, "rejoining class must not monopolize: {first_eight:?}");
    }

    #[test]
    fn empty_returns_none() {
        let mut s = Stride::new(vec![1.0]);
        assert!(s.dequeue().is_none());
    }
}
