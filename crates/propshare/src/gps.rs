//! The Generalized Processor Sharing fluid reference (Parekh &
//! Gallager). Not a dispatch scheduler — a continuous-time model that
//! answers "how much work would each class have received by time t if
//! capacity were infinitely divisible?" Used as ground truth in
//! fairness tests and as the ideal the PSD task-server abstraction
//! assumes.

/// Fluid GPS over `n` classes with fixed total capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct GpsFluid {
    weights: Vec<f64>,
    capacity: f64,
    /// Unfinished work per class.
    backlog: Vec<f64>,
    /// Cumulative service delivered per class.
    served: Vec<f64>,
}

impl GpsFluid {
    /// Build with per-class weights and total service capacity
    /// (work-units per time-unit).
    pub fn new(weights: Vec<f64>, capacity: f64) -> Self {
        crate::scheduler::check_weights(&weights);
        assert!(capacity.is_finite() && capacity > 0.0, "capacity must be positive");
        let n = weights.len();
        Self { weights, capacity, backlog: vec![0.0; n], served: vec![0.0; n] }
    }

    /// Add `work` to class `class`'s backlog.
    pub fn add_work(&mut self, class: usize, work: f64) {
        assert!(work > 0.0, "work must be positive");
        self.backlog[class] += work;
    }

    /// Unfinished work of `class`.
    pub fn backlog(&self, class: usize) -> f64 {
        self.backlog[class]
    }

    /// Cumulative service delivered to `class`.
    pub fn served(&self, class: usize) -> f64 {
        self.served[class]
    }

    /// Advance the fluid system by `dt`, distributing capacity among
    /// *backlogged* classes in proportion to their weights, re-dividing
    /// instantly whenever a class empties (the defining GPS property).
    pub fn advance(&mut self, mut dt: f64) {
        assert!(dt >= 0.0, "cannot advance backwards");
        while dt > 1e-15 {
            let active: Vec<usize> =
                (0..self.weights.len()).filter(|&i| self.backlog[i] > 1e-15).collect();
            if active.is_empty() {
                return; // idle server: time passes, nothing served
            }
            let wsum: f64 = active.iter().map(|&i| self.weights[i]).sum();
            // Time until the first active class empties at current shares.
            let mut first_empty = dt;
            for &i in &active {
                let rate = self.capacity * self.weights[i] / wsum;
                first_empty = first_empty.min(self.backlog[i] / rate);
            }
            let step = first_empty.min(dt);
            for &i in &active {
                let rate = self.capacity * self.weights[i] / wsum;
                let done = (rate * step).min(self.backlog[i]);
                self.backlog[i] -= done;
                self.served[i] += done;
                if self.backlog[i] < 1e-12 {
                    self.backlog[i] = 0.0;
                }
            }
            dt -= step;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_by_weight_while_backlogged() {
        let mut g = GpsFluid::new(vec![1.0, 3.0], 1.0);
        g.add_work(0, 100.0);
        g.add_work(1, 100.0);
        g.advance(4.0);
        assert!((g.served(0) - 1.0).abs() < 1e-9);
        assert!((g.served(1) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn idle_class_capacity_redistributes() {
        let mut g = GpsFluid::new(vec![1.0, 1.0], 1.0);
        g.add_work(0, 0.5);
        g.add_work(1, 100.0);
        // Class 0 empties at t = 1 (rate 1/2); afterwards class 1 gets
        // the whole machine. At t = 3: class 1 served 0.5·1 + 1·2 = 2.5.
        g.advance(3.0);
        assert!((g.served(0) - 0.5).abs() < 1e-9);
        assert!((g.served(1) - 2.5).abs() < 1e-9);
        assert_eq!(g.backlog(0), 0.0);
    }

    #[test]
    fn work_conservation() {
        let mut g = GpsFluid::new(vec![2.0, 1.0, 1.0], 2.0);
        g.add_work(0, 3.0);
        g.add_work(1, 3.0);
        g.add_work(2, 3.0);
        g.advance(2.0); // serves 4 units total
        let total: f64 = (0..3).map(|i| g.served(i)).sum();
        assert!((total - 4.0).abs() < 1e-9, "capacity fully used: {total}");
    }

    #[test]
    fn fully_drains_then_idles() {
        let mut g = GpsFluid::new(vec![1.0], 1.0);
        g.add_work(0, 1.0);
        g.advance(10.0);
        assert!((g.served(0) - 1.0).abs() < 1e-12);
        assert_eq!(g.backlog(0), 0.0);
        g.advance(5.0); // no panic, nothing more served
        assert!((g.served(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bad_capacity() {
        GpsFluid::new(vec![1.0], 0.0);
    }
}
