//! Weighted fair queueing via start-time fair queueing (SFQ, Goyal et
//! al.) — the packet-by-packet approximation of GPS that the PGPS
//! family made practical. Items are tagged with virtual start/finish
//! times; dispatch order is ascending start tag; virtual time is the
//! start tag of the item in service. SFQ's fairness bound is within one
//! maximal item of GPS, which is all the task-server abstraction needs.

use std::collections::VecDeque;

use crate::scheduler::{check_item, check_weights, ProportionalScheduler, WorkItem};

#[derive(Debug, Clone, Copy)]
struct Tagged {
    item: WorkItem,
    start: f64,
    finish: f64,
}

/// Start-time fair queueing scheduler.
#[derive(Debug, Clone)]
pub struct Wfq {
    weights: Vec<f64>,
    queues: Vec<VecDeque<Tagged>>,
    /// Virtual time: start tag of the most recently dispatched item.
    vtime: f64,
    /// Last finish tag issued per class.
    last_finish: Vec<f64>,
}

impl Wfq {
    /// Build with per-class weights.
    pub fn new(weights: Vec<f64>) -> Self {
        check_weights(&weights);
        let n = weights.len();
        Self {
            weights,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            vtime: 0.0,
            last_finish: vec![0.0; n],
        }
    }
}

impl ProportionalScheduler for Wfq {
    fn num_classes(&self) -> usize {
        self.weights.len()
    }

    fn set_weight(&mut self, class: usize, weight: f64) {
        assert!(weight.is_finite() && weight > 0.0, "weight must be finite and > 0");
        self.weights[class] = weight;
    }

    fn weight(&self, class: usize) -> f64 {
        self.weights[class]
    }

    fn enqueue(&mut self, class: usize, item: WorkItem) {
        check_item(&item);
        // Tag on arrival: start = max(V, last finish of this class).
        let start = self.vtime.max(self.last_finish[class]);
        let finish = start + item.cost / self.weights[class];
        self.last_finish[class] = finish;
        self.queues[class].push_back(Tagged { item, start, finish });
    }

    fn dequeue(&mut self) -> Option<(usize, WorkItem)> {
        // Serve the head-of-line item with the minimum start tag; ties
        // break on the finish tag (earlier virtual completion first),
        // then on class index — all deterministic.
        let mut best: Option<(usize, f64, f64)> = None;
        for (class, q) in self.queues.iter().enumerate() {
            if let Some(head) = q.front() {
                let better = match best {
                    None => true,
                    Some((_, s, f)) => head.start < s || (head.start == s && head.finish < f),
                };
                if better {
                    best = Some((class, head.start, head.finish));
                }
            }
        }
        let (class, _, _) = best?;
        let tagged = self.queues[class].pop_front().expect("head checked");
        self.vtime = tagged.start;
        Some((class, tagged.item))
    }

    fn backlog(&self, class: usize) -> usize {
        self.queues[class].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_class() {
        let mut s = Wfq::new(vec![1.0]);
        for id in 0..5 {
            s.enqueue(0, WorkItem { id, cost: 1.0 });
        }
        for id in 0..5 {
            assert_eq!(s.dequeue().unwrap().1.id, id);
        }
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn interleaves_by_weight() {
        // Weights 2:1 with unit costs — class 0 should be dispatched
        // roughly twice as often in any prefix.
        let mut s = Wfq::new(vec![2.0, 1.0]);
        for id in 0..30 {
            s.enqueue(0, WorkItem { id, cost: 1.0 });
            s.enqueue(1, WorkItem { id: 100 + id, cost: 1.0 });
        }
        let mut counts = [0usize; 2];
        for _ in 0..12 {
            let (c, _) = s.dequeue().unwrap();
            counts[c] += 1;
        }
        assert!(counts[0] >= 7 && counts[0] <= 9, "2:1 prefix fairness, got {counts:?}");
    }

    #[test]
    fn large_items_do_not_monopolize() {
        // Class 0 sends huge items, class 1 small ones at equal weight:
        // class 1 must get through between class 0's items.
        let mut s = Wfq::new(vec![1.0, 1.0]);
        for id in 0..4 {
            s.enqueue(0, WorkItem { id, cost: 10.0 });
        }
        for id in 0..20 {
            s.enqueue(1, WorkItem { id: 100 + id, cost: 1.0 });
        }
        let mut seen1 = 0;
        let mut dispatched0 = 0;
        while dispatched0 < 2 {
            let (c, _) = s.dequeue().unwrap();
            if c == 0 {
                dispatched0 += 1;
            } else {
                seen1 += 1;
            }
        }
        assert!(seen1 >= 9, "class 1 got {seen1} items between class-0 monsters");
    }

    #[test]
    fn empty_dequeue_none() {
        let mut s = Wfq::new(vec![1.0, 1.0]);
        assert!(s.dequeue().is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn weight_update_changes_future_shares() {
        let mut s = Wfq::new(vec![1.0, 1.0]);
        s.set_weight(0, 4.0);
        assert_eq!(s.weight(0), 4.0);
        for id in 0..20 {
            s.enqueue(0, WorkItem { id, cost: 1.0 });
            s.enqueue(1, WorkItem { id: 100 + id, cost: 1.0 });
        }
        let mut counts = [0usize; 2];
        for _ in 0..10 {
            let (c, _) = s.dequeue().unwrap();
            counts[c] += 1;
        }
        assert!(counts[0] >= 7, "reweighted class dominates: {counts:?}");
    }
}
