//! Property-based tests of the proportional-share schedulers: no work
//! is ever lost or invented, FIFO order holds within a class, and
//! long-run dispatched work tracks the weights.

// The class index is used against several parallel arrays at once, so
// indexed loops read better than zipped enumerations here.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use psd_propshare::{Drr, GpsFluid, Lottery, ProportionalScheduler, Stride, Wfq, WorkItem};

#[derive(Debug, Clone)]
enum Op {
    Enqueue { class: usize, cost: f64 },
    Dequeue,
}

fn ops(n_classes: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0..n_classes, 0.01f64..20.0).prop_map(|(class, cost)| Op::Enqueue { class, cost }),
            2 => Just(Op::Dequeue),
        ],
        1..200,
    )
}

/// Drive an arbitrary op sequence and check conservation + class FIFO.
fn check_conservation<S: ProportionalScheduler>(
    mut s: S,
    ops: Vec<Op>,
) -> Result<(), TestCaseError> {
    let n = s.num_classes();
    let mut next_id = 0u64;
    let mut enqueued = vec![0usize; n];
    let mut dispatched = vec![0usize; n];
    let mut last_dispatched_id = vec![None::<u64>; n];
    for op in ops {
        match op {
            Op::Enqueue { class, cost } => {
                s.enqueue(class, WorkItem { id: next_id, cost });
                // ids increase monotonically per class because they are global
                next_id += 1;
                enqueued[class] += 1;
            }
            Op::Dequeue => {
                if let Some((class, item)) = s.dequeue() {
                    dispatched[class] += 1;
                    // FIFO within a class: ids per class must ascend.
                    if let Some(prev) = last_dispatched_id[class] {
                        prop_assert!(
                            item.id > prev,
                            "class {class} dispatched id {} after {prev}",
                            item.id
                        );
                    }
                    last_dispatched_id[class] = Some(item.id);
                }
            }
        }
    }
    // Conservation: backlog + dispatched == enqueued, per class.
    for c in 0..n {
        prop_assert_eq!(s.backlog(c) + dispatched[c], enqueued[c], "class {} leaked work", c);
    }
    // Draining yields exactly the backlog.
    let mut drained = 0;
    while s.dequeue().is_some() {
        drained += 1;
        prop_assert!(drained <= enqueued.iter().sum::<usize>(), "infinite drain");
    }
    prop_assert!(s.is_empty());
    Ok(())
}

fn weights(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.1f64..10.0, n)
}

proptest! {
    #[test]
    fn wfq_conserves(w in weights(3), ops in ops(3)) {
        check_conservation(Wfq::new(w), ops)?;
    }

    #[test]
    fn stride_conserves(w in weights(3), ops in ops(3)) {
        check_conservation(Stride::new(w), ops)?;
    }

    #[test]
    fn drr_conserves(w in weights(3), ops in ops(3), quantum in 0.5f64..5.0) {
        check_conservation(Drr::new(w, quantum), ops)?;
    }

    #[test]
    fn lottery_conserves(w in weights(3), ops in ops(3), seed in any::<u64>()) {
        check_conservation(Lottery::new(w, seed), ops)?;
    }

    /// With everything continuously backlogged, WFQ's dispatched work
    /// per class stays within a bounded distance of the GPS fluid ideal
    /// (one maximal item per class — SFQ's fairness bound).
    #[test]
    fn wfq_tracks_gps(w in weights(2), seed in any::<u64>()) {
        let mut wfq = Wfq::new(w.clone());
        let mut gps = GpsFluid::new(w.clone(), 1.0);
        let mut rng = psd_dist::rng::Xoshiro256pp::seed_from(seed);
        let mut id = 0u64;
        let max_cost = 3.0;
        // Prime both with identical backlogs.
        for class in 0..2 {
            for _ in 0..400 {
                let cost = 0.1 + rng.next_f64() * (max_cost - 0.1);
                wfq.enqueue(class, WorkItem { id, cost });
                gps.add_work(class, cost);
                id += 1;
            }
        }
        // Dispatch a bounded amount of work through WFQ and advance GPS
        // by the same total.
        let mut done = [0.0f64; 2];
        let mut total = 0.0;
        while total < 100.0 {
            let (c, item) = wfq.dequeue().expect("deep backlog");
            done[c] += item.cost;
            total += item.cost;
        }
        gps.advance(total);
        for c in 0..2 {
            let diff = (done[c] - gps.served(c)).abs();
            // SFQ lag bound: one maximal item per *busy* class, plus the
            // in-flight item.
            prop_assert!(
                diff <= 2.0 * max_cost + 1e-6,
                "class {c}: wfq {} vs gps {} (diff {diff})",
                done[c],
                gps.served(c)
            );
        }
    }

    /// GPS fluid never serves more than capacity·dt in total, and never
    /// serves an empty class.
    #[test]
    fn gps_capacity_bound(
        w in weights(3),
        adds in proptest::collection::vec((0usize..3, 0.1f64..5.0), 1..30),
        dt in 0.1f64..50.0,
    ) {
        let mut g = GpsFluid::new(w, 2.0);
        let mut offered = [0.0f64; 3];
        for (c, work) in adds {
            g.add_work(c, work);
            offered[c] += work;
        }
        g.advance(dt);
        let mut total_served = 0.0;
        for c in 0..3 {
            prop_assert!(g.served(c) <= offered[c] + 1e-9, "served more than offered");
            total_served += g.served(c);
        }
        prop_assert!(total_served <= 2.0 * dt + 1e-9, "capacity exceeded");
        // Work conservation: served + backlog == offered.
        for c in 0..3 {
            prop_assert!((g.served(c) + g.backlog(c) - offered[c]).abs() < 1e-9);
        }
    }
}
