//! Event-throughput of the discrete-event simulator: how fast one
//! paper-scale replication runs, which bounds the cost of the full
//! 100-run figure campaign.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psd_core::config::PsdConfig;
use psd_core::simulation::run_once;
use psd_desim::{ClassSpec, SimConfig, Simulation, StaticRates};
use psd_dist::ServiceDist;

fn bench_raw_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("desim_engine");
    group.sample_size(10);
    for &load in &[0.5, 0.9] {
        group.bench_with_input(
            BenchmarkId::new("two_class_5k_tu", (load * 100.0) as u64),
            &load,
            |b, &load| {
                b.iter(|| {
                    let service = ServiceDist::paper_default();
                    let ex = psd_dist::ServiceDistribution::mean(&service);
                    let lambda = load / 2.0 / ex;
                    let cfg = SimConfig {
                        classes: vec![
                            ClassSpec::poisson(lambda, service.clone()),
                            ClassSpec::poisson(lambda, service),
                        ],
                        end_time: 5_000.0 * ex,
                        warmup: 500.0 * ex,
                        control_period: 1_000.0 * ex,
                        seed: 7,
                        ..SimConfig::default()
                    };
                    Simulation::new(cfg, Box::new(StaticRates::even(2))).run()
                })
            },
        );
    }
    group.finish();
}

fn bench_full_psd_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("psd_replication");
    group.sample_size(10);
    group.bench_function("two_class_load70_5k_tu", |b| {
        let cfg = PsdConfig::equal_load(&[1.0, 2.0], 0.7).with_horizon(5_000.0, 500.0);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_once(&cfg, seed)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_raw_engine, bench_full_psd_run);
criterion_main!(benches);
