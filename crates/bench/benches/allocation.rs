//! Microbenchmarks of the Eq. 17 allocator and the Eq. 18 predictor —
//! the per-control-tick cost of the paper's strategy, which must be
//! negligible next to a 1000-time-unit window.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psd_core::allocation::{psd_rates, psd_rates_clamped};
use psd_core::model::PsdModel;
use psd_dist::{BoundedPareto, ServiceDistribution};

fn bench_allocation(c: &mut Criterion) {
    let bp = BoundedPareto::paper_default();
    let ex = bp.mean();
    let mut group = c.benchmark_group("psd_rates");
    for &n in &[2usize, 3, 8, 32, 128] {
        let deltas: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let lambdas: Vec<f64> = (0..n).map(|_| 0.8 / n as f64 / ex).collect();
        group.bench_with_input(BenchmarkId::new("eq17", n), &n, |b, _| {
            b.iter(|| psd_rates(black_box(&lambdas), black_box(&deltas), black_box(ex)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("eq17_clamped", n), &n, |b, _| {
            b.iter(|| {
                psd_rates_clamped(
                    black_box(&lambdas),
                    black_box(&deltas),
                    black_box(ex),
                    1e-4,
                    0.02,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_model(c: &mut Criterion) {
    let bp = BoundedPareto::paper_default();
    let ex = bp.mean();
    let deltas = [1.0, 2.0, 3.0];
    let model = PsdModel::new(&deltas, bp.moments()).unwrap();
    let lambdas = vec![0.2 / ex; 3];
    c.bench_function("eq18_expected_slowdowns", |b| {
        b.iter(|| model.expected_slowdowns(black_box(&lambdas)).unwrap())
    });
}

criterion_group!(benches, bench_allocation, bench_model);
criterion_main!(benches);
