//! Reduced-scale regeneration of every paper figure as a criterion
//! bench: `cargo bench` therefore exercises the code path behind each
//! figure end-to-end. Full-scale series come from the `figures` binary
//! (`cargo run --release -p psd-bench --bin figures`).

use criterion::{criterion_group, criterion_main, Criterion};
use psd_bench::{ablations, figures, HarnessParams};

fn quick() -> HarnessParams {
    HarnessParams { runs: 2, seed: 11, quick: true }
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_quick");
    group.sample_size(10);
    let p = quick();
    group.bench_function("fig2_effectiveness_2class", |b| b.iter(|| figures::fig2(&p)));
    group.bench_function("fig3_effectiveness_1to4", |b| b.iter(|| figures::fig3(&p)));
    group.bench_function("fig4_effectiveness_3class", |b| b.iter(|| figures::fig4(&p)));
    group.bench_function("fig5_ratio_percentiles_2class", |b| b.iter(|| figures::fig5(&p)));
    group.bench_function("fig6_ratio_percentiles_3class", |b| b.iter(|| figures::fig6(&p)));
    group.bench_function("fig7_trace_load50", |b| b.iter(|| figures::fig7(&p)));
    group.bench_function("fig8_trace_load90", |b| b.iter(|| figures::fig8(&p)));
    group.bench_function("fig9_controllability_2class", |b| b.iter(|| figures::fig9(&p)));
    group.bench_function("fig10_controllability_3class", |b| b.iter(|| figures::fig10(&p)));
    group.bench_function("fig11_shape_sweep", |b| b.iter(|| figures::fig11(&p)));
    group.bench_function("fig12_upper_bound_sweep", |b| b.iter(|| figures::fig12(&p)));
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations_quick");
    group.sample_size(10);
    let p = quick();
    group.bench_function("estimator_history", |b| b.iter(|| ablations::estimator_history(&p)));
    group.bench_function("fluid_vs_pinned", |b| b.iter(|| ablations::fluid_vs_pinned(&p)));
    group.bench_function("baselines", |b| b.iter(|| ablations::baselines(&p)));
    group.finish();
}

criterion_group!(benches, bench_figures, bench_ablations);
criterion_main!(benches);
